"""Schedule sanitizer — Theorems 3.5/3.6 as machine-checked invariants.

:func:`repro.runtime.schedule.verify_schedule` validates schedules
*empirically*: it executes them and diffs against the naive reference.
That check is blind to a whole class of structural bugs — an
intra-group write/write race whose interleavings happen to agree, a
dependence violation that reads a stale-but-identical value, a
double-write of the same region — exactly the bugs that are easy to
introduce when stage decompositions are derived by hand.  This module
checks the *structure* instead, with pure interval arithmetic over the
schedule's hyper-rectangles (no numeric execution, cost independent of
the grid's point count):

**Tessellation (Theorem 3.5).**  For every global step ``t`` the
update regions at ``t`` must tile the interior exactly: pairwise
disjoint (unless the schedule is declared *redundant*), inside the
domain, and with total volume equal to the interior — every point
advances exactly once per step, no misses, no double work.

**Dependence legality (Theorem 3.6).**  Under the two-buffer
(ping-pong) discipline an action at step ``t`` reads the
time-``t`` values on its region dilated by the stencil's per-axis
slopes.  The sanitizer requires that read footprint to be fully
written at ``t`` by actions *ordered before* it (an earlier barrier
group, or an earlier action of the same task) — and not to have been
clobbered by an ordered-before write at a later step of the same
buffer parity (the write of step ``t+1`` lands in the buffer holding
the time-``t`` values).

**Intra-group independence.**  Tasks of one barrier group may run in
any interleaving, so any two tasks of a group whose write regions and
read/write footprints intersect *in the same parity buffer* race.
The pairwise test is pruned by a sweep over axis-sorted task bounding
boxes, keeping the check near-linear for the long, thin groups all
schemes here produce.

Ghost-zone (``private_tasks``) schedules get the matching private
discipline instead: each task must be a self-contained trapezoid
(consecutive steps, every footprint inside the previous region, every
region inside the snapshot box) and the final core regions must tile
the interior per time tile.

:func:`sanitize_distributed_plan` extends the same checks to the
distributed simulator's rank-local schedules: every rank's read
footprint must stay inside its slab dilated by the exchanged ghost
band, which catches an under-sized band *before* execution rather
than via numeric divergence.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.runtime.errors import SanitizerViolation
from repro.runtime.schedule import RegionSchedule, ScheduledTask
from repro.stencils.spec import Region, StencilSpec, region_is_empty, region_size

__all__ = [
    "Violation",
    "SanitizerReport",
    "sanitize_schedule",
    "sanitize_distributed_plan",
]


# ---------------------------------------------------------------------------
# interval arithmetic on half-open hyper-rectangles
# ---------------------------------------------------------------------------

def _intersect(a: Region, b: Region) -> Optional[Region]:
    """Intersection box, or None when empty."""
    out = []
    for (alo, ahi), (blo, bhi) in zip(a, b):
        lo, hi = max(alo, blo), min(ahi, bhi)
        if hi <= lo:
            return None
        out.append((lo, hi))
    return tuple(out)


def _dilate_clip(region: Region, slopes: Sequence[int],
                 shape: Sequence[int]) -> Region:
    """Read footprint: region grown by one slope per axis, clipped."""
    return tuple(
        (max(0, lo - s), min(int(n), hi + s))
        for (lo, hi), s, n in zip(region, slopes, shape)
    )


def _contains(outer: Region, inner: Region) -> bool:
    return all(olo <= ilo and ihi <= ohi
               for (olo, ohi), (ilo, ihi) in zip(outer, inner))


def _subtract_one(box: Region, cover: Region) -> List[Region]:
    """``box`` minus ``cover`` as a list of disjoint boxes."""
    inter = _intersect(box, cover)
    if inter is None:
        return [box]
    out: List[Region] = []
    cur = list(box)
    for j, ((lo, hi), (ilo, ihi)) in enumerate(zip(box, inter)):
        lo, hi = cur[j]
        if lo < ilo:
            piece = list(cur)
            piece[j] = (lo, ilo)
            out.append(tuple(piece))
        if ihi < hi:
            piece = list(cur)
            piece[j] = (ihi, hi)
            out.append(tuple(piece))
        cur[j] = (ilo, ihi)
    return out


def _subtract(box: Region, covers: Iterable[Region]) -> List[Region]:
    """``box`` minus the union of ``covers`` (empty list = covered)."""
    pieces = [box]
    for cover in covers:
        if not pieces:
            return []
        nxt: List[Region] = []
        for p in pieces:
            nxt.extend(_subtract_one(p, cover))
        pieces = nxt
    return pieces


def _find_pairwise_overlap(entries: List[Tuple[Region, int]]):
    """First overlapping pair among boxes, or None.

    ``entries`` are ``(region, tag)``; the sweep sorts by the axis-0
    low edge and only compares boxes whose axis-0 intervals overlap,
    so disjoint tilings are verified in ``O(k log k)`` comparisons.
    """
    order = sorted(range(len(entries)), key=lambda i: entries[i][0][0][0])
    active: List[int] = []
    for i in order:
        r, _ = entries[i]
        lo0 = r[0][0]
        active = [j for j in active if entries[j][0][0][1] > lo0]
        for j in active:
            inter = _intersect(entries[j][0], r)
            if inter is not None:
                return entries[j][1], entries[i][1], inter
        active.append(i)
    return None


class _RegionIndex:
    """Axis-0 interval index for output-sensitive overlap queries.

    Regions are sorted by their axis-0 low edge with a running prefix
    maximum of the high edges, so :meth:`overlapping` visits only the
    candidates whose axis-0 interval can meet the query's — the same
    pruning as :func:`_find_pairwise_overlap`, but incremental, which
    keeps the dependence walk near-linear instead of quadratic in the
    per-step action count.
    """

    __slots__ = ("_items", "_built")

    def __init__(self) -> None:
        self._items: List[Region] = []
        self._built = None

    def add(self, region: Region) -> None:
        self._items.append(region)
        self._built = None

    def overlapping(self, region: Region) -> Iterable[Region]:
        """Regions whose axis-0 interval overlaps ``region``'s."""
        if not self._items:
            return
        if self._built is None:
            items = sorted(self._items, key=lambda r: r[0][0])
            los = [r[0][0] for r in items]
            pmax: List[int] = []
            hi = items[0][0][1]
            for r in items:
                hi = max(hi, r[0][1])
                pmax.append(hi)
            self._built = (los, items, pmax)
        los, items, pmax = self._built
        qlo, qhi = region[0]
        i = bisect_left(los, qhi) - 1
        while i >= 0:
            if pmax[i] <= qlo:      # nothing to the left reaches qlo
                break
            if items[i][0][1] > qlo:
                yield items[i]
            i -= 1


# ---------------------------------------------------------------------------
# findings
# ---------------------------------------------------------------------------

#: violation kinds emitted by the sanitizer
KINDS = (
    "structure",            # malformed schedule (rank/range/group errors)
    "out-of-bounds",        # write region outside the interior
    "gap",                  # a step misses part of the interior
    "double-write",         # a step writes a sub-region twice (undeclared)
    "missing-dependence",   # read footprint not written at t-1 before use
    "premature-overwrite",  # an ordered-before write clobbered the inputs
    "race",                 # two tasks of one group conflict in a buffer
    "private-task",         # ghost-zone task is not self-contained
    "ghost-band",           # rank reads beyond its slab + ghost band
)


@dataclass(frozen=True)
class Violation:
    """One structural invariant violation, locating the offender."""

    kind: str
    detail: str
    step: Optional[int] = None
    group: Optional[int] = None
    task: Optional[str] = None
    other_task: Optional[str] = None
    region: Optional[Region] = None

    def describe(self) -> str:
        where = []
        if self.step is not None:
            where.append(f"step {self.step}")
        if self.group is not None:
            where.append(f"group {self.group}")
        if self.task:
            where.append(f"task {self.task!r}")
        if self.other_task:
            where.append(f"vs {self.other_task!r}")
        if self.region is not None:
            where.append(f"region {self.region}")
        loc = ", ".join(where)
        return f"[{self.kind}] {self.detail}" + (f" ({loc})" if loc else "")


@dataclass
class SanitizerReport:
    """Outcome of one sanitizer run (violations + effort counters)."""

    scheme: str
    violations: List[Violation] = field(default_factory=list)
    actions_checked: int = 0
    steps_checked: int = 0
    pairs_checked: int = 0
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, violation: Violation) -> None:
        self.violations.append(violation)

    def kinds(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for v in self.violations:
            out[v.kind] = out.get(v.kind, 0) + 1
        return out

    def describe(self) -> str:
        head = (
            f"sanitize {self.scheme}: "
            f"{self.actions_checked} actions, {self.steps_checked} steps, "
            f"{self.pairs_checked} pair checks in {self.seconds * 1e3:.1f} ms"
        )
        if self.ok:
            return head + " — clean"
        lines = [head + f" — {len(self.violations)} violation(s):"]
        lines += ["  " + v.describe() for v in self.violations]
        return "\n".join(lines)

    def raise_if_violations(self) -> None:
        if not self.ok:
            raise SanitizerViolation(self.scheme, self.violations)


# ---------------------------------------------------------------------------
# the checks
# ---------------------------------------------------------------------------

_MAX_VIOLATIONS = 32  # stop collecting once a schedule is clearly broken


def _check_structure(schedule: RegionSchedule,
                     report: SanitizerReport) -> None:
    """Well-formedness plus write-bounds (flags out-of-bounds writes)."""
    d = len(schedule.shape)
    for task in schedule.tasks:
        if task.group < 0:
            report.add(Violation(
                "structure", "negative barrier group",
                group=task.group, task=task.label))
        for a in task.actions:
            if not 0 <= a.t < schedule.steps:
                report.add(Violation(
                    "structure",
                    f"action at t={a.t} outside [0, {schedule.steps})",
                    step=a.t, group=task.group, task=task.label))
                continue
            if len(a.region) != d:
                report.add(Violation(
                    "structure",
                    f"region rank {len(a.region)} != schedule rank {d}",
                    step=a.t, group=task.group, task=task.label))
                continue
            if region_is_empty(a.region):
                continue
            clipped = tuple(
                (max(0, lo), min(int(n), hi))
                for (lo, hi), n in zip(a.region, schedule.shape)
            )
            if clipped != a.region:
                report.add(Violation(
                    "out-of-bounds",
                    f"write region exceeds interior {schedule.shape}",
                    step=a.t, group=task.group, task=task.label,
                    region=a.region))


def _check_coverage(schedule: RegionSchedule, redundant: bool,
                    report: SanitizerReport) -> None:
    """Theorem 3.5: per step, regions tile the interior exactly once.

    With disjointness and in-bounds writes established, *exactly once*
    reduces to a volume identity (sum of region sizes == interior
    size), so no per-point work is needed.  Redundant schedules skip
    the disjointness requirement and fall back to explicit box
    subtraction for the coverage half.
    """
    interior: Region = tuple((0, int(n)) for n in schedule.shape)
    interior_vol = region_size(interior)
    by_step: Dict[int, List[Tuple[Region, int, str]]] = {}
    for task in schedule.tasks:
        for a in task.actions:
            if region_is_empty(a.region):
                continue
            by_step.setdefault(a.t, []).append(
                (a.region, task.group, task.label))
    for t in range(schedule.steps):
        if len(report.violations) >= _MAX_VIOLATIONS:
            return
        report.steps_checked += 1
        entries = by_step.get(t, [])
        if not redundant:
            tagged = [(r, i) for i, (r, _, _) in enumerate(entries)]
            hit = _find_pairwise_overlap(tagged)
            report.pairs_checked += len(entries)
            if hit is not None:
                i, j, inter = hit
                report.add(Violation(
                    "double-write",
                    "two actions write the same sub-region at one step",
                    step=t, group=entries[i][1], task=entries[i][2],
                    other_task=entries[j][2], region=inter))
                continue
            covered = sum(region_size(r) for r, _, _ in entries)
            if covered != interior_vol:
                holes = _subtract(interior, (r for r, _, _ in entries)) \
                    if interior_vol else []
                report.add(Violation(
                    "gap",
                    f"step covers {covered} of {interior_vol} interior "
                    f"points",
                    step=t, region=holes[0] if holes else None))
        else:
            if interior_vol == 0:
                continue
            holes = _subtract(interior, (r for r, _, _ in entries))
            if holes:
                report.add(Violation(
                    "gap", "redundant schedule leaves a step uncovered",
                    step=t, region=holes[0]))


def _check_dependences(spec: StencilSpec, schedule: RegionSchedule,
                       report: SanitizerReport) -> None:
    """Theorem 3.6 under ping-pong: reads covered, inputs unclobbered.

    Groups are walked in barrier order; ``written[t]`` accumulates the
    regions committed by finished groups.  An action sees those plus
    the earlier actions of its own task — never its group peers, whose
    order is unspecified (peer conflicts are the race check's job).
    """
    slopes = spec.slopes
    shape = schedule.shape
    written: Dict[int, _RegionIndex] = {}
    max_step = -1
    groups = schedule.groups()
    for gid in sorted(groups):
        if len(report.violations) >= _MAX_VIOLATIONS:
            return
        pending: List[Tuple[int, Region]] = []
        for task in groups[gid]:
            local: Dict[int, List[Region]] = {}
            for a in task.actions:
                if region_is_empty(a.region):
                    continue
                report.actions_checked += 1
                foot = _dilate_clip(a.region, slopes, shape)
                if a.t > 0 and not region_is_empty(foot):
                    idx = written.get(a.t - 1)
                    cands = list(idx.overlapping(foot)) if idx else []
                    cands += local.get(a.t - 1, [])
                    covers = [r for r in cands
                              if _intersect(r, foot) is not None]
                    holes = _subtract(foot, covers)
                    if holes:
                        report.add(Violation(
                            "missing-dependence",
                            f"read footprint not written at t={a.t - 1} "
                            f"by any earlier group or own action",
                            step=a.t, group=gid, task=task.label,
                            region=holes[0]))
                if not region_is_empty(foot):
                    # writes of step t+1, t+3, … land in the parity
                    # buffer holding this action's time-t inputs
                    s = a.t + 1
                    clobber_max = max(max_step, a.t + 1)
                    while s <= clobber_max:
                        idx = written.get(s)
                        cands = list(idx.overlapping(foot)) if idx else []
                        for r in cands + local.get(s, []):
                            inter = _intersect(r, foot)
                            if inter is not None:
                                report.add(Violation(
                                    "premature-overwrite",
                                    f"inputs at t={a.t} already "
                                    f"overwritten by a step-{s} write",
                                    step=a.t, group=gid, task=task.label,
                                    region=inter))
                                break
                        s += 2
                local.setdefault(a.t, []).append(a.region)
                pending.append((a.t, a.region))
        for t, r in pending:
            written.setdefault(t, _RegionIndex()).add(r)
            max_step = max(max_step, t)


def _task_access_entries(spec: StencilSpec, schedule: RegionSchedule,
                         task: ScheduledTask):
    """Per-parity write regions and read footprints of one task."""
    writes = {0: [], 1: []}
    reads = {0: [], 1: []}
    for a in task.actions:
        if region_is_empty(a.region):
            continue
        writes[(a.t + 1) % 2].append((a.region, a.t + 1))
        foot = _dilate_clip(a.region, spec.slopes, schedule.shape)
        if not region_is_empty(foot):
            reads[a.t % 2].append((foot, a.t))
    return writes, reads


def _check_races(spec: StencilSpec, schedule: RegionSchedule,
                 redundant: bool, report: SanitizerReport) -> None:
    """Tasks of one group must not conflict in either parity buffer.

    A conflict is a same-parity intersection between one task's write
    region and another's write region or read footprint — the pair's
    outcome would depend on interleaving.  Identical-level write/write
    overlaps are tolerated only for declared-redundant schedules
    (duplicate updates write identical values).  Bounding boxes are
    swept along axis 0 so only spatially plausible pairs are compared.
    """
    for gid, tasks in sorted(schedule.groups().items()):
        if len(report.violations) >= _MAX_VIOLATIONS:
            return
        boxes = []
        for ti, task in enumerate(tasks):
            box = task.bounding_box()
            if box is None:
                continue
            foot = _dilate_clip(box, spec.slopes, schedule.shape)
            boxes.append((foot, ti))
        order = sorted(range(len(boxes)), key=lambda i: boxes[i][0][0][0])
        active: List[int] = []
        accesses: Dict[int, tuple] = {}
        for i in order:
            box, ti = boxes[i]
            lo0 = box[0][0]
            active = [j for j in active if boxes[j][0][0][1] > lo0]
            for j in active:
                report.pairs_checked += 1
                tj = boxes[j][1]
                if ti not in accesses:
                    accesses[ti] = _task_access_entries(
                        spec, schedule, tasks[ti])
                if tj not in accesses:
                    accesses[tj] = _task_access_entries(
                        spec, schedule, tasks[tj])
                v = _race_between(tasks[ti], accesses[ti],
                                  tasks[tj], accesses[tj],
                                  gid, redundant)
                if v is not None:
                    report.add(v)
                    if len(report.violations) >= _MAX_VIOLATIONS:
                        return
            active.append(i)


def _race_between(task_a: ScheduledTask, acc_a, task_b: ScheduledTask,
                  acc_b, gid: int, redundant: bool) -> Optional[Violation]:
    writes_a, reads_a = acc_a
    writes_b, reads_b = acc_b
    for parity in (0, 1):
        for (wr, wl), (other, ol), what in (
            *(((w, lw), (r, lr), "read")
              for w, lw in writes_a[parity]
              for r, lr in reads_b[parity]),
            *(((w, lw), (r, lr), "read")
              for w, lw in writes_b[parity]
              for r, lr in reads_a[parity]),
            *(((w, lw), (v, lv), "write")
              for w, lw in writes_a[parity]
              for v, lv in writes_b[parity]),
        ):
            inter = _intersect(wr, other)
            if inter is None:
                continue
            if what == "write" and wl == ol and redundant:
                continue  # declared duplicate recomputation
            return Violation(
                "race",
                f"unordered tasks conflict in parity-{parity} buffer: "
                f"write of t={wl} meets {what} of t={ol}",
                step=min(wl, ol), group=gid, task=task_a.label,
                other_task=task_b.label, region=inter)
    return None


def _check_private_tasks(spec: StencilSpec, schedule: RegionSchedule,
                         report: SanitizerReport) -> None:
    """Ghost-zone discipline for ``private_tasks`` schedules.

    Each task iterates on a private snapshot of its first action's
    box, so it must be self-contained: consecutive steps, every region
    inside the snapshot box, every read footprint inside the previous
    step's region.  The shared grid only sees the final write-back
    cores, which must tile the interior exactly once per time tile.
    """
    interior: Region = tuple((0, int(n)) for n in schedule.shape)
    interior_vol = region_size(interior)
    groups = schedule.groups()
    for gid in sorted(groups):
        if len(report.violations) >= _MAX_VIOLATIONS:
            return
        cores: List[Tuple[Region, int, str]] = []
        t_end = None
        for task in groups[gid]:
            acts = [a for a in task.actions if not region_is_empty(a.region)]
            if not acts:
                continue
            report.actions_checked += len(acts)
            inbox = acts[0].region
            prev = None
            for k, a in enumerate(acts):
                if k and a.t != acts[k - 1].t + 1:
                    report.add(Violation(
                        "private-task",
                        f"non-consecutive steps {acts[k - 1].t} -> {a.t} "
                        f"inside one private task",
                        step=a.t, group=gid, task=task.label))
                    break
                if not _contains(inbox, a.region):
                    report.add(Violation(
                        "private-task",
                        "region escapes the task's snapshot box",
                        step=a.t, group=gid, task=task.label,
                        region=a.region))
                    break
                if prev is not None:
                    foot = _dilate_clip(a.region, spec.slopes,
                                        schedule.shape)
                    holes = _subtract(foot, [prev])
                    if holes:
                        report.add(Violation(
                            "private-task",
                            "read footprint escapes the previous step's "
                            "region (stale private values)",
                            step=a.t, group=gid, task=task.label,
                            region=holes[0]))
                        break
                prev = a.region
            else:
                cores.append((acts[-1].region, gid, task.label))
                if t_end is None:
                    t_end = acts[-1].t
                elif acts[-1].t != t_end:
                    report.add(Violation(
                        "private-task",
                        f"tasks of one time tile end at different steps "
                        f"({acts[-1].t} != {t_end})",
                        step=acts[-1].t, group=gid, task=task.label))
        # write-back cores must tile the interior exactly once
        report.steps_checked += 1
        tagged = [(r, i) for i, (r, _, _) in enumerate(cores)]
        hit = _find_pairwise_overlap(tagged)
        report.pairs_checked += len(cores)
        if hit is not None:
            i, j, inter = hit
            report.add(Violation(
                "double-write", "write-back cores of one time tile overlap",
                step=t_end, group=gid, task=cores[i][2],
                other_task=cores[j][2], region=inter))
        elif interior_vol and sum(region_size(r) for r, _, _ in cores) \
                != interior_vol:
            holes = _subtract(interior, (r for r, _, _ in cores))
            report.add(Violation(
                "gap", "write-back cores miss part of the interior",
                step=t_end, group=gid,
                region=holes[0] if holes else None))


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------

def sanitize_schedule(
    spec: StencilSpec,
    schedule: RegionSchedule,
    redundant: Optional[bool] = None,
) -> SanitizerReport:
    """Run every structural check on a schedule; never executes it.

    ``redundant`` overrides the schedule's own
    :attr:`~repro.runtime.schedule.RegionSchedule.redundant` /
    ``private_tasks`` declaration: only declared-redundant schedules
    may write a point twice per step (overlapped tiling), everything
    else must tessellate exactly.  Returns a :class:`SanitizerReport`;
    call :meth:`SanitizerReport.raise_if_violations` to turn findings
    into a structured :class:`~repro.runtime.errors.SanitizerViolation`.
    """
    if spec.is_periodic:
        raise ValueError(
            "region schedules assume non-periodic boundaries; periodic "
            "configurations run through the pointwise executor"
        )
    if len(schedule.shape) != spec.ndim:
        raise ValueError(
            f"schedule rank {len(schedule.shape)} != stencil ndim "
            f"{spec.ndim}"
        )
    if redundant is None:
        redundant = schedule.redundant or schedule.private_tasks
    t0 = time.perf_counter()
    report = SanitizerReport(scheme=schedule.scheme)
    _check_structure(schedule, report)
    if report.ok:
        if schedule.private_tasks:
            _check_private_tasks(spec, schedule, report)
        else:
            _check_coverage(schedule, redundant, report)
            _check_dependences(spec, schedule, report)
            _check_races(spec, schedule, redundant, report)
    report.seconds = time.perf_counter() - t0
    return report


def sanitize_distributed_plan(
    spec: StencilSpec,
    lattice,
    steps: int,
    ranks: int,
    axis: int = 0,
    ghost: Optional[int] = None,
) -> SanitizerReport:
    """Sanitize the distributed simulator's rank-local schedules.

    Rebuilds exactly the per-rank block ownership of
    :func:`repro.distributed.exec.execute_distributed`, flattens it to
    one global region schedule (one barrier group per stage, one task
    per owned block) and runs the full structural battery on it — then
    adds the ghost-band check: every read footprint of a rank's blocks
    must lie inside the rank's slab dilated by ``ghost`` along the
    partition axis, because that band is all the stage exchange
    refreshes.  An under-sized ``ghost`` (the ``--ghost`` override) is
    therefore reported *before* execution, naming the rank, stage and
    block, instead of surfacing as numeric divergence mid-run.
    """
    from repro.distributed.partition import SlabPartition, build_ownership

    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    shape = lattice.shape
    part = SlabPartition(shape, ranks, axis=axis)
    slopes = tuple(p.sigma for p in lattice.profiles)
    b = lattice.b
    ghost_required = part.ghost_width(lattice)
    ghost = ghost_required if ghost is None else int(ghost)
    bounds = part.bounds()
    # the one block→rank ownership definition every path shares
    plan, owned = build_ownership(lattice, part)

    from repro.runtime.schedule import RegionAction

    sched = RegionSchedule(scheme="distributed", shape=shape, steps=steps)
    rank_of_task: List[int] = []
    group = 0
    tt = 0
    while tt < steps:
        span = min(b, steps - tt)
        for si, sp in enumerate(plan.stages):
            emitted = False
            for r in range(ranks):
                for blk in owned[r][si]:
                    actions = []
                    for s in range(span):
                        region = blk.region_at(s, b, slopes, shape)
                        if not region_is_empty(region):
                            actions.append(RegionAction(t=tt + s,
                                                        region=region))
                    if actions:
                        sched.add(group, actions,
                                  label=f"rank{r}:t{tt}:stage{sp.stage}")
                        rank_of_task.append(r)
                        emitted = True
            if emitted:
                group += 1
        tt += b

    report = sanitize_schedule(spec, sched)
    report.scheme = f"distributed[{ranks} ranks]"

    # ghost-band reach: a rank's reads must stay inside slab ⊕ ghost
    n_axis = int(shape[axis])
    for task, r in zip(sched.tasks, rank_of_task):
        if len(report.violations) >= _MAX_VIOLATIONS:
            break
        lo, hi = bounds[r]
        win_lo, win_hi = max(0, lo - ghost), min(n_axis, hi + ghost)
        for a in task.actions:
            foot = _dilate_clip(a.region, spec.slopes, shape)
            flo, fhi = foot[axis]
            if flo < win_lo or fhi > win_hi:
                report.add(Violation(
                    "ghost-band",
                    f"rank {r} reads [{flo}, {fhi}) along axis {axis} "
                    f"but its slab [{lo}, {hi}) + ghost {ghost} only "
                    f"covers [{win_lo}, {win_hi})"
                    + (f"; required ghost width is {ghost_required}"
                       if ghost < ghost_required else ""),
                    step=a.t, group=task.group, task=task.label,
                    region=foot))
                break
    return report
