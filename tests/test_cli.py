"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCliRun:
    def test_run_tess_verifies(self, capsys):
        rc = main(["run", "heat1d", "--shape", "400", "--steps", "12",
                   "--scheme", "tess", "-b", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verified against naive sweep: OK" in out

    @pytest.mark.parametrize("scheme", ["naive", "diamond", "pochoir",
                                        "mwd", "overlapped",
                                        "tess-unmerged"])
    def test_all_schemes(self, scheme, capsys):
        rc = main(["run", "heat1d", "--shape", "300", "--steps", "8",
                   "--scheme", scheme, "-b", "4"])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_run_threaded(self, capsys):
        rc = main(["run", "heat2d", "--shape", "60", "60", "--steps", "6",
                   "--scheme", "tess", "-b", "2", "--threads", "2"])
        assert rc == 0

    def test_life_integer_kernel(self, capsys):
        rc = main(["run", "life", "--shape", "48", "48", "--steps", "6",
                   "--scheme", "diamond", "-b", "2"])
        assert rc == 0

    def test_unknown_kernel_maps_to_usage_exit(self, capsys):
        rc = main(["run", "heat9d"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestCliResilience:
    """Structured exit codes and the --resilient/--inject flag pair."""

    def test_resilient_recovers_injected_faults(self, capsys):
        rc = main(["run", "heat2d", "--shape", "48", "48", "--steps", "8",
                   "-b", "4", "--threads", "2", "--resilient",
                   "--inject", "crash@1/0", "--inject", "corrupt@3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "resilience:" in out
        assert "verified against naive sweep: OK" in out

    def test_persistent_crash_exits_3(self, capsys):
        rc = main(["run", "heat1d", "--shape", "300", "--steps", "8",
                   "-b", "4", "--inject", "crash@1x999"])
        assert rc == 3
        assert "execution failed:" in capsys.readouterr().err

    def test_fail_fast_corruption_exits_4(self, capsys):
        rc = main(["run", "heat1d", "--shape", "300", "--steps", "8",
                   "-b", "4", "--fail-fast", "--inject", "corrupt@1"])
        assert rc == 4
        assert "guard violation:" in capsys.readouterr().err

    def test_bad_inject_spec_exits_2(self, capsys):
        rc = main(["run", "heat1d", "--inject", "explode@1"])
        assert rc == 2
        assert "bad fault spec" in capsys.readouterr().err

    def test_dist_resilient_recovers_dropped_exchange(self, capsys):
        rc = main(["dist", "heat1d", "--shape", "400", "--steps", "16",
                   "-b", "4", "--ranks", "4", "--resilient",
                   "--inject", "drop@2/1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verified OK" in out
        assert "phase_restarts=1" in out

    def test_dist_undersized_ghost_exits_4(self, capsys):
        rc = main(["dist", "heat1d", "--shape", "400", "--steps", "16",
                   "-b", "4", "--ranks", "4", "--check-divergence",
                   "--ghost", "1"])
        assert rc == 4
        assert "divergence" in capsys.readouterr().err


@pytest.mark.sanitizer
class TestCliSanitize:
    """The sanitize subcommand and the --sanitize/--mutate flag pair."""

    def test_sanitize_clean_scheme_exits_0(self, capsys):
        rc = main(["sanitize", "tess", "--kernel", "heat1d",
                   "--steps", "8", "-b", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "clean" in out

    def test_sanitize_all_schemes_exits_0(self, capsys):
        rc = main(["sanitize", "all", "--kernel", "heat1d",
                   "--steps", "6", "-b", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.count("clean") >= 8

    def test_sanitize_mutated_exits_5(self, capsys):
        rc = main(["sanitize", "tess", "--kernel", "heat1d",
                   "--steps", "8", "-b", "4",
                   "--mutate", "drop-action@0"])
        err = capsys.readouterr().err
        assert rc == 5
        assert "sanitizer violation:" in err
        assert "group" in err and "step" in err

    def test_run_sanitize_clean_exits_0(self, capsys):
        rc = main(["run", "heat1d", "--shape", "300", "--steps", "8",
                   "--scheme", "tess", "-b", "4", "--sanitize"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "sanitizer:" in out and "clean" in out
        assert "verified against naive sweep: OK" in out

    def test_run_sanitize_mutated_exits_5(self, capsys):
        rc = main(["run", "heat1d", "--shape", "300", "--steps", "8",
                   "--scheme", "tess", "-b", "4", "--sanitize",
                   "--mutate", "shift-region@0"])
        assert rc == 5
        assert "sanitizer violation:" in capsys.readouterr().err

    def test_dist_sanitize_undersized_ghost_exits_5(self, capsys):
        rc = main(["dist", "heat1d", "--shape", "400", "--steps", "8",
                   "-b", "4", "--ranks", "4", "--ghost", "1",
                   "--sanitize"])
        err = capsys.readouterr().err
        assert rc == 5
        assert "ghost-band" in err and "required ghost width" in err

    def test_dist_sanitize_clean_exits_0(self, capsys):
        rc = main(["dist", "heat1d", "--shape", "400", "--steps", "8",
                   "-b", "4", "--ranks", "4", "--sanitize"])
        assert rc == 0
        assert "verified OK" in capsys.readouterr().out

    def test_sanitize_distributed_plan_via_ranks(self, capsys):
        rc = main(["sanitize", "tess", "--kernel", "heat1d",
                   "--steps", "8", "-b", "4", "--ranks", "4",
                   "--ghost", "1"])
        assert rc == 5
        assert "ghost-band" in capsys.readouterr().err

    def test_bad_mutate_spec_exits_2(self, capsys):
        rc = main(["sanitize", "tess", "--mutate", "explode@0"])
        assert rc == 2
        assert "unknown mutation kind" in capsys.readouterr().err


class TestCliShow:
    def test_show_renders_rows(self, capsys):
        rc = main(["show", "--scheme", "tess", "-n", "32",
                   "--steps", "8", "-b", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.count("t=") == 8

    def test_show_pochoir(self, capsys):
        rc = main(["show", "--scheme", "pochoir", "-n", "32",
                   "--steps", "6", "-b", "4"])
        assert rc == 0


class TestCliTableAndTune:
    def test_table(self, capsys):
        rc = main(["table", "--max-dim", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "stages per phase" in out

    def test_tune(self, capsys):
        rc = main(["tune", "heat1d", "--shape", "2000", "--steps", "16",
                   "--cores", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "best configuration" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_scheme_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "heat1d", "--scheme", "magic"])


class TestCliDist:
    def test_dist_verifies_and_scales(self, capsys):
        rc = main(["dist", "heat1d", "--shape", "200", "--steps", "8",
                   "-b", "4", "--ranks", "3", "--nodes", "1", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verified OK" in out
        assert "speedup" in out
