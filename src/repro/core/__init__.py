"""The paper's primary contribution: the two-level tessellation scheme.

Layered bottom-up:

* :mod:`~repro.core.timefunc` — update-time functions (Lemmas 3.2/3.4,
  Theorems 3.5/3.6);
* :mod:`~repro.core.geometry` — block-shape combinatorics (Table 1,
  Lemma 3.1);
* :mod:`~repro.core.profiles` — generalised per-dimension distance
  profiles (uniform lattice, §4.2 coarsening, §3.6 supernodes and
  stretched blocks);
* :mod:`~repro.core.blocks` — block enumeration and per-step update
  rectangles;
* :mod:`~repro.core.pointwise` / :mod:`~repro.core.executor` — the
  mask-oracle executor and the production block executors (plain and
  §4.3 merged);
* :mod:`~repro.core.iteration_space` — the paper's Tables 2/3
  regenerated;
* :mod:`~repro.core.paper1d` / :mod:`~repro.core.paper2d` — literal
  transcriptions of the artifact C codes.
"""

from repro.core.profiles import AxisProfile, TessLattice
from repro.core.blocks import TessBlock, StagePlan, PhasePlan, build_phase_plan
from repro.core.pointwise import run_pointwise
from repro.core.executor import make_lattice, run_blocked, run_merged

__all__ = [
    "AxisProfile",
    "TessLattice",
    "TessBlock",
    "StagePlan",
    "PhasePlan",
    "build_phase_plan",
    "run_pointwise",
    "make_lattice",
    "run_blocked",
    "run_merged",
]
