"""Multi-stage system workloads: FDTD, shallow-water, Gray–Scott.

Four staged systems built on :mod:`repro.stencils.staged`, each a
first-class workload next to the seven single-formula paper kernels.
All are float64 Dirichlet systems (zero exterior — absorbing walls for
the wave systems, zero-concentration rim for reaction–diffusion), so
every tiling scheme, backend and the whole serving stack runs them
unchanged through the composed-slope Jacobi view.

The coefficients are stable explicit-update choices; correctness in
this repo means *bit-identity to the per-stage naive oracle*
(:func:`repro.stencils.reference.reference_sweep`), not physical
fidelity — see ``docs/systems.md`` for the equations and the per-system
stage/halo tables.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from repro.stencils.staged import LinearStage, Stage, StagedSpec, make_staged

__all__ = [
    "SYSTEM_ALIASES",
    "SYSTEM_REGISTRY",
    "fdtd1d",
    "fdtd2d",
    "get_system",
    "gray_scott",
    "shallow_water",
    "system_names",
]


# ---------------------------------------------------------------------------
# FDTD (Yee leapfrog), 1D and 2D TE
# ---------------------------------------------------------------------------

def fdtd1d(c: float = 0.45) -> StagedSpec:
    """1D transverse electromagnetic FDTD: fields ``hy`` then ``ez``.

    The Yee half-step structure appears as stage coupling: ``hy``
    updates from macro-step-start ``ez``; ``ez`` then updates from the
    *freshly written* ``hy`` (new-reads).  ``c`` is the Courant number
    (stable for ``c <= 1``).
    """
    hy = LinearStage("hy", "hy", [
        ("hy", (0,), 1.0, False),
        ("ez", (1,), c, False),
        ("ez", (0,), -c, False),
    ])
    ez = LinearStage("ez", "ez", [
        ("ez", (0,), 1.0, False),
        ("hy", (0,), c, True),
        ("hy", (-1,), -c, True),
    ])
    return make_staged("fdtd1d", (hy, ez))


def fdtd2d(c: float = 0.35) -> StagedSpec:
    """2D TE-mode FDTD: ``hz`` from old curls, then ``ex``/``ey`` from
    the fresh ``hz`` (stable for ``c <= 1/sqrt(2)``)."""
    hz = LinearStage("hz", "hz", [
        ("hz", (0, 0), 1.0, False),
        ("ex", (0, 1), c, False),
        ("ex", (0, 0), -c, False),
        ("ey", (1, 0), -c, False),
        ("ey", (0, 0), c, False),
    ])
    ex = LinearStage("ex", "ex", [
        ("ex", (0, 0), 1.0, False),
        ("hz", (0, 0), c, True),
        ("hz", (0, -1), -c, True),
    ])
    ey = LinearStage("ey", "ey", [
        ("ey", (0, 0), 1.0, False),
        ("hz", (0, 0), -c, True),
        ("hz", (-1, 0), c, True),
    ])
    return make_staged("fdtd2d", (hz, ex, ey))


# ---------------------------------------------------------------------------
# linearized shallow-water equations on a staggered update
# ---------------------------------------------------------------------------

def shallow_water(g: float = 0.1) -> StagedSpec:
    """Linearized shallow-water: velocities from old height gradients,
    then height from the fresh velocity divergence."""
    u = LinearStage("u", "u", [
        ("u", (0, 0), 1.0, False),
        ("h", (1, 0), -g, False),
        ("h", (0, 0), g, False),
    ])
    v = LinearStage("v", "v", [
        ("v", (0, 0), 1.0, False),
        ("h", (0, 1), -g, False),
        ("h", (0, 0), g, False),
    ])
    h = LinearStage("h", "h", [
        ("h", (0, 0), 1.0, False),
        ("u", (0, 0), -g, True),
        ("u", (-1, 0), g, True),
        ("v", (0, 0), -g, True),
        ("v", (0, -1), g, True),
    ])
    return make_staged("shallow_water", (u, v, h))


# ---------------------------------------------------------------------------
# Gray–Scott reaction–diffusion (non-linear stages)
# ---------------------------------------------------------------------------

_GS_OFFS_2D = ((0, 0), (-1, 0), (1, 0), (0, -1), (0, 1))


class _GrayScottU(Stage):
    """``u' = u + du*lap(u) - u*v^2 + F*(1 - u)`` (all old reads)."""

    def __init__(self, du: float, F: float):
        self.name = "u"
        self.writes = "u"
        self.du = float(du)
        self.F = float(F)
        self.reads = tuple(
            [("u", off, False) for off in _GS_OFFS_2D] + [("v", (0, 0), False)]
        )

    @property
    def flops_per_point(self) -> int:
        return 12

    def apply_stage(self, out, views, arena=None) -> None:
        uc, un, us, uw, ue, vc = views
        lap = un + us + uw + ue - 4.0 * uc
        out[...] = uc + self.du * lap - uc * vc * vc + self.F * (1.0 - uc)

    def signature(self):
        return (type(self).__name__, self.name, self.writes, self.reads,
                self.du, self.F)


class _GrayScottV(Stage):
    """``v' = v + dv*lap(v) + u*v^2 - (F + k)*v`` (all old reads)."""

    def __init__(self, dv: float, F: float, k: float):
        self.name = "v"
        self.writes = "v"
        self.dv = float(dv)
        self.decay = float(F) + float(k)
        self.reads = tuple(
            [("v", off, False) for off in _GS_OFFS_2D] + [("u", (0, 0), False)]
        )

    @property
    def flops_per_point(self) -> int:
        return 11

    def apply_stage(self, out, views, arena=None) -> None:
        vc, vn, vs, vw, ve, uc = views
        lap = vn + vs + vw + ve - 4.0 * vc
        out[...] = vc + self.dv * lap + uc * vc * vc - self.decay * vc

    def signature(self):
        return (type(self).__name__, self.name, self.writes, self.reads,
                self.dv, self.decay)


def gray_scott(du: float = 0.2097, dv: float = 0.105,
               F: float = 0.029, k: float = 0.057) -> StagedSpec:
    """Gray–Scott reaction–diffusion: two *non-linear* parallel stages.

    Both stages read only macro-step-start values (a parallel stage
    DAG — no grown regions at all), exercising the non-linear
    ``apply_stage`` path the FDTD systems don't.
    """
    return make_staged("gray_scott", (_GrayScottU(du, F),
                                      _GrayScottV(dv, F, k)))


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

SYSTEM_REGISTRY: Dict[str, Callable[[], StagedSpec]] = {
    "fdtd1d": fdtd1d,
    "fdtd2d": fdtd2d,
    "shallow_water": shallow_water,
    "gray_scott": gray_scott,
}

#: alternative spellings accepted everywhere a system name is; the spec
#: always carries the canonical name, so idempotency keys dedup aliases
SYSTEM_ALIASES: Dict[str, str] = {
    "fdtd-1d": "fdtd1d",
    "fdtd2d-te": "fdtd2d",
    "fdtd-2d": "fdtd2d",
    "shallow-water": "shallow_water",
    "swe": "shallow_water",
    "gray-scott": "gray_scott",
    "gs": "gray_scott",
    "reaction_diffusion": "gray_scott",
}


def system_names() -> Sequence[str]:
    """Canonical system names, sorted."""
    return sorted(SYSTEM_REGISTRY)


def get_system(name: str) -> StagedSpec:
    """Look up a system by canonical name or alias."""
    canonical = SYSTEM_ALIASES.get(name, name)
    try:
        factory = SYSTEM_REGISTRY[canonical]
    except KeyError:
        raise KeyError(
            f"unknown system {name!r} (available: {system_names()}, "
            f"aliases: {sorted(SYSTEM_ALIASES)})"
        ) from None
    return factory()
