"""RunStats / RunResult — the one stats schema of the pipeline.

Before the facade existed, three incompatible stats objects described
an execution depending on which entry point ran it: trace events
(:class:`~repro.runtime.tracing.ExecutionTrace`), the distributed
:class:`~repro.distributed.exec.CommStats` and the engine's
:class:`~repro.engine.cache.CacheStats` — plus the resilient executor's
:class:`~repro.runtime.resilience.ResilienceReport`.  A
:class:`RunStats` merges all four under one roof:

* ``phases`` — wall-clock per pipeline phase (``build`` the schedule,
  ``sanitize``, ``lower`` to a compiled plan, ``execute``, ``verify``);
* ``schedule`` — the structural schedule statistics
  (:func:`~repro.runtime.schedule.schedule_stats`);
* ``events`` — the runtime event stream (retries, checkpoints,
  restores, heartbeats, ...);
* ``comm`` / ``resilience`` / ``cache`` — the family-specific counter
  blocks, present when the backend produced them and ``None`` otherwise
  (never zero-filled fakes);
* ``plan_compiles`` / ``cache_hits`` — the **single** authoritative
  compile/hit counters.  Local backends report the per-run plan-cache
  delta; distributed backends report the rank-side compile tally.  A
  resilient run that retries or restarts never double-counts: the plan
  is compiled once, before execution, and every replay reuses it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "RunStats",
    "RunResult",
    "cache_delta",
    "encode_array",
    "decode_array",
    "json_safe",
]


def cache_delta(before: Dict[str, float], after: Dict[str, float]):
    """Per-run CacheStats: counter difference of two snapshots."""
    from repro.engine.cache import CacheStats

    return CacheStats(**{k: type(v)(after[k] - before[k])
                         for k, v in before.items()})


# ---------------------------------------------------------------------------
# JSON round-trip helpers (the serving front's wire format)
# ---------------------------------------------------------------------------

def json_safe(value: Any) -> Any:
    """Recursively coerce a stats value into plain JSON types.

    Numpy scalars (a ``time.perf_counter`` difference stored through a
    numpy expression, a ``np.int64`` task count) serialize as their
    Python equivalents; arrays become nested lists; tuples become
    lists; dict keys become strings (JSON has no int keys).
    """
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    # last resort: a describable object (kept readable, not re-loadable)
    return str(value)


def encode_array(arr: np.ndarray) -> Dict[str, Any]:
    """Lossless JSON encoding of an ndarray (dtype/shape/base64 bytes).

    Bit-exact: the payload is the raw C-order buffer, so a decoded
    array compares ``array_equal`` with the original — the property the
    serving front's bit-identity guarantees rest on.  A SHA-256 of the
    buffer rides along so transport-layer corruption is detectable
    without decoding.
    """
    import base64
    import hashlib

    arr = np.ascontiguousarray(arr)
    raw = arr.tobytes()
    return {
        "dtype": str(arr.dtype),
        "shape": [int(n) for n in arr.shape],
        "data": base64.b64encode(raw).decode("ascii"),
        "sha256": hashlib.sha256(raw).hexdigest(),
    }


def decode_array(payload: Dict[str, Any]) -> np.ndarray:
    """Inverse of :func:`encode_array`; verifies the SHA-256 seal."""
    import base64
    import hashlib

    raw = base64.b64decode(payload["data"])
    digest = payload.get("sha256")
    if digest is not None and hashlib.sha256(raw).hexdigest() != digest:
        raise ValueError("array payload failed its SHA-256 seal")
    arr = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
    return arr.reshape(tuple(int(n) for n in payload["shape"])).copy()


def _block_to_json(block: Any) -> Optional[Dict[str, Any]]:
    """One stats block (CommStats/ResilienceReport/CacheStats) → dict."""
    if block is None:
        return None
    if hasattr(block, "as_dict"):
        return json_safe(block.as_dict())
    return json_safe(dict(vars(block)))


def _block_from_json(name: str, data: Optional[Dict[str, Any]]) -> Any:
    """Rebuild the typed counter block a ``to_json`` dict came from."""
    if data is None:
        return None
    if name == "comm":
        from repro.distributed.exec import CommStats

        data = dict(data)
        # JSON stringified the int stage keys; restore them
        data["stage_bytes"] = {int(k): int(v) for k, v in
                               data.get("stage_bytes", {}).items()}
        return CommStats(**data)
    if name == "resilience":
        from repro.runtime.resilience import ResilienceReport

        return ResilienceReport(**data)
    if name == "cache":
        from repro.engine.cache import CacheStats

        return CacheStats(**data)
    raise ValueError(f"unknown stats block {name!r}")


@dataclass
class RunStats:
    """Unified statistics of one pipeline run (see module docstring)."""

    backend: str = ""
    scheme: str = ""
    engine: str = "naive"
    shape: Tuple[int, ...] = ()
    steps: int = 0

    #: seconds per pipeline phase: build/sanitize/lower/execute/verify
    phases: Dict[str, float] = field(default_factory=dict)
    #: structural schedule stats (tasks, groups, redundancy, ...)
    schedule: Dict[str, Any] = field(default_factory=dict)
    #: runtime event stream (RuntimeEvent objects)
    events: List[Any] = field(default_factory=list)

    #: distributed communication counters (None for local backends)
    comm: Any = None
    #: resilience counters (None unless the resilient backend ran)
    resilience: Any = None
    #: per-run plan-cache counter delta (None when no lowering ran)
    cache: Any = None

    #: plans compiled for this run, counted exactly once (see module
    #: docstring for the double-counting rule)
    plan_compiles: int = 0
    #: plan-cache hits for this run
    cache_hits: int = 0

    #: fallback hops the QoS chain took to produce this result: one
    #: dict per hop (``from``/``to`` backend, ``error`` class name,
    #: ``detail``); empty for a run that succeeded on its primary
    degradations: List[Dict[str, Any]] = field(default_factory=list)

    #: result of the verify phase (None = verification not requested)
    verified: Optional[bool] = None

    #: seconds per stage of a staged system's macro-step (empty for
    #: single-formula specs); stage name -> accumulated execute seconds
    stages: Dict[str, float] = field(default_factory=dict)

    # ----------------------------------------------------------------

    @property
    def execute_seconds(self) -> float:
        return self.phases.get("execute", 0.0)

    @property
    def total_seconds(self) -> float:
        return sum(self.phases.values())

    @property
    def points(self) -> int:
        n = 1
        for s in self.shape:
            n *= int(s)
        return n * self.steps

    @property
    def mstencils_per_s(self) -> float:
        secs = self.execute_seconds
        return self.points / secs / 1e6 if secs > 0 else 0.0

    def event_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def as_dict(self) -> Dict[str, Any]:
        """Flat, JSON-friendly view of the full schema."""
        out: Dict[str, Any] = {
            "backend": self.backend,
            "scheme": self.scheme,
            "engine": self.engine,
            "shape": list(self.shape),
            "steps": self.steps,
            "phases": dict(self.phases),
            "schedule": dict(self.schedule),
            "events": self.event_counts(),
            "plan_compiles": self.plan_compiles,
            "cache_hits": self.cache_hits,
            "degradations": [dict(hop) for hop in self.degradations],
            "verified": self.verified,
            "stages": dict(self.stages),
        }
        for name in ("comm", "resilience", "cache"):
            block = getattr(self, name)
            if block is None:
                out[name] = None
            elif hasattr(block, "as_dict"):
                out[name] = block.as_dict()
            else:
                out[name] = {
                    k: v for k, v in vars(block).items()
                    if isinstance(v, (int, float, str, bool))
                }
        return out

    def to_json(self) -> Dict[str, Any]:
        """Lossless JSON view: everything ``from_json`` needs to rebuild.

        Unlike :meth:`as_dict` (a flat human-facing summary that
        collapses events to counts), this keeps the full event stream
        and the typed counter blocks, with every numpy scalar coerced
        to its Python equivalent so ``json.dumps`` round-trips.
        """
        return {
            "backend": self.backend,
            "scheme": self.scheme,
            "engine": self.engine,
            "shape": [int(n) for n in self.shape],
            "steps": int(self.steps),
            "phases": {str(k): float(v) for k, v in self.phases.items()},
            "schedule": json_safe(self.schedule),
            "events": [
                {"kind": e.kind, "group": int(e.group), "label": e.label,
                 "seconds": float(e.seconds), "detail": e.detail}
                for e in self.events
            ],
            "comm": _block_to_json(self.comm),
            "resilience": _block_to_json(self.resilience),
            "cache": _block_to_json(self.cache),
            "plan_compiles": int(self.plan_compiles),
            "cache_hits": int(self.cache_hits),
            "degradations": [json_safe(dict(hop))
                             for hop in self.degradations],
            "verified": (None if self.verified is None
                         else bool(self.verified)),
            "stages": {str(k): float(v) for k, v in self.stages.items()},
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "RunStats":
        """Rebuild a :class:`RunStats` from :meth:`to_json` output.

        The counter blocks come back as their real types (CommStats /
        ResilienceReport / CacheStats) and events as RuntimeEvent, so a
        deserialized stats object supports the same accessors —
        ``describe()``, ``event_counts()``, ``resilience.describe()`` —
        as a live one.
        """
        from repro.runtime.tracing import RuntimeEvent

        return cls(
            backend=data.get("backend", ""),
            scheme=data.get("scheme", ""),
            engine=data.get("engine", "naive"),
            shape=tuple(int(n) for n in data.get("shape", ())),
            steps=int(data.get("steps", 0)),
            phases={k: float(v)
                    for k, v in data.get("phases", {}).items()},
            schedule=dict(data.get("schedule", {})),
            events=[RuntimeEvent(**e) for e in data.get("events", [])],
            comm=_block_from_json("comm", data.get("comm")),
            resilience=_block_from_json("resilience",
                                        data.get("resilience")),
            cache=_block_from_json("cache", data.get("cache")),
            plan_compiles=int(data.get("plan_compiles", 0)),
            cache_hits=int(data.get("cache_hits", 0)),
            degradations=[dict(h) for h in data.get("degradations", [])],
            verified=data.get("verified"),
            stages={k: float(v)
                    for k, v in data.get("stages", {}).items()},
        )

    def describe(self) -> str:
        """One-line human summary (the CLI's stats line)."""
        bits = [f"backend={self.backend}", f"scheme={self.scheme}"]
        if self.schedule:
            bits.append(f"tasks={self.schedule.get('tasks', 0)}")
            bits.append(f"barriers={self.schedule.get('groups', 0)}")
        secs = self.execute_seconds
        bits.append(f"execute={secs * 1e3:.1f}ms")
        if self.plan_compiles or self.cache_hits:
            bits.append(f"plan_compiles={self.plan_compiles}")
            bits.append(f"cache_hits={self.cache_hits}")
        if self.degradations:
            hops = "->".join(h.get("to", "?") for h in self.degradations)
            bits.append(f"degraded={hops}")
        if self.verified is not None:
            bits.append(f"verified={'OK' if self.verified else 'MISMATCH'}")
        return " ".join(bits)


@dataclass
class RunResult:
    """What a pipeline run returns: the answer plus everything known.

    ``interior`` is the grid interior at time ``steps`` — the same
    array every legacy entry point used to return — and ``stats`` is
    the unified :class:`RunStats`.  The intermediate pipeline artifacts
    (schedule, lattice, compiled plan) ride along for inspection and
    reuse.
    """

    interior: np.ndarray
    stats: RunStats
    config: Any = None  #: the normalised RunConfig that produced this
    grid: Any = None
    schedule: Any = None
    lattice: Any = None
    plan: Any = None
    sanitizer: Any = None  #: SanitizerReport when the sanitize phase ran

    def to_json(self, include_interior: bool = True) -> Dict[str, Any]:
        """JSON view of the result: stats, config knobs and the answer.

        ``interior`` is base64-encoded raw bytes (see
        :func:`encode_array`) so the round-trip is bit-exact; pass
        ``include_interior=False`` for a status-sized payload.  The
        config serializes through :meth:`RunConfig.to_json`, which keeps
        the JSON-able knobs and drops live objects (trace, tokens,
        policies beyond the QoS scalars).
        """
        out: Dict[str, Any] = {
            "stats": self.stats.to_json(),
            "config": (self.config.to_json()
                       if self.config is not None else None),
        }
        if include_interior:
            out["interior"] = encode_array(self.interior)
        return out

    # convenience views onto the stats blocks -------------------------

    @property
    def comm(self):
        return self.stats.comm

    @property
    def resilience(self):
        return self.stats.resilience

    @property
    def ok(self) -> bool:
        """True when verification ran and matched (False if it failed;
        raises if verification was not requested)."""
        if self.stats.verified is None:
            raise ValueError("run was not verified; pass verify=True")
        return bool(self.stats.verified)
