"""Process isolation: crash containment, fencing, quarantine, drain.

The chaos tests pin the PR's headline guarantees:

* SIGKILL a worker child mid-job → the job requeues and resumes from
  its last sealed checkpoint, and the final result is **bit-identical**
  to an uninterrupted run (segmenting is bit-identical because every
  scheme is bit-identical to the naive sweep);
* a job that always crashes its worker is quarantined as
  ``failed``/``"poisoned"`` after exactly ``max_worker_crashes``
  attempts, with every worker process reaped (no zombies);
* a stalled old lease epoch can never commit: the store refuses
  checkpoints, results and renewals carrying a superseded epoch.
"""

import multiprocessing
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro import get_stencil
from repro.api import RunConfig, Session
from repro.runtime.errors import ServiceDraining, StaleLeaseError
from repro.service import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobStore,
    Supervisor,
    SupervisorConfig,
)
from repro.service import isolation

pytestmark = pytest.mark.service

# ~10 segments of ~50 ms each: wide windows for mid-job chaos
CFG = {"shape": [4096], "steps": 60, "backend": "serial"}


def _direct(kernel="heat1d", **overrides):
    cfg = dict(CFG, **overrides)
    return Session(get_stencil(kernel)).run(
        RunConfig.from_json(cfg)).interior


@pytest.fixture
def store(tmp_path):
    with JobStore(str(tmp_path / "store"), fsync=False) as s:
        yield s


def _process_sup(store, **overrides):
    kwargs = dict(workers=1, isolation="process", checkpoint_steps=6,
                  worker_heartbeat_s=0.05)
    kwargs.update(overrides)
    return Supervisor(store, SupervisorConfig(**kwargs))


def _wait_state(store, job_id, state, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if store.get(job_id).state == state:
            return True
        time.sleep(0.005)
    return False


# -- happy path -------------------------------------------------------

def test_process_mode_runs_bit_identical(store):
    sup = _process_sup(store)
    sup.start()
    try:
        job, _ = sup.submit("heat1d", CFG)
        job = sup.wait(job.job_id, timeout=120)
        assert job.state == DONE and job.attempts == 1
        (w,) = sup.worker_states()
        assert w["mode"] == "process"
    finally:
        sup.stop()
    interior, stats = store.load_result(job.job_id)
    np.testing.assert_array_equal(interior, _direct())
    assert stats["steps"] == CFG["steps"]
    # children were shut down and reaped
    assert not sup._children and not multiprocessing.active_children()


def test_process_mode_failure_verdicts_match_thread_mode(store):
    sup = _process_sup(store)
    sup.start()
    try:
        job, _ = sup.submit("heat1d", dict(CFG, backend="no-such"))
        job = sup.wait(job.job_id, timeout=60)
    finally:
        sup.stop()
    assert job.state == FAILED
    assert job.attempts == 1  # BackendUnsupported stays permanent
    assert sup.metrics.retries == 0


def test_cancel_running_job_in_process_mode(store):
    sup = _process_sup(store, checkpoint_steps=0)
    sup.start()
    try:
        # ~10x the happy-path runtime: cancellation lands mid-run
        job, _ = sup.submit("heat1d", dict(CFG, steps=600))
        assert _wait_state(store, job.job_id, RUNNING)
        sup.cancel(job.job_id)
        job = sup.wait(job.job_id, timeout=60)
    finally:
        sup.stop()
    assert job.state == CANCELLED
    assert sup.metrics.cancelled == 1


# -- chaos: SIGKILL mid-job -------------------------------------------

def test_sigkill_mid_job_resumes_bit_identical(store):
    sup = _process_sup(store)
    sup.start()
    try:
        job, _ = sup.submit("heat1d", CFG)
        # wait for the first sealed checkpoint, then murder the child
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if store.get(job.job_id).checkpoints:
                break
            time.sleep(0.002)
        child = sup._children.get(0)
        assert child is not None, "no worker child to kill"
        os.kill(child.proc.pid, signal.SIGKILL)
        job = sup.wait(job.job_id, timeout=120)
    finally:
        sup.stop()
    assert job.state == DONE
    assert job.worker_crashes == 1
    assert job.resumed_from_step is not None
    assert job.resumed_from_step >= 6  # at least one sealed segment
    assert sup.metrics.worker_crashes == 1
    assert sup.metrics.resumes == 1
    interior, stats = store.load_result(job.job_id)
    np.testing.assert_array_equal(interior, _direct())
    assert any(e.get("kind") == "resume" for e in stats["events"])
    assert not multiprocessing.active_children()  # all reaped


def test_lease_is_released_and_refenced_after_crash(store):
    """The crashed incarnation's epoch is dead: the resume mints a
    higher one and the store's fencing counter proves it."""
    sup = _process_sup(store)
    sup.start()
    try:
        job, _ = sup.submit("heat1d", CFG)
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if store.get(job.job_id).checkpoints:
                break
            time.sleep(0.002)
        first_epoch = store.lease_epoch(job.job_id)
        assert first_epoch >= 1
        child = sup._children.get(0)
        os.kill(child.proc.pid, signal.SIGKILL)
        job = sup.wait(job.job_id, timeout=120)
    finally:
        sup.stop()
    assert job.state == DONE
    assert store.lease_epoch(job.job_id) > first_epoch


# -- chaos: poison-job quarantine -------------------------------------

def test_poison_job_quarantined_after_exact_budget(store, monkeypatch):
    # fork-inherited chaos: every child dies the moment it gets a job
    monkeypatch.setattr(isolation, "CHAOS", "crash")
    sup = _process_sup(store, max_worker_crashes=2)
    sup.start()
    try:
        job, _ = sup.submit("heat1d", CFG)
        job = sup.wait(job.job_id, timeout=120)
    finally:
        sup.stop()
    assert job.state == FAILED
    assert job.error_kind == "poisoned"
    assert job.worker_crashes == 2
    assert job.attempts == 2  # exactly max_worker_crashes attempts
    assert "quarantined" in job.error
    assert sup.metrics.poisoned == 1
    assert sup.metrics.worker_crashes == 2
    # every crashed incarnation was reaped — no zombies
    assert not sup._children and not multiprocessing.active_children()


def test_crash_budget_separate_from_retry_budget(store, monkeypatch):
    """max_retries=0 must not shortcut the crash circuit breaker."""
    monkeypatch.setattr(isolation, "CHAOS", "crash")
    sup = _process_sup(store, max_worker_crashes=2)
    sup.start()
    try:
        job, _ = sup.submit("heat1d", CFG, max_retries=0)
        job = sup.wait(job.job_id, timeout=120)
    finally:
        sup.stop()
    assert job.state == FAILED and job.error_kind == "poisoned"
    assert job.worker_crashes == 2


# -- lease fencing at the store ---------------------------------------

def test_stale_epoch_commits_rejected(store):
    job, _ = store.submit("heat1d", CFG)
    e1 = store.acquire_lease(job.job_id, "w1", ttl_s=0.01)
    assert e1 == 1
    time.sleep(0.03)  # let the first lease expire
    e2 = store.acquire_lease(job.job_id, "w2", ttl_s=30.0)
    assert e2 == 2
    store.transition(job.job_id, "admitted")
    store.transition(job.job_id, "running", attempts=1)
    buf = np.zeros(store.get(job.job_id).estimated_bytes // 8 or 8)
    with pytest.raises(StaleLeaseError):
        store.save_checkpoint(job.job_id, 6, buf, epoch=e1)
    with pytest.raises(StaleLeaseError):
        store.record_result(job.job_id, buf, {"steps": 1}, epoch=e1)
    with pytest.raises(StaleLeaseError):
        store.renew_lease(job.job_id, "w1", 30.0, epoch=e1)
    assert store.metrics()["stale_rejected"] == 3
    # a stale release must not delete the successor's lease file
    store.release_lease(job.job_id, epoch=e1)
    assert store.lease_epoch(job.job_id) == e2
    assert store.acquire_lease(job.job_id, "w3", ttl_s=30.0) is None
    # the live epoch still commits
    interior = np.zeros(4)
    store.record_result(job.job_id, interior, {"steps": 1}, epoch=e2)
    assert store.get(job.job_id).state == DONE


def test_epochs_survive_store_reopen(tmp_path):
    root = str(tmp_path / "store")
    with JobStore(root, fsync=False) as store:
        job, _ = store.submit("heat1d", CFG)
        assert store.acquire_lease(job.job_id, "w1", ttl_s=0.01) == 1
    time.sleep(0.03)
    with JobStore(root, fsync=False) as store:
        # the epoch counter is read back from the surviving lease
        # file, so a restarted supervisor still fences the old holder
        assert store.acquire_lease(job.job_id, "w2", ttl_s=30.0) == 2


# -- resource containment ---------------------------------------------

def test_rlimit_applied_in_child():
    resource = pytest.importorskip("resource")

    def probe(limit, q):
        token = isolation.apply_rlimit(limit)
        q.put((resource.getrlimit(resource.RLIMIT_AS)[0], token))

    ctx = multiprocessing.get_context("fork")
    q = ctx.Queue()
    limit = 1 << 30
    p = ctx.Process(target=probe, args=(limit, q))
    p.start()
    soft, token = q.get(timeout=30)
    p.join(timeout=30)
    assert soft == limit
    assert token is not None


def test_rlimit_none_is_noop():
    assert isolation.apply_rlimit(None) is None
    assert isolation.apply_rlimit(0) is None
    isolation.restore_rlimit(None)  # must not raise


def test_child_limit_derivation(store):
    sup = _process_sup(store)
    job, _ = store.submit("heat1d", CFG)
    cfg = RunConfig.from_json(CFG).normalized()
    assert sup._child_limit_bytes(job, cfg) is None  # no QoS ceiling
    from dataclasses import replace

    from repro.runtime.qos import QoSPolicy

    capped = replace(cfg, qos=QoSPolicy(max_memory_bytes=1 << 20))
    limit = sup._child_limit_bytes(job, capped)
    assert limit >= (1 << 20) + sup.config.rlimit_headroom_bytes


# -- graceful drain ---------------------------------------------------

def test_drain_refuses_new_submissions(store):
    sup = Supervisor(store, SupervisorConfig(workers=1))
    sup.start()
    try:
        sup.begin_drain()
        with pytest.raises(ServiceDraining):
            sup.submit("heat1d", CFG)
        assert sup.drain(timeout_s=5.0)  # nothing in flight
        assert sup.health()["state"] == "draining"
    finally:
        sup.stop()


def test_drain_preempts_at_checkpoint_and_resume_is_bit_identical(
        tmp_path):
    """Drain patience runs out mid-job: the job stops at its next
    checkpoint boundary, requeues journaled, and a successor finishes
    it bit-identical to an unbroken run."""
    root = str(tmp_path / "store")
    cfg = SupervisorConfig(workers=1, checkpoint_steps=6)
    with JobStore(root, fsync=False) as store:
        sup = Supervisor(store, cfg)
        sup.start()
        job, _ = sup.submit("heat1d", CFG)
        assert _wait_state(store, job.job_id, RUNNING)
        # no patience at all: force the preempt path immediately
        assert sup.drain(timeout_s=0.0)
        sup.stop()
        out = store.get(job.job_id)
        assert out.state == QUEUED
        assert sup.metrics.preempted == 1
    with JobStore(root, fsync=False) as store:
        sup = Supervisor(store, cfg)
        report = sup.start()
        assert report.requeued == 0  # queued stays queued, no repair
        try:
            job = sup.wait(job.job_id, timeout=120)
        finally:
            sup.stop()
        assert job.state == DONE
        assert job.resumed_from_step is not None
        interior, _ = store.load_result(job.job_id)
        np.testing.assert_array_equal(interior, _direct())


def test_stop_preempts_thread_mode_job_via_shared_flag(store):
    """stop() reuses the drain preemption: a segmented job requeues at
    its boundary instead of holding shutdown for the full run."""
    sup = Supervisor(store, SupervisorConfig(workers=1,
                                             checkpoint_steps=6))
    sup.start()
    job, _ = sup.submit("heat1d", dict(CFG, steps=600))
    assert _wait_state(store, job.job_id, RUNNING)
    t0 = time.monotonic()
    sup.stop()
    assert time.monotonic() - t0 < 30.0  # not the ~50 s full run
    assert store.get(job.job_id).state in (QUEUED, DONE)


# -- serve lifecycle (SIGTERM → drain → exit 0) -----------------------

def test_serve_sigterm_drains_and_exits_zero(tmp_path):
    import re
    import subprocess
    import sys
    import urllib.request

    env = dict(os.environ, PYTHONPATH="src", PYTHONUNBUFFERED="1")
    env.pop("REPRO_ISOLATION", None)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--root", str(tmp_path / "store"), "--port", "0",
         "--no-fsync", "--workers", "1", "--drain-timeout", "10"],
        cwd="/root/repo", env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    try:
        url = None
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            m = re.search(r"serving on (http://\S+)", line or "")
            if m:
                url = m.group(1)
                break
        assert url, "server never announced its URL"
        with urllib.request.urlopen(f"{url}/healthz", timeout=10) as r:
            assert r.status == 200
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0
    assert "draining" in out and "drained cleanly" in out
