"""Threaded execution of region schedules.

Demonstrates that the barrier-group structure really is parallel:
tasks of one group are submitted to a thread pool together and the
main thread waits (the barrier) before starting the next group.  NumPy
releases the GIL inside the vectorised region updates, so on a
multi-core machine groups genuinely overlap; on a single-core machine
this path exercises exactly the same code and ordering guarantees.

Correctness relies on the schemes' independence guarantees: tasks in
one group touch disjoint regions (tessellation, diamond, skewed), or
overlap only with *identical-value* writes (overlapped tiling), so no
synchronisation beyond the barrier is needed — the paper's
``#pragma omp parallel for``.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor, wait
import numpy as np

from repro.runtime.schedule import RegionSchedule, ScheduledTask
from repro.stencils.grid import Grid
from repro.stencils.spec import StencilSpec


def _run_task(spec: StencilSpec, grid: Grid, task: ScheduledTask) -> int:
    pts = 0
    for a in task.actions:
        spec.apply_region(grid.at(a.t), grid.at(a.t + 1), a.region)
        pts += a.points
    return pts


def execute_threaded(
    spec: StencilSpec,
    grid: Grid,
    schedule: RegionSchedule,
    num_threads: int = 4,
) -> np.ndarray:
    """Execute a schedule with ``num_threads`` worker threads.

    Returns the interior at time ``schedule.steps``.
    """
    if num_threads < 1:
        raise ValueError(f"num_threads must be >= 1, got {num_threads}")
    if spec.is_periodic:
        raise ValueError("region schedules assume non-periodic boundaries")
    if grid.shape != schedule.shape:
        raise ValueError(
            f"grid shape {grid.shape} != schedule shape {schedule.shape}"
        )
    groups = schedule.groups()
    with ThreadPoolExecutor(max_workers=num_threads) as pool:
        for gid in sorted(groups):
            futures = [
                pool.submit(_run_task, spec, grid, task)
                for task in groups[gid]
            ]
            done, _ = wait(futures)
            for f in done:
                f.result()  # propagate exceptions
    return grid.interior(schedule.steps)
