"""Unit tests for the checksummed transport layer.

The elastic runtime's wire protocol in isolation: CRC sealing and
verification, deliberate corruption, the bounded timeout + exponential
backoff retry policy, and the thread-safe pipe channel.
"""

import multiprocessing as mp
import threading

import numpy as np
import pytest

from repro.distributed.transport import (
    BAND,
    COORDINATOR,
    Channel,
    ChannelClosed,
    Message,
    RetryPolicy,
    checksum,
    corrupt_payload,
    make_data_message,
    pack_payload,
    unpack_payload,
    verify_message,
)

pytestmark = pytest.mark.dist


class TestChecksum:
    def test_roundtrip_preserves_payload_and_crc(self):
        obj = (np.arange(12.0).reshape(3, 4), {"retries": 2})
        msg = make_data_message(BAND, 1, 2, 0, (5,), obj)
        assert verify_message(msg)
        arr, stats = unpack_payload(msg.payload)
        assert np.array_equal(arr, obj[0])
        assert stats == obj[1]

    def test_crc_is_over_payload_bytes(self):
        data = pack_payload([1, 2, 3])
        assert checksum(data) == checksum(bytes(data))
        assert checksum(data) != checksum(data + b"x")

    def test_corrupt_payload_fails_verification(self):
        msg = make_data_message(BAND, 0, 1, 0, (0,), np.ones(64))
        bad = corrupt_payload(msg)
        assert not verify_message(bad)
        # the original is untouched (frozen dataclass, new instance)
        assert verify_message(msg)
        assert bad.crc == msg.crc and bad.payload != msg.payload

    def test_control_messages_skip_verification(self):
        msg = Message(kind="heartbeat", src=0, dst=COORDINATOR, epoch=0,
                      payload=("compute", 3, 1))
        assert verify_message(msg)
        assert corrupt_payload(msg) is msg


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        pol = RetryPolicy(timeout_s=0.2, max_retries=3, backoff_s=0.05)
        assert pol.attempts == 4
        waits = [pol.attempt_timeout(k) for k in range(pol.attempts)]
        assert waits == pytest.approx([0.25, 0.3, 0.4, 0.6])
        assert waits == sorted(waits)
        assert pol.total_budget_s() == pytest.approx(sum(waits))

    def test_zero_retries_means_one_attempt(self):
        pol = RetryPolicy(max_retries=0)
        assert pol.attempts == 1

    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)


class TestChannel:
    def _pair(self):
        a, b = mp.Pipe(duplex=True)
        return Channel(a), Channel(b)

    def test_send_recv(self):
        a, b = self._pair()
        msg = make_data_message(BAND, 0, 1, 0, (0,), np.arange(4))
        a.send(msg)
        got = b.recv(timeout_s=1.0)
        assert got.key == (0,) and verify_message(got)

    def test_recv_timeout_returns_none(self):
        a, b = self._pair()
        assert b.recv(timeout_s=0.01) is None

    def test_closed_peer_raises_channel_closed(self):
        a, b = self._pair()
        b.close()
        with pytest.raises(ChannelClosed):
            a.send(Message(kind="x", src=0, dst=1, epoch=0))

    def test_concurrent_sends_do_not_interleave(self):
        """The send lock keeps big frames atomic across threads."""
        a, b = self._pair()
        n_threads, per_thread = 4, 25
        payload = np.arange(20_000.0)  # well past PIPE_BUF

        def sender(tid):
            for i in range(per_thread):
                a.send(make_data_message(BAND, tid, 0, 0, (i,), payload))

        threads = [threading.Thread(target=sender, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        got = 0
        while got < n_threads * per_thread:
            msg = b.recv(timeout_s=5.0)
            assert msg is not None, "sender stalled or frame lost"
            assert verify_message(msg), "interleaved/corrupted frame"
            got += 1
        for t in threads:
            t.join()
