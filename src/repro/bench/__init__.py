"""Benchmark harness: one experiment per paper table/figure.

* :mod:`~repro.bench.problems` — the benchmark configurations of
  Table 4, scaled to this substrate (scaling factors documented);
* :mod:`~repro.bench.experiments` — experiment functions regenerating
  every figure/table series (Figures 8–12, Tables 1–4, ablations);
* :mod:`~repro.bench.report` — ASCII rendering of tables and scaling
  series.

Run ``python -m repro.bench`` to regenerate every experiment and print
the paper-versus-measured report (the source of EXPERIMENTS.md).
"""

from repro.bench.problems import PROBLEMS, ProblemConfig
from repro.bench.experiments import (
    FigureResult,
    fig8_1d,
    fig9_life,
    fig10_2d,
    fig11_3d,
    fig12_memory,
    table1_properties,
    table4_problems,
    ablation_sync_counts,
    ablation_merge,
    ablation_tile_sensitivity,
    ALL_EXPERIMENTS,
)
from repro.bench.report import format_table, format_scaling

__all__ = [
    "PROBLEMS",
    "ProblemConfig",
    "FigureResult",
    "fig8_1d",
    "fig9_life",
    "fig10_2d",
    "fig11_3d",
    "fig12_memory",
    "table1_properties",
    "table4_problems",
    "ablation_sync_counts",
    "ablation_merge",
    "ablation_tile_sensitivity",
    "ALL_EXPERIMENTS",
    "format_table",
    "format_scaling",
]
