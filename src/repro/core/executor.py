"""Block-level tessellation executors.

Two executors drive the rectangle-per-step block schedule of
:mod:`repro.core.blocks`:

* :func:`run_blocked` — the plain phase/stage structure of §3: per
  phase, stages ``0..d`` in order (barrier after each), every block of
  a stage independent.
* :func:`run_merged` — §4.3: the last stage of each phase and the first
  stage of the next are fused into one task per block (the
  ``B_d + B_0`` (d+1)-dimensional diamond), alternating lattice levels
  between phases exactly like the artifact code's ``level = 1 - level``.
  This removes one synchronisation per phase and reuses the block's
  working set across the phase boundary.

Both support Dirichlet boundaries only, like the paper's artifact
("In this work we only implement the non-periodic boundary
condition"); periodic runs go through the pointwise executor.
"""

from __future__ import annotations

import itertools
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.blocks import PhasePlan, TessBlock, build_phase_plan
from repro.core.pointwise import check_lattice
from repro.core.profiles import AxisProfile, TessLattice
from repro.stencils.grid import Grid
from repro.stencils.spec import StencilSpec, region_is_empty, region_size

BlockHook = Callable[[str, int, TessBlock, int], None]
"""Callback ``(kind, phase_start, block, points_updated)``; ``kind`` is
``"stage<i>"`` or ``"merged"``."""


def make_lattice(
    spec: StencilSpec,
    shape: Sequence[int],
    b: int,
    core_widths: Optional[Sequence[int]] = None,
    periods: Optional[Sequence[Optional[int]]] = None,
    phases: Optional[Sequence[int]] = None,
    uncut_dims: Sequence[int] = (),
) -> TessLattice:
    """Convenience lattice builder matching a stencil spec.

    Defaults to the merge-compatible coarse lattice (core width =
    slope, period = ``2·w + 2(b-1)σ``) — the paper's uniform lattice
    when the slope is 1.  Dimensions listed in ``uncut_dims`` get a
    constant profile (§4.2's "leave the unit-stride dimension uncut").
    """
    d = spec.ndim
    shape = tuple(int(n) for n in shape)
    uncut = {int(j) for j in uncut_dims}
    if any(not 0 <= j < d for j in uncut):
        raise ValueError(f"uncut_dims {sorted(uncut)} out of range for d={d}")
    slopes = spec.slopes
    core_widths = (tuple(core_widths) if core_widths is not None
                   else tuple(slopes))
    periods = tuple(periods) if periods is not None else (None,) * d
    phase_offs = tuple(phases) if phases is not None else (0,) * d
    profs = []
    for j in range(d):
        if j in uncut:
            profs.append(AxisProfile.uncut(
                shape[j], b, sigma=slopes[j], periodic=spec.is_periodic))
        else:
            profs.append(AxisProfile.coarse(
                shape[j], b, sigma=slopes[j], core_width=core_widths[j],
                period=periods[j], phase=phase_offs[j],
                periodic=spec.is_periodic))
    return TessLattice(tuple(profs))


def _lattice_slopes(lattice: TessLattice) -> Tuple[int, ...]:
    """Dilation rates of block regions: the profiles' own slopes.

    Regions must grow/shrink in the same units the distance arrays are
    measured in; using a larger profile slope than the stencil's is
    allowed (merely conservative), so dilation always follows the
    profile.
    """
    return tuple(p.sigma for p in lattice.profiles)


def _apply_block_steps(
    spec: StencilSpec,
    grid: Grid,
    block: TessBlock,
    b: int,
    slopes: Sequence[int],
    tt: int,
    span: int,
) -> int:
    """Run a block's clipped steps ``s = 0..span-1`` of phase ``tt``."""
    points = 0
    for s in range(span):
        region = block.region_at(s, b, slopes, grid.shape)
        if region_is_empty(region):
            continue
        src = grid.at(tt + s)
        dst = grid.at(tt + s + 1)
        spec.apply_region(src, dst, region)
        points += region_size(region)
    return points


def _run_stage(
    spec: StencilSpec,
    grid: Grid,
    blocks: Sequence[TessBlock],
    kind: str,
    b: int,
    slopes: Sequence[int],
    tt: int,
    span: int,
    on_block: Optional[BlockHook],
) -> None:
    """Run one stage's blocks for phase ``tt`` (the shared stage body)."""
    for block in blocks:
        n = _apply_block_steps(spec, grid, block, b, slopes, tt, span)
        if on_block is not None:
            on_block(kind, tt, block, n)


def _run_blocked(
    spec: StencilSpec,
    grid: Grid,
    lattice: TessLattice,
    steps: int,
    t0: int = 0,
    plan: Optional[PhasePlan] = None,
    on_block: Optional[BlockHook] = None,
    validate: bool = True,
    budget=None,
) -> np.ndarray:
    """Unmerged block walk (the ``baseline:blocked`` backend's engine)."""
    from repro.api.driver import phase_windows

    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    if spec.is_periodic:
        raise ValueError(
            "block executor supports Dirichlet boundaries only; use "
            "run_pointwise for periodic stencils"
        )
    check_lattice(spec, grid, lattice)
    if validate:
        lattice.validate()
    if plan is None:
        plan = build_phase_plan(lattice, _lattice_slopes(lattice))
    b = lattice.b
    slopes = _lattice_slopes(lattice)
    t_end = t0 + steps
    if budget is not None:
        budget.check("blocked entry")
    for tt, span in phase_windows(t0, t_end, b):
        if budget is not None:
            budget.check(f"phase t={tt}")
        for stage_plan in plan.stages:
            _run_stage(spec, grid, stage_plan.blocks,
                       f"stage{stage_plan.stage}", b, slopes, tt, span,
                       on_block)
    return grid.interior(t_end)


def run_blocked(
    spec: StencilSpec,
    grid: Grid,
    lattice: TessLattice,
    steps: int,
    t0: int = 0,
    plan: Optional[PhasePlan] = None,
    on_block: Optional[BlockHook] = None,
    validate: bool = True,
) -> np.ndarray:
    """Advance ``grid`` by ``steps`` with the unmerged block schedule.

    Returns the interior view at time ``t0 + steps``.

    .. deprecated:: use ``repro.api.run`` / ``Session.execute`` with
       ``backend="baseline:blocked"`` instead.
    """
    from repro.api import RunConfig, Session, warn_legacy

    warn_legacy("run_blocked", "repro.api.run(backend='baseline:blocked')")
    config = RunConfig(backend="baseline:blocked", engine="naive",
                       scheme="tess-unmerged", steps=steps,
                       options={"t0": t0, "phase_plan": plan,
                                "on_block": on_block, "validate": validate})
    result = Session(spec).execute(grid, config=config, lattice=lattice)
    return result.interior


def _merged_bases(lattice: TessLattice) -> List[Tuple[Tuple[int, int], ...]]:
    """Products of plateau intervals — bases of the merged diamonds."""
    plats = [p.plateaus() for p in lattice.profiles]
    if any(len(pl) == 0 for pl in plats):
        raise ValueError("merging requires a plateau on every axis")
    return [tuple(base) for base in itertools.product(*plats)]


def _run_merged(
    spec: StencilSpec,
    grid: Grid,
    lattice: TessLattice,
    steps: int,
    t0: int = 0,
    on_block: Optional[BlockHook] = None,
    validate: bool = True,
    budget=None,
) -> np.ndarray:
    """Merged block walk (the ``baseline:merged`` backend's engine)."""
    from repro.api.driver import phase_windows

    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    if spec.is_periodic:
        raise ValueError("merged executor supports Dirichlet boundaries only")
    check_lattice(spec, grid, lattice)
    if validate:
        lattice.validate()
    d = lattice.ndim
    b = lattice.b
    slopes = _lattice_slopes(lattice)
    for j, p in enumerate(lattice.profiles):
        if p.core_width is not None and p.core_width < p.sigma:
            raise ValueError(
                f"merging requires core width >= slope along dim {j} "
                f"(got {p.core_width} < {p.sigma}): a B_0 block's first "
                f"reads must not reach a neighbouring merged diamond"
            )
    levels = [lattice, lattice.shifted_to_plateaus()]
    if validate:
        levels[1].validate()
    plans = [build_phase_plan(lv, slopes) for lv in levels]
    t_end = t0 + steps
    # the lowest active stage (#uncut axes) plays the B_0 role
    omin = sum(1 for p in lattice.profiles if not p.cores)

    if budget is not None:
        budget.check("merged entry")
    # prologue: the very first lowest stage runs unmerged
    span0 = min(b, t_end - t0)
    if span0 > 0:
        _run_stage(spec, grid, plans[0].stages[omin].blocks,
                   f"stage{omin}", b, slopes, t0, span0, on_block)

    level = 0
    for tt, span in phase_windows(t0, t_end, b):
        if budget is not None:
            budget.check(f"phase t={tt}")
        span_next = min(b, max(0, t_end - tt - b))
        cur = levels[level]
        # interior stages between the merge endpoints
        for stage_plan in plans[level].stages[omin + 1:d]:
            _run_stage(spec, grid, stage_plan.blocks,
                       f"stage{stage_plan.stage}", b, slopes, tt, span,
                       on_block)
        # merged stage: B_d of this phase + B_0 of the next, same base
        all_dims = tuple(range(d))
        for base in _merged_bases(cur):
            bd = TessBlock(stage=d, glued=all_dims, base=base)
            n = _apply_block_steps(spec, grid, bd, b, slopes, tt, span)
            if span_next > 0:
                b0 = TessBlock(stage=0, glued=(), base=base)
                n += _apply_block_steps(
                    spec, grid, b0, b, slopes, tt + b, span_next
                )
            if on_block is not None:
                on_block("merged", tt, bd, n)
        level = 1 - level
    return grid.interior(t_end)


def run_merged(
    spec: StencilSpec,
    grid: Grid,
    lattice: TessLattice,
    steps: int,
    t0: int = 0,
    on_block: Optional[BlockHook] = None,
    validate: bool = True,
) -> np.ndarray:
    """Advance ``grid`` with the §4.3 merged (``B_d``+``B_0``) schedule.

    Uses two alternating lattice levels; requires the lattice to
    satisfy the merging condition (plateau width == core width), which
    :func:`make_lattice` guarantees by default.

    .. deprecated:: use ``repro.api.run`` / ``Session.execute`` with
       ``backend="baseline:merged"`` instead.
    """
    from repro.api import RunConfig, Session, warn_legacy

    warn_legacy("run_merged", "repro.api.run(backend='baseline:merged')")
    config = RunConfig(backend="baseline:merged", engine="naive",
                       scheme="tess", steps=steps,
                       options={"t0": t0, "on_block": on_block,
                                "validate": validate})
    result = Session(spec).execute(grid, config=config, lattice=lattice)
    return result.interior
