"""Fault-tolerant execution: injected failures, exact recovery.

The barrier groups that make tessellated schedules parallel are also
consistency points: at every barrier the ping-pong pair is a complete
state.  The ``resilient`` backend checkpoints there, retries failed
tasks, and restores/replays groups on corruption — so a run hit by
injected faults still produces results *bit-identical* to a fault-free
run.  The ``distributed`` backend does the same per phase, with a
divergence detector guarding the ghost-band exchanges.

Run: ``PYTHONPATH=src python examples/fault_tolerance.py``
CLI equivalent::

    python -m repro run heat2d --shape 64 64 --steps 12 -b 4 \
        --threads 4 --resilient --inject crash@1/0 --inject corrupt@3
    python -m repro dist heat1d --shape 400 --steps 16 -b 4 --ranks 4 \
        --resilient --inject drop@2/1
"""

import numpy as np

from repro import get_stencil
from repro.api import RunConfig, Session
from repro.runtime import (
    ExecutionError, FaultPlan, FaultSpec, ResiliencePolicy,
)


def main() -> None:
    spec = get_stencil("heat2d")
    session = Session(spec)
    base = RunConfig(shape=(64, 64), steps=12, scheme="tess", b=4)

    ref = session.run(base).interior.copy()

    # -- shared memory: crash + silent corruption + stall ------------
    plan = FaultPlan([
        FaultSpec("crash", group=1, task=0),            # worker dies
        FaultSpec("corrupt", group=3, task=1),          # silent NaNs
        FaultSpec("stall", group=2, task=0, stall_s=0.05),
    ])
    result = session.run(
        base, backend="resilient", threads=4, fault_plan=plan,
        resilience=ResiliencePolicy(task_deadline_s=0.02))
    report = result.stats.resilience
    exact = np.array_equal(ref, result.interior)
    print(f"injected {len(plan.faults)} faults ({plan.describe()})")
    print(f"  {report.describe()}")
    print(f"  recovered bit-identical to fault-free run: {exact}")
    assert exact

    # -- a persistent failure stays loud, not silent -----------------
    dead = FaultPlan([FaultSpec("crash", group=2, task=0, max_hits=10_000)])
    try:
        session.run(base, backend="resilient", threads=4,
                    resilience=ResiliencePolicy(), fault_plan=dead)
    except ExecutionError as e:
        print(f"persistent fault -> structured error: {e}")

    # -- distributed: dropped ghost-band exchange --------------------
    spec1 = get_stencil("heat1d")
    dsession = Session(spec1)
    dist = RunConfig(shape=(400,), steps=16, scheme="tess", b=4,
                     backend="distributed", ranks=4)
    base_out = dsession.run(dist).interior
    dplan = FaultPlan([FaultSpec("drop", group=2, task=1)])
    res = dsession.run(dist, fault_plan=dplan,
                       resilience=ResiliencePolicy())
    exact1 = np.array_equal(base_out, res.interior)
    print(f"distributed: dropped exchange at stage 2 -> "
          f"{res.stats.comm.phase_restarts} phase replay(s), "
          f"recovered bit-identical: {exact1}")
    assert exact1


if __name__ == "__main__":
    main()
