"""Service-path overhead guard (docs/serving.md).

The contract: submitting a job through the durable runtime —
idempotency hashing, the fsync'd journal writes, the queue hop, the
lease, the sealed result — costs under 10% over a direct
``Session.run`` of the same workload.  The durability tax is a fixed
number of small fsyncs per job, so the workload is sized (a compiled
heat1d run in the tens of milliseconds) to represent a *real* request;
an absolute floor absorbs timer and fsync jitter on fast disks.

Pinned so a future hot-path addition — a journal write per step, a
checkpoint default, an eager verify — fails loudly instead of
silently taxing every served job.
"""

import time

import pytest

from repro import get_stencil
from repro.api import RunConfig, Session
from repro.service import JobStore, Supervisor, SupervisorConfig

pytestmark = pytest.mark.service

#: a representative request: heat1d, time-tiled, compiled plan
SHAPE = (20000,)
STEPS = 64
B = 8
ROUNDS = 3
CFG = {"shape": list(SHAPE), "steps": STEPS, "scheme": "tess", "b": B,
       "backend": "compiled", "engine": "compiled"}


def test_submit_to_result_overhead_under_ten_percent(
        benchmark, capsys, tmp_path):
    spec = get_stencil("heat1d")
    session = Session(spec)
    direct_cfg = RunConfig.from_json(CFG)

    store = JobStore(str(tmp_path / "store"))  # fsync'd: the real tax
    # pinned to thread mode: this guard is the zero-overhead contract
    # of the default path, regardless of the REPRO_ISOLATION matrix
    sup = Supervisor(store, SupervisorConfig(workers=1,
                                             isolation="thread"))
    sup.start()
    # share the session (and its warmed plan cache) with the direct
    # path — the bench isolates the *service* overhead, not a cold
    # compile
    sup._sessions["heat1d"] = session
    session.run(direct_cfg)  # warm plan cache + allocator

    seq = [0]

    def serve_once():
        # vary the seed so every lap is a fresh job: dedup would
        # otherwise collapse laps 2..k onto the first result
        seq[0] += 1
        t0 = time.perf_counter()
        job, _ = sup.submit("heat1d", dict(CFG, seed=seq[0]))
        job = sup.wait(job.job_id, timeout=120)
        assert job.state == "done"
        interior, _ = store.load_result(job.job_id)
        return time.perf_counter() - t0, interior

    def direct_once(seed):
        t0 = time.perf_counter()
        result = session.run(direct_cfg.with_overrides({"seed": seed}))
        return time.perf_counter() - t0, result.interior

    def measure():
        # interleaved min-of-k so drift hits both paths alike
        t_direct = t_served = float("inf")
        for _ in range(ROUNDS):
            t, _ = direct_once(seq[0] + 1)
            t_direct = min(t_direct, t)
            t, _ = serve_once()
            t_served = min(t_served, t)
        return t_direct, t_served

    try:
        t_direct, t_served = benchmark.pedantic(
            measure, rounds=1, iterations=1)

        # the served answer is the direct answer, bit for bit
        t, served_interior = serve_once()
        _, direct_interior = direct_once(seq[0])
        assert served_interior.tobytes() == direct_interior.tobytes()
    finally:
        sup.stop()
        store.close()

    overhead = t_served / t_direct - 1.0
    with capsys.disabled():
        print(f"\n[service] compiled heat1d n={SHAPE[0]} steps={STEPS} "
              f"(min of {ROUNDS}):")
        print(f"  direct Session.run   : {t_direct * 1e3:8.2f} ms")
        print(f"  submit->wait->result : {t_served * 1e3:8.2f} ms "
              f"({overhead * 1e2:+.2f}%)")

    # <10% relative, with a 25 ms absolute floor: the durability tax
    # is a fixed handful of fsyncs + one queue/worker handoff per job,
    # not proportional work
    assert t_served <= t_direct * 1.10 + 0.025, (
        f"service overhead {overhead * 100:.1f}% blew the 10% budget "
        f"({t_direct * 1e3:.2f} ms -> {t_served * 1e3:.2f} ms)")


def test_process_mode_overhead_bounded(benchmark, capsys, tmp_path):
    """Process isolation buys crash containment with IPC: the job spec
    rides a pipe out, the result array rides it back.  That tax must
    stay a fixed per-job cost (pickle + pipe + one handoff), not
    proportional work — pinned here against a warmed child so a future
    chatty protocol (per-step messages, eager checkpoint defaults)
    fails loudly.  The bound is looser than the thread-mode guard
    because the IPC round trip is real and priced in."""
    spec = get_stencil("heat1d")
    session = Session(spec)
    direct_cfg = RunConfig.from_json(CFG)

    store = JobStore(str(tmp_path / "store"))
    sup = Supervisor(store, SupervisorConfig(workers=1,
                                             isolation="process"))
    sup.start()
    session.run(direct_cfg)  # warm the direct path's plan cache

    seq = [0]

    def serve_once():
        seq[0] += 1
        t0 = time.perf_counter()
        job, _ = sup.submit("heat1d", dict(CFG, seed=seq[0]))
        job = sup.wait(job.job_id, timeout=120)
        assert job.state == "done"
        interior, _ = store.load_result(job.job_id)
        return time.perf_counter() - t0, interior

    def direct_once(seed):
        t0 = time.perf_counter()
        result = session.run(direct_cfg.with_overrides({"seed": seed}))
        return time.perf_counter() - t0, result.interior

    def measure():
        t_direct = t_served = float("inf")
        for _ in range(ROUNDS):
            t, _ = direct_once(seq[0] + 1)
            t_direct = min(t_direct, t)
            t, _ = serve_once()
            t_served = min(t_served, t)
        return t_direct, t_served

    try:
        serve_once()  # warm the child: spawn + its own plan compile
        t_direct, t_served = benchmark.pedantic(
            measure, rounds=1, iterations=1)
        # the sandboxed answer is the direct answer, bit for bit
        t, served_interior = serve_once()
        _, direct_interior = direct_once(seq[0])
        assert served_interior.tobytes() == direct_interior.tobytes()
    finally:
        sup.stop()
        store.close()

    overhead = t_served / t_direct - 1.0
    with capsys.disabled():
        print(f"\n[service] process-mode heat1d n={SHAPE[0]} "
              f"steps={STEPS} (min of {ROUNDS}):")
        print(f"  direct Session.run   : {t_direct * 1e3:8.2f} ms")
        print(f"  submit->wait->result : {t_served * 1e3:8.2f} ms "
              f"({overhead * 1e2:+.2f}%)")

    # <50% relative with a 100 ms absolute floor: two pickle round
    # trips of a ~160 KB array + the journal/queue/lease tax of the
    # thread-mode path, but never proportional to the run itself
    assert t_served <= t_direct * 1.50 + 0.100, (
        f"process-mode overhead {overhead * 100:.1f}% blew the budget "
        f"({t_direct * 1e3:.2f} ms -> {t_served * 1e3:.2f} ms)")
