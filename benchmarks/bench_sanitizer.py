"""Schedule-sanitizer pre-flight overhead (ISSUE 2).

Measures what ``--sanitize`` costs on the happy path: points/sec of a
threaded run with and without the structural pre-flight, across
growing problem sizes.  Not a paper figure; this quantifies the
engineering trade-off recorded in ``docs/sanitizer.md`` and guards
the sanitizer's near-linear complexity — the axis-sorted bounding-box
sweep must examine O(tasks log tasks) candidate pairs, not the
quadratic all-pairs count.
"""

import math
import time

import numpy as np

from repro import Grid, get_stencil, make_lattice
from repro.core.schedules import tess_schedule
from repro.runtime import sanitize_schedule
from repro.runtime.threadpool import _execute_threaded

B = 4
STEPS = 8


def _build(n):
    spec = get_stencil("heat1d")
    shape = (n,)
    lat = make_lattice(spec, shape, B)
    sched = tess_schedule(spec, shape, lat, STEPS, merged=True)
    return spec, shape, sched


def test_sanitizer_preflight_overhead(benchmark, capsys):
    """Points/sec with and without the --sanitize pre-flight."""
    spec, shape, sched = _build(4000)
    points = sched.total_points()

    def run(sanitize):
        grid = Grid(spec, shape, seed=0)
        t0 = time.perf_counter()
        _execute_threaded(spec, grid, sched, num_threads=2,
                         sanitize=sanitize)
        return time.perf_counter() - t0

    plain = benchmark.pedantic(lambda: run(False), rounds=1, iterations=1)
    guarded = run(True)
    report = sanitize_schedule(spec, sched)

    with capsys.disabled():
        print("\n[sanitizer] pre-flight overhead, heat1d "
              f"n={shape[0]} steps={STEPS} b={B} "
              f"({len(sched.tasks)} tasks, {report.actions_checked} actions):")
        print(f"  plain     : {points / plain:12.0f} points/s")
        print(f"  --sanitize: {points / guarded:12.0f} points/s "
              f"(pre-flight {report.seconds * 1e3:.1f} ms, "
              f"{report.pairs_checked} pairs swept)")

    assert report.ok, report.describe()
    # the pre-flight may dominate tiny runs, but must stay bounded: the
    # guarded run cannot be more than pre-flight + plain by a wide margin
    assert guarded < plain + 20 * max(report.seconds, 0.05)


def test_race_sweep_is_near_linear(benchmark, capsys):
    """The bbox sweep examines O(tasks log tasks) pairs, not O(tasks^2)."""
    sizes = (1000, 2000, 4000, 8000)

    def measure():
        rows = []
        for n in sizes:
            spec, _, sched = _build(n)
            rep = sanitize_schedule(spec, sched)
            assert rep.ok, rep.describe()
            ntasks = len(sched.tasks)
            rows.append((n, ntasks, rep.pairs_checked, rep.seconds))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    with capsys.disabled():
        print("\n[sanitizer] race-sweep scaling (heat1d, "
              f"steps={STEPS}, b={B}):")
        print(f"  {'n':>6} {'tasks':>6} {'pairs':>8} "
              f"{'n log n':>9} {'seconds':>8}")
        for n, ntasks, pairs, secs in rows:
            bound = ntasks * math.log2(max(ntasks, 2))
            print(f"  {n:>6} {ntasks:>6} {pairs:>8} "
                  f"{bound:>9.0f} {secs:>8.3f}")

    # near-linear: pairs swept bounded by C * tasks * log2(tasks) with a
    # small constant (pairs only survive the sweep when bboxes overlap
    # along axis 0, so neighbours dominate)
    for _, ntasks, pairs, _ in rows:
        assert pairs <= 8 * ntasks * math.log2(max(ntasks, 2)), (
            f"race sweep superlinear: {pairs} pairs for {ntasks} tasks")

    # doubling the problem should not quadruple the pair count
    (_, t0, p0, _), (_, t1, p1, _) = rows[0], rows[-1]
    growth = p1 / max(p0, 1)
    task_growth = t1 / max(t0, 1)
    assert growth <= 2.0 * task_growth, (
        f"pair count grew {growth:.1f}x for {task_growth:.1f}x tasks")
