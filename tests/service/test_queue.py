"""Bounded priority queue: ordering, backpressure, cancellation."""

import threading

import pytest

from repro.runtime.errors import QueueSaturated
from repro.service import Job, JobQueue

pytestmark = pytest.mark.service


def _job(i, priority=0, estimated=0):
    return Job(job_id=f"job-{i}", kernel="heat1d", config={},
               idempotency_key=f"k{i}", priority=priority,
               estimated_bytes=estimated)


def test_priority_order_fifo_within_level():
    q = JobQueue(maxsize=8)
    q.put(_job(0, priority=0))
    q.put(_job(1, priority=5))
    q.put(_job(2, priority=5))
    q.put(_job(3, priority=1))
    order = [q.get(timeout=0.1).job_id for _ in range(4)]
    assert order == ["job-1", "job-2", "job-3", "job-0"]


def test_depth_bound_raises_queue_saturated():
    q = JobQueue(maxsize=2)
    q.put(_job(0))
    q.put(_job(1))
    with pytest.raises(QueueSaturated) as exc:
        q.put(_job(2))
    assert exc.value.depth == 2 and exc.value.capacity == 2


def test_footprint_bound_raises_queue_saturated():
    q = JobQueue(maxsize=8, max_pending_bytes=1000)
    q.put(_job(0, estimated=600))
    with pytest.raises(QueueSaturated) as exc:
        q.put(_job(1, estimated=600))
    assert exc.value.limit_bytes == 1000
    # a smaller job still fits
    q.put(_job(2, estimated=300))
    assert q.pending_bytes == 900


def test_force_put_bypasses_bounds():
    q = JobQueue(maxsize=1)
    q.put(_job(0))
    q.put(_job(1), force=True)  # journaled re-queues are never refused
    assert len(q) == 2


def test_check_admit_probes_without_enqueueing():
    q = JobQueue(maxsize=1)
    q.check_admit(0)
    q.put(_job(0))
    with pytest.raises(QueueSaturated):
        q.check_admit(0)
    assert len(q) == 1


def test_put_is_idempotent_per_job_id():
    q = JobQueue(maxsize=4)
    job = _job(0, estimated=100)
    q.put(job)
    q.put(job)
    assert len(q) == 1 and q.pending_bytes == 100


def test_remove_drops_waiting_job_and_footprint():
    q = JobQueue(maxsize=4, max_pending_bytes=1000)
    q.put(_job(0, estimated=400))
    q.put(_job(1, estimated=300))
    assert q.remove("job-0")
    assert not q.remove("job-0")
    assert len(q) == 1 and q.pending_bytes == 300
    assert q.get(timeout=0.1).job_id == "job-1"


def test_get_timeout_returns_none():
    q = JobQueue(maxsize=2)
    assert q.get(timeout=0.01) is None


def test_blocked_get_wakes_on_put():
    q = JobQueue(maxsize=2)
    out = []
    t = threading.Thread(target=lambda: out.append(q.get(timeout=5.0)))
    t.start()
    q.put(_job(0))
    t.join(timeout=5.0)
    assert out and out[0].job_id == "job-0"


def test_close_wakes_blocked_getters_and_refuses_puts():
    q = JobQueue(maxsize=2)
    out = []
    t = threading.Thread(target=lambda: out.append(q.get(timeout=5.0)))
    t.start()
    q.close()
    t.join(timeout=5.0)
    assert out == [None]
    with pytest.raises(RuntimeError, match="closed"):
        q.put(_job(0))
