"""Pipelined time skewing — §2.1 "Time Skewing" [27, 54, 68].

The classic wavefront formulation: fixed spatial tiles, software-
pipelined across time.  Tile ``k``'s step ``s`` depends on its own and
both neighbours' step ``s-1``, so the wavefront ``g = 2s + k`` is a
legal barrier schedule (predecessors sit in groups ``g-1`` and
``g-3``).  The two properties the paper holds against the family fall
straight out of the schedule:

* **pipelined start-up** — early wavefronts contain a single tile;
  full concurrency is only reached after ``2·steps``-ish groups (the
  paper: "most of the methods often enforce a pipelined startup and
  provide limited concurrency");
* **many synchronisations** — `2·steps + #tiles` barriers versus the
  tessellation's `d·steps/b`.

Unlike atomic parallelepiped tiles (which need per-tile halo copies to
be two-buffer safe), the pipelined form runs on the shared ping-pong
buffers and is validated against the reference like every other
scheme.
"""

from __future__ import annotations

from typing import Sequence

from repro.runtime.schedule import RegionAction, RegionSchedule
from repro.stencils.spec import StencilSpec


def skewed_schedule(
    spec: StencilSpec,
    shape: Sequence[int],
    steps: int,
    tile_width: int,
    cut_dim: int = 0,
) -> RegionSchedule:
    """Pipelined time-skewed tiling along ``cut_dim``.

    Tiles are fixed slabs of ``tile_width``; tile ``k`` performs step
    ``s`` in barrier group ``2s + k``.
    """
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    if tile_width < 1:
        raise ValueError(f"tile_width must be >= 1, got {tile_width}")
    shape = tuple(int(n) for n in shape)
    if len(shape) != spec.ndim:
        raise ValueError(f"shape rank {len(shape)} != ndim {spec.ndim}")
    if not 0 <= cut_dim < spec.ndim:
        raise ValueError(f"cut_dim {cut_dim} out of range")
    if tile_width < spec.slopes[cut_dim]:
        raise ValueError(
            f"tile_width {tile_width} below slope "
            f"{spec.slopes[cut_dim]}: wavefront tiles would overlap"
        )
    n = shape[cut_dim]
    sched = RegionSchedule(scheme="time-skewed", shape=shape, steps=steps)
    tiles = [(lo, min(lo + tile_width, n))
             for lo in range(0, n, tile_width)]
    for s in range(steps):
        for k, (lo, hi) in enumerate(tiles):
            region = tuple(
                (lo, hi) if j == cut_dim else (0, m)
                for j, m in enumerate(shape)
            )
            sched.add(
                2 * s + k,
                [RegionAction(t=s, region=region)],
                label=f"s{s}:tile{k}",
            )
    return sched
