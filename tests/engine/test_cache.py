"""Plan cache: LRU behaviour, disk tier, autotune and distributed reuse.

The acceptance-criteria assertions live here: the second autotune probe
of identical parameters is a plan-cache *hit* (observable on
``cache.stats``), and every distributed rank compiles its owned-block
plan exactly once per run (``CommStats.plan_compiles == ranks``).
"""

import numpy as np
import pytest

from repro import Grid, get_stencil, make_lattice
from repro.baselines import naive_schedule
from repro.core.schedules import tess_schedule
from repro.engine import (
    PlanCache,
    compile_plan,
    plan_key,
    spec_signature,
)
from repro.engine.plan import _execute_plan

pytestmark = pytest.mark.engine


def _sched(spec, shape=(128,), b=4, steps=8, merged=False):
    lat = make_lattice(spec, shape, b)
    return tess_schedule(spec, shape, lat, steps, merged=merged)


# -- keys ------------------------------------------------------------

def test_spec_signature_distinguishes_operators():
    heat = get_stencil("heat1d")
    five = get_stencil("1d5p")
    life = get_stencil("life")
    sigs = {spec_signature(heat), spec_signature(five),
            spec_signature(life)}
    assert len(sigs) == 3
    # same kernel fetched twice -> same signature
    assert spec_signature(heat) == spec_signature(get_stencil("heat1d"))


def test_plan_key_separates_params_and_options():
    spec = get_stencil("heat1d")
    sched = _sched(spec)
    k0 = plan_key(spec, sched)
    assert k0 == plan_key(spec, sched)
    assert k0 != plan_key(spec, sched, params=(4,))
    assert k0 != plan_key(spec, sched, fuse=False)
    assert k0 != plan_key(spec, sched, batch_threshold=0)


# -- in-memory LRU ---------------------------------------------------

def test_hit_miss_counters_and_identity():
    spec = get_stencil("heat1d")
    sched = _sched(spec)
    cache = PlanCache(capacity=4)
    p1 = cache.get(spec, sched)
    assert (cache.stats.hits, cache.stats.misses) == (0, 1)
    p2 = cache.get(spec, sched)
    assert (cache.stats.hits, cache.stats.misses) == (1, 1)
    assert p1 is p2
    # a structurally identical schedule rebuilt from the same params
    # also hits: the key is parametric, not object identity
    cache.get(spec, _sched(spec))
    assert cache.stats.hits == 2
    assert cache.stats.compile_seconds > 0


def test_lru_eviction_order():
    spec = get_stencil("heat1d")
    cache = PlanCache(capacity=2)
    s_a = _sched(spec, steps=4)
    s_b = _sched(spec, steps=6)
    s_c = _sched(spec, steps=8)
    cache.get(spec, s_a)
    cache.get(spec, s_b)
    cache.get(spec, s_a)          # refresh A; B is now least-recent
    cache.get(spec, s_c)          # evicts B
    assert cache.stats.evictions == 1
    assert len(cache) == 2
    hits = cache.stats.hits
    cache.get(spec, s_a)
    cache.get(spec, s_c)
    assert cache.stats.hits == hits + 2
    cache.get(spec, s_b)          # really gone -> recompiled
    assert cache.stats.misses == 4


def test_cached_plan_still_correct():
    spec = get_stencil("heat2d")
    sched = _sched(spec, shape=(40, 40), b=4, steps=8)
    cache = PlanCache()
    plan = cache.get(spec, sched)
    plan2 = cache.get(spec, sched)
    g = Grid(spec, (40, 40), init="random", seed=3)
    g2 = g.copy()
    from repro.runtime.schedule import _execute_schedule
    ref = _execute_schedule(spec, g, sched)
    assert np.array_equal(ref, _execute_plan(plan2, g2))
    assert plan is plan2


# -- disk tier -------------------------------------------------------

def test_disk_tier_round_trip(tmp_path):
    spec = get_stencil("heat1d")
    sched = _sched(spec)
    c1 = PlanCache(capacity=4, disk_dir=str(tmp_path))
    c1.get(spec, sched)
    assert c1.stats.disk_stores == 1
    assert list(tmp_path.glob("plan-*.pkl"))

    # a fresh cache (new process, conceptually) loads from disk
    c2 = PlanCache(capacity=4, disk_dir=str(tmp_path))
    plan = c2.get(spec, sched)
    assert c2.stats.disk_hits == 1
    assert c2.stats.misses == 0
    g = Grid(spec, (128,), init="random", seed=5)
    g2 = g.copy()
    from repro.runtime.schedule import _execute_schedule
    assert np.array_equal(_execute_schedule(spec, g, sched),
                          _execute_plan(plan, g2))


def test_disk_corruption_is_a_miss(tmp_path):
    spec = get_stencil("heat1d")
    sched = _sched(spec)
    c1 = PlanCache(disk_dir=str(tmp_path))
    c1.get(spec, sched)
    (path,) = tmp_path.glob("plan-*.pkl")
    path.write_bytes(b"not a pickle")
    c2 = PlanCache(disk_dir=str(tmp_path))
    c2.get(spec, sched)
    assert c2.stats.disk_hits == 0
    assert c2.stats.misses == 1
    assert c2.stats.disk_corrupt == 1
    # the corrupted bytes were quarantined, then the recompiled plan
    # re-stored under the original name ...
    assert path.with_suffix(".pkl.corrupt").exists()
    assert c2.stats.disk_stores == 1
    # ... so the next lookup is a healthy disk hit, not a re-corruption
    c3 = PlanCache(disk_dir=str(tmp_path))
    c3.get(spec, sched)
    assert c3.stats.disk_corrupt == 0
    assert c3.stats.disk_hits == 1


def test_disk_truncated_pickle_is_quarantined(tmp_path):
    """A crashed writer leaves a prefix of a valid pickle: same verdict."""
    spec = get_stencil("heat1d")
    sched = _sched(spec)
    c1 = PlanCache(disk_dir=str(tmp_path))
    c1.get(spec, sched)
    (path,) = tmp_path.glob("plan-*.pkl")
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    c2 = PlanCache(disk_dir=str(tmp_path))
    plan = c2.get(spec, sched)
    assert plan is not None
    assert c2.stats.disk_corrupt == 1
    assert c2.stats.misses == 1
    assert path.with_suffix(".pkl.corrupt").exists()
    # the recompiled plan was re-stored under the original name
    assert c2.stats.disk_stores == 1


def test_disk_wrong_key_is_plain_miss_not_corruption(tmp_path):
    """A healthy pickle of the wrong entry (hash collision, foreign
    file) is a miss but NOT corruption — it is not quarantined."""
    import pickle

    spec = get_stencil("heat1d")
    sched_a = _sched(spec, steps=4)
    sched_b = _sched(spec, steps=8)
    c1 = PlanCache(disk_dir=str(tmp_path))
    c1.get(spec, sched_a)
    plan_b = compile_plan(spec, sched_b)
    (path,) = tmp_path.glob("plan-*.pkl")
    with open(path, "wb") as fh:
        pickle.dump((plan_key(spec, sched_b), plan_b), fh)
    c2 = PlanCache(disk_dir=str(tmp_path))
    c2.get(spec, sched_a)
    assert c2.stats.disk_corrupt == 0
    assert c2.stats.disk_hits == 0
    assert c2.stats.misses == 1
    assert path.exists()  # healthy file left alone (then overwritten)


def test_cache_stats_dict_round_trips_disk_corrupt():
    """cache_delta reconstructs CacheStats from as_dict keys; the new
    counter must survive the round trip."""
    from repro.api import cache_delta
    from repro.engine.cache import CacheStats

    before = CacheStats().as_dict()
    after = CacheStats(disk_corrupt=2, misses=3).as_dict()
    delta = cache_delta(before, after)
    assert delta.disk_corrupt == 2
    assert delta.misses == 3
    st = CacheStats(disk_corrupt=1)
    st.reset()
    assert st.disk_corrupt == 0


# -- autotune: second probe of identical params hits -----------------

def test_autotune_second_probe_hits_cache():
    from repro.autotune import grid_search

    spec = get_stencil("heat1d")
    cache = PlanCache(capacity=64)
    kw = dict(machine=None, cores=1, objective="wallclock", cache=cache,
              repeat=1, depths=[2, 4], width_factors=(1, 2))
    first = grid_search(spec, (512,), 16, **kw)
    assert first and all(r.measured for r in first)
    probes = cache.stats.misses
    assert probes == len(first)
    assert cache.stats.hits == 0

    # identical sweep: every probe is now a hit, nothing recompiles
    second = grid_search(spec, (512,), 16, **kw)
    assert len(second) == len(first)
    assert cache.stats.misses == probes
    assert cache.stats.hits == probes


def test_tune_tessellation_wallclock_uses_cache():
    from repro.autotune import tune_tessellation

    spec = get_stencil("heat1d")
    cache = PlanCache(capacity=64)
    best = tune_tessellation(spec, (512,), 16, machine=None, cores=1,
                             objective="wallclock", cache=cache, repeat=1)
    assert best.measured and best.time_s > 0
    # coordinate descent revisits the coarse winner -> at least one hit
    assert cache.stats.hits >= 1


# -- distributed: each rank compiles exactly once per run ------------

@pytest.mark.dist
def test_distributed_ranks_compile_once():
    from repro.distributed.elastic import _execute_elastic

    spec = get_stencil("heat1d")
    shape, b, steps, ranks = (400,), 4, 16, 3
    lat = make_lattice(spec, shape, b)
    grid = Grid(spec, shape, seed=0)
    out, stats = _execute_elastic(spec, grid.copy(), lat, steps, ranks)
    from repro import reference_sweep
    assert np.array_equal(reference_sweep(spec, grid.copy(), steps), out)
    # one compile per rank incarnation, never one per phase
    assert stats.plan_compiles == ranks
    assert (steps + b - 1) // b > 1  # multiple phases actually ran
