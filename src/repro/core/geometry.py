"""Combinatorial geometry of the data-space tessellation (paper §3.3).

The ``d``-dimensional data space is tessellated in stage ``i`` by blocks
``B_i``; this module provides the block-shape combinatorics of Table 1
and the block point-set generators used to verify Lemma 3.1
(``B_i = B_{d-i}``) and the volume/centre-point counts.

Conventions
-----------
Blocks live on the *uniform* centre lattice: ``B_0`` centres sit at all
integer vectors ``(2 k_0 b, …, 2 k_{d-1} b)``; ``B_i`` centres have
exactly ``i`` coordinates that are odd multiples of ``b``.  A block is
identified by its set of *glued* dimensions ``S`` (``|S| = i``) and its
centre.  Its interior point set, relative to the centre, is

``{ x : max_{j∈S} |x_j| + max_{j∉S} |x_j| ≤ b - 1 }``

(points on block boundaries — the paper's '-' entries — receive zero
updates in this stage and are owned by a neighbouring stage).
"""

from __future__ import annotations

import itertools
import math
from typing import FrozenSet, Iterable, Iterator, List, Tuple

import numpy as np


# ---------------------------------------------------------------------------
# Table 1 — properties of the d-dimensional tessellation
# ---------------------------------------------------------------------------

def num_stages(d: int) -> int:
    """Stages per phase (time tile): ``d + 1``."""
    _check_dim(d)
    return d + 1


def b0_size(d: int, b: int) -> int:
    """Points of ``B_0`` including its boundary: ``(2b+1)^d``."""
    _check_dim(d)
    _check_b(b)
    return (2 * b + 1) ** d


def split_count(d: int, i: int) -> int:
    """Sub-blocks produced by splitting a ``B_i``: ``2(d - i)``."""
    _check_stage(d, i)
    return 2 * (d - i)


def combine_count(i: int) -> int:
    """Sub-blocks glued to form a ``B_i`` (``i > 0``): ``2i``."""
    if i < 1:
        raise ValueError(f"combine_count defined for i >= 1, got {i}")
    return 2 * i


def centerpoints_on_b0_surface(d: int, i: int) -> int:
    """``B_i`` centres on the surface of one ``B_0``: ``2^i * C(d, i)``."""
    _check_stage(d, i)
    if i == 0:
        raise ValueError("i must be >= 1 for surface centre counts")
    return (2 ** i) * math.comb(d, i)


def centerpoints_on_b0_plus(d: int, i: int) -> int:
    """``B_i`` centres on the surface of the quadrant ``B_0^+``: ``C(d,i)``."""
    _check_stage(d, i)
    return math.comb(d, i)


def num_shape_kinds(d: int) -> int:
    """Distinct block shapes tessellating the space: ``⌈(d+1)/2⌉``."""
    _check_dim(d)
    return (d + 2) // 2


def block_count_ratio(d: int, i: int) -> int:
    """``B_i`` blocks are ``C(d, i)`` times more numerous than ``B_0``.

    Equivalently the volume of one ``B_i`` is ``C(d, i)`` times smaller
    (the blocks of every stage tessellate the same space).
    """
    _check_stage(d, i)
    return math.comb(d, i)


def table1(d: int, b: int) -> dict:
    """All Table 1 rows for a ``d``-dimensional stencil with depth ``b``."""
    return {
        "dim": d,
        "stages_per_phase": num_stages(d),
        "b0_size": b0_size(d, b),
        "split_counts": [split_count(d, i) for i in range(d)],
        "combine_counts": [combine_count(i) for i in range(1, d + 1)],
        "surface_centerpoints": [
            centerpoints_on_b0_surface(d, i) for i in range(1, d + 1)
        ],
        "quadrant_centerpoints": [
            centerpoints_on_b0_plus(d, i) for i in range(d + 1)
        ],
        "shape_kinds": num_shape_kinds(d),
    }


# ---------------------------------------------------------------------------
# Block centres and point sets
# ---------------------------------------------------------------------------

def stage_center_sets(d: int, i: int) -> Iterator[FrozenSet[int]]:
    """All ``i``-subsets of dimensions that may be glued in stage ``i``."""
    _check_stage(d, i)
    for S in itertools.combinations(range(d), i):
        yield frozenset(S)


def b_i_centers_on_b0(d: int, b: int, i: int) -> np.ndarray:
    """Centres of ``B_i`` blocks on the surface of ``B_0`` at the origin.

    These are all points with ``i`` coordinates equal to ``±b`` and the
    remaining ``d - i`` equal to 0 — ``2^i C(d,i)`` of them (Table 1).
    """
    _check_stage(d, i)
    _check_b(b)
    if i == 0:
        return np.zeros((1, d), dtype=np.int64)
    out: List[Tuple[int, ...]] = []
    for S in itertools.combinations(range(d), i):
        for signs in itertools.product((-1, 1), repeat=i):
            c = [0] * d
            for j, sgn in zip(S, signs):
                c[j] = sgn * b
            out.append(tuple(c))
    return np.asarray(out, dtype=np.int64)


def block_points(d: int, b: int, glued: Iterable[int]) -> np.ndarray:
    """Interior point set of a ``B_i`` block, relative to its centre.

    ``glued`` is the set of glued dimensions (``|glued| = i``).  Points
    satisfy ``max_glued |x| + max_ending |x| ≤ b - 1``; boundary points
    (sum equal to ``b`` or beyond) belong to other stages.
    """
    _check_b(b)
    glued = frozenset(glued)
    if any(not 0 <= j < d for j in glued):
        raise ValueError(f"glued dims {sorted(glued)} out of range for d={d}")
    rng = np.arange(-(b - 1), b)
    mesh = np.meshgrid(*([rng] * d), indexing="ij")
    coords = np.stack([m.ravel() for m in mesh], axis=-1)
    absx = np.abs(coords)
    gl = sorted(glued)
    en = [j for j in range(d) if j not in glued]
    mg = absx[:, gl].max(axis=1) if gl else np.zeros(len(coords), dtype=np.int64)
    me = absx[:, en].max(axis=1) if en else np.zeros(len(coords), dtype=np.int64)
    return coords[mg + me <= b - 1]


def blocks_congruent(pts_a: np.ndarray, pts_b: np.ndarray) -> bool:
    """True if two relative point sets are equal up to an axis permutation.

    This is the congruence notion of Lemma 3.1: ``B_i`` and ``B_{d-i}``
    have the same shape (their defining inequality is symmetric under
    exchanging glued and ending dimension groups).
    """
    if pts_a.shape != pts_b.shape:
        return False
    d = pts_a.shape[1]
    set_b = {tuple(p) for p in pts_b}
    for perm in itertools.permutations(range(d)):
        if {tuple(p[list(perm)]) for p in pts_a} == set_b:
            return True
    return False


def block_volume(d: int, b: int, i: int) -> int:
    """Interior volume of one ``B_i`` block (any glued set — congruent)."""
    _check_stage(d, i)
    return len(block_points(d, b, range(i)))


# ---------------------------------------------------------------------------
# validation helpers
# ---------------------------------------------------------------------------

def _check_dim(d: int) -> None:
    if d < 1:
        raise ValueError(f"dimension must be >= 1, got {d}")


def _check_b(b: int) -> None:
    if b < 1:
        raise ValueError(f"time-tile depth b must be >= 1, got {b}")


def _check_stage(d: int, i: int) -> None:
    _check_dim(d)
    if not 0 <= i <= d:
        raise ValueError(f"stage {i} out of range for d={d}")
