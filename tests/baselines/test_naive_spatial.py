"""Tests for the naive and spatial-tiling baselines."""

import pytest

from repro.baselines import naive_schedule, spatial_schedule
from repro.runtime import schedule_stats, verify_schedule
from repro.stencils import d1p5, game_of_life, heat1d, heat2d, heat3d


class TestNaive:
    @pytest.mark.parametrize("factory,shape", [
        (heat1d, (33,)), (heat2d, (14, 15)), (heat3d, (8, 9, 7)),
        (game_of_life, (12, 11)), (d1p5, (40,)),
    ])
    def test_valid(self, factory, shape):
        spec = factory()
        assert verify_schedule(spec, naive_schedule(spec, shape, 5, chunks=3))

    def test_one_group_per_step(self):
        spec = heat2d()
        s = naive_schedule(spec, (10, 10), 7, chunks=4)
        assert s.num_groups == 7
        assert len(s.tasks) == 7 * 4

    def test_chunks_capped_by_extent(self):
        spec = heat1d()
        s = naive_schedule(spec, (3,), 2, chunks=10)
        assert len(s.tasks) == 2 * 3

    def test_no_redundancy(self):
        spec = heat2d()
        st = schedule_stats(naive_schedule(spec, (10, 12), 4, chunks=3))
        assert st["redundancy"] == 0.0
        assert st["total_point_updates"] == 10 * 12 * 4

    def test_bad_args(self):
        spec = heat1d()
        with pytest.raises(ValueError):
            naive_schedule(spec, (10,), -1)
        with pytest.raises(ValueError):
            naive_schedule(spec, (10,), 2, chunks=0)
        with pytest.raises(ValueError):
            naive_schedule(spec, (10, 10), 2)


class TestSpatial:
    @pytest.mark.parametrize("factory,shape,tile", [
        (heat1d, (30,), (7,)), (heat2d, (15, 14), (4, 6)),
        (heat3d, (9, 8, 7), (4, 4, 4)),
    ])
    def test_valid(self, factory, shape, tile):
        spec = factory()
        assert verify_schedule(spec, spatial_schedule(spec, shape, 4, tile))

    def test_tile_counts(self):
        spec = heat2d()
        s = spatial_schedule(spec, (10, 10), 3, (4, 4))
        assert len(s.tasks) == 3 * 3 * 3  # ceil(10/4)^2 per step

    def test_tiles_partition(self):
        spec = heat2d()
        s = spatial_schedule(spec, (11, 9), 2, (4, 5))
        st = schedule_stats(s)
        assert st["total_point_updates"] == 11 * 9 * 2

    def test_bad_tile(self):
        spec = heat1d()
        with pytest.raises(ValueError):
            spatial_schedule(spec, (10,), 2, (0,))
        with pytest.raises(ValueError):
            spatial_schedule(spec, (10,), 2, (4, 4))
