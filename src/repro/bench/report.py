"""ASCII report rendering for the benchmark harness."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.machine.model import SimResult


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Plain fixed-width table with a header rule."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(c) for c in row] for row in rows
    ]
    widths = [
        max(len(r[j]) for r in cells) for j in range(len(headers))
    ]
    lines = []
    for i, row in enumerate(cells):
        lines.append(
            "  ".join(c.rjust(w) for c, w in zip(row, widths))
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.3g}"
        return f"{v:.3f}"
    return str(v)


_METRICS = {
    "gstencils": ("GStencil/s", lambda r: r.gstencils),
    "gflops": ("GFLOP/s", lambda r: r.gflops),
    "speedup": ("speedup", None),  # handled specially (vs 1-core self)
    "traffic_gb": ("traffic GB", lambda r: r.traffic_gb),
    "bandwidth_gbs": ("bandwidth GB/s", lambda r: r.bandwidth_gbs),
    "time_ms": ("time ms", lambda r: r.time_s * 1e3),
}


def format_scaling(series: Dict[str, List[SimResult]],
                   metric: str = "gstencils") -> str:
    """Core-scaling table: one row per core count, one column per scheme."""
    if metric not in _METRICS:
        raise ValueError(
            f"unknown metric {metric!r}; choose from {sorted(_METRICS)}"
        )
    label, getter = _METRICS[metric]
    schemes = list(series)
    if not schemes:
        return "(no series)"
    cores = [r.cores for r in series[schemes[0]]]
    headers = [f"cores \\ {label}"] + schemes
    rows = []
    for i, p in enumerate(cores):
        row = [p]
        for s in schemes:
            r = series[s][i]
            if metric == "speedup":
                base = series[s][0]
                row.append(base.time_s / r.time_s if r.time_s else 0.0)
            else:
                row.append(getter(r))
        rows.append(row)
    return format_table(headers, rows)
