"""Fault-tolerant schedule execution: checkpoints, retries, guards.

The barrier-group structure that makes tessellated schedules parallel
(tasks of one group are independent — Theorems 3.5/3.6) also gives
them natural *consistency points*: at every barrier the ping-pong
buffer pair is a complete, well-defined state.  This module exploits
that:

* **Checkpointing** — :func:`execute_resilient` snapshots the buffer
  pair every ``checkpoint_interval`` groups.  A snapshot is all the
  state a restart needs (plus the group index), because schedules are
  deterministic replay: re-running groups ``k..g`` from the group-``k``
  snapshot reproduces the original values bit-for-bit.
* **Per-task retry** — a task that raises is re-run up to
  ``max_task_retries`` times (with exponential backoff).  Re-running a
  whole task is idempotent: its first action reads only values written
  by *previous* groups, and tasks of one group touch disjoint regions
  (or overlap with identical-value writes), so a partial first attempt
  cannot contaminate the retry's inputs.
* **Graceful degradation** — a group whose tasks keep failing in the
  thread pool is restored from the last checkpoint and re-executed;
  the final restart runs the replay *sequentially*, removing the pool
  from the fault surface before the run is declared dead with a
  structured :class:`~repro.runtime.errors.ExecutionError`.
* **Invariant guards** — ``validate_structure()`` pre-flight, plus a
  per-group non-finite sweep over both buffers (float grids).  Silent
  NaN corruption is caught at the next barrier and repaired by
  checkpoint restore, since the snapshot predates the corruption.

Faults are injected deterministically via
:class:`~repro.runtime.faults.FaultPlan`, which is what lets the tests
assert the headline property: *a run with injected transient faults
recovers to results bit-identical to a fault-free run*.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor, wait, FIRST_EXCEPTION
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.runtime.errors import (
    DeadlineExceeded,
    ExecutionError,
    GuardViolation,
    InjectedFault,
    RunCancelled,
    RunDeadlineExceeded,
    StallTimeoutError,
)

#: errors a retry/replay can never recover from: the budget they spent
#: is global (wall clock) or the verdict is the caller's (QoS)
_NON_RETRYABLE = (StallTimeoutError, RunDeadlineExceeded, RunCancelled)
from repro.runtime.faults import FaultPlan, poison_task_output
from repro.runtime.schedule import RegionSchedule, ScheduledTask
from repro.runtime.tracing import ExecutionTrace
from repro.stencils.grid import Grid
from repro.stencils.spec import StencilSpec


@dataclass
class ResiliencePolicy:
    """Tunable knobs of the fault-tolerant executor."""

    #: per-task retry budget (0 = fail-fast at task level)
    max_task_retries: int = 2
    #: base backoff before a retry; attempt ``k`` sleeps ``base * 2**k``
    retry_backoff_s: float = 0.0
    #: snapshot the buffers every N successful groups (0 = only the
    #: initial snapshot; restarts then replay from group 0)
    checkpoint_interval: int = 1
    #: restore/restart budget per group before the run is declared dead
    max_group_restarts: int = 2
    #: run the final restart sequentially (degraded mode)
    sequential_fallback: bool = True
    #: sweep both buffers for NaN/Inf after every group (float grids)
    guard_nonfinite: bool = True
    #: soft per-task deadline; overruns count as task failures (None = off)
    task_deadline_s: Optional[float] = None
    #: hard wall-clock budget for the whole execution; once spent, a
    #: stalled worker raises :class:`StallTimeoutError` (not retried,
    #: not replayed) instead of hanging the run forever (None = off)
    wall_deadline_s: Optional[float] = None
    #: run the structural sanitizer (tessellation / dependence / race
    #: analysis, :mod:`repro.runtime.sanitizer`) as a pre-flight and
    #: refuse to execute a schedule with violations
    sanitize: bool = False


@dataclass
class _WallClock:
    """Absolute wall-clock budget shared by every task of one run."""

    start: float
    budget_s: float

    def elapsed(self, now: Optional[float] = None) -> float:
        return (time.perf_counter() if now is None else now) - self.start

    def remaining(self, now: Optional[float] = None) -> float:
        return self.budget_s - self.elapsed(now)

    def expired(self, now: Optional[float] = None) -> bool:
        return self.remaining(now) <= 0


@dataclass
class Checkpoint:
    """Buffer-pair snapshot taken at a barrier (group boundary)."""

    next_index: int  #: index into the sorted group list to resume from
    buffers: Tuple[np.ndarray, np.ndarray]

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self.buffers)


@dataclass
class ResilienceReport:
    """What the resilience layer did during one execution."""

    scheme: str = ""
    groups_run: int = 0
    task_retries: int = 0
    checkpoints_taken: int = 0
    checkpoint_bytes: int = 0
    restores: int = 0
    degraded_groups: int = 0
    guard_sweeps: int = 0
    guard_violations: int = 0
    checkpoint_seconds: float = 0.0
    guard_seconds: float = 0.0
    faults_seen: int = 0

    def describe(self) -> str:
        return (
            f"groups={self.groups_run} retries={self.task_retries} "
            f"checkpoints={self.checkpoints_taken} restores={self.restores} "
            f"degraded={self.degraded_groups} "
            f"guard_violations={self.guard_violations} "
            f"overhead={1e3 * (self.checkpoint_seconds + self.guard_seconds):.1f}ms"
        )


def _run_task_with_faults(
    spec: StencilSpec,
    grid: Grid,
    task: ScheduledTask,
    group: int,
    index: int,
    fault_plan: Optional[FaultPlan],
    deadline_s: Optional[float],
    wall: Optional["_WallClock"] = None,
    units=None,
) -> None:
    """One task attempt: stall/crash probes, actions, corrupt probe.

    ``units`` switches the action loop to the task's precompiled
    allocation-free units (see :mod:`repro.engine.plan`); fault probes,
    undo-log discipline and deadlines are unchanged.
    """
    t0 = time.perf_counter()
    if fault_plan is not None:
        f = fault_plan.stall_fault(group, index)
        if f is not None:
            # sleep in slices so a stall that outlives the wall-clock
            # budget surfaces as a structured error, not a hung suite
            end = time.perf_counter() + f.stall_s
            while True:
                now = time.perf_counter()
                if wall is not None and wall.expired(now):
                    raise StallTimeoutError(
                        task.label or f"g{group}t{index}",
                        elapsed_s=wall.elapsed(now),
                        deadline_s=wall.budget_s,
                        group=group,
                    )
                if now >= end:
                    break
                step = min(0.02, end - now)
                if wall is not None:
                    step = min(step, max(wall.remaining(now), 0.001))
                time.sleep(step)
        fault_plan.raise_if_crash(group, index)
    if units is not None:
        from repro.engine.plan import run_units

        run_units(units, grid, spec)
    else:
        for a in task.actions:
            spec.apply_region(grid.at(a.t), grid.at(a.t + 1), a.region)
    if fault_plan is not None:
        f = fault_plan.corrupt_fault(group, index)
        if f is not None:
            if np.issubdtype(spec.dtype, np.integer):
                # integer grids cannot hold NaN; model as a crash so the
                # failure is loud instead of unrepresentable
                raise InjectedFault("corrupt", group, index)
            poison_task_output(grid, task)
    if deadline_s is not None:
        elapsed = time.perf_counter() - t0
        if elapsed > deadline_s:
            raise DeadlineExceeded(task.label or f"g{group}t{index}",
                                   elapsed, deadline_s)


def _snapshot_task_writes(grid: Grid, task: ScheduledTask) -> List[tuple]:
    """Undo log: copies of every region the task will write.

    Re-running a task is *not* idempotent in general: with ping-pong
    buffers, a task spanning time levels ``t..t+k`` writes the
    ``t``-parity buffer at level ``t+2`` inside the region its first
    action reads, so a retry after a partial (or complete) attempt
    would read corrupted input.  Restoring the write footprint first
    makes every retry start from the task's true pre-state.
    """
    halo = grid.spec.halo
    saved = []
    for a in task.actions:
        idx = tuple(slice(lo + h, hi + h)
                    for (lo, hi), h in zip(a.region, halo))
        saved.append((a.t + 1, idx, grid.at(a.t + 1)[idx].copy()))
    return saved


def _restore_task_writes(grid: Grid, saved: List[tuple]) -> None:
    for t, idx, data in saved:
        grid.at(t)[idx] = data


def _attempt_task(
    spec: StencilSpec,
    grid: Grid,
    task: ScheduledTask,
    group: int,
    index: int,
    policy: ResiliencePolicy,
    fault_plan: Optional[FaultPlan],
    report: ResilienceReport,
    trace: Optional[ExecutionTrace],
    wall: Optional[_WallClock] = None,
    units=None,
) -> None:
    """Run one task with the per-task retry/backoff loop."""
    attempts = 1 + max(0, policy.max_task_retries)
    undo = _snapshot_task_writes(grid, task) if attempts > 1 else None
    for attempt in range(attempts):
        try:
            _run_task_with_faults(spec, grid, task, group, index,
                                  fault_plan, policy.task_deadline_s, wall,
                                  units)
            return
        except _NON_RETRYABLE:
            # the budget is global: retrying cannot recover spent time
            raise
        except Exception as exc:
            if isinstance(exc, InjectedFault):
                report.faults_seen += 1
            if attempt + 1 >= attempts:
                raise
            report.task_retries += 1
            if undo is not None:
                _restore_task_writes(grid, undo)
            if trace is not None:
                trace.record_event(
                    "retry", group, label=task.label,
                    detail=f"attempt {attempt + 2}/{attempts}: {exc}",
                )
            backoff = policy.retry_backoff_s * (2 ** attempt)
            if backoff > 0:
                time.sleep(backoff)


def _guard_nonfinite(spec: StencilSpec, grid: Grid, group: int,
                     report: ResilienceReport,
                     trace: Optional[ExecutionTrace]) -> None:
    """Sweep both ping-pong buffers for NaN/Inf after a group."""
    if np.issubdtype(spec.dtype, np.integer):
        return
    t0 = time.perf_counter()
    ok = all(bool(np.isfinite(b).all()) for b in grid.buffers)
    dt = time.perf_counter() - t0
    report.guard_sweeps += 1
    report.guard_seconds += dt
    if trace is not None:
        trace.record_event("guard", group, seconds=dt,
                           detail="nonfinite sweep")
    if not ok:
        report.guard_violations += 1
        raise GuardViolation(
            "non-finite values detected after barrier group",
            group=group,
        )


def _take_checkpoint(grid: Grid, next_index: int,
                     report: ResilienceReport,
                     trace: Optional[ExecutionTrace],
                     group: int) -> Checkpoint:
    t0 = time.perf_counter()
    ckpt = Checkpoint(next_index=next_index,
                      buffers=(grid.buffers[0].copy(), grid.buffers[1].copy()))
    dt = time.perf_counter() - t0
    report.checkpoints_taken += 1
    report.checkpoint_bytes += ckpt.nbytes
    report.checkpoint_seconds += dt
    if trace is not None:
        trace.record_event("checkpoint", group, seconds=dt,
                           detail=f"{ckpt.nbytes} bytes")
    return ckpt


def _restore_checkpoint(grid: Grid, ckpt: Checkpoint,
                        report: ResilienceReport,
                        trace: Optional[ExecutionTrace],
                        group: int) -> None:
    np.copyto(grid.buffers[0], ckpt.buffers[0])
    np.copyto(grid.buffers[1], ckpt.buffers[1])
    report.restores += 1
    if trace is not None:
        trace.record_event("restore", group,
                           detail=f"resume at group index {ckpt.next_index}")


def _execute_resilient(
    spec: StencilSpec,
    grid: Grid,
    schedule: RegionSchedule,
    policy: Optional[ResiliencePolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    num_threads: int = 1,
    trace: Optional[ExecutionTrace] = None,
    plan=None,
    budget=None,
) -> Tuple[np.ndarray, ResilienceReport]:
    """Checkpoint/restart execution (the ``resilient`` backend's engine).

    ``plan`` accepts a :class:`~repro.engine.plan.CompiledPlan` for the
    same schedule: task attempts then run precompiled allocation-free
    units while every resilience mechanism (undo log, retries,
    checkpoints, guards) is unchanged — restarts replay the *compiled*
    ops on restored state, still bit-identical to a fault-free run.

    Returns ``(interior at time schedule.steps, report)``.  Execution
    is deterministic: with transient faults the recovered result is
    bit-identical to a fault-free run, because every restart replays
    the same region applications on the same restored state.

    Raises :class:`ExecutionError` (or :class:`GuardViolation`) once a
    group has exhausted its per-task retries and its
    ``max_group_restarts`` checkpoint restarts — the final restart
    running sequentially when ``policy.sequential_fallback`` is set.
    """
    policy = policy or ResiliencePolicy()
    if num_threads < 1:
        raise ValueError(f"num_threads must be >= 1, got {num_threads}")
    if spec.is_periodic:
        raise ValueError("region schedules assume non-periodic boundaries")
    if schedule.private_tasks:
        raise ValueError(
            f"schedule {schedule.scheme!r} needs private task storage; "
            f"resilient execution supports shared-buffer schedules only"
        )
    if grid.shape != schedule.shape:
        raise ValueError(
            f"grid shape {grid.shape} != schedule shape {schedule.shape}"
        )
    if plan is not None:
        if plan.private:
            raise ValueError("ghost-zone plans have no resilient path")
        if (plan.shape != schedule.shape or plan.steps != schedule.steps
                or plan.scheme != schedule.scheme):
            raise ValueError("plan was compiled for a different schedule")
    schedule.validate_structure()  # pre-flight guard on every entry
    if policy.sanitize:
        from repro.runtime.errors import SanitizerViolation
        from repro.runtime.sanitizer import sanitize_schedule

        san = sanitize_schedule(spec, schedule)
        if trace is not None:
            trace.record_event("sanitize", 0, seconds=san.seconds,
                               detail=f"{len(san.violations)} violation(s), "
                                      f"{san.actions_checked} action(s)")
            for v in san.violations:
                trace.record_event(
                    "violation", v.group if v.group is not None else -1,
                    label=v.task or "", detail=v.describe(),
                )
        if not san.ok:
            raise SanitizerViolation(schedule.scheme, san.violations)

    groups = schedule.groups()
    gids = sorted(groups)
    report = ResilienceReport(scheme=schedule.scheme)
    wall = (_WallClock(time.perf_counter(), policy.wall_deadline_s)
            if policy.wall_deadline_s is not None else None)
    if budget is not None:
        budget.check(f"{schedule.scheme} resilient entry")
    ckpt = _take_checkpoint(grid, 0, report, trace,
                            gids[0] if gids else 0)
    failures: dict = {}  # group index -> failures so far
    pool = ThreadPoolExecutor(max_workers=num_threads) if num_threads > 1 else None
    try:
        i = 0
        since_ckpt = 0
        while i < len(gids):
            gid = gids[i]
            if budget is not None:
                budget.check(f"group {gid}")
            if wall is not None and wall.expired():
                raise StallTimeoutError(
                    f"group {gid}", elapsed_s=wall.elapsed(),
                    deadline_s=wall.budget_s, group=gid,
                )
            n_failures = failures.get(i, 0)
            sequential = (
                pool is None
                or (policy.sequential_fallback
                    and n_failures >= policy.max_group_restarts)
            )
            try:
                tasks = groups[gid]
                group_units = (plan.task_units(i) if plan is not None
                               else None)
                if sequential or len(tasks) == 1:
                    for ti, task in enumerate(tasks):
                        _attempt_task(spec, grid, task, gid, ti, policy,
                                      fault_plan, report, trace, wall,
                                      group_units[ti] if group_units
                                      else None)
                else:
                    futures = [
                        pool.submit(_attempt_task, spec, grid, task, gid, ti,
                                    policy, fault_plan, report, trace, wall,
                                    group_units[ti] if group_units else None)
                        for ti, task in enumerate(tasks)
                    ]
                    done, pending = wait(futures,
                                         return_when=FIRST_EXCEPTION)
                    first_exc = None
                    for f in done:
                        exc = f.exception()
                        if exc is not None and first_exc is None:
                            first_exc = exc
                    if first_exc is not None:
                        for f in pending:
                            f.cancel()
                        # join still-running tasks before any restore
                        # touches the buffers they may be writing
                        wait(futures)
                        raise first_exc
                if policy.guard_nonfinite:
                    _guard_nonfinite(spec, grid, gid, report, trace)
            except _NON_RETRYABLE:
                raise  # wall-clock budget spent: replaying cannot help
            except Exception as exc:
                failures[i] = n_failures + 1
                if failures[i] > policy.max_group_restarts:
                    if isinstance(exc, GuardViolation):
                        raise
                    raise ExecutionError(
                        f"group failed after {failures[i]} attempt(s) "
                        f"and {report.restores} restore(s): {exc}",
                        scheme=schedule.scheme,
                        group=gid,
                        task_label=getattr(exc, "label", None)
                        or (f"task {exc.task}" if isinstance(exc, InjectedFault)
                            else None),
                        attempts=failures[i],
                    ) from exc
                will_degrade = (
                    policy.sequential_fallback and pool is not None
                    and failures[i] >= policy.max_group_restarts
                )
                if will_degrade:
                    report.degraded_groups += 1
                    if trace is not None:
                        trace.record_event("degrade", gid,
                                           detail="sequential fallback")
                _restore_checkpoint(grid, ckpt, report, trace, gid)
                i = ckpt.next_index
                since_ckpt = 0
                continue
            # group committed
            report.groups_run += 1
            i += 1
            since_ckpt += 1
            if (policy.checkpoint_interval > 0 and i < len(gids)
                    and since_ckpt >= policy.checkpoint_interval):
                ckpt = _take_checkpoint(grid, i, report, trace, gid)
                since_ckpt = 0
    finally:
        if pool is not None:
            pool.shutdown(wait=True)
    return grid.interior(schedule.steps), report


def execute_resilient(
    spec: StencilSpec,
    grid: Grid,
    schedule: RegionSchedule,
    policy: Optional[ResiliencePolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    num_threads: int = 1,
    trace: Optional[ExecutionTrace] = None,
    plan=None,
) -> Tuple[np.ndarray, ResilienceReport]:
    """Execute a schedule with checkpoint/restart fault tolerance.

    Returns ``(interior at time schedule.steps, report)``.

    .. deprecated:: use ``repro.api.run`` / ``Session.execute`` with
       ``backend="resilient"`` instead.
    """
    from repro.api import RunConfig, Session, warn_legacy

    warn_legacy("execute_resilient", "repro.api.run(backend='resilient')")
    config = RunConfig(backend="resilient", engine="naive",
                       threads=num_threads,
                       resilience=policy or ResiliencePolicy(),
                       fault_plan=fault_plan, trace=trace)
    result = Session(spec).execute(grid, schedule, config=config, plan=plan)
    return result.interior, result.stats.resilience
