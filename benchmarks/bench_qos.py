"""QoS zero-overhead guard (docs/reliability.md).

The contract: a run with ``qos=None`` takes the exact pre-QoS code
path, and even an *armed* (but generous) policy costs under 2% on the
Fig. 8 compiled workload — the budget check is one ``is not None``
test per barrier group/stream, plus one ``time.monotonic`` call when a
policy is attached.  This bench pins that bound so a future
enforcement point added inside a hot loop (instead of at a boundary)
fails loudly.
"""

import time

import pytest

from repro import get_stencil
from repro.api import CancelToken, QoSPolicy, RunConfig, Session

pytestmark = pytest.mark.qos

#: Fig. 8 substrate: heat1d, time-tiled, lowered to a compiled plan
SHAPE = (20000,)
STEPS = 32
B = 8
ROUNDS = 5


def _timed_run(session, config):
    t0 = time.perf_counter()
    result = session.run(config)
    return time.perf_counter() - t0, result


def test_qos_overhead_under_two_percent(benchmark, capsys):
    spec = get_stencil("heat1d")
    session = Session(spec)
    plain = RunConfig(shape=SHAPE, steps=STEPS, scheme="tess", b=B,
                      backend="compiled", engine="compiled")
    generous = plain.with_overrides({"qos": QoSPolicy(
        deadline_s=3600.0, cancel_token=CancelToken(),
        max_memory_bytes=1 << 40)})

    # warm the plan cache + the allocator before timing anything
    session.run(plain)

    def measure():
        # interleaved min-of-k so drift (GC, frequency scaling) hits
        # both configurations alike
        t_plain = t_qos = float("inf")
        for _ in range(ROUNDS):
            t, r_plain = _timed_run(session, plain)
            t_plain = min(t_plain, t)
            t, r_qos = _timed_run(session, generous)
            t_qos = min(t_qos, t)
        return t_plain, t_qos, r_plain, r_qos

    t_plain, t_qos, r_plain, r_qos = benchmark.pedantic(
        measure, rounds=1, iterations=1)

    overhead = t_qos / t_plain - 1.0
    with capsys.disabled():
        print(f"\n[qos] compiled heat1d n={SHAPE[0]} steps={STEPS} "
              f"b={B} (min of {ROUNDS}):")
        print(f"  qos=None        : {t_plain * 1e3:8.2f} ms")
        print(f"  generous policy : {t_qos * 1e3:8.2f} ms "
              f"({overhead * +1e2:+.2f}%)")

    # same answer either way, and no degradation hops on the happy path
    import numpy as np
    assert np.array_equal(r_plain.interior, r_qos.interior)
    assert r_qos.stats.degradations == []
    # <2% relative, with a 2 ms absolute floor for timer noise on runs
    # this short
    assert t_qos <= t_plain * 1.02 + 0.002, (
        f"QoS overhead {overhead * 100:.2f}% blew the 2% budget "
        f"({t_plain * 1e3:.2f} ms -> {t_qos * 1e3:.2f} ms)")
