"""Task-level runtime substrate.

Every tiling scheme in :mod:`repro` — the tessellation and all the
baselines — compiles to the same representation: a
:class:`~repro.runtime.schedule.RegionSchedule`, an ordered list of
tasks, each a sequence of ``(time step, hyper-rectangle)`` actions,
partitioned into *barrier groups* (tasks of one group are mutually
independent and may run concurrently).

On top of that one representation sit:

* a sequential executor (:func:`~repro.runtime.schedule.execute_schedule`)
  used for correctness validation of every scheme;
* a threaded executor (:mod:`~repro.runtime.threadpool`) demonstrating
  real shared-memory parallel execution (NumPy releases the GIL inside
  region applications);
* the task-graph analysis (:mod:`~repro.runtime.taskgraph`) feeding the
  simulated machine — work, span, concurrency profiles, footprints.
"""

from repro.runtime.schedule import (
    RegionAction,
    ScheduledTask,
    RegionSchedule,
    execute_schedule,
    schedule_stats,
    verify_schedule,
)
from repro.runtime.taskgraph import TaskGraph, TaskNode, build_taskgraph
from repro.runtime.threadpool import execute_threaded
from repro.runtime.levelize import levelize

__all__ = [
    "RegionAction",
    "ScheduledTask",
    "RegionSchedule",
    "execute_schedule",
    "schedule_stats",
    "verify_schedule",
    "TaskGraph",
    "TaskNode",
    "build_taskgraph",
    "execute_threaded",
    "levelize",
]
