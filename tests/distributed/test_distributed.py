"""Tests for the distributed-memory tessellation (§4.1 built out)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Grid, get_stencil, make_lattice, reference_sweep
from repro.distributed import (
    ClusterSpec,
    SlabPartition,
    communication_plan,
    simulate_distributed,
)
from repro.distributed.exec import _execute_distributed
from repro.distributed.plan import plan_totals
from repro.machine.spec import paper_machine


class TestPartition:
    def test_bounds_cover_domain(self):
        p = SlabPartition((100,), 7)
        bs = p.bounds()
        assert bs[0][0] == 0 and bs[-1][1] == 100
        assert all(b1[1] == b2[0] for b1, b2 in zip(bs, bs[1:]))

    def test_balanced_sizes(self):
        p = SlabPartition((100,), 7)
        sizes = [hi - lo for lo, hi in p.bounds()]
        assert max(sizes) - min(sizes) <= 1

    def test_owner_lookup(self):
        p = SlabPartition((12,), 3)
        assert p.owner_of(0) == 0
        assert p.owner_of(11) == 2
        assert p.owner_of(-5) == 0      # clamped
        assert p.owner_of(99) == 2      # clamped

    def test_owner_of_box_uses_low_corner(self):
        p = SlabPartition((12, 8), 3)
        assert p.owner_of_box(((7, 11), (0, 8))) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SlabPartition((10,), 0)
        with pytest.raises(ValueError):
            SlabPartition((10,), 11)
        with pytest.raises(ValueError):
            SlabPartition((10,), 2, axis=1)

    def test_ghost_width_covers_block_extent(self):
        spec = get_stencil("heat1d")
        lat = make_lattice(spec, (100,), 5)
        g = SlabPartition((100,), 4).ghost_width(lat)
        # 2(b-1)σ + σ + max(base) = 8 + 1 + plateau(1)
        assert g >= 2 * 4 + 1 + 1


class TestExecuteDistributed:
    @pytest.mark.parametrize("kernel,shape,b,ranks", [
        ("heat1d", (80,), 4, 3),
        ("1d5p", (90,), 3, 3),
        ("heat2d", (30, 24), 3, 2),
        ("2d9p", (28, 26), 2, 3),
        ("life", (24, 20), 2, 3),
        ("heat3d", (16, 12, 10), 2, 2),
        ("3d27p", (14, 12, 10), 2, 2),
    ])
    def test_matches_reference(self, kernel, shape, b, ranks):
        spec = get_stencil(kernel)
        steps = 2 * b + 1
        g1 = Grid(spec, shape, seed=4)
        g2 = g1.copy()
        ref = reference_sweep(spec, g1, steps)
        out, stats = _execute_distributed(spec, g2, make_lattice(spec, shape, b),
                                         steps, ranks)
        if np.issubdtype(spec.dtype, np.integer):
            assert np.array_equal(ref, out)
        else:
            assert np.allclose(ref, out, rtol=1e-11, atol=1e-12)
        assert stats.messages > 0 and stats.bytes_sent > 0

    @given(st.integers(40, 90), st.integers(2, 4), st.integers(2, 4),
           st.integers(0, 12))
    @settings(max_examples=15, deadline=None)
    def test_random_1d(self, n, b, ranks, steps):
        spec = get_stencil("heat1d")
        g1 = Grid(spec, (n,), seed=n)
        g2 = g1.copy()
        ref = reference_sweep(spec, g1, steps)
        out, _ = _execute_distributed(spec, g2, make_lattice(spec, (n,), b),
                                     steps, ranks)
        assert np.allclose(ref, out, rtol=1e-11, atol=1e-12)

    def test_single_rank_no_comm(self):
        spec = get_stencil("heat1d")
        g = Grid(spec, (40,), seed=1)
        out, stats = _execute_distributed(
            spec, g, make_lattice(spec, (40,), 3), 6, ranks=1
        )
        assert stats.messages == 0

    def test_second_axis_partition(self):
        spec = get_stencil("heat2d")
        shape = (20, 36)
        g1 = Grid(spec, shape, seed=2)
        g2 = g1.copy()
        ref = reference_sweep(spec, g1, 7)
        out, _ = _execute_distributed(spec, g2, make_lattice(spec, shape, 3),
                                     7, ranks=3, axis=1)
        assert np.allclose(ref, out, rtol=1e-11, atol=1e-12)

    def test_rejects_periodic(self):
        spec = get_stencil("heat1d", boundary="periodic")
        g = Grid(spec, (40,), seed=0)
        lat = make_lattice(spec, (40,), 2)
        with pytest.raises(ValueError):
            _execute_distributed(spec, g, lat, 4, 2)


class TestCommunicationPlan:
    def test_plan_nonempty_and_neighborly(self):
        spec = get_stencil("heat2d")
        lat = make_lattice(spec, (40, 30), 3)
        entries = communication_plan(spec, (40, 30), lat, 4)
        assert entries
        for e in entries:
            assert abs(e.src - e.dst) == 1  # slab partition: neighbours
            assert e.bytes > 0

    def test_plan_scales_with_cross_section(self):
        spec = get_stencil("heat2d")
        lat_a = make_lattice(spec, (40, 20), 2)
        lat_b = make_lattice(spec, (40, 60), 2)
        a = plan_totals(communication_plan(spec, (40, 20), lat_a, 2))
        c = plan_totals(communication_plan(spec, (40, 60), lat_b, 2))
        assert c["total_bytes"] == pytest.approx(3 * a["total_bytes"], rel=0.01)

    def test_single_rank_plan_empty(self):
        spec = get_stencil("heat1d")
        lat = make_lattice(spec, (40,), 2)
        assert communication_plan(spec, (40,), lat, 1) == []

    def test_exec_bytes_bound_plan_bytes(self):
        """The executable exchange over-sends relative to the minimal
        analytic plan (whole dirty windows, both buffers), never the
        other way around."""
        spec = get_stencil("heat1d")
        shape = (96,)
        b = 4
        lat = make_lattice(spec, shape, b)
        g = Grid(spec, shape, seed=0)
        _, stats = _execute_distributed(spec, g, lat, b, 3)
        plan = plan_totals(communication_plan(spec, shape, lat, 3))
        assert stats.bytes_sent >= plan["total_bytes"]


class TestClusterModel:
    def test_simulation_fields(self):
        spec = get_stencil("heat2d")
        shape = (400, 400)
        lat = make_lattice(spec, shape, 8)
        cl = ClusterSpec(nodes=4, node=paper_machine())
        r = simulate_distributed(spec, shape, lat, 32, cl)
        assert r.time_s > 0
        assert r.comm_bytes > 0
        assert 0 <= r.comm_fraction < 1
        assert r.gstencils > 0

    def test_more_nodes_more_comm(self):
        spec = get_stencil("heat2d")
        shape = (400, 400)
        lat = make_lattice(spec, shape, 8)
        r2 = simulate_distributed(spec, shape, lat, 32,
                                  ClusterSpec(2, paper_machine()))
        r8 = simulate_distributed(spec, shape, lat, 32,
                                  ClusterSpec(8, paper_machine()))
        assert r8.comm_bytes > r2.comm_bytes

    def test_strong_scaling_speedup(self):
        spec = get_stencil("heat2d")
        shape = (1600, 1600)
        lat = make_lattice(spec, shape, 16)
        t1 = simulate_distributed(spec, shape, lat, 32,
                                  ClusterSpec(1, paper_machine())).time_s
        t4 = simulate_distributed(spec, shape, lat, 32,
                                  ClusterSpec(4, paper_machine())).time_s
        assert t4 < t1

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(0, paper_machine())
        spec = get_stencil("heat1d")
        lat = make_lattice(spec, (100,), 4)
        cl = ClusterSpec(2, paper_machine())
        with pytest.raises(ValueError):
            simulate_distributed(spec, (100,), lat, -1, cl)
        with pytest.raises(ValueError):
            simulate_distributed(spec, (100,), lat, 8, cl,
                                 cores_per_node=999)
