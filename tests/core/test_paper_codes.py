"""Tests for the literal artifact-code transcriptions (paper appendix)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.paper1d import run_paper1d
from repro.core.paper2d import _ceild, run_paper2d
from repro.stencils import (
    Grid,
    d1p5,
    d2p9,
    game_of_life,
    heat1d,
    heat2d,
    reference_sweep,
)


class TestPaper1D:
    @given(st.integers(20, 120), st.integers(2, 6), st.integers(0, 20))
    @settings(max_examples=40, deadline=None)
    def test_matches_reference(self, n, bt, steps):
        spec = heat1d()
        bx = 4 * bt + 3
        g1 = Grid(spec, (n,), seed=n)
        g2 = g1.copy()
        ref = reference_sweep(spec, g1, steps)
        out = run_paper1d(spec, g2, bx, bt, steps)
        assert np.allclose(ref, out, rtol=1e-11, atol=1e-12)

    def test_order2_slope(self):
        spec = d1p5()
        g1 = Grid(spec, (90,), seed=2)
        g2 = g1.copy()
        ref = reference_sweep(spec, g1, 9)
        out = run_paper1d(spec, g2, bx=26, bt=3, steps=9)
        assert np.allclose(ref, out, rtol=1e-11, atol=1e-12)

    def test_block_hook(self):
        spec = heat1d()
        g = Grid(spec, (60,), seed=1)
        total = []
        run_paper1d(spec, g, 16, 3, 9,
                    on_block=lambda tt, lvl, n, pts: total.append(pts))
        assert sum(total) == 60 * 9

    def test_rejects_degenerate_block(self):
        spec = heat1d()
        g = Grid(spec, (40,), seed=1)
        with pytest.raises(ValueError):
            run_paper1d(spec, g, bx=6, bt=3, steps=5)

    def test_rejects_wrong_rank(self):
        spec = heat2d()
        g = Grid(spec, (10, 10), seed=1)
        with pytest.raises(ValueError):
            run_paper1d(spec, g, 8, 2, 4)

    def test_rejects_periodic(self):
        spec = heat1d("periodic")
        g = Grid(spec, (40,), seed=1)
        with pytest.raises(ValueError):
            run_paper1d(spec, g, 16, 3, 5)


class TestPaper2D:
    @pytest.mark.parametrize("factory", [heat2d, d2p9, game_of_life],
                             ids=["heat2d", "2d9p", "life"])
    def test_kernels_match_reference(self, factory):
        spec = factory()
        shape = (33, 37)
        g1 = Grid(spec, shape, seed=4)
        g2 = g1.copy()
        ref = reference_sweep(spec, g1, 9)
        out = run_paper2d(spec, g2, Bx=12, By=10, bt=2, steps=9)
        if np.issubdtype(spec.dtype, np.integer):
            assert np.array_equal(ref, out)
        else:
            assert np.allclose(ref, out, rtol=1e-11, atol=1e-12)

    @given(st.integers(16, 48), st.integers(16, 48), st.integers(1, 3),
           st.integers(0, 12))
    @settings(max_examples=25, deadline=None)
    def test_random_geometry(self, nx, ny, bt, steps):
        spec = heat2d()
        Bx = 4 * bt + 2
        By = 4 * bt + 4
        g1 = Grid(spec, (nx, ny), seed=steps + nx)
        g2 = g1.copy()
        ref = reference_sweep(spec, g1, steps)
        out = run_paper2d(spec, g2, Bx, By, bt, steps)
        assert np.allclose(ref, out, rtol=1e-11, atol=1e-12)

    def test_block_hook_accounts_all_updates(self):
        spec = heat2d()
        shape = (30, 26)
        g = Grid(spec, shape, seed=1)
        total = []
        run_paper2d(spec, g, 12, 12, 3, 8,
                    on_block=lambda tt, kind, lvl, n, pts: total.append(pts))
        assert sum(total) == 30 * 26 * 8

    def test_rejects_degenerate(self):
        spec = heat2d()
        g = Grid(spec, (30, 30), seed=1)
        with pytest.raises(ValueError):
            run_paper2d(spec, g, Bx=6, By=12, bt=3, steps=5)

    def test_rejects_wrong_rank(self):
        spec = heat1d()
        g = Grid(spec, (30,), seed=1)
        with pytest.raises(ValueError):
            run_paper2d(spec, g, 10, 10, 2, 4)


class TestCeild:
    def test_positive(self):
        assert _ceild(10, 3) == 4
        assert _ceild(9, 3) == 3

    def test_c_truncation_semantics(self):
        # (a + b - 1) / b with C trunc-toward-zero for negative numerators
        assert _ceild(-5, 3) == -1
        assert _ceild(0, 3) == 0
