"""Table 1 — properties of the d-dimensional tessellation.

Regenerates every row of the paper's Table 1 from the geometry module
and cross-checks the printed d=2/d=3 values.
"""

from repro.bench.experiments import table1_properties
from repro.core import geometry as g


def test_table1(benchmark, capsys):
    out = benchmark.pedantic(table1_properties, kwargs={"max_dim": 6},
                             rounds=1, iterations=1)
    with capsys.disabled():
        print("\n[Table 1]")
        print(out)
    # paper's printed values for the d's it illustrates
    assert g.num_stages(2) == 3 and g.num_stages(3) == 4
    assert g.b0_size(2, 3) == 49
    assert g.centerpoints_on_b0_surface(3, 1) == 6
    assert g.num_shape_kinds(3) == 2
