"""Tests for address-stream cache simulation.

The headline check: the exact LRU simulator agrees *qualitatively*
with the analytic traffic model — time-tiled schedules move far fewer
bytes than naive sweeps on the same (scaled) hierarchy.
"""

import pytest

from repro.baselines import naive_schedule
from repro.core import make_lattice
from repro.core.schedules import tess_schedule
from repro.machine.access import simulate_schedule_cache
from repro.machine.spec import paper_machine
from repro.stencils import d1p5, heat1d, heat2d


@pytest.fixture(scope="module")
def tiny_machine():
    # caches scaled so a 1D grid of a few thousand points behaves like
    # the paper's 12M-point grid on 30 MB of LLC
    return paper_machine().scaled_caches(1 / 4096)


class TestStreamTraffic:
    def test_naive_streams_every_step(self, tiny_machine):
        spec = heat1d()
        n, steps = 4096, 4
        sched = naive_schedule(spec, (n,), steps)
        hier = simulate_schedule_cache(spec, sched, tiny_machine)
        # grid pair = 2*8*n bytes = 64 KB vs ~7.5 KB LLC: every sweep
        # re-streams; traffic ≈ steps * (read + write) * n * 8
        expect = steps * 2 * n * 8
        assert hier.memory_traffic_bytes >= 0.8 * expect

    def test_tessellation_reuses_in_cache(self, tiny_machine):
        spec = heat1d()
        n, steps, b = 4096, 16, 8
        naive = simulate_schedule_cache(
            spec, naive_schedule(spec, (n,), steps), tiny_machine
        )
        lat = make_lattice(spec, (n,), b)
        tess = simulate_schedule_cache(
            spec, tess_schedule(spec, (n,), lat, steps), tiny_machine
        )
        assert tess.memory_traffic_bytes < 0.5 * naive.memory_traffic_bytes

    def test_fitting_problem_stays_resident(self):
        spec = heat1d()
        big = paper_machine()  # unscaled: 4k points easily fit L2
        sched = naive_schedule(spec, (4096,), 6)
        hier = simulate_schedule_cache(spec, sched, big, levels=("l2",))
        # after the cold read, every sweep hits
        cold = 2 * (4096 + 2) * 8 / big.cache_line
        assert hier.mem_reads <= 1.2 * cold

    def test_order2_stencil_stream(self, tiny_machine):
        spec = d1p5()
        sched = naive_schedule(spec, (2048,), 3)
        hier = simulate_schedule_cache(spec, sched, tiny_machine)
        assert hier.memory_traffic_bytes > 0

    def test_2d_rows_collapse_offsets(self, tiny_machine):
        spec = heat2d()
        sched = naive_schedule(spec, (48, 48), 2)
        hier = simulate_schedule_cache(spec, sched, tiny_machine)
        # sanity: traffic bounded by (reads+writes) with all 5 offsets
        upper = 2 * 6 * 48 * 50 * 8
        assert 0 < hier.memory_traffic_bytes <= upper


class TestAgreementWithAnalyticModel:
    def test_traffic_ratio_matches_model_direction(self, tiny_machine):
        """LRU-simulated and analytic traffic agree on the winner and
        roughly on the ratio (within 3x)."""
        from repro.machine.model import simulate

        spec = heat1d()
        n, steps, b = 4096, 16, 8
        nsched = naive_schedule(spec, (n,), steps)
        lat = make_lattice(spec, (n,), b)
        tsched = tess_schedule(spec, (n,), lat, steps)
        sim_n = simulate_schedule_cache(spec, nsched, tiny_machine)
        sim_t = simulate_schedule_cache(spec, tsched, tiny_machine)
        mod_n = simulate(spec, nsched, tiny_machine, 1)
        mod_t = simulate(spec, tsched, tiny_machine, 1)
        ratio_sim = sim_n.memory_traffic_bytes / sim_t.memory_traffic_bytes
        ratio_mod = mod_n.traffic_bytes / mod_t.traffic_bytes
        assert ratio_sim > 1 and ratio_mod > 1
        assert ratio_sim / ratio_mod < 3 and ratio_mod / ratio_sim < 3
