"""Tile-size search: simulated-machine or measured-wallclock objective.

Two objectives share one search:

* ``objective="simulate"`` (default, historical behaviour) scores a
  configuration by simulated execution time on a given machine/core
  count — the search never executes the stencil, so it is cheap enough
  to sweep dozens of configurations;
* ``objective="wallclock"`` really runs each candidate schedule through
  the compiled engine and scores it by measured min-of-``repeat``
  seconds.  Probes fetch their plan from the engine's
  :class:`~repro.engine.cache.PlanCache` keyed by the tile parameters,
  so re-probing a configuration (grid-search/coordinate-descent
  revisits, repeat sweeps) re-times the *same* compiled plan instead of
  recompiling — the second probe of identical params is a cache hit,
  observable on ``cache.stats``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.machine.model import SimResult, simulate
from repro.machine.spec import MachineSpec
from repro.stencils.spec import StencilSpec


@dataclass(frozen=True)
class MeasuredResult:
    """Wall-clock analogue of :class:`SimResult` for measured probes."""

    time_s: float
    points: int

    @property
    def gstencils(self) -> float:
        if self.time_s <= 0:
            return 0.0
        return self.points / self.time_s / 1e9


@dataclass(frozen=True)
class TuneResult:
    """One evaluated configuration."""

    b: int
    core_widths: Tuple[int, ...]
    result: Union[SimResult, MeasuredResult]

    @property
    def time_s(self) -> float:
        return self.result.time_s

    @property
    def measured(self) -> bool:
        return isinstance(self.result, MeasuredResult)

    def describe(self) -> str:
        kind = "measured" if self.measured else "simulated"
        return (
            f"b={self.b} core_widths={self.core_widths}: "
            f"{self.result.gstencils:.3f} GStencil/s "
            f"({self.result.time_s * 1e3:.2f} ms {kind})"
        )


def candidate_depths(shape: Sequence[int], steps: int,
                     slopes: Sequence[int]) -> List[int]:
    """Sensible time-tile depths: powers of two up to the geometry cap."""
    cap = min(
        max(1, (min(int(n) for n in shape)) // (4 * max(slopes))),
        max(1, steps),
    )
    out = []
    b = 2
    while b <= cap:
        out.append(b)
        b *= 2
    return out or [1]


def _evaluate(spec: StencilSpec, shape: Sequence[int], steps: int,
              machine: MachineSpec, cores: int, b: int,
              core_widths: Sequence[int], merged: bool,
              objective: str = "simulate", cache=None,
              repeat: int = 3) -> Optional[TuneResult]:
    from repro.api import RunConfig, Session

    config = RunConfig(
        scheme="tess" if merged else "tess-unmerged",
        shape=tuple(int(n) for n in shape), steps=steps, b=b,
        core_widths=tuple(int(w) for w in core_widths),
    )
    session = Session(spec, cache=cache)
    try:
        built = session.build(config)
    except ValueError:
        return None
    sched = built.schedule
    if not sched.tasks:
        return None
    if objective == "wallclock":
        from repro.perf.wallclock import time_plan

        plan = session.lower(sched, built.params)
        secs, _ = time_plan(plan, repeat=repeat, warmup=1)
        res: Union[SimResult, MeasuredResult] = MeasuredResult(
            time_s=secs, points=sched.total_points())
    elif objective == "simulate":
        res = simulate(spec, sched, machine, cores)
    else:
        raise ValueError(f"unknown objective {objective!r}")
    return TuneResult(b=b, core_widths=tuple(core_widths), result=res)


def grid_search(
    spec: StencilSpec,
    shape: Sequence[int],
    steps: int,
    machine: MachineSpec,
    cores: int,
    depths: Optional[Iterable[int]] = None,
    width_factors: Iterable[int] = (1, 2, 4),
    merged: bool = True,
    objective: str = "simulate",
    cache=None,
    repeat: int = 3,
) -> List[TuneResult]:
    """Sweep ``b`` × isotropic core-width factors; sorted best-first.

    ``width_factors`` multiply the per-axis slope to form core widths
    (the paper sets "other parameters to the half or double of the
    blocking size" — the same neighbourhood this sweep covers).
    ``objective="wallclock"`` times compiled plans instead of
    simulating (see module docstring); ``cache``/``repeat`` configure
    that path.
    """
    if depths is None:
        depths = candidate_depths(shape, steps, spec.slopes)
    results: List[TuneResult] = []
    for b in depths:
        for f in width_factors:
            widths = [max(sg, f * sg * b // 2) for sg in spec.slopes]
            r = _evaluate(spec, shape, steps, machine, cores, b, widths,
                          merged, objective=objective, cache=cache,
                          repeat=repeat)
            if r is not None:
                results.append(r)
    results.sort(key=lambda r: r.time_s)
    return results


def tune_tessellation(
    spec: StencilSpec,
    shape: Sequence[int],
    steps: int,
    machine: MachineSpec,
    cores: int,
    merged: bool = True,
    rounds: int = 2,
    objective: str = "simulate",
    cache=None,
    repeat: int = 3,
) -> TuneResult:
    """Coordinate descent: best ``b`` first, then per-axis widths.

    Starts from the best isotropic grid-search point and repeatedly
    tries halving/doubling each axis width independently (anisotropic
    coarsening is the point of §4.2 — e.g. the paper's 128×256×64
    Heat-2D blocking).  With ``objective="wallclock"`` every probe
    scores by measured compiled-plan time; configurations revisited
    across rounds hit the plan cache instead of recompiling.
    """
    coarse = grid_search(spec, shape, steps, machine, cores, merged=merged,
                         objective=objective, cache=cache, repeat=repeat)
    if not coarse:
        raise ValueError("no feasible tessellation configuration found")
    best = coarse[0]
    d = spec.ndim
    for _ in range(rounds):
        improved = False
        for axis in range(d):
            for factor in (0.5, 2.0):
                widths = list(best.core_widths)
                w = max(spec.slopes[axis], int(round(widths[axis] * factor)))
                if w == widths[axis]:
                    continue
                widths[axis] = w
                cand = _evaluate(spec, shape, steps, machine, cores,
                                 best.b, widths, merged,
                                 objective=objective, cache=cache,
                                 repeat=repeat)
                if cand is not None and cand.time_s < best.time_s:
                    best = cand
                    improved = True
        if not improved:
            break
    return best
