"""Baseline tiling schemes the paper compares against (§2, §5).

Every baseline is a *schedule generator* producing a
:class:`~repro.runtime.schedule.RegionSchedule`, so all schemes —
including the tessellation itself — are executed, validated and
simulated through identical machinery:

* :mod:`~repro.baselines.naive` — the (d+1)-loop naive sweep (one
  barrier per time step), optionally chunked for parallelism;
* :mod:`~repro.baselines.spatial` — per-step rectangular space tiling;
* :mod:`~repro.baselines.overlapped` — hyper-rectangular time tiling
  with redundant halo computation (ghost-zone / trapezoid overlap,
  §2.1 "Overlapped tiling");
* :mod:`~repro.baselines.diamond` — Pluto-style diamond tiling with
  concurrent start (Bandishti et al.), expressed as a one-axis-uniform
  tessellation lattice (the paper notes both produce the same 1D
  diamond code);
* :mod:`~repro.baselines.cache_oblivious` — Pochoir-style
  Frigo–Strumpen trapezoidal decomposition with hyperspace cuts;
* :mod:`~repro.baselines.mwd` — Girih-style multicore wavefront
  diamond (diamond along one axis, intra-tile parallelism, LLC-sized
  working sets).
"""

from repro.baselines.naive import naive_schedule
from repro.baselines.spatial import spatial_schedule
from repro.baselines.overlapped import overlapped_schedule, execute_overlapped
from repro.baselines.diamond import diamond_schedule, diamond_lattice
from repro.baselines.cache_oblivious import trapezoid_schedule
from repro.baselines.mwd import mwd_schedule
from repro.baselines.hexagonal import hexagonal_schedule, hexagonal_lattice
from repro.baselines.skewed import skewed_schedule

__all__ = [
    "naive_schedule",
    "spatial_schedule",
    "overlapped_schedule",
    "diamond_schedule",
    "diamond_lattice",
    "trapezoid_schedule",
    "mwd_schedule",
    "hexagonal_schedule",
    "hexagonal_lattice",
    "skewed_schedule",
]
