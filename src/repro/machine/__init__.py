"""Simulated evaluation machine.

The paper's measurements were taken on a dual-socket 12-core Xeon
E5-2670 system; this environment has one core and no native compiler,
so the figures are regenerated on a *simulated* machine instead (see
DESIGN.md §4 for the substitution argument):

* :mod:`~repro.machine.spec` — machine description, with
  :func:`~repro.machine.spec.paper_machine` configured from the
  paper's §5.1 (2 × 12 cores, 2.7 GHz, 32 KB / 256 KB / 30 MB caches);
* :mod:`~repro.machine.cache` — a set-associative LRU cache simulator
  and multi-level hierarchy (used to validate the analytic traffic
  estimates on small instances);
* :mod:`~repro.machine.access` — address-stream generation from region
  schedules for the cache simulator;
* :mod:`~repro.machine.model` — the roofline + LPT-scheduling cost
  model that turns a scheme's real task graph into time, GFLOP/s,
  memory traffic and bandwidth numbers.
"""

from repro.machine.spec import MachineSpec, paper_machine
from repro.machine.cache import SetAssociativeCache, CacheHierarchy
from repro.machine.access import simulate_schedule_cache
from repro.machine.model import SimResult, simulate

__all__ = [
    "MachineSpec",
    "paper_machine",
    "SetAssociativeCache",
    "CacheHierarchy",
    "simulate_schedule_cache",
    "SimResult",
    "simulate",
]
