"""Checksummed duplex channels for the elastic process runtime.

Every rank of :mod:`repro.distributed.elastic` talks to the
coordinator over one duplex OS pipe; the coordinator routes
rank-to-rank traffic (boundary bands, retransmit requests), which is
what keeps recovery tractable — respawning a rank only requires one
fresh pipe, never re-plumbing live neighbours.

The wire unit is a :class:`Message`.  Data-bearing messages (``band``,
``result``) carry their payload as *bytes* plus a CRC32 computed at
pack time, so corruption in flight — the ``flip_bits`` fault, or real
link/memory trouble — is caught at *receive* time with a retransmit
request, instead of weeks later as numeric divergence.  Control
messages (heartbeats, barrier/commit/abort/resume tokens) carry small
Python objects and are not checksummed.

Receive-side robustness lives in :class:`RetryPolicy`: a bounded
number of per-message wall-clock timeouts, each followed by a
retransmit request and an exponentially growing wait.  The policy is
deliberately receiver-driven — the sender keeps a per-stage outbox and
answers ``resend`` requests — because the receiver is the only party
that knows a message is missing.

:class:`Channel` is thread-safe on the send side (the worker's
heartbeat thread shares the pipe with the main loop; interleaved
writes over ``PIPE_BUF`` would corrupt the stream without the lock).
"""

from __future__ import annotations

import pickle
import threading
import zlib
from dataclasses import dataclass, field, replace
from multiprocessing.connection import Connection
from typing import Any, Optional, Tuple

# -- message kinds ---------------------------------------------------

#: rank -> coordinator (routed to a neighbour): boundary-band payload
BAND = "band"
#: receiver -> sender (routed): please retransmit band ``key``
RESEND = "resend"
#: worker liveness + progress beacon (payload: (phase, stage))
HEARTBEAT = "heartbeat"
#: worker announces it is up (initial spawn or respawn)
HELLO = "hello"
#: worker finished a phase and spilled its checkpoint (payload: stats)
PHASE_DONE = "phase-done"
#: coordinator: phase globally complete, prune old checkpoints, go on
COMMIT = "commit"
#: coordinator: kill current phase, restore checkpoint ``payload``
ABORT = "abort"
#: worker: restored to the requested checkpoint, waiting for resume
RESTORED = "restored"
#: coordinator: all ranks restored/respawned, resume execution
RESUME = "resume"
#: worker's final slab (checksummed payload)
RESULT = "result"
#: worker-reported structured failure (exchange timeout, checksum…)
FAILURE = "failure"
#: coordinator: run over, exit cleanly
SHUTDOWN = "shutdown"

#: ``src``/``dst`` id of the coordinator endpoint
COORDINATOR = -1


class ChannelClosed(Exception):
    """The peer endpoint is gone (EOF / broken pipe)."""


@dataclass(frozen=True)
class Message:
    """One routed wire message.

    ``key`` addresses data messages — ``(stage, src)`` for bands, so a
    receiver can match, deduplicate and buffer out-of-order arrivals.
    ``crc`` covers ``payload`` only when it is ``bytes``.
    """

    kind: str
    src: int
    dst: int
    epoch: int
    key: Tuple[int, ...] = ()
    crc: int = 0
    payload: Any = None


def checksum(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def pack_payload(obj: Any) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def unpack_payload(data: bytes) -> Any:
    return pickle.loads(data)


def make_data_message(kind: str, src: int, dst: int, epoch: int,
                      key: Tuple[int, ...], obj: Any) -> Message:
    """Pack ``obj`` and seal it with its CRC32."""
    data = pack_payload(obj)
    return Message(kind=kind, src=src, dst=dst, epoch=epoch, key=key,
                   crc=checksum(data), payload=data)


def verify_message(msg: Message) -> bool:
    """True iff the payload bytes still match the sender's CRC."""
    if not isinstance(msg.payload, (bytes, bytearray)):
        return True
    return checksum(bytes(msg.payload)) == msg.crc


def corrupt_payload(msg: Message) -> Message:
    """Flip bits of a data payload *after* its CRC was computed.

    The ``flip_bits`` fault: the returned message fails
    :func:`verify_message` at the receiver, which is exactly the point
    — garbled data must be caught by the checksum, not by numerics.
    """
    if not isinstance(msg.payload, (bytes, bytearray)) or not msg.payload:
        return msg
    data = bytearray(msg.payload)
    data[len(data) // 2] ^= 0xFF
    return replace(msg, payload=bytes(data))


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded per-message timeouts with exponential backoff.

    Attempt ``k`` (0-based) waits ``timeout_s + backoff_s * 2**k``
    before declaring the message missing; between attempts the
    receiver issues a retransmit request.  ``max_retries`` bounds the
    retransmit requests, so a persistent drop surfaces as a structured
    :class:`~repro.runtime.errors.ExchangeTimeoutError` after
    ``max_retries + 1`` windows instead of hanging the run.
    """

    timeout_s: float = 0.25
    max_retries: int = 3
    backoff_s: float = 0.05

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {self.timeout_s}")
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )

    @property
    def attempts(self) -> int:
        return self.max_retries + 1

    def attempt_timeout(self, attempt: int) -> float:
        return self.timeout_s + self.backoff_s * (2 ** attempt)

    def total_budget_s(self) -> float:
        return sum(self.attempt_timeout(k) for k in range(self.attempts))


@dataclass
class Channel:
    """A duplex pipe endpoint with thread-safe sends and timed receives."""

    conn: Connection
    _send_lock: threading.Lock = field(default_factory=threading.Lock,
                                       repr=False)

    def send(self, msg: Message) -> None:
        try:
            with self._send_lock:
                self.conn.send(msg)
        except (BrokenPipeError, ConnectionError, EOFError, OSError) as exc:
            raise ChannelClosed(str(exc)) from exc

    def recv(self, timeout_s: Optional[float]) -> Optional[Message]:
        """Next message, or ``None`` once ``timeout_s`` elapses."""
        try:
            if timeout_s is not None and not self.conn.poll(timeout_s):
                return None
            return self.conn.recv()
        except (BrokenPipeError, ConnectionError, EOFError, OSError) as exc:
            raise ChannelClosed(str(exc)) from exc

    def poll(self) -> bool:
        try:
            return self.conn.poll(0)
        except (BrokenPipeError, ConnectionError, EOFError, OSError) as exc:
            raise ChannelClosed(str(exc)) from exc

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
