"""Tests for the analytic performance models and wall-clock helpers."""

import pytest

from repro.baselines import naive_schedule
from repro.machine.spec import paper_machine
from repro.perf import (
    arithmetic_intensity,
    machine_balance,
    naive_traffic_bytes,
    roofline_time_s,
    time_schedule,
    timetile_traffic_bytes,
)
from repro.stencils import d3p27, heat1d, heat2d, heat3d


class TestArithmeticIntensity:
    def test_streaming_intensity(self):
        spec = heat2d()  # 9 flops, 24 bytes
        assert arithmetic_intensity(spec) == pytest.approx(9 / 24)

    def test_uncached_lower(self):
        spec = heat2d()
        assert (arithmetic_intensity(spec, cached=False)
                < arithmetic_intensity(spec, cached=True))

    def test_box_has_higher_intensity(self):
        assert (arithmetic_intensity(d3p27())
                > arithmetic_intensity(heat3d()))


class TestTrafficFormulas:
    def test_naive_formula(self):
        spec = heat1d()
        assert naive_traffic_bytes(spec, (100,), 10) == 3 * 8 * 100 * 10

    def test_timetile_reduction(self):
        spec = heat2d()
        naive = naive_traffic_bytes(spec, (64, 64), 32)
        tiled = timetile_traffic_bytes(spec, (64, 64), 32, b=8)
        # 2/3 factor per phase and b-fold fewer phases
        assert tiled == pytest.approx(naive * 2 / (3 * 8))

    def test_timetile_rounds_phases_up(self):
        spec = heat1d()
        t1 = timetile_traffic_bytes(spec, (10,), 9, b=4)  # 3 phases
        t2 = timetile_traffic_bytes(spec, (10,), 8, b=4)  # 2 phases
        assert t1 > t2

    def test_timetile_bad_b(self):
        with pytest.raises(ValueError):
            timetile_traffic_bytes(heat1d(), (10,), 4, b=0)


class TestRoofline:
    def test_compute_bound(self):
        m = paper_machine()
        t = roofline_time_s(m, 1, flops=1e9, traffic_bytes=1.0)
        assert t == pytest.approx(1e9 / m.flop_rate)

    def test_memory_bound(self):
        m = paper_machine()
        t = roofline_time_s(m, 24, flops=1.0, traffic_bytes=1e9)
        assert t == pytest.approx(1e9 / m.total_mem_bw)

    def test_machine_balance_decreases_with_cores(self):
        m = paper_machine()
        # more cores -> more flops per byte available... flops grow
        # linearly, bandwidth saturates: balance rises
        assert machine_balance(m, 24) > machine_balance(m, 2)

    def test_bad_cores(self):
        with pytest.raises(ValueError):
            roofline_time_s(paper_machine(), 0, 1.0, 1.0)


class TestWallclock:
    def test_time_schedule_returns_output(self):
        spec = heat1d()
        sched = naive_schedule(spec, (64,), 4)
        seconds, out = time_schedule(spec, sched)
        assert seconds > 0
        assert out.shape == (64,)

    def test_time_schedule_private(self):
        from repro.baselines import overlapped_schedule

        spec = heat1d()
        sched = overlapped_schedule(spec, (40,), 4, (10,), 2)
        seconds, out = time_schedule(spec, sched)
        assert seconds > 0 and out.shape == (40,)
