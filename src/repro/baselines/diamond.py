"""Pluto-style diamond tiling (Bandishti et al. [3]) — concurrent start.

For a 1D stencil, diamond tiling alternates triangular and inverted-
triangular tiles of height ``b`` — the paper's §3.1 shows this is
exactly the tessellation's two-stage 1D scheme ("our scheme and PluTo
produce the same diamond tiling codes").  This module uses the same
identity constructively: the diamond baseline is a tessellation
lattice that is *uniform* along the cut axes and *uncut* (constant
distance) along the rest.  With one cut axis this is the classic
diamond-slab wavefront; with two cut axes and the unit-stride axis
left uncut it matches the configuration of Pluto's evaluated 3D codes
("codes of Pluto, Pochoir and ours leave the unit-stride dimension
uncut", §5.2).

What this baseline deliberately does *not* get from the tessellation:

* no per-dimension coarsening (§4.2) — Pluto's tile sizes are fixed,
  isotropic, chosen at compile time (Table 4);
* no ``B_d``+``B_0`` merging (§4.3);
* cut-axis wavefront width ``N/(2bσ)`` per axis — when the product is
  small or indivisible by the core count, the load imbalance the paper
  reports for Pluto at high core counts appears naturally.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.profiles import AxisProfile, TessLattice
from repro.core.schedules import tess_schedule
from repro.runtime.schedule import RegionSchedule
from repro.stencils.spec import StencilSpec


def default_cut_dims(ndim: int) -> Sequence[int]:
    """Pluto-like default: cut every axis except the unit-stride one.

    (For 1D the single axis is cut.)
    """
    return tuple(range(max(1, ndim - 1)))


def diamond_lattice(
    spec: StencilSpec,
    shape: Sequence[int],
    b: int,
    cut_dims: Optional[Sequence[int]] = None,
) -> TessLattice:
    """Lattice realising diamond tiling along ``cut_dims``."""
    shape = tuple(int(n) for n in shape)
    if len(shape) != spec.ndim:
        raise ValueError(f"shape rank {len(shape)} != ndim {spec.ndim}")
    if cut_dims is None:
        cut_dims = default_cut_dims(spec.ndim)
    cut = set(int(j) for j in cut_dims)
    if not cut or any(not 0 <= j < spec.ndim for j in cut):
        raise ValueError(f"invalid cut_dims {sorted(cut)} for d={spec.ndim}")
    profiles = []
    for j, (n, sg) in enumerate(zip(shape, spec.slopes)):
        if j in cut:
            profiles.append(
                AxisProfile.uniform(n, b, sigma=sg, periodic=spec.is_periodic)
            )
        else:
            profiles.append(
                AxisProfile.uncut(n, b, sigma=sg, periodic=spec.is_periodic)
            )
    return TessLattice(tuple(profiles))


def diamond_schedule(
    spec: StencilSpec,
    shape: Sequence[int],
    b: int,
    steps: int,
    cut_dims: Optional[Sequence[int]] = None,
    cut_dim: Optional[int] = None,
) -> RegionSchedule:
    """Diamond tiling of ``steps`` steps: tiles of half-extent ``b·σ``.

    Each phase has ``(#cut axes) + 1`` barrier groups (the diamond
    families); all tiles of a group are independent (concurrent start).
    ``cut_dim`` is a convenience alias for a single cut axis.
    """
    if cut_dim is not None:
        if cut_dims is not None:
            raise ValueError("pass either cut_dim or cut_dims, not both")
        cut_dims = (cut_dim,)
    shape = tuple(int(n) for n in shape)
    if any(n == 0 for n in shape):
        # empty interior: nothing to update, a valid empty schedule
        return RegionSchedule(scheme="diamond", shape=shape, steps=steps)
    lattice = diamond_lattice(spec, shape, b, cut_dims=cut_dims)
    sched = tess_schedule(spec, tuple(int(n) for n in shape), lattice, steps)
    sched.scheme = "diamond"
    return sched
