"""Property-based tests (hypothesis) for the update-time functions.

Random ``(d, b, slopes, shape)`` within the supported ranges must
satisfy the paper's algebra everywhere, not just on the hand-picked
examples of ``tests/core/test_timefunc.py``:

* per-point update counts sum to exactly ``b`` per phase
  (Theorem 3.5, both the gap form and ``lemma_3_2``), and
* the stage windows ``[b - a_(i-1), b - a_(i))`` partition ``[0, b)``;

and ``tess_schedule`` must realise the same invariant geometrically:
for any supported lattice, every phase performs exactly
``interior volume × phase span`` point updates with a clean sanitizer
report (exact tessellation, legal dependences, no races).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import get_stencil
from repro.core import make_lattice
from repro.core.schedules import tess_schedule
from repro.core.timefunc import (
    lemma_3_2,
    stage_window,
    theorem_3_5_holds,
    update_counts,
)
from repro.runtime import sanitize_schedule

pytestmark = pytest.mark.sanitizer


# a distance vector: d entries in [0, b], plus the b that caps them
dist_vectors = st.integers(min_value=1, max_value=12).flatmap(
    lambda b: st.tuples(
        st.just(b),
        st.lists(st.integers(min_value=0, max_value=b),
                 min_size=1, max_size=4),
    )
)


class TestTimefuncProperties:
    @given(dist_vectors)
    @settings(max_examples=200, deadline=None)
    def test_update_counts_sum_to_b(self, bv):
        """Theorem 3.5: the stage gaps telescope to exactly b."""
        b, a = bv
        counts = update_counts(np.array(a), b)
        assert counts.shape[-1] == len(a) + 1
        assert np.all(counts >= 0)
        assert counts.sum() == b
        assert bool(theorem_3_5_holds(np.array(a), b))

    @given(dist_vectors)
    @settings(max_examples=200, deadline=None)
    def test_lemma_3_2_matches_gap_form(self, bv):
        """The min/max form equals the sorted-gap form for every stage."""
        b, a = bv
        arr = np.array(a)
        counts = update_counts(arr, b)
        for i in range(len(a) + 1):
            assert lemma_3_2(arr, b, i) == counts[..., i]

    @given(dist_vectors)
    @settings(max_examples=200, deadline=None)
    def test_stage_windows_partition_phase(self, bv):
        """Windows [b-a_(i-1), b-a_(i)) tile [0, b) back to back."""
        b, a = bv
        arr = np.array(a)
        d = len(a)
        prev_end = 0
        for i in range(d + 1):
            start, end = stage_window(arr, b, i)
            assert start == prev_end       # contiguous, no overlap, no gap
            assert start <= end            # empty stages allowed
            prev_end = int(end)
        assert prev_end == b               # exactly the phase

    @given(dist_vectors)
    @settings(max_examples=100, deadline=None)
    def test_batch_broadcasting_consistent(self, bv):
        b, a = bv
        batch = np.array([a, a])
        single = update_counts(np.array(a), b)
        assert np.array_equal(update_counts(batch, b)[0], single)


# supported tessellation inputs: kernel picks (d, slopes); b and the
# per-axis extents stay small enough for the suite to be fast but large
# enough to exercise interior + boundary blocks
tess_inputs = st.tuples(
    st.sampled_from(["heat1d", "1d5p", "heat2d", "life"]),
    st.integers(min_value=2, max_value=5),       # b
    st.integers(min_value=20, max_value=60),     # axis extent seed
    st.booleans(),                               # merged
)


class TestTessScheduleProperties:
    @given(tess_inputs)
    @settings(max_examples=25, deadline=None)
    def test_phase_updates_and_sanitizer(self, inp):
        """Every point advances exactly once per step, per Theorem 3.5:
        total point updates == interior volume × steps, and the
        schedule sanitizes clean."""
        kernel, b, n, merged = inp
        spec = get_stencil(kernel)
        shape = tuple(n // (1 + j) + 4 for j in range(spec.ndim))
        steps = 2 * b  # two full phases
        lat = make_lattice(spec, shape, b)
        sched = tess_schedule(spec, shape, lat, steps, merged=merged)
        interior = int(np.prod(shape))
        assert sched.total_points() == interior * steps
        report = sanitize_schedule(spec, sched)
        assert report.ok, report.describe()

    @given(tess_inputs)
    @settings(max_examples=10, deadline=None)
    def test_partial_phase_also_exact(self, inp):
        """Steps not a multiple of b: the clipped final phase still
        tessellates exactly."""
        kernel, b, n, merged = inp
        spec = get_stencil(kernel)
        shape = tuple(n // (1 + j) + 4 for j in range(spec.ndim))
        steps = b + max(1, b // 2)
        lat = make_lattice(spec, shape, b)
        sched = tess_schedule(spec, shape, lat, steps, merged=merged)
        assert sched.total_points() == int(np.prod(shape)) * steps
        assert sanitize_schedule(spec, sched).ok
