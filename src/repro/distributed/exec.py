"""Executable message-passing simulation of the distributed scheme.

Each rank holds its own pair of (full-size, for simplicity) ping-pong
arrays but only relies on values inside its slab plus a ghost band.
Execution follows the tessellation's stage structure:

1. every rank executes the blocks it owns (by base low corner);
2. at the stage barrier, neighbouring ranks exchange *boundary bands*:
   each rank sends the ghost-band-wide strip adjacent to its slab
   edges — both parity buffers, since a band's points sit at mixed
   time levels mid-phase.

The result is compared against the naive reference in the test-suite:
an under-sized band or a missing exchange makes the numerics diverge,
so the §4.1 communication plan is *validated*, not just asserted.
Message counts/bytes are tallied into :class:`CommStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.core.blocks import build_phase_plan
from repro.core.profiles import TessLattice
from repro.distributed.partition import SlabPartition
from repro.stencils.grid import Grid
from repro.stencils.spec import StencilSpec, region_is_empty


@dataclass
class CommStats:
    """Tally of the simulated exchanges."""

    messages: int = 0
    bytes_sent: int = 0
    stage_bytes: Dict[int, int] = field(default_factory=dict)

    def record(self, stage_idx: int, nbytes: int) -> None:
        self.messages += 1
        self.bytes_sent += nbytes
        self.stage_bytes[stage_idx] = (
            self.stage_bytes.get(stage_idx, 0) + nbytes
        )


def execute_distributed(
    spec: StencilSpec,
    grid: Grid,
    lattice: TessLattice,
    steps: int,
    ranks: int,
    axis: int = 0,
) -> Tuple[np.ndarray, CommStats]:
    """Run ``steps`` tessellated steps across ``ranks`` simulated ranks.

    Returns the assembled interior at time ``steps`` plus the
    communication statistics.  Dirichlet boundaries only (like the
    paper's evaluated configuration).
    """
    if spec.is_periodic:
        raise ValueError("distributed executor assumes Dirichlet boundaries")
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    part = SlabPartition(grid.shape, ranks, axis=axis)
    slopes = tuple(p.sigma for p in lattice.profiles)
    plan = build_phase_plan(lattice, slopes)
    b = lattice.b
    ghost = part.ghost_width(lattice)
    bounds = part.bounds()
    itemsize = np.dtype(spec.dtype).itemsize

    # per-rank replicas of the ping-pong pair
    locals_: List[List[np.ndarray]] = [
        [buf.copy() for buf in grid.buffers] for _ in range(ranks)
    ]
    # block ownership, fixed across phases: a block belongs to the rank
    # holding the low corner of its clipped bounding box
    def _owner(blk) -> int:
        bbox = blk.bounding_box(b, slopes, grid.shape)
        if region_is_empty(bbox):
            return 0  # degenerate block; never applies any region
        return part.owner_of_box(bbox)

    owned = [
        [[blk for blk in sp.blocks if _owner(blk) == r]
         for sp in plan.stages]
        for r in range(ranks)
    ]
    stats = CommStats()
    interior = spec.interior_slices(grid.shape)
    halo = spec.halo
    n_axis = grid.shape[axis]

    def exchange(stage_idx: int, dirty: List[np.ndarray]) -> None:
        """Writers push their fresh points to neighbours.

        Per stage, every grid point is updated by at most one block
        (the tessellation's uniqueness property), so each rank's dirty
        mask identifies the values it is authoritative for; copying
        those — both parity buffers, the pair a block leaves behind —
        to neighbours whose ghost range covers them restores the
        induction invariant (arrays correct on slab ⊕ ghost).  Blocks
        of different stage families overlap in axis extent with
        different owners for d ≥ 2, which is why dirtiness is tracked
        per point, not per axis line.
        """
        for src in range(ranks):
            for dst in (src - 1, src + 1):
                if not 0 <= dst < ranks:
                    continue
                dlo, dhi = bounds[dst]
                wlo, whi = max(0, dlo - ghost), min(n_axis, dhi + ghost)
                window = [slice(None)] * len(grid.shape)
                window[axis] = slice(wlo, whi)
                window = tuple(window)
                mask = dirty[src][window]
                pts = int(mask.sum())
                if pts == 0:
                    continue
                for parity in (0, 1):
                    src_int = locals_[src][parity][interior][window]
                    dst_int = locals_[dst][parity][interior][window]
                    np.copyto(dst_int, src_int, where=mask)
                stats.record(stage_idx, 2 * pts * itemsize)

    stage_counter = 0
    tt = 0
    while tt < steps:
        span = min(b, steps - tt)
        for si, sp in enumerate(plan.stages):
            dirty = [np.zeros(grid.shape, dtype=bool) for _ in range(ranks)]
            for r in range(ranks):
                bufs = locals_[r]
                for blk in owned[r][si]:
                    for s in range(span):
                        region = blk.region_at(s, b, slopes, grid.shape)
                        if region_is_empty(region):
                            continue
                        spec.apply_region(
                            bufs[(tt + s) % 2], bufs[(tt + s + 1) % 2],
                            region,
                        )
                        idx = tuple(slice(lo, hi) for lo, hi in region)
                        dirty[r][idx] = True
            exchange(stage_counter, dirty)
            stage_counter += 1
        tt += b

    # assemble: each rank contributes its own slab at the final time
    out = np.zeros(grid.shape, dtype=spec.dtype)
    for r, (lo, hi) in enumerate(bounds):
        sl = [slice(None)] * len(grid.shape)
        sl[axis] = slice(lo, hi)
        out[tuple(sl)] = locals_[r][steps % 2][interior][tuple(sl)]
    return out, stats
