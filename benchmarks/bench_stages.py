"""Staged-system benchmark: compiled macro-step plans vs per-stage naive.

Standalone script (not a pytest bench) emitting machine-readable
``BENCH_stages.json``.  For each shipped system it times three drivers
on identical initial state and verifies all three land bit-identical:

* ``naive_s`` — the interpreted schedule walk
  (:func:`~repro.runtime.schedule._execute_schedule` over the same
  tess schedule): one :meth:`StagedOperator.apply` call per action,
  re-deriving views and scratch bookkeeping every time.  This is the
  repo's standing "naive executor" column (``BENCH_engine.json`` uses
  the same baseline) and the denominator of the acceptance speedup;
* ``sweep_s`` — the vectorized per-stage full-grid sweep
  (:func:`~repro.stencils.reference.reference_step` in a loop), the
  honesty column: whole-array NumPy with no tiling at all.  On grids
  that fit in cache it can beat tiled execution — the ratio is
  reported, not hidden;
* ``compiled_s`` — the compiled plan (gather/scatter staged batch
  kernels, precomputed index vectors, plan-cache reuse).

A final ``mode="batched"`` row times N independent compiled runs
against one ``run_many`` batch of the same N instances (the staged
many-instances aggregate).

``--check BASELINE.json`` compares the *speedup* of every row whose
key also appears in the baseline and exits 1 if any regressed by more
than ``--tolerance`` (default 25%).  Speedup is a same-machine ratio,
so the check is meaningful on hosts with different absolute throughput.

Usage::

    PYTHONPATH=src python benchmarks/bench_stages.py
    PYTHONPATH=src python benchmarks/bench_stages.py --quick \
        --out /tmp/bench.json --check BENCH_stages.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np

from repro import Grid, make_lattice
from repro.api import RunConfig, Session
from repro.core.schedules import tess_schedule
from repro.engine import PlanCache
from repro.engine.plan import _execute_plan
from repro.runtime.schedule import _execute_schedule
from repro.stencils.reference import reference_step
from repro.stencils.systems import get_system

SCHEMA = "bench-stages/1"


def env_fingerprint():
    """The measurement environment: enough to spot stale baselines."""
    return {
        "numpy": np.__version__,
        "cpus": os.cpu_count(),
        "threads_env": {
            k: os.environ[k]
            for k in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS",
                      "MKL_NUM_THREADS")
            if k in os.environ
        },
    }


#: (name, system, shape, steps, b, quick)
WORKLOADS = [
    ("fig8-fdtd1d-quick", "fdtd1d", (4000,), 16, 4, True),
    ("fdtd2d-quick", "fdtd2d", (64, 64), 8, 4, True),
    ("fig8-fdtd1d", "fdtd1d", (40000,), 64, 8, False),
    ("fdtd2d", "fdtd2d", (192, 192), 24, 4, False),
    ("shallow-water", "shallow_water", (192, 192), 24, 4, False),
    ("gray-scott", "gray_scott", (192, 192), 24, 4, False),
]

#: (name, system, shape, steps, b, n, quick) — loop-of-N vs one batch
BATCH_WORKLOADS = [
    ("fdtd2d-batch8", "fdtd2d", (96, 96), 12, 4, 8, False),
    ("fdtd2d-batch4-quick", "fdtd2d", (48, 48), 8, 4, 4, True),
]


def _min_of_k(run, repeat, warmup):
    for _ in range(warmup):
        run()
    best, out = float("inf"), None
    for _ in range(repeat):
        t0 = time.perf_counter()
        out = run()
        dt = time.perf_counter() - t0
        if dt < best:
            best, out = dt, out
    return best, out


def _restored(grid, init, fn):
    def run():
        for dst, src in zip(grid.buffers, init):
            np.copyto(dst, src)
        return fn()

    return run


def _initial_grid(spec, shape):
    grid = Grid(spec, shape, init="random", seed=0)
    if spec.name == "gray_scott":
        # iid-random fields push the explicit-Euler reaction terms to
        # overflow at benchmark scale; use the standard Gray-Scott
        # start instead (u ~ 1 everywhere, a seeded v patch)
        fu, fv = spec.field_index("u"), spec.field_index("v")
        rng = np.random.default_rng(0)
        u = np.ones(shape)
        v = np.zeros(shape)
        sl = tuple(slice(n // 3, 2 * n // 3) for n in shape)
        v[sl] = 0.5 * rng.random(v[sl].shape)
        u -= v
        for parity in (0, 1):
            grid.interior(parity)[fu] = u
            grid.interior(parity)[fv] = v
    return grid


def bench_workload(name, system, shape, steps, b, cache, repeat, warmup):
    spec = get_system(system)
    lat = make_lattice(spec, shape, b)
    sched = tess_schedule(spec, shape, lat, steps)
    plan = cache.get(spec, sched, params=(b,))

    grid = _initial_grid(spec, shape)
    init = [buf.copy() for buf in grid.buffers]

    def sweep():
        for t in range(steps):
            reference_step(spec, grid, t)
        return grid.interior(steps)

    naive_fn = _restored(grid, init,
                         lambda: _execute_schedule(spec, grid, sched))
    sweep_fn = _restored(grid, init, sweep)
    comp_fn = _restored(grid, init, lambda: _execute_plan(plan, grid))

    naive_s, naive_out = _min_of_k(naive_fn, repeat, warmup)
    naive_out = np.array(naive_out, copy=True)
    sweep_s, sweep_out = _min_of_k(sweep_fn, repeat, warmup)
    sweep_out = np.array(sweep_out, copy=True)
    comp_s, comp_out = _min_of_k(comp_fn, repeat, warmup)
    identical = bool(
        naive_out.tobytes() == comp_out.tobytes()
        and sweep_out.tobytes() == comp_out.tobytes()
    )

    points = sched.total_points()
    return {
        "mode": "single",
        "name": name,
        "system": system,
        "stages": len(spec.stages),
        "shape": list(shape),
        "steps": steps,
        "b": b,
        "points": int(points),
        "naive_s": naive_s,
        "sweep_s": sweep_s,
        "compiled_s": comp_s,
        "compiled_pps": points / comp_s if comp_s > 0 else 0.0,
        "speedup": naive_s / comp_s if comp_s > 0 else 0.0,
        "speedup_vs_sweep": sweep_s / comp_s if comp_s > 0 else 0.0,
        "identical": identical,
    }


def bench_batch_workload(name, system, shape, steps, b, n, repeat, warmup):
    session = Session(get_system(system))
    base = RunConfig(shape=shape, steps=steps, b=b, seed=0,
                     backend="compiled")
    batch_cfg = base.with_overrides({"backend": "batched", "batch": n})

    def loop_run():
        return [
            np.array(session.run(
                base.with_overrides({"seed": base.seed + i})).interior,
                copy=True)
            for i in range(n)
        ]

    def batch_run():
        return [np.array(r.interior, copy=True)
                for r in session.run_many(batch_cfg)]

    loop_s, loop_out = _min_of_k(loop_run, repeat, warmup)
    batch_s, batch_out = _min_of_k(batch_run, repeat, warmup)
    identical = all(
        a.tobytes() == c.tobytes() for a, c in zip(loop_out, batch_out)
    )
    return {
        "mode": "batched",
        "name": name,
        "system": system,
        "shape": list(shape),
        "steps": steps,
        "b": b,
        "n": n,
        "loop_s": loop_s,
        "batched_s": batch_s,
        "batched_ips": n / batch_s if batch_s > 0 else 0.0,
        "speedup": loop_s / batch_s if batch_s > 0 else 0.0,
        "identical": identical,
    }


def _row_key(row):
    return (row["mode"], row["name"])


def check_regression(rows, baseline_path, tolerance, env=None):
    with open(baseline_path) as fh:
        base = json.load(fh)
    base_env = base.get("env")
    if env is not None and base_env is not None and base_env != env:
        print(f"WARNING: environment fingerprint differs from "
              f"{baseline_path}: baseline {base_env}, current {env} "
              f"(speedup ratios are still compared; absolute numbers "
              f"are not comparable)", file=sys.stderr)
    base_rows = {_row_key(r): r for r in base.get("rows", [])}
    compared, failures = 0, []
    for row in rows:
        ref = base_rows.get(_row_key(row))
        if ref is None:
            continue
        compared += 1
        floor = (1.0 - tolerance) * ref["speedup"]
        if row["speedup"] < floor:
            failures.append(
                f"  {row['name']}: speedup {row['speedup']:.2f}x < "
                f"{floor:.2f}x (baseline {ref['speedup']:.2f}x "
                f"- {tolerance:.0%})")
    if compared == 0:
        print(f"regression check: no rows in common with {baseline_path}",
              file=sys.stderr)
        return False
    if failures:
        print(f"regression check FAILED vs {baseline_path}:",
              file=sys.stderr)
        for f in failures:
            print(f, file=sys.stderr)
        return False
    print(f"regression check OK: {compared} row(s) within "
          f"{tolerance:.0%} of {baseline_path}")
    return True


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke: small workloads only")
    ap.add_argument("--out", default="BENCH_stages.json",
                    help="output JSON path (default: %(default)s)")
    ap.add_argument("--repeat", type=int, default=None,
                    help="min-of-k repeats (default: 3, quick: 2)")
    ap.add_argument("--check", metavar="BASELINE",
                    help="compare speedups against a baseline JSON")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed speedup regression (default: 0.25)")
    args = ap.parse_args(argv)
    repeat = args.repeat or (2 if args.quick else 3)

    cache = PlanCache(capacity=16)
    rows = []
    for name, system, shape, steps, b, quick in WORKLOADS:
        if args.quick and not quick:
            continue
        row = bench_workload(name, system, shape, steps, b, cache,
                             repeat, warmup=1)
        rows.append(row)
        flag = "" if row["identical"] else "  ** MISMATCH **"
        print(f"{name:22s} naive {row['naive_s'] * 1e3:9.1f} ms  "
              f"sweep {row['sweep_s'] * 1e3:8.1f} ms  "
              f"compiled {row['compiled_s'] * 1e3:8.1f} ms  "
              f"{row['speedup']:6.1f}x "
              f"({row['speedup_vs_sweep']:.2f}x vs sweep){flag}")
    for name, system, shape, steps, b, n, quick in BATCH_WORKLOADS:
        if args.quick and not quick:
            continue
        row = bench_batch_workload(name, system, shape, steps, b, n,
                                   repeat, warmup=1)
        rows.append(row)
        flag = "" if row["identical"] else "  ** MISMATCH **"
        print(f"{name:22s} loop  {row['loop_s'] * 1e3:9.1f} ms  "
              f"batched {row['batched_s'] * 1e3:8.1f} ms  "
              f"{row['speedup']:6.1f}x{flag}")

    env = env_fingerprint()
    payload = {
        "schema": SCHEMA,
        "quick": bool(args.quick),
        "repeat": repeat,
        "env": env,
        "rows": rows,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out} ({len(rows)} row(s))")

    ok = all(r["identical"] for r in rows)
    if not ok:
        print("FAILED: results are not bit-identical", file=sys.stderr)
    if args.check:
        ok = check_regression(rows, args.check, args.tolerance,
                              env=env) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
