"""Crash-safe job store: an append-only, CRC-framed write-ahead journal.

A job submitted to the durable runtime must survive the process that
accepted it.  Everything the supervisor knows about a job therefore
flows through one append-only journal before it is acted on:

* **Framing** — every record is ``magic | length | crc32`` followed by
  a JSON payload (the same seal-at-pack-time discipline as the elastic
  transport's band messages, :mod:`repro.distributed.transport`), and
  every append is flushed and fsync'd before the store's in-memory
  state changes.  A reader can always tell a half-written tail from a
  legal record.
* **Recovery** — opening a store replays the journal.  A truncated or
  corrupted tail (a writer killed mid-append) is quarantined to
  ``journal.wal.corrupt`` — the same tier discipline as the plan
  cache's ``<path>.corrupt`` files — and the journal is truncated back
  to its last whole record, so appends continue from a clean seam.
* **State machine** — jobs move only along
  :data:`LEGAL_TRANSITIONS` (``queued → admitted → running →
  done/failed/cancelled``, plus the ``→ queued`` re-queue edges used by
  retry and crash recovery).  Replay re-validates every journaled
  transition, so a journal that decodes cleanly but tells an illegal
  story raises :class:`JournalReplayError` instead of silently
  resurrecting an impossible state.
* **Idempotency** — a job's identity is the SHA-256 of its spec
  signature (:func:`repro.engine.cache.spec_signature`) plus the
  canonical JSON of its normalized :class:`~repro.api.config.RunConfig`.
  Resubmitting the same work returns the existing job instead of
  queueing a duplicate.

Results and mid-run checkpoints are bulk ndarrays and live *outside*
the journal as ``.npy`` files written with the fsync + atomic-rename
discipline; the journal records their relative path and SHA-256, so a
half-written or rotted file is detected at load time and quarantined
rather than trusted.

Leases (``leases/<job_id>.lease``) are deliberately *not* journaled:
they are advisory liveness claims owned by one supervisor process, and
a crash must leave nothing that blocks a successor — recovery sweeps
them wholesale.  Every acquisition mints a monotonically increasing
*epoch* (a fencing token): result commits, checkpoint seals and lease
renewals may carry the epoch they were started under, and the store
refuses mutations from an epoch that has since been reclaimed
(:class:`~repro.runtime.errors.StaleLeaseError`) — a stalled old
worker incarnation can never seal a result over its successor's.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.errors import JobNotFound, StaleLeaseError

__all__ = [
    "QUEUED",
    "ADMITTED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "STATES",
    "TERMINAL_STATES",
    "LEGAL_TRANSITIONS",
    "Job",
    "JobStore",
    "JournalReplayError",
    "RecoveryReport",
    "job_identity",
]

# -- the job state machine -------------------------------------------

QUEUED = "queued"        #: journaled, waiting for a worker lease
ADMITTED = "admitted"    #: leased; admission estimate accepted
RUNNING = "running"      #: executing through the Session pipeline
DONE = "done"            #: result persisted and sealed
FAILED = "failed"        #: retry budget spent (or permanent refusal)
CANCELLED = "cancelled"  #: caller's verdict; never retried

STATES = (QUEUED, ADMITTED, RUNNING, DONE, FAILED, CANCELLED)
TERMINAL_STATES = frozenset((DONE, FAILED, CANCELLED))

#: the only edges a job may move along.  The ``→ queued`` back-edges
#: are the retry (transient failure, backoff respected by the
#: supervisor) and recovery (interrupted by a crash) paths; terminal
#: states have no exits — a finished job never runs again.
LEGAL_TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    QUEUED: (ADMITTED, CANCELLED),
    ADMITTED: (RUNNING, QUEUED, CANCELLED),
    RUNNING: (DONE, FAILED, CANCELLED, QUEUED),
    DONE: (),
    FAILED: (),
    CANCELLED: (),
}


class JournalReplayError(RuntimeError):
    """The journal decoded cleanly but describes an illegal history.

    Distinct from corruption (quarantined, survivable): a record that
    passes its CRC yet commands an impossible state transition means
    the journal was produced by a buggy or foreign writer, and
    trusting it would resurrect a job in a state the supervisor can
    never have written.  Refusing loudly is the safe verdict.
    """


@dataclass
class Job:
    """One durable job: the spec reference, its knobs, and its history."""

    job_id: str
    kernel: str
    config: Dict[str, Any]
    idempotency_key: str
    priority: int = 0
    max_retries: int = 2
    state: str = QUEUED
    attempts: int = 0
    submitted_unix: float = 0.0
    #: order-of-magnitude peak footprint (queue admission accounting)
    estimated_bytes: int = 0
    error: str = ""
    error_kind: str = ""
    #: step the last successful run segment resumed from (-1 = fresh)
    resumed_from_step: int = -1
    #: times this job crashed its worker process (poison accounting;
    #: a job reaching ``max_worker_crashes`` is quarantined)
    worker_crashes: int = 0
    #: journaled checkpoints, oldest first: (step, relpath, sha256)
    checkpoints: List[Tuple[int, str, str]] = field(default_factory=list)
    result_path: str = ""
    result_sha256: str = ""
    stats: Optional[Dict[str, Any]] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def checkpoint_step(self) -> int:
        return self.checkpoints[-1][0] if self.checkpoints else -1

    def to_json(self) -> Dict[str, Any]:
        out = asdict(self)
        out["checkpoints"] = [list(c) for c in self.checkpoints]
        return out

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Job":
        data = dict(data)
        data["checkpoints"] = [tuple(c) for c in data.get("checkpoints", [])]
        return cls(**data)


@dataclass
class RecoveryReport:
    """What one startup recovery scan found and repaired."""

    replayed_records: int = 0
    requeued: int = 0          #: admitted/running jobs sent back to queued
    finalized: int = 0         #: running jobs whose result was already sealed
    corrupt_tail_bytes: int = 0
    leases_swept: int = 0
    tmp_swept: int = 0
    checkpoints_quarantined: int = 0

    def describe(self) -> str:
        return (
            f"records={self.replayed_records} requeued={self.requeued} "
            f"finalized={self.finalized} "
            f"corrupt_tail={self.corrupt_tail_bytes}B "
            f"leases_swept={self.leases_swept} tmp_swept={self.tmp_swept}"
        )


# -- job identity -----------------------------------------------------

def job_identity(kernel: str, config: Dict[str, Any]):
    """Resolve a job spec: ``(spec, cfg, shape, idempotency_key, bytes)``.

    The key hashes the *structural* spec signature and the canonical
    JSON of the normalized config, so two submissions that would run
    bit-identically — whatever spelling their backend/engine aliases
    used — collapse onto one job.  The byte estimate reuses the QoS
    admission model (:func:`repro.runtime.qos.estimate_peak_bytes`).
    """
    import hashlib

    from repro import get_stencil
    from repro.api.builder import ScheduleBuilder
    from repro.api.config import RunConfig
    from repro.engine.cache import spec_signature
    from repro.runtime.qos import estimate_peak_bytes

    spec = get_stencil(kernel)
    cfg = RunConfig.from_json(config).normalized()
    shape = cfg.shape or tuple(ScheduleBuilder().default_shape(spec))
    canon = json.dumps(cfg.to_json(), sort_keys=True,
                       separators=(",", ":"))
    # spec.name, not the submitted kernel string: alias spellings of a
    # staged system ("gray-scott", "gs", ...) resolve to one canonical
    # name, so they dedup onto one job (paper kernels are unaffected —
    # their registry key IS the spec name)
    digest = hashlib.sha256(
        f"{spec.name}|{spec_signature(spec)!r}|{canon}".encode()
    ).hexdigest()
    estimate = estimate_peak_bytes(spec, shape, cfg)
    return spec, cfg, shape, digest, int(estimate)


# -- journal framing --------------------------------------------------

_MAGIC = b"RJW1"
_HEADER = struct.Struct(">4sII")  # magic, payload length, crc32
_MAX_RECORD = 64 << 20  # a length field larger than this is corruption


def _crc(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def _fsync_dir(path: str) -> None:
    """Best-effort directory fsync so a rename survives power loss."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _atomic_write_bytes(path: str, data: bytes, *, fsync: bool) -> None:
    """fsync + rename discipline: the file exists whole or not at all."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    os.replace(tmp, path)
    if fsync:
        _fsync_dir(os.path.dirname(path))


def _sha256_file(path: str) -> str:
    import hashlib

    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def _array_bytes(arr: np.ndarray) -> bytes:
    """Serialize an ndarray to .npy bytes (dtype/shape preserved)."""
    import io

    buf = io.BytesIO()
    np.save(buf, np.ascontiguousarray(arr), allow_pickle=False)
    return buf.getvalue()


# -- the store --------------------------------------------------------

class JobStore:
    """Journal-backed job state, results, checkpoints and leases.

    Thread-safe: the supervisor's worker threads and the HTTP front
    share one store.  ``fsync=False`` trades the power-loss guarantee
    for speed and exists for tests/benchmarks only — the default is
    the durable discipline described in the module docstring.
    """

    #: checkpoints retained per job; older files are pruned as new
    #: ones seal, the latest-but-one surviving as a fallback should the
    #: newest fail its SHA-256 at restore time
    KEEP_CHECKPOINTS = 2

    def __init__(self, root: str, *, fsync: bool = True):
        self.root = os.path.abspath(root)
        self.fsync = fsync
        self._lock = threading.RLock()
        self._jobs: Dict[str, Job] = {}
        self._by_key: Dict[str, str] = {}
        self._records = 0
        self._corrupt_tail_bytes = 0
        self._dedup_hits = 0
        self._results_stored = 0
        self._checkpoints_taken = 0
        self._stale_rejected = 0
        #: job_id -> most recently minted lease epoch (fencing tokens;
        #: in-memory only — leases are advisory and swept on recovery)
        self._lease_epochs: Dict[str, int] = {}
        for sub in ("journal", "results", "checkpoints", "leases"):
            os.makedirs(os.path.join(self.root, sub), exist_ok=True)
        self._journal_path = os.path.join(self.root, "journal",
                                          "journal.wal")
        self._replay()
        self._fh = open(self._journal_path, "ab")

    # -- journal ------------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        """Seal one record and make it durable before returning."""
        payload = json.dumps(record, sort_keys=True,
                             separators=(",", ":")).encode()
        self._fh.write(_HEADER.pack(_MAGIC, len(payload), _crc(payload)))
        self._fh.write(payload)
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self._records += 1

    def _replay(self) -> None:
        """Rebuild in-memory state; quarantine a torn journal tail."""
        path = self._journal_path
        if not os.path.exists(path):
            return
        good_end = 0
        with open(path, "rb") as fh:
            while True:
                header = fh.read(_HEADER.size)
                if not header:
                    break
                if len(header) < _HEADER.size:
                    break  # torn header
                magic, length, crc = _HEADER.unpack(header)
                if magic != _MAGIC or length > _MAX_RECORD:
                    break
                payload = fh.read(length)
                if len(payload) < length or _crc(payload) != crc:
                    break  # torn or corrupted payload
                try:
                    record = json.loads(payload)
                except ValueError:
                    break
                self._apply(record)
                self._records += 1
                good_end += _HEADER.size + length
        size = os.path.getsize(path)
        if good_end < size:
            # quarantine the torn tail (never silently discard bytes),
            # then truncate back to the last whole record so appends
            # resume from a clean seam
            with open(path, "rb") as fh:
                fh.seek(good_end)
                tail = fh.read()
            with open(f"{path}.corrupt", "ab") as fh:
                fh.write(tail)
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
            with open(path, "ab") as fh:
                fh.truncate(good_end)
                if self.fsync:
                    os.fsync(fh.fileno())
            self._corrupt_tail_bytes = size - good_end

    def _apply(self, record: Dict[str, Any]) -> None:
        """Fold one journal record into the in-memory state."""
        op = record.get("op")
        if op == "submit":
            job = Job.from_json(record["job"])
            self._jobs[job.job_id] = job
            self._by_key[job.idempotency_key] = job.job_id
        elif op == "transition":
            job = self._jobs.get(record["job_id"])
            if job is None:
                raise JournalReplayError(
                    f"transition for unknown job {record['job_id']!r}")
            src, dst = record["from"], record["to"]
            if job.state != src or dst not in LEGAL_TRANSITIONS.get(src, ()):
                raise JournalReplayError(
                    f"illegal transition {src} -> {dst} for job "
                    f"{job.job_id} (in state {job.state})")
            job.state = dst
            job.attempts = int(record.get("attempts", job.attempts))
            job.error = record.get("error", job.error)
            job.error_kind = record.get("error_kind", job.error_kind)
            job.resumed_from_step = int(
                record.get("resumed_from_step", job.resumed_from_step))
            job.worker_crashes = int(
                record.get("worker_crashes", job.worker_crashes))
        elif op == "checkpoint":
            job = self._jobs.get(record["job_id"])
            if job is not None:
                job.checkpoints.append(
                    (int(record["step"]), record["path"], record["sha256"]))
        elif op == "result":
            job = self._jobs.get(record["job_id"])
            if job is not None:
                job.result_path = record["path"]
                job.result_sha256 = record["sha256"]
                job.stats = record.get("stats")
        # unknown ops are skipped: a newer writer may add record kinds
        # an older reader can safely ignore

    # -- submission / lookup ------------------------------------------

    def submit(self, kernel: str, config: Dict[str, Any], *,
               priority: int = 0,
               max_retries: int = 2) -> Tuple[Job, bool]:
        """Journal a new job, or return the existing one (idempotency).

        Returns ``(job, created)``; ``created=False`` means the same
        (spec signature, config) was already journaled and the caller
        got the existing job — whatever state it has reached.
        """
        _, _, shape, key, estimate = job_identity(kernel, config)
        with self._lock:
            existing = self._by_key.get(key)
            if existing is not None:
                self._dedup_hits += 1
                return self._jobs[existing], False
            job = Job(
                job_id=f"job-{key[:16]}",
                kernel=kernel,
                config=dict(config),
                idempotency_key=key,
                priority=int(priority),
                max_retries=int(max_retries),
                state=QUEUED,
                submitted_unix=time.time(),
                estimated_bytes=estimate,
            )
            self._append({"op": "submit", "job": job.to_json()})
            self._jobs[job.job_id] = job
            self._by_key[key] = job.job_id
            return job, True

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise JobNotFound(job_id)
            return job

    def jobs(self, state: Optional[str] = None) -> List[Job]:
        with self._lock:
            out = list(self._jobs.values())
        if state is not None:
            out = [j for j in out if j.state == state]
        return sorted(out, key=lambda j: j.submitted_unix)

    # -- transitions --------------------------------------------------

    def transition(self, job_id: str, to: str, *, detail: str = "",
                   error: str = "", error_kind: str = "",
                   attempts: Optional[int] = None,
                   resumed_from_step: Optional[int] = None,
                   worker_crashes: Optional[int] = None) -> Job:
        """Atomically journal and apply one legal state transition.

        Journal-first: the record is durable before the in-memory
        state moves, so a crash between the two replays to the *new*
        state — the supervisor can never observe work it has no record
        of.  Illegal edges raise ``ValueError`` (a usage error, not a
        corrupt store).
        """
        with self._lock:
            job = self.get(job_id)
            src = job.state
            if to not in LEGAL_TRANSITIONS.get(src, ()):
                raise ValueError(
                    f"illegal job transition {src} -> {to} for {job_id}")
            record: Dict[str, Any] = {
                "op": "transition", "job_id": job_id,
                "from": src, "to": to,
            }
            if detail:
                record["detail"] = detail
            if error:
                record["error"] = error
            if error_kind:
                record["error_kind"] = error_kind
            if attempts is not None:
                record["attempts"] = int(attempts)
            if resumed_from_step is not None:
                record["resumed_from_step"] = int(resumed_from_step)
            if worker_crashes is not None:
                record["worker_crashes"] = int(worker_crashes)
            self._append(record)
            job.state = to
            if attempts is not None:
                job.attempts = int(attempts)
            if error:
                job.error = error
            if error_kind:
                job.error_kind = error_kind
            if resumed_from_step is not None:
                job.resumed_from_step = int(resumed_from_step)
            if worker_crashes is not None:
                job.worker_crashes = int(worker_crashes)
            return job

    # -- checkpoints --------------------------------------------------

    def save_checkpoint(self, job_id: str, step: int,
                        buffer: np.ndarray,
                        epoch: Optional[int] = None) -> str:
        """Seal a mid-run checkpoint: the padded buffer at time ``step``.

        The file is written with fsync + rename, hashed, and only then
        journaled — so a checkpoint record always points at a whole
        file.  Older checkpoints beyond :data:`KEEP_CHECKPOINTS` are
        pruned from disk (their journal records stay; restore skips
        missing files).  With ``epoch``, a seal from a reclaimed lease
        raises :class:`StaleLeaseError` before anything is written — a
        stalled old worker must not inject a resume point.
        """
        with self._lock:
            self._check_epoch(job_id, epoch, "checkpoint")
            job = self.get(job_id)
            rel = os.path.join("checkpoints", job_id,
                               f"step-{step:08d}.npy")
            path = os.path.join(self.root, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            _atomic_write_bytes(path, _array_bytes(buffer),
                                fsync=self.fsync)
            sha = _sha256_file(path)
            self._append({"op": "checkpoint", "job_id": job_id,
                          "step": int(step), "path": rel, "sha256": sha})
            job.checkpoints.append((int(step), rel, sha))
            self._checkpoints_taken += 1
            for old_step, old_rel, _ in job.checkpoints[:-self.KEEP_CHECKPOINTS]:
                try:
                    os.unlink(os.path.join(self.root, old_rel))
                except OSError:
                    pass
            return path

    def load_checkpoint(self, job_id: str,
                        report: Optional[RecoveryReport] = None
                        ) -> Optional[Tuple[int, np.ndarray]]:
        """Newest restorable checkpoint ``(step, padded buffer)``.

        Walks the journaled checkpoints newest-first; a file that is
        missing (pruned) is skipped, one that fails its SHA-256 is
        quarantined to ``<path>.corrupt`` — trusting it would poison
        the resumed run — and the next-older one is tried.  ``None``
        means restart from the journal (step 0).
        """
        with self._lock:
            job = self.get(job_id)
            candidates = list(reversed(job.checkpoints))
        for step, rel, sha in candidates:
            path = os.path.join(self.root, rel)
            if not os.path.exists(path):
                continue
            if _sha256_file(path) != sha:
                try:
                    os.replace(path, f"{path}.corrupt")
                except OSError:
                    pass
                if report is not None:
                    report.checkpoints_quarantined += 1
                continue
            with open(path, "rb") as fh:
                arr = np.load(fh, allow_pickle=False)
            return int(step), arr
        return None

    # -- results ------------------------------------------------------

    def record_result(self, job_id: str, interior: np.ndarray,
                      stats: Dict[str, Any],
                      epoch: Optional[int] = None) -> Job:
        """Seal the answer and move the job to ``done``.

        Write order is the recovery contract: array file (fsync +
        rename), ``result`` journal record (path + SHA-256 + stats),
        then the ``running → done`` transition.  A crash between the
        last two leaves a sealed result that recovery finalizes instead
        of re-running.  With ``epoch``, a commit from a reclaimed lease
        raises :class:`StaleLeaseError` before anything is written —
        the fencing-token pattern that makes lease takeover safe.
        """
        with self._lock:
            self._check_epoch(job_id, epoch, "result commit")
            job = self.get(job_id)
            rel = os.path.join("results", f"{job_id}.npy")
            path = os.path.join(self.root, rel)
            _atomic_write_bytes(path, _array_bytes(interior),
                                fsync=self.fsync)
            sha = _sha256_file(path)
            self._append({"op": "result", "job_id": job_id, "path": rel,
                          "sha256": sha, "stats": stats})
            job.result_path = rel
            job.result_sha256 = sha
            job.stats = stats
            self._results_stored += 1
            return self.transition(job_id, DONE)

    def load_result(self, job_id: str) -> Tuple[np.ndarray, Dict[str, Any]]:
        """Load a sealed result, re-verifying its SHA-256."""
        with self._lock:
            job = self.get(job_id)
            if job.state != DONE or not job.result_path:
                raise ValueError(
                    f"job {job_id} has no sealed result "
                    f"(state={job.state})")
            path = os.path.join(self.root, job.result_path)
            sha = job.result_sha256
            stats = dict(job.stats or {})
        if _sha256_file(path) != sha:
            raise ValueError(f"result file for {job_id} failed its "
                             f"SHA-256 seal")
        with open(path, "rb") as fh:
            arr = np.load(fh, allow_pickle=False)
        return arr, stats

    # -- leases -------------------------------------------------------

    def _lease_path(self, job_id: str) -> str:
        return os.path.join(self.root, "leases", f"{job_id}.lease")

    def acquire_lease(self, job_id: str, owner: str,
                      ttl_s: float) -> Optional[int]:
        """Claim a job for one worker; ``None`` if another lease is live.

        On success returns the claim's fresh *epoch* — a monotonically
        increasing fencing token (≥ 1, so truthiness keeps meaning
        "acquired").  Epoch-carrying mutations from earlier claims are
        refused from then on: a takeover does not merely assume the old
        holder is dead, it makes the old holder's writes impossible.
        """
        path = self._lease_path(job_id)
        with self._lock:
            epoch = self._next_epoch(job_id, path)
            payload = self._lease_payload(job_id, owner, ttl_s, epoch)
            try:
                with open(path, "xb") as fh:
                    fh.write(payload)
                self._lease_epochs[job_id] = epoch
                return epoch
            except FileExistsError:
                pass
            holder = self._read_lease(path)
            if (holder is not None and holder.get("owner") != owner
                    and holder.get("expires_unix", 0) > time.time()):
                return None
            # stale (expired / unreadable) or our own: take it over
            _atomic_write_bytes(path, payload, fsync=False)
            self._lease_epochs[job_id] = epoch
            return epoch

    def _next_epoch(self, job_id: str, path: str) -> int:
        """Mint a fencing token above every epoch ever observed."""
        known = self._lease_epochs.get(job_id, 0)
        holder = self._read_lease(path)
        on_disk = int(holder.get("epoch", 0)) if holder else 0
        return max(known, on_disk) + 1

    @staticmethod
    def _lease_payload(job_id: str, owner: str, ttl_s: float,
                       epoch: int) -> bytes:
        return json.dumps({
            "job_id": job_id, "owner": owner, "pid": os.getpid(),
            "epoch": int(epoch),
            "expires_unix": time.time() + ttl_s,
        }).encode()

    def lease_epoch(self, job_id: str) -> int:
        """The current (most recently minted) epoch; 0 = never leased."""
        with self._lock:
            return self._lease_epochs.get(job_id, 0)

    def _check_epoch(self, job_id: str, epoch: Optional[int],
                     what: str) -> None:
        if epoch is None:
            return
        current = self._lease_epochs.get(job_id, int(epoch))
        if int(epoch) != current:
            self._stale_rejected += 1
            raise StaleLeaseError(job_id, int(epoch), current, what=what)

    def renew_lease(self, job_id: str, owner: str, ttl_s: float,
                    epoch: Optional[int] = None) -> None:
        """Heartbeat: push the lease expiry forward.

        With ``epoch``, a renewal from a reclaimed incarnation raises
        :class:`StaleLeaseError` instead of resurrecting the old claim
        over the new holder's.
        """
        path = self._lease_path(job_id)
        with self._lock:
            self._check_epoch(job_id, epoch, "renew")
            current = (int(epoch) if epoch is not None
                       else self._lease_epochs.get(job_id, 0))
            _atomic_write_bytes(
                path, self._lease_payload(job_id, owner, ttl_s, current),
                fsync=False)

    def release_lease(self, job_id: str,
                      epoch: Optional[int] = None) -> None:
        """Drop a claim; a stale ``epoch`` is a silent no-op (the lease
        now belongs to a newer incarnation and must survive)."""
        with self._lock:
            if (epoch is not None
                    and self._lease_epochs.get(job_id, int(epoch))
                    != int(epoch)):
                return
            try:
                os.unlink(self._lease_path(job_id))
            except OSError:
                pass

    def lease_holder(self, job_id: str) -> Optional[Dict[str, Any]]:
        return self._read_lease(self._lease_path(job_id))

    @staticmethod
    def _read_lease(path: str) -> Optional[Dict[str, Any]]:
        try:
            with open(path, "rb") as fh:
                return json.loads(fh.read())
        except (OSError, ValueError):
            return None

    # -- recovery -----------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Startup scan: finalize, re-queue, and sweep what a dead
        supervisor left behind.

        * ``running`` jobs with a sealed result → ``done`` (the crash
          hit between the result record and its transition);
        * other ``admitted``/``running`` jobs → ``queued`` (their lease
          holder is gone; the supervisor will resume them from their
          newest restorable checkpoint);
        * every lease file and half-written ``*.tmp.*`` is swept — no
          other process may hold a claim across a store reopen.
        """
        report = RecoveryReport(
            replayed_records=self._records,
            corrupt_tail_bytes=self._corrupt_tail_bytes,
        )
        with self._lock:
            for job in list(self._jobs.values()):
                if job.state == RUNNING and job.result_path:
                    self.transition(job.job_id, DONE,
                                    detail="finalized by recovery")
                    report.finalized += 1
                elif job.state in (ADMITTED, RUNNING):
                    self.transition(job.job_id, QUEUED,
                                    detail="requeued by recovery")
                    report.requeued += 1
            lease_dir = os.path.join(self.root, "leases")
            for name in os.listdir(lease_dir):
                try:
                    os.unlink(os.path.join(lease_dir, name))
                    report.leases_swept += 1
                except OSError:
                    pass
            report.tmp_swept = self.sweep_tmp()
        return report

    def sweep_tmp(self) -> int:
        """Remove half-written ``*.tmp.<pid>`` files under the root."""
        swept = 0
        for dirpath, _, names in os.walk(self.root):
            for name in names:
                if ".tmp." in name:
                    try:
                        os.unlink(os.path.join(dirpath, name))
                        swept += 1
                    except OSError:
                        pass
        return swept

    # -- metrics / lifecycle ------------------------------------------

    def metrics(self) -> Dict[str, Any]:
        with self._lock:
            by_state = {s: 0 for s in STATES}
            for job in self._jobs.values():
                by_state[job.state] += 1
            return {
                "jobs": by_state,
                "journal_records": self._records,
                "journal_bytes": (os.path.getsize(self._journal_path)
                                  if os.path.exists(self._journal_path)
                                  else 0),
                "corrupt_tail_bytes": self._corrupt_tail_bytes,
                "dedup_hits": self._dedup_hits,
                "results_stored": self._results_stored,
                "checkpoints_taken": self._checkpoints_taken,
                "stale_rejected": self._stale_rejected,
            }

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                if self.fsync:
                    try:
                        os.fsync(self._fh.fileno())
                    except OSError:
                        pass
                self._fh.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
