"""Additional machine-layer coverage: 3D address streams, laptop spec,
bandwidth-figure plumbing."""

import numpy as np
import pytest

from repro.baselines import naive_schedule
from repro.core import make_lattice
from repro.core.schedules import tess_schedule
from repro.machine.access import simulate_schedule_cache
from repro.machine.model import simulate
from repro.machine.spec import laptop_machine, paper_machine
from repro.stencils import get_stencil


class TestAccess3D:
    def test_3d_stream_runs_and_counts(self):
        spec = get_stencil("heat3d")
        m = paper_machine().scaled_caches(1 / 2048)
        sched = naive_schedule(spec, (12, 12, 12), 2)
        hier = simulate_schedule_cache(spec, sched, m)
        assert hier.memory_traffic_bytes > 0
        # at least the cold working set must have been fetched
        cold = 2 * (14 * 14 * 14) * 8
        assert hier.memory_traffic_bytes >= 0.5 * cold

    def test_box_kernel_stream(self):
        spec = get_stencil("3d27p")
        m = paper_machine().scaled_caches(1 / 2048)
        sched = naive_schedule(spec, (10, 10, 10), 1)
        hier = simulate_schedule_cache(spec, sched, m, levels=("l1",))
        assert hier.mem_reads > 0

    def test_coarsening_rescues_line_utilization_3d(self):
        """The §4.2 motivation, measured on the exact LRU simulator.

        With point-like cores the 3D tessellation touches many narrow
        rows — whole cache lines fetched for a few points — and moves
        MORE data than the naive sweep; coarsened cores restore full
        rows and beat it.  This is precisely why the paper coarsens
        ("our tessellation scheme will incur ineffective data access
        patterns", §4.2).
        """
        spec = get_stencil("heat3d")
        m = paper_machine().scaled_caches(1 / 512)
        shape, steps, b = (24, 24, 24), 8, 4
        naive = simulate_schedule_cache(
            spec, naive_schedule(spec, shape, steps), m
        ).memory_traffic_bytes
        fine = simulate_schedule_cache(
            spec, tess_schedule(
                spec, shape, make_lattice(spec, shape, b), steps
            ), m,
        ).memory_traffic_bytes
        coarse = simulate_schedule_cache(
            spec, tess_schedule(
                spec, shape,
                make_lattice(spec, shape, b, core_widths=(4, 4, 12)),
                steps,
            ), m,
        ).memory_traffic_bytes
        assert fine > naive          # uncoarsened: line waste dominates
        assert coarse < naive        # coarsened: temporal reuse wins
        assert coarse < 0.7 * fine


class TestSpecs:
    def test_laptop_machine_consistent(self):
        m = laptop_machine()
        assert m.cores == 4
        assert m.cache_per_task() > m.l2_bytes
        assert m.barrier_s(4) > 0

    def test_with_cores_validation(self):
        m = laptop_machine()
        with pytest.raises(ValueError):
            m.with_cores(0)
        with pytest.raises(ValueError):
            m.with_cores(99)
        assert m.with_cores(2).cores == m.cores  # structure preserved


class TestBandwidthFigures:
    def test_achieved_bandwidth_below_machine_peak(self):
        spec = get_stencil("heat2d")
        m = paper_machine().scaled_caches(0.02)
        sched = naive_schedule(spec, (256, 256), 8, chunks=8)
        r = simulate(spec, sched, m, 8)
        assert 0 < r.bandwidth_gbs <= m.total_mem_bw / 1e9 * 1.01

    def test_compute_vs_memory_bound_classification(self):
        spec = get_stencil("3d27p")  # high arithmetic intensity
        m = paper_machine()
        lat = make_lattice(spec, (24, 24, 24), 2)
        sched = tess_schedule(spec, (24, 24, 24), lat, 4)
        r = simulate(spec, sched, m, 2)
        assert r.compute_bound_groups + r.memory_bound_groups \
            == sched.num_groups
        assert r.compute_bound_groups > 0  # 27p at 2 cores: compute-bound
