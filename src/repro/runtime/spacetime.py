"""ASCII space-time diagrams of 1D schedules (the paper's Figure 1/3).

Renders the iteration-space tessellation of any 1D
:class:`~repro.runtime.schedule.RegionSchedule` as text: rows are time
steps (bottom-up, like the paper's figures), columns are grid points,
and each cell shows which barrier group (or task) updated it.  The
diamond/triangle structure of Figure 1, the merged (d+1)-dimensional
diamonds of §4.3 and the trapezoids of the cache-oblivious baseline
all become directly visible — the test-suite uses the renders to check
structural properties, and the docs embed them.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.runtime.schedule import RegionSchedule

#: cycle of glyphs used for group colouring
_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


def spacetime_matrix(schedule: RegionSchedule,
                     by: str = "group") -> np.ndarray:
    """Integer matrix ``M[t, x]`` = group (or task) id updating x at t.

    ``-1`` marks cells no action covers (impossible in a valid
    complete schedule — checked by the tests).  ``by`` is ``"group"``,
    ``"task"`` or ``"stage_char"`` (group modulo glyph cycle).
    """
    if len(schedule.shape) != 1:
        raise ValueError("space-time rendering is defined for 1D schedules")
    n = schedule.shape[0]
    m = np.full((schedule.steps, n), -1, dtype=np.int64)
    for tid, task in enumerate(schedule.tasks):
        mark = task.group if by in ("group", "stage_char") else tid
        for a in task.actions:
            lo, hi = a.region[0]
            if hi > lo:
                m[a.t, lo:hi] = mark
    return m


def render_spacetime(schedule: RegionSchedule, width: Optional[int] = None,
                     by: str = "group") -> str:
    """Text diagram, newest time step on top (paper orientation)."""
    m = spacetime_matrix(schedule, by=by)
    steps, n = m.shape
    if width is not None and n > width:
        m = m[:, :width]
        n = width
    lines: List[str] = []
    for t in range(steps - 1, -1, -1):
        row = "".join(
            "." if v < 0 else _GLYPHS[v % len(_GLYPHS)] for v in m[t]
        )
        lines.append(f"t={t + 1:>3} |{row}|")
    lines.append(f"       {'x' * min(n, 4)}{'-' * max(0, n - 4)}")
    return "\n".join(lines)


def coverage_gaps(schedule: RegionSchedule) -> int:
    """Number of (t, x) cells no action updates (0 for a valid tiling)."""
    return int((spacetime_matrix(schedule) < 0).sum())


def group_spans(schedule: RegionSchedule) -> Dict[int, int]:
    """Per barrier group: number of distinct time steps it touches.

    Diamond/tessellation groups span up to ``b`` steps; merged groups
    up to ``2b``; naive groups exactly 1.
    """
    out: Dict[int, int] = {}
    for gid, tasks in schedule.groups().items():
        ts = {a.t for task in tasks for a in task.actions}
        out[gid] = len(ts)
    return out
