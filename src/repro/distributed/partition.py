"""Slab partitioning of the tessellated grid across ranks.

The data space is cut into contiguous slabs along one axis (dimension
0 by default — the standard distributed-stencil decomposition); a
tessellation block is *owned* by the rank whose slab contains the low
corner of its base interval along the partition axis.  Because block
update regions extend at most ``(b-1)·σ`` beyond their base and reads
one more slope, a ghost band of width ``b·σ + max base width`` around
each slab bounds everything a rank ever reads or writes outside its
own slab.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.profiles import TessLattice
from repro.stencils.spec import region_is_empty


@dataclass(frozen=True)
class SlabPartition:
    """Contiguous slab partition along one axis."""

    shape: Tuple[int, ...]
    ranks: int
    axis: int = 0

    def __post_init__(self):
        if self.ranks < 1:
            raise ValueError(f"ranks must be >= 1, got {self.ranks}")
        if not 0 <= self.axis < len(self.shape):
            raise ValueError(f"axis {self.axis} out of range")
        if self.ranks > self.shape[self.axis]:
            raise ValueError(
                f"{self.ranks} ranks exceed extent "
                f"{self.shape[self.axis]} along axis {self.axis}"
            )

    def bounds(self) -> List[Tuple[int, int]]:
        """Half-open slab interval of every rank along the axis."""
        n = self.shape[self.axis]
        cuts = [round(r * n / self.ranks) for r in range(self.ranks + 1)]
        return [(cuts[r], cuts[r + 1]) for r in range(self.ranks)]

    def owner_of(self, coord: int) -> int:
        """Rank owning a coordinate along the partition axis."""
        n = self.shape[self.axis]
        c = min(max(int(coord), 0), n - 1)
        for r, (lo, hi) in enumerate(self.bounds()):
            if lo <= c < hi:
                return r
        raise AssertionError("unreachable: bounds cover [0, n)")

    def owner_of_box(self, box: Sequence[Tuple[int, int]]) -> int:
        """Rank owning a block: the owner of its low corner."""
        return self.owner_of(box[self.axis][0])

    def ghost_width(self, lattice: TessLattice) -> int:
        """Band width that bounds all out-of-slab reads and writes.

        A block is owned by the rank holding the low corner of its
        bounding box, so everything it touches lies within the block's
        full axis extent — ``2(b-1)·σ`` of dilation plus the widest
        base interval — plus one read slope.
        """
        prof = lattice.profiles[self.axis]
        base = prof.core_width if prof.core_width is not None else 1
        plateau = max(
            (hi - lo for lo, hi in prof.plateaus()), default=base
        )
        return (2 * (lattice.b - 1) + 1) * prof.sigma + max(base, plateau)


def build_ownership(lattice: TessLattice, part: SlabPartition):
    """Per-rank, per-stage block ownership of the tessellation plan.

    Returns ``(plan, owned)`` where ``plan`` is the
    :class:`~repro.core.blocks.PhasePlan` and ``owned[r][s]`` lists the
    blocks of stage ``s`` owned by rank ``r`` — the single definition
    shared by the simulated executor, the structural sanitizer and the
    elastic process runtime, so every path agrees on who computes what.
    A block belongs to the rank holding the low corner of its clipped
    bounding box; degenerate (empty) blocks fall to rank 0, which never
    applies their (empty) regions.
    """
    from repro.core.blocks import build_phase_plan

    shape = part.shape
    slopes = tuple(p.sigma for p in lattice.profiles)
    plan = build_phase_plan(lattice, slopes)
    b = lattice.b

    def _owner(blk) -> int:
        bbox = blk.bounding_box(b, slopes, shape)
        if region_is_empty(bbox):
            return 0
        return part.owner_of_box(bbox)

    owned = [
        [[blk for blk in sp.blocks if _owner(blk) == r]
         for sp in plan.stages]
        for r in range(part.ranks)
    ]
    return plan, owned
