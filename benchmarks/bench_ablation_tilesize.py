"""Ablation A1 — tile-size sensitivity (§5.1).

The paper observes performance "is very sensitive to the tile sizes";
this bench sweeps the time-tile depth on the Heat-2D problem and also
checks the auto-tuner lands within the sweep's best.
"""

from repro.autotune import grid_search
from repro.bench.experiments import ablation_tile_sensitivity
from repro.machine.spec import paper_machine
from repro.stencils import get_stencil


def test_tile_sensitivity(benchmark, capsys):
    out = benchmark.pedantic(ablation_tile_sensitivity, rounds=1,
                             iterations=1)
    with capsys.disabled():
        print("\n[A1] Heat-2D performance vs time-tile depth (24 cores):")
        print(out)
    # the sensitivity itself: a small tuning sweep spans a real range
    spec = get_stencil("heat2d")
    m = paper_machine().scaled_caches(0.05)
    res = grid_search(spec, (480, 480), 32, m, 24)
    times = [r.time_s for r in res]
    assert max(times) / min(times) > 1.2, "no tile-size sensitivity?"
