"""Job store: journal framing, state machine, idempotency, recovery.

Includes the hypothesis property test the issue asks for: replaying a
journal can only ever produce legal state transitions — random
interleavings of legal writes always replay, and histories with an
illegal edge spliced in are refused with ``JournalReplayError``.
"""

import json
import os
import struct
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.errors import JobNotFound
from repro.service import (
    ADMITTED,
    CANCELLED,
    DONE,
    FAILED,
    LEGAL_TRANSITIONS,
    QUEUED,
    RUNNING,
    STATES,
    Job,
    JobStore,
    JournalReplayError,
)

pytestmark = pytest.mark.service

CFG = {"shape": [32], "steps": 8, "backend": "serial"}


def _store(tmp_path, name="store", **kw):
    kw.setdefault("fsync", False)  # keep the suite fast; framing is
    return JobStore(str(tmp_path / name), **kw)  # identical either way


def test_submit_and_get_roundtrip(tmp_path):
    with _store(tmp_path) as store:
        job, created = store.submit("heat1d", CFG)
        assert created and job.state == QUEUED
        assert store.get(job.job_id).job_id == job.job_id
        assert job.estimated_bytes > 0


def test_submit_is_idempotent_across_spellings(tmp_path):
    with _store(tmp_path) as store:
        a, created_a = store.submit("heat1d", CFG)
        # alias spelling of the same backend → same canonical config
        b, created_b = store.submit(
            "heat1d", dict(CFG, backend="sequential"))
        assert created_a and not created_b
        assert a.job_id == b.job_id
        assert store.metrics()["dedup_hits"] == 1


def test_distinct_configs_get_distinct_jobs(tmp_path):
    with _store(tmp_path) as store:
        a, _ = store.submit("heat1d", CFG)
        b, _ = store.submit("heat1d", dict(CFG, steps=9))
        assert a.job_id != b.job_id


def test_get_unknown_job_raises_typed(tmp_path):
    with _store(tmp_path) as store:
        with pytest.raises(JobNotFound):
            store.get("job-missing")


def test_illegal_transition_raises_value_error(tmp_path):
    with _store(tmp_path) as store:
        job, _ = store.submit("heat1d", CFG)
        with pytest.raises(ValueError, match="illegal job transition"):
            store.transition(job.job_id, DONE)  # queued -> done


def test_terminal_states_have_no_exits(tmp_path):
    with _store(tmp_path) as store:
        job, _ = store.submit("heat1d", CFG)
        store.transition(job.job_id, CANCELLED)
        for dst in STATES:
            with pytest.raises(ValueError):
                store.transition(job.job_id, dst)


def test_state_survives_reopen(tmp_path):
    with _store(tmp_path) as store:
        job, _ = store.submit("heat1d", CFG)
        store.transition(job.job_id, ADMITTED)
        store.transition(job.job_id, RUNNING, attempts=1)
        job_id = job.job_id
    with _store(tmp_path) as store:
        job = store.get(job_id)
        assert job.state == RUNNING and job.attempts == 1


def test_result_seal_and_reload(tmp_path):
    arr = np.arange(24, dtype=np.float64).reshape(4, 6)
    with _store(tmp_path) as store:
        job, _ = store.submit("heat1d", CFG)
        store.transition(job.job_id, ADMITTED)
        store.transition(job.job_id, RUNNING)
        store.record_result(job.job_id, arr, {"steps": 8})
        job_id = job.job_id
    with _store(tmp_path) as store:
        assert store.get(job_id).state == DONE
        loaded, stats = store.load_result(job_id)
        np.testing.assert_array_equal(loaded, arr)
        assert stats == {"steps": 8}


def test_tampered_result_fails_its_seal(tmp_path):
    with _store(tmp_path) as store:
        job, _ = store.submit("heat1d", CFG)
        store.transition(job.job_id, ADMITTED)
        store.transition(job.job_id, RUNNING)
        store.record_result(job.job_id, np.zeros(8), {})
        path = os.path.join(store.root, store.get(job.job_id).result_path)
        with open(path, "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            fh.write(b"\xff")
        with pytest.raises(ValueError, match="SHA-256"):
            store.load_result(job.job_id)


def test_checkpoint_roundtrip_and_pruning(tmp_path):
    with _store(tmp_path) as store:
        job, _ = store.submit("heat1d", CFG)
        for step in (4, 8, 12):
            store.save_checkpoint(job.job_id, step,
                                  np.full(34, float(step)))
        step, buf = store.load_checkpoint(job.job_id)
        assert step == 12 and buf[0] == 12.0
        # only KEEP_CHECKPOINTS files survive on disk
        ckdir = os.path.join(store.root, "checkpoints", job.job_id)
        assert len(os.listdir(ckdir)) == JobStore.KEEP_CHECKPOINTS


def test_corrupt_checkpoint_quarantined_next_older_used(tmp_path):
    with _store(tmp_path) as store:
        job, _ = store.submit("heat1d", CFG)
        store.save_checkpoint(job.job_id, 4, np.full(34, 4.0))
        store.save_checkpoint(job.job_id, 8, np.full(34, 8.0))
        newest = os.path.join(store.root, job.checkpoints[-1][1])
        with open(newest, "r+b") as fh:
            fh.seek(-2, os.SEEK_END)
            fh.write(b"\x00\x00")
        step, buf = store.load_checkpoint(job.job_id)
        assert step == 4 and buf[0] == 4.0
        assert os.path.exists(f"{newest}.corrupt")


def test_torn_journal_tail_quarantined(tmp_path):
    with _store(tmp_path) as store:
        job, _ = store.submit("heat1d", CFG)
        store.transition(job.job_id, ADMITTED)
        journal = store._journal_path
        job_id = job.job_id
    # a writer died mid-append: half a record at the tail
    with open(journal, "ab") as fh:
        payload = b'{"op": "transition"'  # truncated JSON, torn frame
        fh.write(struct.pack(">4sII", b"RJW1", 999,
                             zlib.crc32(payload)))
        fh.write(payload)
    with _store(tmp_path) as store:
        assert store.get(job_id).state == ADMITTED  # good prefix kept
        assert store._corrupt_tail_bytes > 0
    assert os.path.exists(f"{journal}.corrupt")


def test_journal_with_illegal_story_is_refused(tmp_path):
    with _store(tmp_path) as store:
        job, _ = store.submit("heat1d", CFG)
        journal = store._journal_path
        job_id = job.job_id
    # splice in a record that passes its CRC but tells an illegal
    # story: queued -> done with no admitted/running in between
    payload = json.dumps({"op": "transition", "job_id": job_id,
                          "from": QUEUED, "to": DONE}).encode()
    with open(journal, "ab") as fh:
        fh.write(struct.pack(">4sII", b"RJW1", len(payload),
                             zlib.crc32(payload) & 0xFFFFFFFF))
        fh.write(payload)
    with pytest.raises(JournalReplayError):
        JobStore(os.path.dirname(os.path.dirname(journal)), fsync=False)


def test_lease_acquire_conflict_and_stale_takeover(tmp_path):
    with _store(tmp_path) as store:
        job, _ = store.submit("heat1d", CFG)
        assert store.acquire_lease(job.job_id, "w0", ttl_s=30.0)
        assert not store.acquire_lease(job.job_id, "w1", ttl_s=30.0)
        # an expired lease is stale: any worker may take it over
        store.renew_lease(job.job_id, "w0", ttl_s=-1.0)
        assert store.acquire_lease(job.job_id, "w1", ttl_s=30.0)
        assert store.lease_holder(job.job_id)["owner"] == "w1"
        store.release_lease(job.job_id)
        assert store.lease_holder(job.job_id) is None


def test_recovery_requeues_and_sweeps(tmp_path):
    with _store(tmp_path) as store:
        a, _ = store.submit("heat1d", CFG)
        b, _ = store.submit("heat1d", dict(CFG, steps=9))
        store.transition(a.job_id, ADMITTED)
        store.transition(b.job_id, ADMITTED)
        store.transition(b.job_id, RUNNING)
        store.acquire_lease(b.job_id, "w0", ttl_s=30.0)
        ids = (a.job_id, b.job_id)
    with _store(tmp_path) as store:
        report = store.recover()
        assert report.requeued == 2
        assert report.leases_swept == 1
        for job_id in ids:
            assert store.get(job_id).state == QUEUED


def test_recovery_finalizes_sealed_result(tmp_path):
    # crash window: result journaled but the running->done transition
    # was never written — recovery must finalize, not re-run
    with _store(tmp_path) as store:
        job, _ = store.submit("heat1d", CFG)
        store.transition(job.job_id, ADMITTED)
        store.transition(job.job_id, RUNNING)
        rel = os.path.join("results", f"{job.job_id}.npy")
        import io

        buf = io.BytesIO()
        np.save(buf, np.ones(4), allow_pickle=False)
        with open(os.path.join(store.root, rel), "wb") as fh:
            fh.write(buf.getvalue())
        import hashlib

        sha = hashlib.sha256(buf.getvalue()).hexdigest()
        store._append({"op": "result", "job_id": job.job_id,
                       "path": rel, "sha256": sha, "stats": {}})
        job_id = job.job_id
    with _store(tmp_path) as store:
        report = store.recover()
        assert report.finalized == 1
        assert store.get(job_id).state == DONE
        arr, _ = store.load_result(job_id)
        np.testing.assert_array_equal(arr, np.ones(4))


def test_unknown_journal_ops_are_skipped(tmp_path):
    with _store(tmp_path) as store:
        store._append({"op": "from-the-future", "payload": 1})
        job, _ = store.submit("heat1d", CFG)
        job_id = job.job_id
    with _store(tmp_path) as store:  # replay does not choke
        assert store.get(job_id).state == QUEUED


# -- the replay property ----------------------------------------------

def _legal_walk(draw):
    """A random legal state history starting at queued."""
    path = [QUEUED]
    while True:
        nxt = LEGAL_TRANSITIONS[path[-1]]
        if not nxt or not draw(st.booleans()):
            return path
        path.append(draw(st.sampled_from(list(nxt))))
        if len(path) > 12:
            return path


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_replay_accepts_every_legal_history(tmp_path_factory, data):
    tmp = tmp_path_factory.mktemp("walk")
    with JobStore(str(tmp), fsync=False) as store:
        job, _ = store.submit("heat1d", CFG)
        path = _legal_walk(data.draw)
        for state in path[1:]:
            store.transition(job.job_id, state)
        job_id, final = job.job_id, path[-1]
    with JobStore(str(tmp), fsync=False) as store:
        assert store.get(job_id).state == final


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_replay_refuses_every_illegal_edge(tmp_path_factory, data):
    tmp = tmp_path_factory.mktemp("bad")
    with JobStore(str(tmp), fsync=False) as store:
        job, _ = store.submit("heat1d", CFG)
        path = _legal_walk(data.draw)
        for state in path[1:]:
            store.transition(job.job_id, state)
        journal = store._journal_path
        job_id, final = job.job_id, path[-1]
    illegal = [s for s in STATES
               if s != final and s not in LEGAL_TRANSITIONS[final]]
    if not illegal:  # every state reachable from here (cannot happen
        return       # with the current machine, but stay future-proof)
    dst = data.draw(st.sampled_from(illegal))
    payload = json.dumps({"op": "transition", "job_id": job_id,
                          "from": final, "to": dst}).encode()
    with open(journal, "ab") as fh:
        fh.write(struct.pack(">4sII", b"RJW1", len(payload),
                             zlib.crc32(payload) & 0xFFFFFFFF))
        fh.write(payload)
    with pytest.raises(JournalReplayError):
        JobStore(str(tmp), fsync=False)


def test_job_json_roundtrip():
    job = Job(job_id="job-x", kernel="heat1d", config=dict(CFG),
              idempotency_key="k", checkpoints=[(4, "p", "sha")])
    clone = Job.from_json(json.loads(json.dumps(job.to_json())))
    assert clone == job
