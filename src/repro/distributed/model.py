"""Cluster cost model for the distributed tessellation.

Combines the shared-memory node model of :mod:`repro.machine.model`
with a classic α–β network: each stage costs the slowest node's
compute time plus its largest exchange (latency + volume/bandwidth),
phases repeat to cover all time steps.  Used for strong-scaling
what-if analysis of §4.1 (nodes × cores), not for reproducing paper
figures (the paper stays on one node).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.blocks import build_phase_plan
from repro.core.profiles import TessLattice
from repro.distributed.partition import SlabPartition
from repro.distributed.plan import communication_plan
from repro.machine.model import _lpt_makespan
from repro.machine.spec import MachineSpec
from repro.stencils.spec import StencilSpec, region_is_empty


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster: ``nodes`` × one node machine + network."""

    nodes: int
    node: MachineSpec
    latency_s: float = 2.0e-6       # per-message α
    bandwidth_bytes: float = 12.5e9  # per-link β (100 Gb/s)

    def __post_init__(self):
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")


@dataclass(frozen=True)
class DistSimResult:
    scheme: str
    nodes: int
    cores_per_node: int
    time_s: float
    comm_bytes: float
    comm_time_s: float
    useful_points: int

    @property
    def gstencils(self) -> float:
        return self.useful_points / self.time_s / 1e9 if self.time_s else 0.0

    @property
    def comm_fraction(self) -> float:
        return self.comm_time_s / self.time_s if self.time_s else 0.0


def simulate_distributed(
    spec: StencilSpec,
    shape: Tuple[int, ...],
    lattice: TessLattice,
    steps: int,
    cluster: ClusterSpec,
    cores_per_node: int | None = None,
    axis: int = 0,
) -> DistSimResult:
    """Strong-scaling estimate of one tessellated run on a cluster."""
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    node = cluster.node
    cores = cores_per_node if cores_per_node is not None else node.cores
    if not 1 <= cores <= node.cores:
        raise ValueError(f"cores_per_node out of range: {cores}")
    part = SlabPartition(shape, cluster.nodes, axis=axis)
    slopes = tuple(p.sigma for p in lattice.profiles)
    plan = build_phase_plan(lattice, slopes)
    b = lattice.b
    fpp = spec.flops_per_point

    comm = communication_plan(spec, shape, lattice, cluster.nodes, axis=axis)
    recv_by_stage: Dict[Tuple[int, int], int] = {}
    for e in comm:
        key = (e.stage, e.dst)
        recv_by_stage[key] = recv_by_stage.get(key, 0) + e.bytes

    phase_time = 0.0
    phase_comm_time = 0.0
    phase_comm_bytes = sum(e.bytes for e in comm)
    for si, sp in enumerate(plan.stages):
        # per-node compute makespans
        node_times = []
        for r in range(cluster.nodes):
            times = []
            for blk in sp.blocks:
                bbox = blk.bounding_box(b, slopes, shape)
                if region_is_empty(bbox):
                    continue
                if part.owner_of_box(bbox) != r:
                    continue
                pts = blk.total_points(b, slopes, shape)
                times.append(
                    node.task_overhead_s + pts * fpp / node.flop_rate
                )
            ms, _ = _lpt_makespan(times, cores)
            node_times.append(ms)
        stage_compute = max(node_times, default=0.0)
        stage_comm = max(
            (cluster.latency_s + v / cluster.bandwidth_bytes
             for (s, _), v in recv_by_stage.items() if s == si),
            default=0.0,
        )
        phase_time += stage_compute + stage_comm + node.barrier_s(cores)
        phase_comm_time += stage_comm
    phases = -(-steps // b)
    interior = 1
    for n in shape:
        interior *= int(n)
    return DistSimResult(
        scheme="tessellation-distributed",
        nodes=cluster.nodes,
        cores_per_node=cores,
        time_s=phase_time * phases,
        comm_bytes=float(phase_comm_bytes * phases),
        comm_time_s=phase_comm_time * phases,
        useful_points=interior * steps,
    )
