"""Tests for the tessellation → RegionSchedule compiler."""

import numpy as np
import pytest

from repro.core import make_lattice
from repro.core.profiles import AxisProfile, TessLattice
from repro.core.schedules import tess_schedule
from repro.runtime import schedule_stats, verify_schedule
from repro.stencils import d1p5, heat1d, heat2d, heat3d


class TestPlainSchedule:
    def test_valid_all_dims(self):
        for spec, shape, b in [
            (heat1d(), (40,), 3),
            (heat2d(), (18, 20), 2),
            (heat3d(), (10, 11, 9), 2),
        ]:
            lat = make_lattice(spec, shape, b)
            sched = tess_schedule(spec, shape, lat, 2 * b + 1)
            sched.validate_structure()
            assert verify_schedule(spec, sched)

    def test_no_redundancy(self):
        spec = heat2d()
        lat = make_lattice(spec, (20, 20), 2)
        sched = tess_schedule(spec, (20, 20), lat, 6)
        st = schedule_stats(sched)
        assert st["redundancy"] == 0.0

    def test_groups_per_phase(self):
        """d+1 barrier groups per full phase (§3.2)."""
        spec = heat2d()
        lat = make_lattice(spec, (30, 30), 3)
        sched = tess_schedule(spec, (30, 30), lat, 9)  # 3 phases
        assert sched.num_groups == 3 * 3

    def test_zero_steps(self):
        spec = heat1d()
        lat = make_lattice(spec, (20,), 2)
        sched = tess_schedule(spec, (20,), lat, 0)
        assert sched.tasks == []

    def test_shape_mismatch(self):
        spec = heat1d()
        lat = make_lattice(spec, (20,), 2)
        with pytest.raises(ValueError):
            tess_schedule(spec, (21,), lat, 4)

    def test_negative_steps(self):
        spec = heat1d()
        lat = make_lattice(spec, (20,), 2)
        with pytest.raises(ValueError):
            tess_schedule(spec, (20,), lat, -2)


class TestMergedSchedule:
    def test_valid(self):
        for spec, shape, b in [
            (heat1d(), (40,), 3),
            (d1p5(), (50,), 2),
            (heat2d(), (18, 20), 2),
            (heat3d(), (10, 11, 9), 2),
        ]:
            lat = make_lattice(spec, shape, b)
            sched = tess_schedule(spec, shape, lat, 2 * b + 1, merged=True)
            assert verify_schedule(spec, sched)

    def test_one_less_barrier_per_phase(self):
        """§4.3: merging saves one synchronisation per phase."""
        spec = heat2d()
        lat = make_lattice(spec, (30, 30), 3)
        phases = 4
        plain = tess_schedule(spec, (30, 30), lat, 3 * phases)
        merged = tess_schedule(spec, (30, 30), lat, 3 * phases, merged=True)
        # plain: (d+1) per phase; merged: d per phase plus the prologue
        assert plain.num_groups == (2 + 1) * phases
        assert merged.num_groups == 2 * phases + 1

    def test_same_total_work(self):
        spec = heat2d()
        lat = make_lattice(spec, (24, 26), 2)
        plain = tess_schedule(spec, (24, 26), lat, 8)
        merged = tess_schedule(spec, (24, 26), lat, 8, merged=True)
        assert plain.total_points() == merged.total_points()
        assert plain.total_points() == 24 * 26 * 8

    def test_uncut_axis_merged(self):
        spec = heat3d()
        shape = (12, 12, 10)
        lat = make_lattice(spec, shape, 2, uncut_dims=(2,))
        sched = tess_schedule(spec, shape, lat, 7, merged=True)
        assert verify_schedule(spec, sched)


class TestScheduleWorkAccounting:
    def test_every_point_updated_each_step(self):
        """Across one schedule, each (point, step) occurs exactly once."""
        spec = heat2d()
        shape = (13, 14)
        lat = make_lattice(spec, shape, 2)
        sched = tess_schedule(spec, shape, lat, 5)
        seen = np.zeros((5,) + shape, dtype=np.int32)
        for task in sched.tasks:
            for a in task.actions:
                idx = (a.t,) + tuple(slice(lo, hi) for lo, hi in a.region)
                seen[idx] += 1
        assert np.array_equal(seen, np.ones_like(seen))

    def test_actions_respect_dependences_groupwise(self):
        """Within a group ordering, no action at t may precede (in group
        order) a distinct group's action at t-1 that it reads from."""
        spec = heat1d()
        lat = make_lattice(spec, (30,), 3)
        sched = tess_schedule(spec, (30,), lat, 6)
        # reconstruct: executing groups in order must advance every
        # point monotonically in time; inside a task, its own earlier
        # actions also count as available inputs
        last_time = np.zeros(30, dtype=np.int64)
        for gid in sorted(sched.groups()):
            for task in sched.groups()[gid]:
                own = last_time.copy()
                for a in task.actions:
                    lo, hi = a.region[0]
                    # reads reach one slope past the region
                    rlo, rhi = max(0, lo - 1), min(30, hi + 1)
                    assert np.all(own[rlo:rhi] >= a.t), (
                        "action runs before its inputs exist"
                    )
                    own[lo:hi] = np.maximum(own[lo:hi], a.t + 1)
            for task in sched.groups()[gid]:
                for a in task.actions:
                    lo, hi = a.region[0]
                    last_time[lo:hi] = np.maximum(last_time[lo:hi], a.t + 1)
