"""Overlapped (redundant) time tiling — §2.1 "Overlapped tiling".

The ghost-zone technique of the high-performance community: the grid
is cut into hyper-rectangular *cores*; to advance a core ``bt`` steps
without inter-tile communication, each tile also recomputes a halo
that shrinks by one slope per step (an inverted trapezoid per tile).
Tiles of one time tile are fully independent — maximal concurrency —
at the price of redundant computation that grows with ``bt`` and the
surface-to-volume ratio, the trade-off the paper argues against
("the redundant operations may outweigh the performance improvement").

Unlike every other scheme here, overlapped tiles cannot run on the
shared ping-pong buffers: a tile that finishes its ``bt`` steps
overwrites (with time ``tt+2`` values) grid cells a later tile still
needs at time ``tt``.  Real ghost-zone implementations therefore give
each tile *private* storage (GPU shared memory, per-thread scratch);
:func:`execute_overlapped` reproduces that: per time tile, every task
first snapshots its input bounding box, iterates privately, and writes
back only its core.  The generic
:func:`repro.runtime.schedule.execute_schedule` refuses schedules
flagged private.
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from repro.runtime.schedule import RegionAction, RegionSchedule
from repro.stencils.grid import Grid
from repro.stencils.spec import StencilSpec, region_is_empty


def overlapped_schedule(
    spec: StencilSpec,
    shape: Sequence[int],
    steps: int,
    tile: Sequence[int],
    bt: int,
) -> RegionSchedule:
    """Time tiles of depth ``bt`` over ``tile``-sized cores.

    At local step ``s`` (global ``tt + s``) a tile updates its core
    dilated by ``(bt - 1 - s)·σ`` per dimension, clipped to the domain;
    the last step produces exactly the core.  One barrier group per
    time tile.
    """
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    if bt < 1:
        raise ValueError(f"bt must be >= 1, got {bt}")
    shape = tuple(int(n) for n in shape)
    tile = tuple(int(t) for t in tile)
    if len(shape) != spec.ndim or len(tile) != spec.ndim:
        raise ValueError("shape/tile rank mismatch")
    if any(t < 1 for t in tile):
        raise ValueError(f"tile sizes must be >= 1, got {tile}")
    slopes = spec.slopes
    grids = [range(0, n, t) for n, t in zip(shape, tile)]
    sched = RegionSchedule(scheme="overlapped", shape=shape, steps=steps,
                           private_tasks=True, redundant=True)
    group = 0
    tt = 0
    while tt < steps:
        span = min(bt, steps - tt)
        for origin in itertools.product(*grids):
            actions = []
            for s in range(span):
                # dilation measured from the *end of this time tile*:
                # the final step of the tile emits exactly the core
                r = span - 1 - s
                region = tuple(
                    (max(0, o - r * sg), min(n, o + w + r * sg))
                    for o, w, sg, n in zip(origin, tile, slopes, shape)
                )
                if not region_is_empty(region):
                    actions.append(RegionAction(t=tt + s, region=region))
            if actions:
                sched.add(group, actions, label=f"t{tt}:tile{origin}")
        group += 1
        tt += bt
    return sched


def execute_overlapped(spec: StencilSpec, grid: Grid,
                       schedule: RegionSchedule,
                       budget=None) -> "np.ndarray":
    """Ghost-zone execution: snapshot, iterate privately, write back core.

    Per barrier group (one time tile): **pass 1** snapshots every
    task's input box from the shared grid (read-only — safe to run
    concurrently); **pass 2** iterates each task on its private
    ping-pong pair and writes back only the final core region (cores
    are disjoint — safe to run concurrently).  This is exactly the GPU
    ghost-zone / 3.5D-blocking discipline the paper's §2.1 describes.
    """
    if spec.is_periodic:
        raise ValueError("overlapped executor assumes non-periodic boundaries")
    if grid.shape != schedule.shape:
        raise ValueError(
            f"grid shape {grid.shape} != schedule shape {schedule.shape}"
        )
    halo = spec.halo
    groups = schedule.groups()
    if budget is not None:
        budget.check("overlapped entry")
    for gid in sorted(groups):
        if budget is not None:
            budget.check(f"group {gid}")
        tasks = groups[gid]
        snapshots = []
        # pass 1: snapshot inputs at the tile's start time
        for task in tasks:
            if not task.actions:
                snapshots.append(None)
                continue
            t_start = task.actions[0].t
            inbox = task.actions[0].region  # widest region of the task
            pad_shape = tuple(
                (hi - lo) + 2 * h for (lo, hi), h in zip(inbox, halo)
            )
            src = grid.at(t_start)
            src_slices = tuple(
                slice(lo, hi + 2 * h) for (lo, hi), h in zip(inbox, halo)
            )
            # explicit copy: a contiguous slice would otherwise alias
            # the live grid and defeat the snapshot
            buf_a = src[src_slices].copy()
            if buf_a.shape != pad_shape:
                raise AssertionError("snapshot shape mismatch")
            snapshots.append((t_start, inbox, [buf_a, buf_a.copy()]))
        # pass 2: private iteration + core write-back
        for task, snap in zip(tasks, snapshots):
            if snap is None:
                continue
            t_start, inbox, bufs = snap
            offs = tuple(lo for lo, _ in inbox)
            for a in task.actions:
                local = tuple(
                    (lo - o, hi - o) for (lo, hi), o in zip(a.region, offs)
                )
                spec.apply_region(bufs[a.t % 2], bufs[(a.t + 1) % 2], local)
            last = task.actions[-1]
            t_done = last.t + 1
            core = last.region
            dst = grid.at(t_done)
            dst_slices = tuple(
                slice(lo + h, hi + h) for (lo, hi), h in zip(core, halo)
            )
            local_core = tuple(
                slice(lo - o + h, hi - o + h)
                for (lo, hi), o, h in zip(core, offs, halo)
            )
            dst[dst_slices] = bufs[t_done % 2][local_core]
    return grid.interior(schedule.steps)
