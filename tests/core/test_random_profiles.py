"""The generalised-validity property, tested adversarially.

`repro/core/profiles.py` claims: ANY family of per-axis distance maps
``a_j : [0, N_j) → [0, b]`` that is 1-Lipschitz in slope units yields a
correct tessellation schedule.  Here hypothesis synthesises *random*
Lipschitz profiles — random walks with clamping, nothing like the
regular core/plateau lattices — and the pointwise executor must still
match the naive reference bit-for-bit.  This is far stronger than
testing the built-in constructors: it probes the theorem itself.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pointwise import run_pointwise
from repro.core.profiles import AxisProfile, TessLattice
from repro.stencils import Grid, get_stencil, reference_sweep


def random_profile(draw, n: int, b: int, sigma: int = 1,
                   periodic: bool = False) -> AxisProfile:
    """A random 1-Lipschitz (in σ units) distance map as a profile."""
    # random walk on [0, b] with ±1 steps every σ points
    n_sn = -(-n // sigma)
    start = draw(st.integers(0, b))
    steps = draw(st.lists(st.integers(-1, 1), min_size=n_sn - 1,
                          max_size=n_sn - 1))
    vals = [start]
    for s in steps:
        vals.append(min(b, max(0, vals[-1] + s)))
    if periodic:
        # force wrap-consistency: blend the ends together
        gap = vals[0] - vals[-1]
        if abs(gap) > 1:
            # walk the tail towards the head
            k = abs(gap) - 1
            for i in range(1, k + 1):
                idx = len(vals) - 1 - (k - i)
                target = vals[0] - np.sign(gap) * (k - i)
                vals[idx] = min(b, max(0, int(target)))
    a = np.repeat(np.asarray(vals, dtype=np.int64), sigma)[:n]
    # express as an explicit profile: dist = a * sigma (so ceil(dist/σ)=a)
    dist = a * sigma
    prof = AxisProfile(
        n=n, b=b, sigma=sigma, periodic=periodic,
        dist=dist, cores=((0, 1),),  # cores unused by the pointwise path
    )
    prof.validate()
    return prof


class TestRandomLipschitzProfiles:
    @given(st.data(), st.integers(8, 40), st.integers(1, 4),
           st.integers(0, 9))
    @settings(max_examples=60, deadline=None)
    def test_1d_dirichlet(self, data, n, b, steps):
        spec = get_stencil("heat1d")
        prof = random_profile(data.draw, n, b)
        g1 = Grid(spec, (n,), seed=n)
        ref = reference_sweep(spec, g1.copy(), steps)
        out = run_pointwise(spec, g1.copy(), TessLattice((prof,)), steps,
                            validate=False)
        assert np.allclose(ref, out, rtol=1e-11, atol=1e-12)

    @given(st.data(), st.integers(6, 16), st.integers(6, 16),
           st.integers(1, 3), st.integers(0, 6))
    @settings(max_examples=30, deadline=None)
    def test_2d_dirichlet(self, data, nx, ny, b, steps):
        spec = get_stencil("heat2d")
        lat = TessLattice((
            random_profile(data.draw, nx, b),
            random_profile(data.draw, ny, b),
        ))
        g1 = Grid(spec, (nx, ny), seed=nx + ny)
        ref = reference_sweep(spec, g1.copy(), steps)
        out = run_pointwise(spec, g1.copy(), lat, steps, validate=False)
        assert np.allclose(ref, out, rtol=1e-11, atol=1e-12)

    @given(st.data(), st.integers(6, 14), st.integers(1, 2),
           st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_2d_box_stencil(self, data, n, b, steps):
        """Box stencils read diagonal neighbours — the Lipschitz
        condition must suffice for them too (§3.6)."""
        spec = get_stencil("2d9p")
        lat = TessLattice((
            random_profile(data.draw, n, b),
            random_profile(data.draw, n + 2, b),
        ))
        g1 = Grid(spec, (n, n + 2), seed=steps)
        ref = reference_sweep(spec, g1.copy(), steps)
        out = run_pointwise(spec, g1.copy(), lat, steps, validate=False)
        assert np.allclose(ref, out, rtol=1e-11, atol=1e-12)

    @given(st.data(), st.integers(10, 36), st.integers(1, 3),
           st.integers(0, 7))
    @settings(max_examples=30, deadline=None)
    def test_1d_order2_supernodes(self, data, n, b, steps):
        spec = get_stencil("1d5p")
        prof = random_profile(data.draw, n, b, sigma=2)
        g1 = Grid(spec, (n,), seed=n)
        ref = reference_sweep(spec, g1.copy(), steps)
        out = run_pointwise(spec, g1.copy(), TessLattice((prof,)), steps,
                            validate=False)
        assert np.allclose(ref, out, rtol=1e-11, atol=1e-12)

    def test_violating_profile_is_rejected_by_validate(self):
        # a non-Lipschitz profile must not pass validation
        dist = np.array([0, 3, 0, 3, 0, 3, 0, 3], dtype=np.int64)
        prof = AxisProfile(n=8, b=3, sigma=1, periodic=False,
                           dist=dist, cores=((0, 1),))
        with pytest.raises(ValueError):
            prof.validate()
