"""repro — a full Python reproduction of "Tessellating Stencils" (SC'17).

Public API surface:

* **the unified execution pipeline** — :mod:`repro.api`
  (:func:`repro.api.run`, :class:`repro.api.Session`,
  :class:`repro.api.RunConfig`, the backend registry);
* stencil kernels and grids — :mod:`repro.stencils`;
* the tessellation scheme (the paper's contribution) — :mod:`repro.core`;
* competing tiling schemes (Pluto-style diamond, Pochoir-style
  cache-oblivious, time skewing, overlapped, naive) —
  :mod:`repro.baselines`;
* task graphs and the threaded runtime — :mod:`repro.runtime`;
* the simulated 2x12-core machine used to regenerate the paper's
  figures — :mod:`repro.machine`;
* analytic performance models — :mod:`repro.perf`;
* tile-size auto-tuning — :mod:`repro.autotune`;
* the per-figure experiment harness — :mod:`repro.bench`.
"""

from repro.stencils import (
    Grid,
    LinearStage,
    StagedSpec,
    StencilSpec,
    get_stencil,
    get_system,
    make_grid,
    make_staged,
    reference_sweep,
    system_names,
)
from repro.core import (
    AxisProfile,
    TessLattice,
    make_lattice,
    run_blocked,
    run_merged,
    run_pointwise,
)
from repro.api import (
    RunConfig,
    RunResult,
    RunStats,
    Session,
    run,
)

__version__ = "1.8.0"

__all__ = [
    "Grid",
    "LinearStage",
    "StagedSpec",
    "StencilSpec",
    "get_stencil",
    "get_system",
    "make_grid",
    "make_staged",
    "reference_sweep",
    "system_names",
    "AxisProfile",
    "TessLattice",
    "make_lattice",
    "run_blocked",
    "run_merged",
    "run_pointwise",
    "RunConfig",
    "RunResult",
    "RunStats",
    "Session",
    "run",
    "__version__",
]
