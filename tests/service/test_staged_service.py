"""Staged systems through the durable service layer, unchanged.

A staged submission uses the exact same JSON wire format as a plain
kernel — the name just resolves to a :class:`StagedSpec`.  The two
guarantees pinned here:

* crash-safety: SIGKILL a supervisor mid-macro-step, restart over the
  same store, and the staged job resumes from its last sealed
  checkpoint **bit-identically** to an uninterrupted run (checkpoints
  carry the whole ``[F, *padded]`` state, so a resume never observes a
  half-advanced macro-step);
* idempotency: alias spellings of one system ("gray_scott",
  "gray-scott", "gs") hash to one identity and dedup onto one job.
"""

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro import get_stencil
from repro.api import RunConfig, Session
from repro.service import DONE, JobStore, Supervisor, SupervisorConfig
from repro.service.jobstore import job_identity

pytestmark = [pytest.mark.service, pytest.mark.stages]

# staged fdtd2d: 3 stages/macro-step; sized so the parent's kill lands
# after checkpoints seal but far from completion
KERNEL = "fdtd2d"
CFG = {"shape": [40, 40], "steps": 300, "backend": "serial"}
CHECKPOINT_STEPS = 2

_CHILD = """\
import sys
from repro.service import JobStore, Supervisor, SupervisorConfig

root = sys.argv[1]
store = JobStore(root)
sup = Supervisor(store, SupervisorConfig(workers=1, checkpoint_steps={cs}))
sup.start()
job, _ = sup.submit({kernel!r}, {cfg!r})
print(job.job_id, flush=True)
sup.wait(job.job_id, timeout=600)
""".format(cs=CHECKPOINT_STEPS, kernel=KERNEL, cfg=CFG)


def _spawn(root):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return subprocess.Popen(
        [sys.executable, "-c", _CHILD, root],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
        text=True)


def test_staged_sigkill_resume_bit_identical(tmp_path):
    root = str(tmp_path / "store")
    proc = _spawn(root)
    try:
        job_id = proc.stdout.readline().strip()
        assert job_id.startswith("job-"), proc.stderr.read()

        ckdir = os.path.join(root, "checkpoints", job_id)
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if os.path.isdir(ckdir) and any(
                    n.endswith(".npy") for n in os.listdir(ckdir)):
                break
            if proc.poll() is not None:
                pytest.fail(f"child exited early: {proc.stderr.read()}")
            time.sleep(0.002)
        else:
            pytest.fail("no checkpoint appeared before the deadline")
        time.sleep(0.1)
        proc.kill()
        proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.stdout.close()
        proc.stderr.close()

    with JobStore(root) as store:
        sup = Supervisor(store, SupervisorConfig(
            workers=1, checkpoint_steps=50))
        report = sup.start()
        assert report.requeued == 1
        try:
            job = sup.wait(job_id, timeout=300)
        finally:
            sup.stop()
        assert job.state == DONE
        assert job.resumed_from_step > 0
        interior, stats = store.load_result(job_id)

    resumes = [e for e in stats["events"] if e.get("kind") == "resume"]
    assert len(resumes) == 1

    # bit-identical to a run that was never interrupted — every field
    direct = Session(get_stencil(KERNEL)).run(RunConfig.from_json(CFG))
    spec = get_stencil(KERNEL)
    assert interior.shape == (spec.num_fields,) + tuple(CFG["shape"])
    assert interior.tobytes() == direct.interior.tobytes()


def test_staged_supervisor_run_matches_session(tmp_path):
    """The uneventful path: a staged job through the supervisor equals
    a direct Session run, and per-stage timings land in the stats."""
    cfg = {"shape": [22, 26], "steps": 8, "backend": "compiled",
           "scheme": "tess", "b": 4}
    with JobStore(str(tmp_path / "store"), fsync=False) as store:
        sup = Supervisor(store, SupervisorConfig(workers=1))
        sup.start()
        try:
            job, created = sup.submit("shallow-water", cfg)
            assert created
            job = sup.wait(job.job_id, timeout=300)
        finally:
            sup.stop()
        assert job.state == DONE
        interior, stats = store.load_result(job.job_id)

    direct = Session(get_stencil("shallow_water")).run(
        RunConfig.from_json(cfg))
    assert interior.tobytes() == direct.interior.tobytes()
    assert set(stats["stages"]) == {"h", "u", "v"}


def test_alias_spellings_share_one_identity():
    cfg = {"shape": [20, 20], "steps": 6, "backend": "serial"}
    digests = {
        alias: job_identity(alias, cfg)[3]
        for alias in ("gray_scott", "gray-scott", "gs")
    }
    assert len(set(digests.values())) == 1
    # distinct systems must not collide
    assert job_identity("shallow_water", cfg)[3] != digests["gs"]


def test_alias_spellings_dedup_onto_one_job(tmp_path):
    cfg = {"shape": [20, 20], "steps": 6, "backend": "serial"}
    with JobStore(str(tmp_path / "store"), fsync=False) as store:
        first, created = store.submit("gray_scott", cfg)
        assert created
        second, created2 = store.submit("gray-scott", cfg)
        assert not created2
        third, created3 = store.submit("gs", cfg)
        assert not created3
        assert first.job_id == second.job_id == third.job_id
