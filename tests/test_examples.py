"""Smoke tests: the example scripts run end-to-end.

``compare_schemes`` and ``autotune_tiles`` are sized for interactive
use and take minutes on this substrate, so they are exercised at
import/function level elsewhere; the three fast examples run in full.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


def test_quickstart(capsys):
    _run("quickstart.py")
    out = capsys.readouterr().out
    assert "verified" in out
    assert "concurrent start" in out


def test_game_of_life(capsys):
    _run("game_of_life.py")
    out = capsys.readouterr().out
    assert "glider translated" in out


def test_high_order_and_periodic(capsys):
    _run("high_order_and_periodic.py")
    out = capsys.readouterr().out
    assert "both §3.6 extensions verified" in out


def test_fault_tolerance(capsys):
    _run("fault_tolerance.py")
    out = capsys.readouterr().out
    assert "recovered bit-identical to fault-free run: True" in out
    assert "structured error" in out
    assert "recovered bit-identical: True" in out


def test_examples_exist():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "game_of_life.py", "compare_schemes.py",
            "autotune_tiles.py", "high_order_and_periodic.py"} <= present
