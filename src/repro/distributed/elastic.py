"""Elastic multiprocess coordinator for the distributed runtime.

:func:`execute_elastic` runs a tessellated stencil across *real* rank
processes (one :func:`~repro.distributed.worker.worker_main` each) and
keeps the run alive through an elastic failure model:

* **Heartbeat watchdog** — every worker beacons ``(state, monotone
  counter, phase)``; a silent pipe past ``heartbeat_timeout_s`` marks
  the rank lost, and a beating rank whose *compute* counter is frozen
  past ``stall_timeout_s`` is culled as a straggler.
* **Rank-crash recovery** — a lost rank is respawned as incarnation
  ``i+1`` (its fault plan pre-burned so a transient ``kill_rank`` does
  not re-fire forever); all live ranks get an ``abort`` and restore the
  last committed phase checkpoint; once every rank reports in, a
  ``resume`` replays the phase.  Phase boundaries are global
  consistency points of the tessellation, so replay is deterministic
  and a recovered run is **bit-identical** to a fault-free one.
* **Checksummed exchanges** — all rank-to-rank boundary-band traffic is
  routed through the coordinator (star topology: respawning a rank
  needs one fresh pipe, never re-plumbing live neighbours), CRC-sealed
  at pack time and verified at receive time; workers heal transient
  losses/corruption with bounded timeout + backoff retransmits and
  report a structured ``failure`` when the budget is spent.

Every budget is finite, so a persistent failure ends in a *typed*
error instead of a hang: :class:`~repro.runtime.errors.RankLostError`
(respawn budget spent), :class:`~repro.runtime.errors
.ExchangeTimeoutError` / :class:`~repro.runtime.errors
.ChecksumMismatchError` (phase-restart budget spent on a reported
exchange failure), or a plain :class:`~repro.runtime.errors
.ExecutionError` if the whole run overruns ``deadline_s``.

Checkpoint spill files live in a per-run temporary directory that is
removed on success *and* on coordinator abort (the ``finally`` in
:func:`execute_elastic`), so no run leaks spill files.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import shutil
import tempfile
import time
from dataclasses import dataclass
from multiprocessing.connection import wait as _conn_wait
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.profiles import TessLattice
from repro.distributed.exec import CommStats
from repro.distributed.partition import SlabPartition
from repro.distributed.transport import (
    ABORT,
    BAND,
    COMMIT,
    COORDINATOR,
    Channel,
    ChannelClosed,
    FAILURE,
    HEARTBEAT,
    HELLO,
    Message,
    PHASE_DONE,
    RESEND,
    RESTORED,
    RESULT,
    RESUME,
    RetryPolicy,
    SHUTDOWN,
    unpack_payload,
    verify_message,
)
from repro.distributed.worker import RESULT_KEY, WorkerConfig, worker_main
from repro.runtime.errors import (
    ChecksumMismatchError,
    ExchangeTimeoutError,
    ExecutionError,
    RankLostError,
)
from repro.runtime.faults import FaultPlan
from repro.runtime.tracing import ExecutionTrace
from repro.stencils.grid import Grid
from repro.stencils.spec import StencilSpec


@dataclass(frozen=True)
class ElasticConfig:
    """Failure-model knobs of the elastic coordinator.

    Defaults are tuned for test-scale grids: fast enough that a chaos
    suite converges in seconds, loose enough that a loaded CI machine
    does not trip false stragglers.
    """

    #: worker beacon period
    heartbeat_s: float = 0.02
    #: silence past this marks the rank lost (cause ``"heartbeat"``)
    heartbeat_timeout_s: float = 2.0
    #: frozen *compute* progress past this culls a straggler
    stall_timeout_s: float = 1.5
    #: budget for the restore/respawn barrier before re-culling ranks
    recovery_timeout_s: float = 5.0
    #: per-message timeout/backoff budget used by every worker
    retry: RetryPolicy = RetryPolicy()
    #: respawn budget per rank; exceeding it raises ``RankLostError``
    max_respawns: int = 2
    #: replay budget per phase; exceeding it raises the typed error of
    #: the last reported failure cause
    max_phase_restarts: int = 4
    #: wall-clock backstop for the whole run
    deadline_s: float = 120.0
    #: parent directory for the per-run spill dir (default: system tmp)
    checkpoint_dir: Optional[str] = None


@dataclass
class _RankState:
    """Coordinator-side view of one rank."""

    proc: Optional[mp.process.BaseProcess] = None
    chan: Optional[Channel] = None
    incarnation: int = 0
    last_beat: float = 0.0
    #: (heartbeat state, counter) and when the counter last advanced
    progress: Tuple[str, int] = ("init", -1)
    progress_since: float = 0.0
    beats: int = 0
    result_retries: int = 0
    slab: Optional[np.ndarray] = None


class _Coordinator:
    def __init__(
        self,
        spec: StencilSpec,
        grid: Grid,
        lattice: TessLattice,
        steps: int,
        ranks: int,
        axis: int,
        *,
        fault_plan: Optional[FaultPlan],
        config: ElasticConfig,
        ghost_override: Optional[int],
        trace: Optional[ExecutionTrace],
        budget=None,
    ):
        self.spec = spec
        self.budget = budget
        self.shape = grid.shape
        self.steps = steps
        self.ranks = ranks
        self.axis = axis
        self.cfg = config
        self.trace = trace
        self.part = SlabPartition(grid.shape, ranks, axis=axis)
        self.bounds = self.part.bounds()
        ghost = self.part.ghost_width(lattice)
        self.ghost = ghost if ghost_override is None else int(ghost_override)
        self.n_phases = (steps + lattice.b - 1) // lattice.b
        self.ckpt_dir = tempfile.mkdtemp(prefix="repro-elastic-",
                                         dir=config.checkpoint_dir)
        # a killed *parent* never reaches shutdown()'s rmtree; a
        # dedicated callable (so it can be unregistered on the normal
        # path) makes interpreter exit sweep the spill dir too
        self._cleanup = lambda d=self.ckpt_dir: shutil.rmtree(
            d, ignore_errors=True)
        atexit.register(self._cleanup)
        self.base_cfg = WorkerConfig(
            rank=0, ranks=ranks, spec=spec, lattice=lattice,
            shape=tuple(grid.shape), steps=steps, axis=axis,
            ghost=self.ghost,
            init_buffers=[buf.copy() for buf in grid.buffers],
            ckpt_dir=self.ckpt_dir, heartbeat_s=config.heartbeat_s,
            retry=config.retry, fault_plan=fault_plan,
        )
        try:
            self.mp = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            self.mp = mp.get_context()
        self.epoch = 0
        self.committed = 0
        self.stats = CommStats()
        self.rank_state = [_RankState() for _ in range(ranks)]
        self.phase_done: Dict[int, Set[int]] = {}
        self.restarts: Dict[int, int] = {}
        #: last worker-reported exchange failure: (cause, stage, src,
        #: dst, attempts) — names the typed error if budgets run out
        self.last_failure: Optional[Tuple[str, int, int, int, int]] = None
        self.t0 = time.monotonic()

    # -- trace/plumbing helpers --------------------------------------

    def _event(self, kind: str, group: int, detail: str = "") -> None:
        if self.trace is not None:
            self.trace.record_event(kind, group, detail=detail)

    def _check_deadline(self) -> None:
        # the caller's QoS budget shares the coordinator's poll clock;
        # it outranks the coordinator's own wall-clock backstop
        if self.budget is not None:
            self.budget.check(f"elastic phase {self.committed}")
        if time.monotonic() - self.t0 > self.cfg.deadline_s:
            raise ExecutionError(
                f"elastic run exceeded the {self.cfg.deadline_s:.1f}s "
                f"wall-clock backstop",
                scheme="elastic",
            )

    def _spawn(self, rank: int, restore_phase: int) -> None:
        st = self.rank_state[rank]
        parent, child = self.mp.Pipe(duplex=True)
        cfg = WorkerConfig(
            **{**self.base_cfg.__dict__,
               "rank": rank, "epoch": self.epoch,
               "incarnation": st.incarnation,
               "restore_phase": restore_phase},
        )
        proc = self.mp.Process(target=worker_main, args=(cfg, child),
                               daemon=True,
                               name=f"repro-rank{rank}.{st.incarnation}")
        proc.start()
        child.close()
        now = time.monotonic()
        st.proc = proc
        st.chan = Channel(parent)
        st.last_beat = now
        st.progress = ("init", -1)
        st.progress_since = now
        st.slab = None

    def _kill(self, rank: int) -> None:
        st = self.rank_state[rank]
        if st.proc is not None and st.proc.is_alive():
            st.proc.terminate()
            st.proc.join(timeout=1.0)
        if st.chan is not None:
            st.chan.close()
            st.chan = None

    def _respawn(self, rank: int, cause: str) -> None:
        st = self.rank_state[rank]
        if st.incarnation + 1 > self.cfg.max_respawns:
            raise RankLostError(rank, cause, respawns=st.incarnation,
                                detail="respawn budget exhausted")
        self._kill(rank)
        st.incarnation += 1
        self.stats.respawns += 1
        self._event("respawn", rank,
                    f"incarnation {st.incarnation} ({cause}), "
                    f"restore phase {self.committed}")
        self._spawn(rank, restore_phase=self.committed)

    def _send(self, rank: int, kind: str, key: Tuple[int, ...] = (),
              payload=None) -> bool:
        st = self.rank_state[rank]
        if st.chan is None:
            return False
        try:
            st.chan.send(Message(kind=kind, src=COORDINATOR, dst=rank,
                                 epoch=self.epoch, key=key,
                                 payload=payload))
            return True
        except ChannelClosed:
            return False

    def _broadcast(self, kind: str, key: Tuple[int, ...] = (),
                   payload=None) -> None:
        for r in range(self.ranks):
            self._send(r, kind, key=key, payload=payload)

    def _poll(self, timeout_s: float) -> List[Tuple[int, Message]]:
        """Drain ready channels; dead pipes surface as channel loss."""
        conns = {}
        for r, st in enumerate(self.rank_state):
            if st.chan is not None:
                conns[st.chan.conn] = r
        if not conns:
            time.sleep(timeout_s)
            return []
        out: List[Tuple[int, Message]] = []
        for conn in _conn_wait(list(conns), timeout=timeout_s):
            rank = conns[conn]
            chan = self.rank_state[rank].chan
            try:
                while chan is not None and chan.poll():
                    msg = chan.recv(0)
                    if msg is not None:
                        out.append((rank, msg))
            except ChannelClosed:
                pass  # liveness check picks the dead rank up
        return out

    # -- message handling --------------------------------------------

    def _note_beat(self, rank: int, msg: Message) -> None:
        st = self.rank_state[rank]
        now = time.monotonic()
        st.last_beat = now
        st.beats += 1
        self.stats.heartbeats += 1
        state, counter, _phase = msg.payload
        if (state, counter) != st.progress:
            st.progress = (state, counter)
            st.progress_since = now

    def _handle(self, rank: int, msg: Message) -> None:
        if msg.kind == HEARTBEAT:
            self._note_beat(rank, msg)
            return
        if msg.kind in (BAND, RESEND) and msg.dst != COORDINATOR:
            if msg.epoch != self.epoch:
                return  # traffic from a killed phase
            if msg.kind == BAND and isinstance(msg.payload, bytes):
                self.stats.record(msg.key[0], len(msg.payload))
            self._send_routed(msg)
            return
        if msg.epoch != self.epoch:
            return
        if msg.kind == PHASE_DONE:
            self._handle_phase_done(rank, msg)
        elif msg.kind == FAILURE:
            self._handle_failure(rank, msg)
        elif msg.kind == RESULT:
            self._handle_result(rank, msg)
        # HELLO / RESTORED outside a barrier: harmless duplicates

    def _send_routed(self, msg: Message) -> None:
        st = self.rank_state[msg.dst]
        if st.chan is None:
            return
        try:
            st.chan.send(msg)
        except ChannelClosed:
            pass

    def _handle_phase_done(self, rank: int, msg: Message) -> None:
        p = msg.key[0]
        wstats = dict(msg.payload)
        self.stats.merge_worker(wstats)
        if wstats.get("retries"):
            self._event("retry", p,
                        f"rank {rank}: {wstats['retries']} retransmit "
                        f"request(s), {wstats.get('timeouts', 0)} "
                        f"timeout(s), {wstats.get('checksum_failures', 0)} "
                        f"CRC failure(s)")
        done = self.phase_done.setdefault(p, set())
        done.add(rank)
        if p == self.committed and len(done) == self.ranks:
            self.committed = p + 1
            self._broadcast(COMMIT, key=(p,))
            self._event("commit", p, f"phase {p} committed")

    def _handle_failure(self, rank: int, msg: Message) -> None:
        cause, attempts, wstats = msg.payload
        stage, src = msg.key
        self.stats.merge_worker(wstats)
        self.last_failure = (cause, stage, src, rank, attempts)
        self._event("failure", stage,
                    f"rank {rank} gave up on band {src}->{rank} "
                    f"({cause}) after {attempts} attempt(s)")
        self._recover([], cause)

    def _handle_result(self, rank: int, msg: Message) -> None:
        st = self.rank_state[rank]
        if not verify_message(msg):
            self.stats.checksum_failures += 1
            st.result_retries += 1
            if st.result_retries > self.cfg.retry.max_retries:
                raise ChecksumMismatchError(-1, rank, COORDINATOR,
                                            st.result_retries)
            self.stats.retries += 1
            self._send(rank, RESEND, key=RESULT_KEY)
            return
        slab, wstats = unpack_payload(msg.payload)
        self.stats.merge_worker(wstats)
        st.slab = slab

    # -- failure detection -------------------------------------------

    def _liveness_check(self) -> None:
        now = time.monotonic()
        lost: List[Tuple[int, str]] = []
        for r, st in enumerate(self.rank_state):
            if st.slab is not None:
                continue
            if st.proc is None or not st.proc.is_alive():
                lost.append((r, "dead"))
            elif now - st.last_beat > self.cfg.heartbeat_timeout_s:
                lost.append((r, "heartbeat"))
            elif (st.progress[0] == "compute"
                  and now - st.progress_since > self.cfg.stall_timeout_s):
                lost.append((r, "straggler"))
        if lost:
            cause = lost[0][1]
            self._event("watchdog", lost[0][0],
                        ", ".join(f"rank {r} {c}" for r, c in lost))
            self._recover([r for r, c in lost if c in ("dead", "heartbeat")],
                          cause)

    # -- recovery ----------------------------------------------------

    def _recover(self, dead: List[int], cause: str) -> None:
        """Kill the phase, respawn the dead, restore, replay."""
        restore = self.committed
        count = self.restarts.get(restore, 0) + 1
        self.restarts[restore] = count
        if count > self.cfg.max_phase_restarts:
            raise self._terminal_error(cause)
        self.epoch += 1
        self.stats.phase_restarts += 1
        self._event("restore", restore,
                    f"epoch {self.epoch}: abort + restore phase {restore} "
                    f"({cause}, replay {count}/{self.cfg.max_phase_restarts})")
        # stale bookkeeping of the killed phase
        self.phase_done = {p: s for p, s in self.phase_done.items()
                           if p < restore}
        for st in self.rank_state:
            st.slab = None
            st.result_retries = 0
        ready: Set[int] = set()
        for r in dead:
            self._respawn(r, cause)
        for r in range(self.ranks):
            if r in dead:
                continue
            if not self._send(r, ABORT, payload=restore):
                self._respawn(r, "dead")
        self._await_ready(ready)
        self._resume()

    def _terminal_error(self, cause: str) -> ExecutionError:
        if self.last_failure is not None:
            fcause, stage, src, dst, attempts = self.last_failure
            if fcause == "checksum":
                return ChecksumMismatchError(stage, src, dst, attempts)
            return ExchangeTimeoutError(stage, src, dst, attempts)
        rank = next((r for r, st in enumerate(self.rank_state)
                     if st.slab is None), 0)
        return RankLostError(rank, cause,
                             respawns=self.rank_state[rank].incarnation,
                             detail="phase-restart budget exhausted")

    def _await_ready(self, ready: Set[int]) -> None:
        """Barrier: every rank must report restored (or hello again).

        A rank that misses the barrier deadline — or dies inside it —
        is respawned and must hello; the respawn budget bounds the
        loop.
        """
        deadline = time.monotonic() + self.cfg.recovery_timeout_s
        while len(ready) < self.ranks:
            self._check_deadline()
            for rank, msg in self._poll(0.02):
                if msg.kind == HEARTBEAT:
                    self._note_beat(rank, msg)
                elif (msg.kind in (RESTORED, HELLO)
                        and msg.epoch == self.epoch):
                    ready.add(rank)
            now = time.monotonic()
            for r, st in enumerate(self.rank_state):
                if r in ready:
                    continue
                if st.proc is None or not st.proc.is_alive():
                    self._respawn(r, "dead")
                    deadline = now + self.cfg.recovery_timeout_s
            if now > deadline:
                for r in range(self.ranks):
                    if r not in ready:
                        self._respawn(r, "heartbeat")
                deadline = now + self.cfg.recovery_timeout_s

    def _resume(self) -> None:
        now = time.monotonic()
        for st in self.rank_state:
            st.last_beat = now
            st.progress_since = now
        self._broadcast(RESUME)

    # -- the run -----------------------------------------------------

    def run(self) -> Tuple[np.ndarray, CommStats]:
        for r in range(self.ranks):
            self._spawn(r, restore_phase=0)
        self._await_ready(set())
        self._resume()
        while any(st.slab is None for st in self.rank_state):
            self._check_deadline()
            for rank, msg in self._poll(0.02):
                self._handle(rank, msg)
            self._liveness_check()
        out = np.zeros(self.shape, dtype=self.spec.dtype)
        for r, (lo, hi) in enumerate(self.bounds):
            sl = [slice(None)] * len(self.shape)
            sl[self.axis] = slice(lo, hi)
            out[tuple(sl)] = self.rank_state[r].slab
        for r, st in enumerate(self.rank_state):
            self._event("heartbeat", r,
                        f"{st.beats} beat(s), incarnation {st.incarnation}")
        return out, self.stats

    def shutdown(self) -> None:
        """Tear everything down; runs on success *and* on abort."""
        try:
            self._broadcast(SHUTDOWN)
        except Exception:  # noqa: BLE001 - teardown must not mask errors
            pass
        for r in range(self.ranks):
            self._kill(r)
        shutil.rmtree(self.ckpt_dir, ignore_errors=True)
        atexit.unregister(self._cleanup)


def _execute_elastic(
    spec: StencilSpec,
    grid: Grid,
    lattice: TessLattice,
    steps: int,
    ranks: int,
    axis: int = 0,
    *,
    fault_plan: Optional[FaultPlan] = None,
    config: Optional[ElasticConfig] = None,
    ghost_override: Optional[int] = None,
    trace: Optional[ExecutionTrace] = None,
    sanitize: bool = False,
    budget=None,
) -> Tuple[np.ndarray, CommStats]:
    """Process-based execution (the ``elastic`` backend's engine).

    The process analogue of :func:`~repro.distributed.exec
    .execute_distributed` — same slab partition, same block→rank
    ownership, same assembled-interior return value — but with real
    rank processes, checksummed message exchanges and the elastic
    failure model of :class:`ElasticConfig`.  ``fault_plan`` may inject
    the process-level kinds (``kill_rank``, ``stall_rank``,
    ``drop_msg``, ``flip_bits``); recovery replays from phase
    checkpoints, so a recovered run returns the bit-identical result of
    a fault-free one.  Spill files live in a per-run temp directory
    removed on every exit path.
    """
    if spec.is_periodic:
        raise ValueError("distributed executor assumes Dirichlet boundaries")
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    if sanitize:
        from repro.runtime.sanitizer import sanitize_distributed_plan

        san = sanitize_distributed_plan(spec, lattice, steps, ranks,
                                        axis=axis, ghost=ghost_override)
        if trace is not None:
            trace.record_event("sanitize", 0, seconds=san.seconds,
                               detail=f"{len(san.violations)} violation(s), "
                                      f"{san.actions_checked} action(s)")
        san.raise_if_violations()
    if budget is not None:
        budget.check("elastic entry")  # before any rank is spawned
    coord = _Coordinator(
        spec, grid, lattice, steps, ranks, axis,
        fault_plan=fault_plan, config=config or ElasticConfig(),
        ghost_override=ghost_override, trace=trace, budget=budget,
    )
    try:
        return coord.run()
    finally:
        coord.shutdown()


def execute_elastic(
    spec: StencilSpec,
    grid: Grid,
    lattice: TessLattice,
    steps: int,
    ranks: int,
    axis: int = 0,
    *,
    fault_plan: Optional[FaultPlan] = None,
    config: Optional[ElasticConfig] = None,
    ghost_override: Optional[int] = None,
    trace: Optional[ExecutionTrace] = None,
    sanitize: bool = False,
) -> Tuple[np.ndarray, CommStats]:
    """Run ``steps`` tessellated steps across ``ranks`` OS processes.

    The process analogue of the ``distributed`` backend — same slab
    partition, same block->rank ownership, same assembled-interior
    return value — but with real rank processes, checksummed message
    exchanges and the elastic failure model of :class:`ElasticConfig`.

    .. deprecated:: use ``repro.api.run`` / ``Session.execute`` with
       ``backend="elastic"`` instead.
    """
    from repro.api import RunConfig, Session, warn_legacy

    warn_legacy("execute_elastic", "repro.api.run(backend='elastic')")
    run_config = RunConfig(
        backend="elastic", engine="naive", scheme="tess", steps=steps,
        ranks=ranks, axis=axis, fault_plan=fault_plan, elastic=config,
        ghost=ghost_override, trace=trace, sanitize=sanitize,
    )
    result = Session(spec).execute(grid, config=run_config,
                                   lattice=lattice)
    return result.interior, result.stats.comm
