"""Tests for task-graph analysis, threaded execution and levelling."""

import numpy as np
import pytest

from repro.baselines import diamond_schedule, naive_schedule, trapezoid_schedule
from repro.core import make_lattice
from repro.core.schedules import tess_schedule
from repro.runtime import (
    build_taskgraph,
    levelize,
    verify_schedule,
)
from repro.runtime.threadpool import _execute_threaded
from repro.stencils import Grid, heat1d, heat2d, reference_sweep


class TestTaskGraph:
    def _graph(self):
        spec = heat2d()
        lat = make_lattice(spec, (20, 22), 2)
        sched = tess_schedule(spec, (20, 22), lat, 6)
        return spec, sched, build_taskgraph(spec, sched)

    def test_work_accounting(self):
        spec, sched, tg = self._graph()
        assert tg.work_points() == 20 * 22 * 6
        assert tg.work_flops() == 20 * 22 * 6 * spec.flops_per_point

    def test_barriers_match_groups(self):
        _, sched, tg = self._graph()
        assert tg.num_barriers == sched.num_groups

    def test_span_le_work(self):
        _, _, tg = self._graph()
        assert 0 < tg.span_flops() <= tg.work_flops()

    def test_concurrency_profile(self):
        _, sched, tg = self._graph()
        prof = tg.concurrency_profile()
        assert len(prof) == tg.num_groups
        assert sum(prof) == len(tg.nodes)

    def test_average_parallelism_at_least_one(self):
        _, _, tg = self._graph()
        assert tg.average_parallelism() >= 1.0

    def test_footprint_includes_halo_and_buffers(self):
        spec = heat1d()
        sched = naive_schedule(spec, (10,), 1)
        tg = build_taskgraph(spec, sched)
        node = tg.nodes[0]
        # two buffers of 10 points + 2 halo points, 8 bytes each
        assert node.footprint_bytes == (2 * 10 + 2) * 8
        assert node.bbox == ((0, 10),)


class TestThreadpool:
    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_matches_reference(self, threads):
        spec = heat2d()
        shape = (18, 20)
        g1 = Grid(spec, shape, seed=3)
        g2 = g1.copy()
        ref = reference_sweep(spec, g1, 6)
        lat = make_lattice(spec, shape, 2)
        sched = tess_schedule(spec, shape, lat, 6)
        out = _execute_threaded(spec, g2, sched, num_threads=threads)
        assert np.allclose(ref, out, rtol=1e-11, atol=1e-12)

    def test_diamond_threaded(self):
        spec = heat1d()
        g1 = Grid(spec, (64,), seed=5)
        g2 = g1.copy()
        ref = reference_sweep(spec, g1, 8)
        sched = diamond_schedule(spec, (64,), 4, 8)
        out = _execute_threaded(spec, g2, sched, num_threads=3)
        assert np.allclose(ref, out, rtol=1e-11, atol=1e-12)

    def test_bad_thread_count(self):
        spec = heat1d()
        g = Grid(spec, (10,), seed=0)
        sched = naive_schedule(spec, (10,), 1)
        with pytest.raises(ValueError):
            _execute_threaded(spec, g, sched, num_threads=0)


class TestLevelize:
    def test_preserves_validity(self):
        spec = heat2d()
        raw = trapezoid_schedule(spec, (40, 36), 10, base_dt=2,
                                 base_widths=(10, 10))
        assert verify_schedule(spec, levelize(spec, raw))

    def test_never_more_groups(self):
        spec = heat2d()
        raw = trapezoid_schedule(spec, (60, 60), 12, base_dt=3,
                                 base_widths=(12, 12))
        lev = levelize(spec, raw)
        assert lev.num_groups <= raw.num_groups
        assert len(lev.tasks) == len([t for t in raw.tasks if t.actions])

    def test_increases_mean_width(self):
        from repro.runtime import schedule_stats

        spec = heat2d()
        raw = trapezoid_schedule(spec, (80, 80), 12, base_dt=3,
                                 base_widths=(12, 12))
        lev = levelize(spec, raw)
        assert (schedule_stats(lev)["mean_group_width"]
                >= schedule_stats(raw)["mean_group_width"])

    def test_preserves_flags(self):
        spec = heat1d()
        raw = trapezoid_schedule(spec, (40,), 6, base_dt=2)
        raw.group_sync_cost = 0.5
        raw.task_overhead_factor = 2.0
        lev = levelize(spec, raw)
        assert lev.group_sync_cost == 0.5
        assert lev.task_overhead_factor == 2.0

    def test_empty_schedule(self):
        spec = heat1d()
        raw = trapezoid_schedule(spec, (40,), 0)
        lev = levelize(spec, raw)
        assert lev.tasks == []

    def test_naive_levels_equal_steps(self):
        """Naive slabs: each step depends on the previous — levels
        must equal time steps exactly."""
        spec = heat1d()
        raw = naive_schedule(spec, (30,), 5, chunks=3)
        lev = levelize(spec, raw)
        assert lev.num_groups == 5
