"""Naive reference sweeps.

The reference executor advances the whole grid one time step at a time —
the (d+1)-loop naive implementation from the paper's introduction.  It
is the correctness oracle every tiled scheme in this package is checked
against, and the "no temporal reuse" baseline of the cost models.
"""

from __future__ import annotations

import numpy as np

from repro.stencils.grid import Grid
from repro.stencils.spec import StencilSpec, full_region


def reference_step(spec: StencilSpec, grid: Grid, t: int) -> None:
    """Advance every interior point from global time ``t`` to ``t+1``."""
    src = grid.at(t)
    dst = grid.at(t + 1)
    if spec.is_periodic:
        cur = grid.interior(t)
        nxt = spec.operator.apply_wrapped(cur)
        grid.interior(t + 1)[...] = nxt
    else:
        spec.apply_region(src, dst, full_region(grid.shape))


def reference_sweep(
    spec: StencilSpec, grid: Grid, steps: int, t0: int = 0
) -> np.ndarray:
    """Run ``steps`` naive time steps starting at global time ``t0``.

    Returns the interior view at time ``t0 + steps`` (the grid's
    buffers are advanced in place).
    """
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    for t in range(t0, t0 + steps):
        reference_step(spec, grid, t)
    return grid.interior(t0 + steps)
