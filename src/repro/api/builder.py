"""ScheduleBuilder — StencilSpec + RunConfig -> schedule (+ lattice).

The second pipeline stage: turn a stencil spec and a
:class:`~repro.api.config.RunConfig` into the
:class:`~repro.runtime.schedule.RegionSchedule` every backend consumes
(and, for the tessellation family, the :class:`TessLattice` the
lattice-walking backends and the distributed runtimes need).  This is
the scheme dispatch that used to live privately inside the CLI —
hoisted here so the CLI, the autotuner, the bench harness and the
examples all build schedules identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.api.config import RunConfig
from repro.stencils.spec import StencilSpec

__all__ = ["BuiltSchedule", "ScheduleBuilder", "SCHEMES"]

#: schemes the builder can construct (mirrors the CLI choices)
SCHEMES = ["naive", "spatial", "tess", "tess-unmerged", "diamond",
           "pochoir", "mwd", "skewed", "hexagonal", "overlapped"]


@dataclass
class BuiltSchedule:
    """What one build produces: schedule, optional lattice, identity."""

    schedule: object  #: RegionSchedule
    lattice: object = None  #: TessLattice for the tessellation family
    #: parameters the schedule was derived from (plan-cache identity)
    params: Tuple = ()


class ScheduleBuilder:
    """Build region schedules (and lattices) from a RunConfig."""

    def default_shape(self, spec: StencilSpec) -> Tuple[int, ...]:
        return {1: (20_000,), 2: (256, 256), 3: (48, 48, 48)}[spec.ndim]

    def lattice(self, spec: StencilSpec, shape: Tuple[int, ...],
                config: RunConfig):
        """The tessellation lattice for ``config`` (tess family only)."""
        from repro.core import make_lattice

        return make_lattice(
            spec, shape, config.b,
            core_widths=config.core_widths,
            uncut_dims=config.uncut_dims,
        )

    def build(self, spec: StencilSpec, config: RunConfig,
              shape: Optional[Tuple[int, ...]] = None) -> BuiltSchedule:
        """Construct the schedule (+ lattice) for one configuration.

        Scheme-specific default tile parameters match the historical
        CLI behaviour exactly; ``config.mutations`` are applied last
        (and are part of the returned identity ``params`` so mutated
        schedules never collide with clean ones in the plan cache).
        """
        from repro.baselines import (
            diamond_schedule, hexagonal_schedule, mwd_schedule,
            naive_schedule, overlapped_schedule, skewed_schedule,
            spatial_schedule, trapezoid_schedule,
        )
        from repro.core.schedules import tess_schedule
        from repro.runtime import RegionSchedule, levelize

        scheme = config.scheme
        steps = config.steps
        b = config.b
        if shape is None:
            shape = (tuple(config.shape) if config.shape is not None
                     else self.default_shape(spec))
        shape = tuple(int(n) for n in shape)

        lattice = None
        if any(n == 0 for n in shape):
            # empty interior: every scheme degenerates to an empty
            # schedule (the lattice builders cannot even represent a
            # 0-cell axis)
            sched = RegionSchedule(scheme=scheme, shape=shape, steps=steps)
        elif scheme == "naive":
            sched = naive_schedule(spec, shape, steps, chunks=8)
        elif scheme == "spatial":
            tile = config.tile or tuple(max(4, n // 8) for n in shape)
            sched = spatial_schedule(spec, shape, steps, tile)
        elif scheme in ("tess", "tess-unmerged"):
            lattice = self.lattice(spec, shape, config)
            sched = tess_schedule(spec, shape, lattice, steps,
                                  merged=(scheme == "tess"))
        elif scheme == "diamond":
            sched = diamond_schedule(spec, shape, b, steps)
        elif scheme == "pochoir":
            sched = levelize(spec, trapezoid_schedule(
                spec, shape, steps, base_dt=max(2, b // 2)))
        elif scheme == "mwd":
            sched = mwd_schedule(spec, shape, b, steps)
        elif scheme == "skewed":
            width = max(spec.slopes[0], max(4, shape[0] // 8))
            sched = skewed_schedule(spec, shape, steps, width)
        elif scheme == "hexagonal":
            sched = hexagonal_schedule(spec, shape, b, steps,
                                       hex_width=max(b, 2))
        elif scheme == "overlapped":
            tile = config.tile or tuple(max(4, n // 8) for n in shape)
            sched = overlapped_schedule(spec, shape, steps, tile,
                                        max(1, b // 2))
        else:
            raise ValueError(
                f"unknown scheme {scheme!r}; expected one of {SCHEMES}"
            )

        if config.mutations:
            from repro.runtime.mutations import apply_mutation

            for spec_str in config.mutations:
                sched = apply_mutation(sched, spec_str)

        return BuiltSchedule(schedule=sched, lattice=lattice,
                             params=config.tile_params())
