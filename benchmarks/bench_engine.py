"""Compiled-engine benchmark: naive executor vs compiled plans.

Standalone script (not a pytest bench) emitting machine-readable
``BENCH_engine.json``: for each (kernel, scheme, grid, threads)
workload it times the naive schedule interpreter and the compiled
engine on identical initial state, verifies bit-identical results, and
records points/sec plus the compiled/naive speedup.

Modes:

* default (full): the paper-scale Fig. 8 (Heat-1D, 40000 points,
  64 steps, b=8) and Fig. 10 (Heat-2D, 384x384, 24 steps, b=4)
  workloads plus merged/Life/threaded variants — the committed
  ``BENCH_engine.json`` comes from this mode and is the evidence for
  the >= 3x acceptance bar;
* ``--quick``: a small subset of the same workload keys for CI smoke.
  Quick rows are (by construction) a subset of the full rows, so a
  quick run can be regression-checked against the committed baseline.

``--check BASELINE.json`` compares the *speedup* of every row whose
key also appears in the baseline and exits 1 if any regressed by more
than ``--tolerance`` (default 20%).  Speedup is a same-machine ratio,
so the check is meaningful on hosts with different absolute throughput.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py
    PYTHONPATH=src python benchmarks/bench_engine.py --quick \
        --out /tmp/bench.json --check BENCH_engine.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np

from repro import Grid, get_stencil, make_lattice
from repro.core.schedules import tess_schedule
from repro.engine import PlanCache
from repro.runtime.schedule import _execute_schedule
from repro.runtime.threadpool import _execute_threaded

SCHEMA = "bench-engine/1"


def env_fingerprint():
    """The measurement environment: enough to spot stale baselines."""
    return {
        "numpy": np.__version__,
        "cpus": os.cpu_count(),
        "threads_env": {
            k: os.environ[k]
            for k in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS",
                      "MKL_NUM_THREADS")
            if k in os.environ
        },
    }

#: (name, kernel, shape, steps, b, merged, threads, quick)
WORKLOADS = [
    ("fig8-heat1d-quick", "heat1d", (4000,), 16, 4, False, 1, True),
    ("fig10-heat2d-quick", "heat2d", (96, 96), 8, 4, False, 1, True),
    ("fig8-heat1d", "heat1d", (40000,), 64, 8, False, 1, False),
    ("fig10-heat2d", "heat2d", (384, 384), 24, 4, False, 1, False),
    ("fig10-heat2d-merged", "heat2d", (384, 384), 24, 4, True, 1, False),
    ("fig9-life", "life", (256, 256), 16, 4, False, 1, False),
    ("fig10-heat2d-t4", "heat2d", (384, 384), 24, 4, False, 4, False),
]


def _min_of_k(run, repeat, warmup):
    for _ in range(warmup):
        run()
    best, out = float("inf"), None
    for _ in range(repeat):
        t0 = time.perf_counter()
        out = run()
        dt = time.perf_counter() - t0
        if dt < best:
            best, out = dt, out
    return best, out


def _restored(grid, init, fn):
    def run():
        for dst, src in zip(grid.buffers, init):
            np.copyto(dst, src)
        return fn()

    return run


def bench_workload(name, kernel, shape, steps, b, merged, threads,
                   cache, repeat, warmup):
    spec = get_stencil(kernel)
    lat = make_lattice(spec, shape, b)
    sched = tess_schedule(spec, shape, lat, steps, merged=merged)
    plan = cache.get(spec, sched, params=(b, bool(merged)))

    grid = Grid(spec, shape, init="random", seed=0)
    init = [buf.copy() for buf in grid.buffers]

    if threads == 1:
        from repro.engine.plan import _execute_plan

        naive_fn = _restored(grid, init,
                             lambda: _execute_schedule(spec, grid, sched))
        comp_fn = _restored(grid, init, lambda: _execute_plan(plan, grid))
    else:
        naive_fn = _restored(
            grid, init,
            lambda: _execute_threaded(spec, grid, sched, num_threads=threads))
        comp_fn = _restored(
            grid, init,
            lambda: _execute_threaded(spec, grid, sched, num_threads=threads,
                                     plan=plan))

    naive_s, naive_out = _min_of_k(naive_fn, repeat, warmup)
    naive_out = np.array(naive_out, copy=True)
    comp_s, comp_out = _min_of_k(comp_fn, repeat, warmup)
    identical = bool(np.array_equal(naive_out, comp_out))

    points = sched.total_points()
    row = {
        "name": name,
        "kernel": kernel,
        "scheme": sched.scheme,
        "shape": list(shape),
        "steps": steps,
        "b": b,
        "merged": bool(merged),
        "threads": threads,
        "points": int(points),
        "naive_s": naive_s,
        "compiled_s": comp_s,
        "naive_pps": points / naive_s if naive_s > 0 else 0.0,
        "compiled_pps": points / comp_s if comp_s > 0 else 0.0,
        "speedup": naive_s / comp_s if comp_s > 0 else 0.0,
        "identical": identical,
        "plan": plan.stats.describe(),
    }
    return row


def _row_key(row):
    return (row["name"], row["threads"])


def check_regression(rows, baseline_path, tolerance, env=None):
    with open(baseline_path) as fh:
        base = json.load(fh)
    base_env = base.get("env")
    if env is not None and base_env is not None and base_env != env:
        print(f"WARNING: environment fingerprint differs from "
              f"{baseline_path}: baseline {base_env}, current {env} "
              f"(speedup ratios are still compared; absolute numbers "
              f"are not comparable)", file=sys.stderr)
    base_rows = {_row_key(r): r for r in base.get("rows", [])}
    compared, failures = 0, []
    for row in rows:
        ref = base_rows.get(_row_key(row))
        if ref is None:
            continue
        compared += 1
        floor = (1.0 - tolerance) * ref["speedup"]
        if row["speedup"] < floor:
            failures.append(
                f"  {row['name']} (threads={row['threads']}): speedup "
                f"{row['speedup']:.2f}x < {floor:.2f}x "
                f"(baseline {ref['speedup']:.2f}x - {tolerance:.0%})")
    if compared == 0:
        print(f"regression check: no rows in common with {baseline_path}",
              file=sys.stderr)
        return False
    if failures:
        print(f"regression check FAILED vs {baseline_path}:",
              file=sys.stderr)
        for f in failures:
            print(f, file=sys.stderr)
        return False
    print(f"regression check OK: {compared} row(s) within "
          f"{tolerance:.0%} of {baseline_path}")
    return True


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke: small workloads only")
    ap.add_argument("--out", default="BENCH_engine.json",
                    help="output JSON path (default: %(default)s)")
    ap.add_argument("--repeat", type=int, default=None,
                    help="min-of-k repeats (default: 3, quick: 2)")
    ap.add_argument("--check", metavar="BASELINE",
                    help="compare speedups against a baseline JSON")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed speedup regression (default: 0.20)")
    args = ap.parse_args(argv)
    repeat = args.repeat or (2 if args.quick else 3)

    cache = PlanCache(capacity=16)
    rows = []
    for name, kernel, shape, steps, b, merged, threads, quick in WORKLOADS:
        if args.quick and not quick:
            continue
        row = bench_workload(name, kernel, shape, steps, b, merged,
                             threads, cache, repeat, warmup=1)
        rows.append(row)
        flag = "" if row["identical"] else "  ** MISMATCH **"
        print(f"{name:24s} threads={threads}  "
              f"naive {row['naive_s'] * 1e3:9.1f} ms  "
              f"compiled {row['compiled_s'] * 1e3:8.1f} ms  "
              f"{row['speedup']:6.1f}x{flag}")

    env = env_fingerprint()
    payload = {
        "schema": SCHEMA,
        "quick": bool(args.quick),
        "repeat": repeat,
        "env": env,
        "cache": cache.stats.as_dict(),
        "rows": rows,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out} ({len(rows)} row(s))")

    ok = all(r["identical"] for r in rows)
    if not ok:
        print("FAILED: compiled results are not bit-identical",
              file=sys.stderr)
    if args.check:
        ok = check_regression(rows, args.check, args.tolerance,
                              env=env) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
