"""Bit-identical equivalence of the compiled engine vs every executor.

The engine's contract is *bit identity*, not approximate agreement:
``_execute_plan(compile_plan(spec, sched), grid)`` must produce exactly
the arrays ``_execute_schedule`` (or ``execute_overlapped`` for
ghost-zone schedules, or ``_run_blocked``/``run_pointwise`` for the
lattice executors) produces — the compiled kernels only change array
traversal and buffer reuse, never per-point float operation order.
"""

import numpy as np
import pytest

from repro import Grid, get_stencil
from repro.baselines import (
    diamond_schedule,
    mwd_schedule,
    naive_schedule,
    overlapped_schedule,
    skewed_schedule,
    spatial_schedule,
)
from repro.baselines.overlapped import execute_overlapped
from repro.core import make_lattice
from repro.core.executor import _run_blocked, _run_merged
from repro.core.pointwise import run_pointwise
from repro.core.schedules import tess_schedule
from repro.engine import compile_plan
from repro.engine.plan import _execute_plan
from repro.runtime.schedule import _execute_schedule

pytestmark = pytest.mark.engine


def _pair(spec, shape, seed=11):
    g = Grid(spec, shape, init="random", seed=seed)
    return g, g.copy()


def _assert_identical(spec, sched, seed=11):
    g_ref, g_cmp = _pair(spec, sched.shape, seed)
    if sched.private_tasks:
        ref = execute_overlapped(spec, g_ref, sched)
    else:
        ref = _execute_schedule(spec, g_ref, sched)
    plan = compile_plan(spec, sched)
    out = _execute_plan(plan, g_cmp)
    assert np.array_equal(ref, out)
    # the full buffer pair, not just the returned interior
    for b_ref, b_cmp in zip(g_ref.buffers, g_cmp.buffers):
        assert np.array_equal(b_ref, b_cmp)
    return plan


# -- tessellation ----------------------------------------------------

@pytest.mark.parametrize("kernel,shape,b,steps", [
    ("heat1d", (301,), 4, 16),
    ("heat1d", (301,), 4, 14),      # truncated last phase
    ("1d5p", (257,), 3, 9),
    ("heat2d", (48, 48), 4, 12),
    ("heat2d", (48, 40), 4, 10),    # truncated, anisotropic
    ("life", (40, 40), 4, 8),
    ("heat3d", (14, 14, 14), 2, 4),
])
def test_tess_unmerged(kernel, shape, b, steps):
    spec = get_stencil(kernel)
    lat = make_lattice(spec, shape, b)
    sched = tess_schedule(spec, shape, lat, steps, merged=False)
    _assert_identical(spec, sched)


@pytest.mark.parametrize("kernel,shape,b,steps", [
    ("heat1d", (301,), 4, 16),
    ("heat2d", (48, 48), 4, 11),    # truncated last phase
    ("life", (40, 40), 4, 8),
])
def test_tess_merged(kernel, shape, b, steps):
    spec = get_stencil(kernel)
    lat = make_lattice(spec, shape, b)
    sched = tess_schedule(spec, shape, lat, steps, merged=True)
    _assert_identical(spec, sched)


def test_steps_zero():
    spec = get_stencil("heat1d")
    sched = naive_schedule(spec, (64,), 0)
    plan = _assert_identical(spec, sched)
    assert plan.stats.actions == 0
    assert plan.stats.stream_units == 0


# -- baselines -------------------------------------------------------

def test_naive_and_spatial():
    spec = get_stencil("heat2d")
    _assert_identical(spec, naive_schedule(spec, (40, 40), 7, chunks=3))
    plan = _assert_identical(
        spec, spatial_schedule(spec, (40, 40), 6, (13, 13)))
    # adjacent space tiles of one sweep fuse back into full rows/grids
    assert plan.stats.fused_actions > 0


def test_diamond_skewed_mwd():
    spec1 = get_stencil("heat1d")
    _assert_identical(spec1, diamond_schedule(spec1, (301,), 4, 13))
    _assert_identical(spec1, mwd_schedule(spec1, (301,), 4, 10))
    spec2 = get_stencil("heat2d")
    _assert_identical(spec2, skewed_schedule(spec2, (40, 40), 9, 12))


def test_overlapped_private_tasks():
    spec = get_stencil("heat2d")
    sched = overlapped_schedule(spec, (40, 40), 10, (16, 16), 5)
    plan = _assert_identical(spec, sched)
    assert plan.private
    spec_l = get_stencil("life")
    sched_l = overlapped_schedule(spec_l, (32, 32), 8, (12, 12), 4)
    _assert_identical(spec_l, sched_l)


# -- lattice executors -----------------------------------------------

def test_matches_run_blocked_and_pointwise():
    spec = get_stencil("heat2d")
    shape, b, steps = (40, 40), 4, 10
    lat = make_lattice(spec, shape, b)
    sched = tess_schedule(spec, shape, lat, steps, merged=False)
    plan = compile_plan(spec, sched)

    g_blocked, g_point = _pair(spec, shape)
    g_plan = g_blocked.copy()
    ref_blocked = _run_blocked(spec, g_blocked, lat, steps)
    ref_point = run_pointwise(spec, g_point, lat, steps)
    out = _execute_plan(plan, g_plan)
    assert np.array_equal(ref_blocked, out)
    assert np.array_equal(ref_point, out)


def test_matches_run_merged():
    spec = get_stencil("heat1d")
    shape, b, steps = (301,), 4, 12
    lat = make_lattice(spec, shape, b)
    sched = tess_schedule(spec, shape, lat, steps, merged=True)
    g_merged, g_plan = _pair(spec, shape)
    ref = _run_merged(spec, g_merged, lat, steps)
    out = _execute_plan(compile_plan(spec, sched), g_plan)
    assert np.array_equal(ref, out)


# -- engine options and guard rails ----------------------------------

def test_fuse_false_slices_only():
    spec = get_stencil("heat2d")
    lat = make_lattice(spec, (40, 40), 4)
    sched = tess_schedule(spec, (40, 40), lat, 8)
    plan = compile_plan(spec, sched, fuse=False)
    assert plan.stats.batches == 0
    assert plan.stats.fused_actions == 0
    _, g = _pair(spec, (40, 40))
    g_ref, _ = _pair(spec, (40, 40))
    assert np.array_equal(_execute_schedule(spec, g_ref, sched),
                          _execute_plan(plan, g))


def test_batch_threshold_zero_slices_only():
    spec = get_stencil("heat1d")
    sched = diamond_schedule(spec, (301,), 4, 8)
    plan = compile_plan(spec, sched, batch_threshold=0)
    assert plan.stats.batches == 0
    assert plan.stats.sliced_actions > 0
    _, g = _pair(spec, (301,))
    g_ref, _ = _pair(spec, (301,))
    assert np.array_equal(_execute_schedule(spec, g_ref, sched),
                          _execute_plan(plan, g))


def test_shape_mismatch_rejected():
    spec = get_stencil("heat1d")
    sched = naive_schedule(spec, (64,), 4)
    plan = compile_plan(spec, sched)
    with pytest.raises(ValueError, match="shape"):
        _execute_plan(plan, Grid(spec, (65,), init="random", seed=0))


def test_periodic_rejected():
    spec = get_stencil("heat1d", boundary="periodic")
    sched = naive_schedule(get_stencil("heat1d"), (64,), 4)
    with pytest.raises(ValueError, match="periodic"):
        compile_plan(spec, sched)


def test_threaded_and_resilient_with_plan():
    from repro.runtime.threadpool import _execute_threaded
    from repro.runtime.resilience import _execute_resilient

    spec = get_stencil("heat2d")
    lat = make_lattice(spec, (40, 40), 4)
    sched = tess_schedule(spec, (40, 40), lat, 9)
    plan = compile_plan(spec, sched)
    g_ref, g_thr = _pair(spec, (40, 40))
    g_res = g_ref.copy()
    ref = _execute_schedule(spec, g_ref, sched)
    assert np.array_equal(
        ref, _execute_threaded(spec, g_thr, sched, num_threads=3, plan=plan))
    out, _ = _execute_resilient(spec, g_res, sched, plan=plan, num_threads=2)
    assert np.array_equal(ref, out)


def test_resilient_with_plan_recovers_faults():
    from repro.runtime import FaultPlan, FaultSpec
    from repro.runtime.resilience import ResiliencePolicy, _execute_resilient

    spec = get_stencil("heat2d")
    lat = make_lattice(spec, (40, 40), 4)
    sched = tess_schedule(spec, (40, 40), lat, 9)
    plan = compile_plan(spec, sched)
    g_ref, g_flt = _pair(spec, (40, 40))
    ref = _execute_schedule(spec, g_ref, sched)
    fp = FaultPlan([FaultSpec(kind="crash", group=1, task=0),
                    FaultSpec(kind="corrupt", group=3, task=1)])
    out, report = _execute_resilient(
        spec, g_flt, sched, plan=plan, num_threads=2, fault_plan=fp,
        policy=ResiliencePolicy(max_task_retries=2))
    assert np.array_equal(ref, out)
    assert report.task_retries + report.restores > 0
