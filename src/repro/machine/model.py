"""Roofline + list-scheduling cost model.

Turns a scheme's *real* task graph into simulated execution time on a
:class:`~repro.machine.spec.MachineSpec`.  The model is deliberately
simple and fully documented — the paper's performance story is carried
by the schedules themselves (concurrency profiles, synchronisation
counts, load balance, working-set sizes); the model only converts
those properties into seconds.

Per barrier group with ``p`` cores:

1. every task gets a compute time
   ``overhead + actions·action_overhead + flops / flop_rate``
   and a memory traffic estimate (working set once if it fits the
   per-task cache budget, else streaming bytes per step — the temporal
   reuse captured by time tiling);
2. tasks are assigned to cores by LPT (longest processing time first)
   — the group's compute time is the maximal core load, which exposes
   load imbalance when a wavefront has few or uneven tasks;
3. the group takes ``max(compute makespan, group traffic / memory
   bandwidth)`` — the roofline — plus one barrier.

Total time sums the groups.  Results report the paper's figure axes:
performance (GStencil/s of *required* updates, so redundant work hurts
rather than inflates), memory transfer volume and achieved bandwidth.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.machine.spec import MachineSpec
from repro.runtime.schedule import RegionSchedule
from repro.runtime.taskgraph import TaskGraph, TaskNode, build_taskgraph
from repro.stencils.spec import StencilSpec


@dataclass(frozen=True)
class SimResult:
    """Outcome of one simulated run."""

    scheme: str
    cores: int
    time_s: float
    useful_flops: int
    useful_points: int
    total_points: int
    traffic_bytes: float
    barriers: int
    compute_bound_groups: int
    memory_bound_groups: int
    load_imbalance: float   # mean(max core load / mean core load)

    @property
    def gflops(self) -> float:
        return self.useful_flops / self.time_s / 1e9 if self.time_s else 0.0

    @property
    def gstencils(self) -> float:
        """Billions of required point-updates per second."""
        return self.useful_points / self.time_s / 1e9 if self.time_s else 0.0

    @property
    def bandwidth_gbs(self) -> float:
        return self.traffic_bytes / self.time_s / 1e9 if self.time_s else 0.0

    @property
    def traffic_gb(self) -> float:
        return self.traffic_bytes / 1e9


def task_traffic_bytes(node: TaskNode, spec: StencilSpec,
                       machine: MachineSpec) -> float:
    """Analytic memory traffic of one task, ignoring LLC residency.

    If the task's working set fits its cache budget it is read once
    (cold misses) and written back once; otherwise every step streams:
    one read + one write + one write-allocate per point per step.
    """
    itemsize = np.dtype(spec.dtype).itemsize
    streaming = 3.0 * itemsize * node.points
    if node.footprint_bytes <= machine.cache_per_task():
        return float(min(node.footprint_bytes, streaming + node.footprint_bytes))
    return streaming


class LLCResidency:
    """Approximate socket-LLC reuse across tasks.

    Keeps a FIFO of recently touched bounding boxes up to the LLC
    capacity of the active sockets.  A new task is charged only for
    the part of its working set not covered by the best-overlapping
    resident box — this is what makes Girih's step-locked diamonds
    cheap (each wavefront step revisits almost the same box) and stops
    neighbouring small tiles from being double-charged for shared halo
    lines.  Overlap is measured against the single best resident box
    (exact for the revisit pattern, conservative for unions).
    """

    #: hard cap on tracked boxes (FIFO) — bounds cost per charge
    MAX_BOXES = 256

    def __init__(self, capacity_bytes: float):
        self.capacity = max(0.0, float(capacity_bytes))
        self._lo: Optional[np.ndarray] = None   # (MAX_BOXES, d)
        self._hi: Optional[np.ndarray] = None
        self._bytes: Optional[np.ndarray] = None
        self._count = 0
        self._head = 0  # next slot to overwrite (FIFO ring)
        self._total = 0.0

    def _ensure(self, d: int) -> None:
        if self._lo is None:
            self._lo = np.zeros((self.MAX_BOXES, d), dtype=np.int64)
            self._hi = np.zeros((self.MAX_BOXES, d), dtype=np.int64)
            self._bytes = np.zeros(self.MAX_BOXES, dtype=np.float64)

    def charge(self, box, footprint_bytes: float) -> float:
        """Traffic to make ``box`` resident given the current contents."""
        if box is None or self.capacity <= 0.0:
            return footprint_bytes
        d = len(box)
        self._ensure(d)
        blo = np.fromiter((lo for lo, _ in box), dtype=np.int64, count=d)
        bhi = np.fromiter((hi for _, hi in box), dtype=np.int64, count=d)
        vol = int(np.prod(np.maximum(0, bhi - blo)))
        best = 0.0
        if self._count and vol:
            # dead ring slots are zeroed (lo == hi == 0) and contribute
            # zero-width intersections, so testing every slot is safe
            w = np.minimum(self._hi, bhi) - np.maximum(self._lo, blo)
            inter = np.prod(np.maximum(0, w), axis=1)
            best = float(inter.max())
        frac = best / vol if vol else 0.0
        traffic = footprint_bytes * (1.0 - frac)
        # insert into the FIFO ring
        slot = self._head
        if self._count == self.MAX_BOXES:
            self._total -= self._bytes[slot]
        else:
            self._count += 1
        self._lo[slot] = blo
        self._hi[slot] = bhi
        self._bytes[slot] = footprint_bytes
        self._head = (self._head + 1) % self.MAX_BOXES
        self._total += footprint_bytes
        # evict oldest entries beyond capacity (zero them out)
        while self._total > self.capacity and self._count > 0:
            oldest = (self._head - self._count) % self.MAX_BOXES
            self._total -= self._bytes[oldest]
            self._bytes[oldest] = 0.0
            self._lo[oldest] = 0
            self._hi[oldest] = 0
            self._count -= 1
        return traffic

    def charge_group(self, boxes: List, footprints: np.ndarray) -> np.ndarray:
        """Vectorised charge for one barrier group's tasks.

        Tasks of one group run concurrently on different cores, so all
        overlaps are measured against the residency state at the
        *group boundary*; the group's boxes are inserted afterwards.
        Entries with ``None`` boxes are charged in full.
        """
        traffic = np.asarray(footprints, dtype=np.float64).copy()
        if self.capacity <= 0.0 or not boxes:
            return traffic
        idx = [i for i, b in enumerate(boxes) if b is not None]
        if not idx:
            return traffic
        d = len(boxes[idx[0]])
        self._ensure(d)
        glo = np.array([[lo for lo, _ in boxes[i]] for i in idx],
                       dtype=np.int64)
        ghi = np.array([[hi for _, hi in boxes[i]] for i in idx],
                       dtype=np.int64)
        vol = np.prod(np.maximum(0, ghi - glo), axis=1).astype(np.float64)
        if self._count:
            w = (np.minimum(ghi[:, None, :], self._hi[None, :, :])
                 - np.maximum(glo[:, None, :], self._lo[None, :, :]))
            inter = np.prod(np.maximum(0, w), axis=2)
            best = inter.max(axis=1).astype(np.float64)
        else:
            best = np.zeros(len(idx))
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = np.where(vol > 0, best / np.maximum(vol, 1), 0.0)
        frac = np.clip(frac, 0.0, 1.0)
        for k, i in enumerate(idx):
            traffic[i] = footprints[i] * (1.0 - frac[k])
        # insert the group's boxes (FIFO ring + capacity eviction)
        for k, i in enumerate(idx):
            slot = self._head
            if self._count == self.MAX_BOXES:
                self._total -= self._bytes[slot]
            else:
                self._count += 1
            self._lo[slot] = glo[k]
            self._hi[slot] = ghi[k]
            self._bytes[slot] = footprints[i]
            self._head = (self._head + 1) % self.MAX_BOXES
            self._total += footprints[i]
        while self._total > self.capacity and self._count > 0:
            oldest = (self._head - self._count) % self.MAX_BOXES
            self._total -= self._bytes[oldest]
            self._bytes[oldest] = 0.0
            self._lo[oldest] = 0
            self._hi[oldest] = 0
            self._count -= 1
        return traffic


def _lpt_makespan(times: List[float], p: int) -> Tuple[float, float]:
    """LPT list-scheduling makespan and the max/mean load ratio."""
    if not times:
        return 0.0, 1.0
    p = max(1, p)
    loads = [0.0] * min(p, max(1, len(times)))
    heap = [(0.0, i) for i in range(len(loads))]
    heapq.heapify(heap)
    for t in sorted(times, reverse=True):
        load, i = heapq.heappop(heap)
        load += t
        loads[i] = load
        heapq.heappush(heap, (load, i))
    # idle cores (p > tasks) still participate in the barrier; the
    # mean is over p cores so imbalance reflects them
    total = sum(times)
    mean = total / p
    mx = max(loads)
    return mx, (mx / mean if mean > 0 else 1.0)


def simulate(
    spec: StencilSpec,
    schedule: RegionSchedule,
    machine: MachineSpec,
    cores: int,
    taskgraph: Optional[TaskGraph] = None,
) -> SimResult:
    """Simulate a schedule on ``cores`` cores of ``machine``."""
    if not 1 <= cores <= machine.cores:
        raise ValueError(
            f"cores must be in [1, {machine.cores}], got {cores}"
        )
    tg = taskgraph if taskgraph is not None else build_taskgraph(spec, schedule)
    groups = tg.groups()
    bw = machine.mem_bw_for(cores)
    barrier = machine.barrier_s(cores) * schedule.group_sync_cost
    sockets_used = min(machine.sockets, -(-cores // machine.cores_per_socket))
    llc = LLCResidency(sockets_used * machine.llc_bytes)
    cache_budget = machine.cache_per_task()
    total_time = 0.0
    total_traffic = 0.0
    imbalances: List[float] = []
    compute_bound = 0
    memory_bound = 0
    for gid in sorted(groups):
        nodes = groups[gid]
        times = []
        boxes = []
        footprints = np.empty(len(nodes))
        streaming_extra = 0.0
        for k, n in enumerate(nodes):
            if n.footprint_bytes <= cache_budget:
                boxes.append(n.bbox)
                footprints[k] = float(n.footprint_bytes)
            else:
                boxes.append(None)
                footprints[k] = 0.0
                streaming_extra += task_traffic_bytes(n, spec, machine)
            compute = (
                machine.task_overhead_s * schedule.task_overhead_factor
                + n.actions * machine.action_overhead_s
                + n.flops / machine.flop_rate
            )
            times.append(compute)
        g_traffic = float(
            llc.charge_group(boxes, footprints).sum()
        ) + streaming_extra
        makespan, imb = _lpt_makespan(times, cores)
        mem_time = g_traffic / bw
        if makespan >= mem_time:
            compute_bound += 1
        else:
            memory_bound += 1
        total_time += max(makespan, mem_time) + barrier
        total_traffic += g_traffic
        imbalances.append(imb)
    interior = 1
    for n in schedule.shape:
        interior *= n
    useful_points = interior * schedule.steps
    return SimResult(
        scheme=schedule.scheme,
        cores=cores,
        time_s=total_time,
        useful_flops=useful_points * spec.flops_per_point,
        useful_points=useful_points,
        total_points=schedule.total_points(),
        traffic_bytes=total_traffic,
        barriers=tg.num_barriers,
        compute_bound_groups=compute_bound,
        memory_bound_groups=memory_bound,
        load_imbalance=float(np.mean(imbalances)) if imbalances else 1.0,
    )


def scaling_curve(
    spec: StencilSpec,
    schedule: RegionSchedule,
    machine: MachineSpec,
    core_counts: List[int],
) -> List[SimResult]:
    """Simulate the same schedule across a range of core counts.

    The task graph is built once; only the scheduling changes — this
    matches the paper's strong-scaling experiments (fixed problem,
    1..24 cores).
    """
    tg = build_taskgraph(spec, schedule)
    return [
        simulate(spec, schedule, machine, p, taskgraph=tg)
        for p in core_counts
    ]
