"""Tests for grids and initial conditions."""

import numpy as np
import pytest

from repro.stencils import Grid, game_of_life, heat1d, heat2d, make_grid


class TestMakeGrid:
    def test_padded_shape(self):
        arr = make_grid(heat2d(), (5, 6))
        assert arr.shape == (7, 8)

    def test_halo_is_zero(self):
        arr = make_grid(heat1d(), (5,), init="random")
        assert arr[0] == 0 and arr[-1] == 0

    def test_random_deterministic(self):
        a = make_grid(heat1d(), (10,), seed=3)
        b = make_grid(heat1d(), (10,), seed=3)
        assert np.array_equal(a, b)
        c = make_grid(heat1d(), (10,), seed=4)
        assert not np.array_equal(a, c)

    def test_integer_grid_random_is_binary(self):
        arr = make_grid(game_of_life(), (8, 8), init="random")
        assert set(np.unique(arr)) <= {0, 1}

    def test_zeros(self):
        assert not make_grid(heat1d(), (7,), init="zeros").any()

    def test_impulse(self):
        arr = make_grid(heat2d(), (5, 5), init="impulse")
        assert arr.sum() == 1
        assert arr[1 + 2, 1 + 2] == 1

    def test_gradient_monotone(self):
        arr = make_grid(heat1d(), (10,), init="gradient")
        inner = arr[1:-1]
        assert np.all(np.diff(inner) >= 0)

    def test_gradient_integer(self):
        arr = make_grid(game_of_life(), (6, 6), init="gradient")
        assert set(np.unique(arr)) <= {0, 1}

    def test_unknown_init(self):
        with pytest.raises(ValueError):
            make_grid(heat1d(), (5,), init="chaos")

    def test_rank_mismatch(self):
        with pytest.raises(ValueError):
            make_grid(heat2d(), (5,))

    def test_nonpositive_shape(self):
        with pytest.raises(ValueError):
            make_grid(heat1d(), (0,))


class TestGrid:
    def test_ping_pong_parity(self):
        g = Grid(heat1d(), (6,), seed=0)
        assert g.at(0) is g.buffers[0]
        assert g.at(1) is g.buffers[1]
        assert g.at(2) is g.buffers[0]

    def test_interior_view_writes_through(self):
        g = Grid(heat1d(), (6,), init="zeros")
        g.interior(0)[...] = 7.0
        assert g.at(0)[1] == 7.0
        assert g.at(0)[0] == 0.0  # halo untouched

    def test_points(self):
        assert Grid(heat2d(), (4, 5), init="zeros").points() == 20

    def test_copy_is_independent(self):
        g = Grid(heat1d(), (6,), seed=1)
        h = g.copy()
        h.interior(0)[...] = 0
        assert g.interior(0).any()
        assert g.spec is h.spec
