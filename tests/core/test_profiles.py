"""Tests for the generalised distance profiles and lattices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profiles import AxisProfile, TessLattice


class TestUniformProfile:
    def test_matches_paper_lattice(self):
        """σ=1 uniform: distance to the nearest multiple of 2b, cap b."""
        p = AxisProfile.uniform(20, b=3)
        a = p.a()
        expect = [min(3, min(x % 6, 6 - x % 6)) for x in range(20)]
        assert a.tolist() == expect

    def test_core_width_equals_sigma(self):
        p = AxisProfile.uniform(30, b=2, sigma=2)
        assert p.core_width == 2
        assert p.period == 8

    def test_phase_shift(self):
        p = AxisProfile.uniform(20, b=3, phase=2)
        assert p.a()[2] == 0

    @given(st.integers(5, 60), st.integers(1, 5), st.integers(1, 3),
           st.integers(0, 10))
    @settings(max_examples=80, deadline=None)
    def test_always_valid(self, n, b, sigma, phase):
        p = AxisProfile.uniform(n, b, sigma=sigma, phase=phase)
        p.validate()

    def test_periodic_requires_divisibility(self):
        AxisProfile.uniform(24, b=3, periodic=True)  # 24 % 6 == 0
        with pytest.raises(ValueError):
            AxisProfile.uniform(25, b=3, periodic=True)


class TestCoarseProfile:
    def test_default_period_is_merge_compatible(self):
        p = AxisProfile.coarse(100, b=4, core_width=10)
        assert p.period == 2 * 10 + 2 * 3
        plats = p.plateaus()
        widths = {hi - lo for lo, hi in plats}
        assert widths == {10}

    def test_cores_cover_domain_margins(self):
        p = AxisProfile.coarse(50, b=3, core_width=5)
        assert any(lo <= 0 for lo, hi in p.cores)
        assert any(hi >= 50 for lo, hi in p.cores)

    @given(st.integers(10, 80), st.integers(1, 4), st.integers(1, 3),
           st.integers(1, 8))
    @settings(max_examples=80, deadline=None)
    def test_always_valid(self, n, b, sigma, w):
        p = AxisProfile.coarse(n, b, sigma=sigma, core_width=w)
        p.validate()

    def test_rejects_tiny_period(self):
        with pytest.raises(ValueError):
            AxisProfile.coarse(50, b=3, core_width=5, period=5)

    def test_rejects_nonpositive_params(self):
        with pytest.raises(ValueError):
            AxisProfile.coarse(10, b=0)
        with pytest.raises(ValueError):
            AxisProfile.coarse(0, b=2)
        with pytest.raises(ValueError):
            AxisProfile.coarse(10, b=2, core_width=0)


class TestExplicitAndStretched:
    def test_from_cores_distances(self):
        p = AxisProfile.from_cores(12, b=3, cores=[(0, 2), (8, 10)])
        a = p.a()
        assert a[0] == 0 and a[1] == 0
        assert a[2] == 1 and a[4] == 3  # capped
        assert a[8] == 0

    def test_from_cores_validation(self):
        with pytest.raises(ValueError):
            AxisProfile.from_cores(10, 2, cores=[])
        with pytest.raises(ValueError):
            AxisProfile.from_cores(10, 2, cores=[(5, 3)])
        with pytest.raises(ValueError):
            AxisProfile.from_cores(10, 2, cores=[(0, 4), (2, 6)])
        with pytest.raises(ValueError):
            AxisProfile.from_cores(10, 2, cores=[(8, 12)])

    def test_periodic_wrap_distance(self):
        p = AxisProfile.from_cores(12, b=5, cores=[(0, 1)], periodic=True)
        a = p.a()
        assert a[11] == 1  # wraps around
        assert a[6] == 5

    @given(st.integers(8, 60), st.integers(1, 4), st.integers(1, 3),
           st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_stretched_always_valid(self, n, b, sigma, periodic):
        p = AxisProfile.stretched(n, b, sigma=sigma, periodic=periodic)
        p.validate()

    def test_stretched_small_domain(self):
        p = AxisProfile.stretched(5, b=4)
        p.validate()
        assert p.a()[0] == 0


class TestUncutProfile:
    def test_constant_b(self):
        p = AxisProfile.uncut(17, b=4)
        assert set(p.a().tolist()) == {4}
        assert p.cores == ()
        assert p.plateaus() == ((0, 17),)
        p.validate()

    def test_shift_is_identity(self):
        p = AxisProfile.uncut(17, b=4)
        assert p.shifted_to_plateaus() is p


class TestShiftedToPlateaus:
    def test_shift_swaps_cores_and_plateaus(self):
        p = AxisProfile.coarse(60, b=3, core_width=4)
        q = p.shifted_to_plateaus()
        plats = set(p.plateaus())
        q_cores = set(q.cores)
        # every plateau inside the domain is a core of the shifted one
        for lo, hi in plats:
            if 0 <= lo and hi <= 60:
                assert (lo, hi) in q_cores

    def test_shift_requires_merge_condition(self):
        p = AxisProfile.coarse(60, b=3, core_width=4, period=30)
        with pytest.raises(ValueError):
            p.shifted_to_plateaus()

    def test_double_shift_returns_original_phase(self):
        p = AxisProfile.coarse(60, b=3, core_width=4)
        q = p.shifted_to_plateaus().shifted_to_plateaus()
        assert q.phase == p.phase
        assert np.array_equal(q.a(), p.a())


class TestTessLattice:
    def test_shape_and_b(self):
        lat = TessLattice.uniform((10, 12), b=2)
        assert lat.shape == (10, 12)
        assert lat.b == 2
        assert lat.ndim == 2

    def test_mixed_b_rejected(self):
        p1 = AxisProfile.uniform(10, 2)
        p2 = AxisProfile.uniform(10, 3)
        with pytest.raises(ValueError):
            TessLattice((p1, p2))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TessLattice(())

    def test_distance_arrays(self):
        lat = TessLattice.uniform((10, 12), b=2)
        arrs = lat.distance_arrays()
        assert [len(a) for a in arrs] == [10, 12]

    def test_coarse_constructor(self):
        lat = TessLattice.coarse((20, 30), b=2, core_widths=(3, 5))
        assert lat.profiles[0].core_width == 3
        assert lat.profiles[1].core_width == 5
        lat.validate()
