"""Pointwise (mask-based) tessellation executor.

This executor drives the tessellation schedule directly from the
per-point distance arrays: at stage ``i``, phase-local step ``s``, the
set of points advancing from phase time ``s`` to ``s+1`` is exactly

``{ x : #{ j : a_j(x) ≥ b - s } == i }``

(the derived identity of :func:`repro.core.timefunc.stage_index`).  It
is deliberately simple — full-grid candidate computation plus a boolean
mask — and serves as the *semantic oracle*: the block executor, the
paper-code transcriptions and the merged executor are all validated
against it (and it against the naive reference sweep).

It is also the only executor supporting every lattice the framework
admits: periodic boundaries, stretched (Fig. 6) profiles and arbitrary
valid explicit profiles.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.core.profiles import TessLattice
from repro.stencils.grid import Grid
from repro.stencils.spec import StencilSpec, full_region


UpdateHook = Callable[[int, int, int, int], None]
"""Callback ``(phase_start, stage, local_step, points_updated)``."""


def _stage_count_array(a_vecs, b: int, s: int) -> np.ndarray:
    """``#{j : a_j ≥ b - s}`` for every grid point, via broadcasting."""
    d = len(a_vecs)
    count = None
    for j, a in enumerate(a_vecs):
        ind = (a >= b - s).astype(np.int8)
        shape = [1] * d
        shape[j] = len(a)
        ind = ind.reshape(shape)
        count = ind if count is None else count + ind
    return count


def check_lattice(spec: StencilSpec, grid: Grid, lattice: TessLattice) -> None:
    """Validate that a lattice is usable for this spec and grid."""
    if lattice.ndim != spec.ndim:
        raise ValueError(
            f"lattice rank {lattice.ndim} != stencil ndim {spec.ndim}"
        )
    if lattice.shape != grid.shape:
        raise ValueError(
            f"lattice shape {lattice.shape} != grid shape {grid.shape}"
        )
    for j, (p, s) in enumerate(zip(lattice.profiles, spec.slopes)):
        if p.sigma < s:
            raise ValueError(
                f"profile slope {p.sigma} < stencil slope {s} along dim {j}"
            )
        if p.periodic != spec.is_periodic:
            raise ValueError(
                f"profile periodicity {p.periodic} does not match "
                f"stencil boundary {spec.boundary!r} along dim {j}"
            )


def run_pointwise(
    spec: StencilSpec,
    grid: Grid,
    lattice: TessLattice,
    steps: int,
    t0: int = 0,
    on_update: Optional[UpdateHook] = None,
    validate: bool = True,
    budget=None,
) -> np.ndarray:
    """Advance ``grid`` by ``steps`` using the mask-based tessellation.

    Phases of depth ``b = lattice.b`` start at ``t0, t0+b, …``; the last
    phase is truncated if ``steps`` is not a multiple of ``b`` (safe:
    dropping the top of every window never breaks a dependence).

    Returns the interior view at time ``t0 + steps``.
    """
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    check_lattice(spec, grid, lattice)
    if validate:
        lattice.validate()
    b = lattice.b
    d = lattice.ndim
    a_vecs = lattice.distance_arrays()
    t_end = t0 + steps

    scratch = np.zeros_like(grid.buffers[0])
    interior = spec.interior_slices(grid.shape)

    # the stage-membership count depends only on (b, s) — never on the
    # stage or the phase — so build each local step's count array once
    # here instead of once per stage per phase ((d+1) × #phases times)
    max_span = min(b, steps)
    counts = [_stage_count_array(a_vecs, b, s) for s in range(max_span)]

    if budget is not None:
        budget.check("pointwise entry")
    tt = t0
    while tt < t_end:
        if budget is not None:
            budget.check(f"phase t={tt}")
        span = min(b, t_end - tt)
        for stage in range(d + 1):
            for s in range(span):
                mask = counts[s] == stage
                n_upd = int(mask.sum())
                if n_upd == 0:
                    continue
                src = grid.at(tt + s)
                dst = grid.at(tt + s + 1)
                if spec.is_periodic:
                    nxt = spec.operator.apply_wrapped(src[interior])
                    dst[interior][mask] = nxt[mask]
                else:
                    spec.apply_region(src, scratch, full_region(grid.shape))
                    dst[interior][mask] = scratch[interior][mask]
                if on_update is not None:
                    on_update(tt, stage, s, n_upd)
        tt += b
    return grid.interior(t_end)
