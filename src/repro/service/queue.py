"""Bounded priority queue with backpressure for the job runtime.

The serving story's first overload defence: a queue that refuses
instead of buffering unboundedly.  Two independent bounds, both
checked at ``put`` time:

* **depth** — at most ``maxsize`` jobs waiting;
* **footprint** — the sum of the queued jobs' admission estimates
  (:func:`repro.runtime.qos.estimate_peak_bytes`, computed once at
  submission and carried on the job) must stay under
  ``max_pending_bytes``.  This reuses the PR-6 admission model: the
  queue refuses work the workers could not admit anyway, before it
  costs a journal write.

Exceeding either bound raises the typed
:class:`~repro.runtime.errors.QueueSaturated` (CLI exit code 10,
HTTP 429).  Ordering is priority-first (higher value first), FIFO
within a priority level.  ``put(..., force=True)`` bypasses the bounds
— it exists for the supervisor's *internal* re-queues (retry, crash
recovery), which must never drop a job that is already journaled.
"""

from __future__ import annotations

import heapq
import threading
from typing import List, Optional, Tuple

from repro.runtime.errors import QueueSaturated, ServiceDraining
from repro.service.jobstore import Job

__all__ = ["JobQueue"]


class JobQueue:
    """Thread-safe bounded priority queue of :class:`Job` entries."""

    def __init__(self, maxsize: int = 64,
                 max_pending_bytes: Optional[int] = None):
        if maxsize < 1:
            raise ValueError(f"queue maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self.max_pending_bytes = max_pending_bytes
        self._heap: List[Tuple[int, int, Job]] = []
        self._ids = set()
        self._pending_bytes = 0
        self._seq = 0
        self._closed = False
        self._draining = False
        self._cond = threading.Condition()

    def __len__(self) -> int:
        with self._cond:
            return len(self._heap)

    @property
    def pending_bytes(self) -> int:
        with self._cond:
            return self._pending_bytes

    def check_admit(self, estimated_bytes: int) -> None:
        """Raise :class:`QueueSaturated` if one more job would not fit.

        Callers that journal on submit use this *before* writing the
        record, so a refused submission leaves no trace.
        """
        with self._cond:
            self._check(int(estimated_bytes))

    def set_draining(self, draining: bool = True) -> None:
        """Refuse all admission checks while the service drains.

        Internal ``put(..., force=True)`` re-queues keep working — a
        journaled job must never be dropped by a drain.
        """
        with self._cond:
            self._draining = bool(draining)

    def _check(self, estimated_bytes: int) -> None:
        if self._draining:
            raise ServiceDraining()
        if len(self._heap) >= self.maxsize:
            raise QueueSaturated(len(self._heap), self.maxsize)
        limit = self.max_pending_bytes
        if (limit is not None
                and self._pending_bytes + estimated_bytes > limit):
            raise QueueSaturated(
                len(self._heap), self.maxsize,
                pending_bytes=self._pending_bytes + estimated_bytes,
                limit_bytes=limit)

    def put(self, job: Job, *, force: bool = False) -> None:
        """Enqueue; raises :class:`QueueSaturated` unless ``force``."""
        with self._cond:
            if self._closed:
                raise RuntimeError("queue is closed")
            if job.job_id in self._ids:
                return  # already waiting; idempotent
            if not force:
                self._check(job.estimated_bytes)
            # negated priority: heapq is a min-heap, highest wins
            self._seq += 1
            heapq.heappush(self._heap, (-int(job.priority), self._seq, job))
            self._ids.add(job.job_id)
            self._pending_bytes += int(job.estimated_bytes)
            self._cond.notify()

    def get(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Highest-priority job, blocking up to ``timeout``; None on
        timeout or when the queue is closed and drained."""
        with self._cond:
            while not self._heap:
                if self._closed:
                    return None
                if not self._cond.wait(timeout=timeout):
                    return None
            _, _, job = heapq.heappop(self._heap)
            self._ids.discard(job.job_id)
            self._pending_bytes -= int(job.estimated_bytes)
            return job

    def claim_compatible(self, match, limit: int,
                         batch_bytes=None) -> List[Job]:
        """Pop up to ``limit`` more queued jobs ``match`` accepts — the
        supervisor's coalescing claim (non-blocking).

        The heap is scanned in pop order (priority-first, FIFO within a
        level); matching jobs are claimed, the rest keep their original
        sequence numbers so their ordering survives the round trip.

        ``batch_bytes(n)``, when given, must return the estimated peak
        footprint of the whole coalesced run with ``n`` members
        *including the already-leased leader*, charged as the ONE
        stacked ``[N, ...]`` allocation it really is.  Claiming stops
        before that estimate would exceed ``max_pending_bytes`` —
        summing the members' individual single-instance estimates would
        under-count the stacked pair and over-admit.
        """
        claimed: List[Job] = []
        if limit <= 0:
            return claimed
        with self._cond:
            if not self._heap:
                return claimed
            kept: List[Tuple[int, int, Job]] = []
            for entry in sorted(self._heap):
                _, _, job = entry
                if len(claimed) < limit and match(job):
                    if (batch_bytes is not None
                            and self.max_pending_bytes is not None
                            and (batch_bytes(len(claimed) + 2)
                                 > self.max_pending_bytes)):
                        # the batch is full by footprint; a later match
                        # cannot fit either (the estimate only grows)
                        limit = len(claimed)
                        kept.append(entry)
                        continue
                    claimed.append(job)
                else:
                    kept.append(entry)
            if claimed:
                heapq.heapify(kept)
                self._heap = kept
                for job in claimed:
                    self._ids.discard(job.job_id)
                self._pending_bytes = sum(int(j.estimated_bytes)
                                          for _, _, j in self._heap)
            return claimed

    def remove(self, job_id: str) -> bool:
        """Drop a waiting job (cancellation); False if not queued."""
        with self._cond:
            if job_id not in self._ids:
                return False
            kept = [(p, s, j) for (p, s, j) in self._heap
                    if j.job_id != job_id]
            removed = len(self._heap) - len(kept)
            if removed:
                heapq.heapify(kept)
                self._heap = kept
                self._ids.discard(job_id)
                # recompute the footprint from what is left: simpler
                # and immune to drift than tracking per-job estimates
                self._pending_bytes = sum(int(j.estimated_bytes)
                                          for _, _, j in self._heap)
            return bool(removed)

    def close(self) -> None:
        """Wake every blocked ``get`` with None; puts start failing."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
