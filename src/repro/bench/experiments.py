"""Experiment functions — one per paper table/figure (see DESIGN.md §5).

Each ``fig*`` function builds the *real* schedules of every compared
scheme for the scaled Table 4 problem, runs them through the simulated
machine across core counts, and returns a :class:`FigureResult` whose
``checks`` record the paper's qualitative claims evaluated on the
measured series.  ``python -m repro.bench`` renders all of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines import (
    diamond_schedule,
    mwd_schedule,
    naive_schedule,
    overlapped_schedule,
    trapezoid_schedule,
)
from repro.bench.problems import CORE_COUNTS, PROBLEMS, ProblemConfig
from repro.bench.report import format_scaling, format_table
from repro.core import make_lattice
from repro.core.geometry import table1
from repro.core.schedules import tess_schedule
from repro.machine.model import SimResult, scaling_curve
from repro.machine.spec import MachineSpec, paper_machine
from repro.runtime.levelize import levelize
from repro.runtime.schedule import RegionSchedule
from repro.stencils.library import get_stencil


@dataclass
class FigureResult:
    """Series and checks of one regenerated figure."""

    exp_id: str
    title: str
    kernel: str
    shape: Tuple[int, ...]
    steps: int
    series: Dict[str, List[SimResult]]
    notes: str = ""
    #: paper claim -> (holds?, detail)
    checks: Dict[str, Tuple[bool, str]] = field(default_factory=dict)

    def table(self, metric: str = "gstencils") -> str:
        return format_scaling(self.series, metric=metric)

    def at(self, scheme: str, cores: int) -> SimResult:
        for r in self.series[scheme]:
            if r.cores == cores:
                return r
        raise KeyError(f"no result for {scheme} at {cores} cores")

    def render(self) -> str:
        lines = [f"== {self.exp_id}: {self.title} ==",
                 f"kernel={self.kernel} shape={self.shape} steps={self.steps}"]
        if self.notes:
            lines.append(self.notes)
        lines.append(self.table("gstencils"))
        if self.checks:
            lines.append("paper-claim checks:")
            for name, (holds, detail) in self.checks.items():
                mark = "PASS" if holds else "DIVERGES"
                lines.append(f"  [{mark}] {name}: {detail}")
        return "\n".join(lines)


#: schedules are expensive to build (10^5 tasks) and immutable once
#: built — share them between experiments (fig11/fig12 reuse heat3d)
_SCHEDULE_CACHE: Dict[Tuple[str, str], RegionSchedule] = {}


def build_schedules(
    cfg: ProblemConfig,
    schemes: Sequence[str],
) -> Dict[str, RegionSchedule]:
    """Build the requested schemes' schedules for one problem config."""
    spec = get_stencil(cfg.kernel)
    out: Dict[str, RegionSchedule] = {}
    for name in schemes:
        key = (cfg.name + str(cfg.shape) + str(cfg.steps), name)
        if key in _SCHEDULE_CACHE:
            out[name] = _SCHEDULE_CACHE[key]
            continue
        if name == "tess":
            lat = make_lattice(spec, cfg.shape, cfg.tess_b,
                               core_widths=cfg.tess_core_widths,
                               uncut_dims=cfg.tess_uncut_dims)
            out[name] = tess_schedule(spec, cfg.shape, lat, cfg.steps,
                                      merged=True)
            out[name].scheme = "tess"
        elif name == "tess-unmerged":
            lat = make_lattice(spec, cfg.shape, cfg.tess_b,
                               core_widths=cfg.tess_core_widths,
                               uncut_dims=cfg.tess_uncut_dims)
            out[name] = tess_schedule(spec, cfg.shape, lat, cfg.steps)
            out[name].scheme = "tess-unmerged"
        elif name == "pluto":
            out[name] = diamond_schedule(spec, cfg.shape, cfg.pluto_b,
                                         cfg.steps,
                                         cut_dims=cfg.pluto_cut_dims)
            out[name].scheme = "pluto"
        elif name == "pochoir":
            raw = trapezoid_schedule(spec, cfg.shape, cfg.steps,
                                     base_dt=cfg.pochoir_base_dt,
                                     base_widths=cfg.pochoir_base_widths)
            out[name] = levelize(spec, raw)  # Cilk work-stealing model
            # dynamic blocking / recursive descent / steal overhead per
            # task — the paper's stated reason Pochoir trails in 1D
            out[name].task_overhead_factor = 4.0
            out[name].scheme = "pochoir"
        elif name == "girih":
            if cfg.mwd_b is None:
                raise ValueError(f"no Girih config for {cfg.name}")
            out[name] = mwd_schedule(spec, cfg.shape, cfg.mwd_b, cfg.steps,
                                     chunks=cfg.mwd_chunks)
            out[name].scheme = "girih"
        elif name == "naive":
            out[name] = naive_schedule(spec, cfg.shape, cfg.steps, chunks=24)
        elif name == "overlapped":
            tile = tuple(max(8, n // 16) for n in cfg.shape)
            out[name] = overlapped_schedule(spec, cfg.shape, cfg.steps, tile,
                                            max(2, cfg.tess_b // 2))
        else:
            raise ValueError(f"unknown scheme {name!r}")
        _SCHEDULE_CACHE[key] = out[name]
    return out


def run_scaling(
    cfg: ProblemConfig,
    schemes: Sequence[str],
    cores: Sequence[int] = CORE_COUNTS,
    machine: Optional[MachineSpec] = None,
) -> Dict[str, List[SimResult]]:
    """Simulate the config's schemes; caches scale with the problem."""
    if machine is None:
        machine = paper_machine().scaled_caches(cfg.cache_scale)
    spec = get_stencil(cfg.kernel)
    scheds = build_schedules(cfg, schemes)
    return {
        name: scaling_curve(spec, sched, machine, list(cores))
        for name, sched in scheds.items()
    }


def _ratio(a: SimResult, b: SimResult) -> float:
    return a.gstencils / b.gstencils if b.gstencils else float("inf")


# ---------------------------------------------------------------------------
# Figures
# ---------------------------------------------------------------------------

def fig8_1d(cores: Sequence[int] = CORE_COUNTS,
            machine: Optional[MachineSpec] = None) -> List[FigureResult]:
    """Figure 8: Heat-1D and 1d5p performance vs cores."""
    out = []
    for key in ("heat1d", "1d5p"):
        cfg = PROBLEMS[key]
        series = run_scaling(cfg, ("tess", "pluto", "pochoir"), cores,
                             machine)
        fr = FigureResult(
            exp_id="fig8",
            title=f"1D results — {cfg.name}",
            kernel=cfg.kernel, shape=cfg.shape, steps=cfg.steps,
            series=series,
            notes="paper: linear scaling for all three; ours comparable "
                  "to Pluto (same diamond code), better than Pochoir",
        )
        pmax = max(cores)
        t, pl, po = (fr.at(s, pmax) for s in ("tess", "pluto", "pochoir"))
        t1 = fr.at("tess", min(cores))
        fr.checks["tess ≈ pluto (same diamond code)"] = (
            0.8 <= _ratio(t, pl) <= 1.25,
            f"ratio at {pmax} cores = {_ratio(t, pl):.2f}",
        )
        fr.checks["tess ≥ pochoir"] = (
            _ratio(t, po) >= 1.0,
            f"ratio at {pmax} cores = {_ratio(t, po):.2f}",
        )
        fr.checks["near-linear scaling of tess"] = (
            t.gstencils / t1.gstencils >= 0.5 * pmax / t1.cores,
            f"speedup {t.gstencils / t1.gstencils:.1f}x on {pmax} cores",
        )
        out.append(fr)
    return out


def fig9_life(cores: Sequence[int] = CORE_COUNTS,
              machine: Optional[MachineSpec] = None) -> FigureResult:
    """Figure 9: Game of Life performance vs cores."""
    cfg = PROBLEMS["life"]
    series = run_scaling(cfg, ("tess", "pluto", "pochoir"), cores, machine)
    fr = FigureResult(
        exp_id="fig9",
        title="Game of Life",
        kernel=cfg.kernel, shape=cfg.shape, steps=cfg.steps,
        series=series,
        notes="paper: Pochoir beats Pluto below ~12 cores, Pluto wins "
              "beyond; ours highest with ideal scalability",
    )
    pmax = max(cores)
    t, pl, po = (fr.at(s, pmax) for s in ("tess", "pluto", "pochoir"))
    fr.checks["tess highest at full machine"] = (
        t.gstencils >= pl.gstencils and t.gstencils >= po.gstencils,
        f"tess {t.gstencils:.2f} vs pluto {pl.gstencils:.2f} / "
        f"pochoir {po.gstencils:.2f} GStencil/s",
    )
    fr.checks["pluto overtakes pochoir at high cores"] = (
        pl.gstencils >= po.gstencils,
        f"at {pmax} cores: pluto {pl.gstencils:.2f} vs "
        f"pochoir {po.gstencils:.2f}",
    )
    return fr


def fig10_2d(cores: Sequence[int] = CORE_COUNTS,
             machine: Optional[MachineSpec] = None) -> List[FigureResult]:
    """Figure 10: Heat-2D (star) and 2d9p (box) performance vs cores."""
    out = []
    for key, kind in (("heat2d", "star"), ("2d9p", "box")):
        cfg = PROBLEMS[key]
        series = run_scaling(cfg, ("tess", "pluto", "pochoir"), cores,
                             machine)
        fr = FigureResult(
            exp_id="fig10",
            title=f"2D results — {cfg.name} ({kind})",
            kernel=cfg.kernel, shape=cfg.shape, steps=cfg.steps,
            series=series,
            notes="paper: star — ours ≈ Pochoir, Pluto load-imbalanced; "
                  "box — ours outperforms by 14%/20% on average",
        )
        pmax = max(cores)
        t, pl, po = (fr.at(s, pmax) for s in ("tess", "pluto", "pochoir"))
        if kind == "box":
            fr.checks["tess beats pluto & pochoir on box stencil"] = (
                t.gstencils > pl.gstencils and t.gstencils > po.gstencils,
                f"tess/pluto {_ratio(t, pl):.2f}, "
                f"tess/pochoir {_ratio(t, po):.2f} at {pmax} cores",
            )
        else:
            fr.checks["tess and pluto within ~15% on 2D star"] = (
                0.85 <= _ratio(t, pl) <= 1.2,
                f"ratio {_ratio(t, pl):.2f} at {pmax} cores (paper: "
                f"Pluto ahead by <5% at 24 cores; the [3] load-imbalance "
                f"mechanism is not modelled — see EXPERIMENTS.md)",
            )
            fr.checks["tess competitive on star stencil"] = (
                _ratio(t, max((pl, po), key=lambda r: r.gstencils)) >= 0.9,
                f"tess {t.gstencils:.2f} vs best baseline "
                f"{max(pl.gstencils, po.gstencils):.2f}",
            )
        out.append(fr)
    return out


def fig11_3d(cores: Sequence[int] = CORE_COUNTS,
             machine: Optional[MachineSpec] = None) -> List[FigureResult]:
    """Figure 11: Heat-3D (star, with Girih) and 3d27p (box)."""
    out = []
    for key, kind in (("heat3d", "star"), ("3d27p", "box")):
        cfg = PROBLEMS[key]
        schemes = ["tess", "pluto", "pochoir"]
        if kind == "star":
            schemes.append("girih")
        series = run_scaling(cfg, schemes, cores, machine)
        fr = FigureResult(
            exp_id="fig11",
            title=f"3D results — {cfg.name} ({kind})",
            kernel=cfg.kernel, shape=cfg.shape, steps=cfg.steps,
            series=series,
            notes="paper: star — Girih ≈ Pochoir, Pluto slightly ahead at "
                  ">20 cores; box — ours outperforms Pluto/Pochoir by "
                  "30%/99% on average (max 74%/100%), headline +12%",
        )
        pmax = max(cores)
        t, pl, po = (fr.at(s, pmax) for s in ("tess", "pluto", "pochoir"))
        if kind == "box":
            fr.checks["tess clearly ahead on 3d27p"] = (
                _ratio(t, pl) >= 1.05 and _ratio(t, po) >= 1.05,
                f"tess/pluto {_ratio(t, pl):.2f}, "
                f"tess/pochoir {_ratio(t, po):.2f} at {pmax} cores",
            )
        else:
            fr.checks["tess and pluto close on 3d7p"] = (
                0.75 <= _ratio(t, pl) <= 1.35,
                f"ratio {_ratio(t, pl):.2f} at {pmax} cores",
            )
            gi = fr.at("girih", pmax)
            fr.checks["girih and pochoir similar on 3d7p"] = (
                0.6 <= gi.gstencils / po.gstencils <= 1.7,
                f"girih {gi.gstencils:.2f} vs pochoir {po.gstencils:.2f}",
            )
        out.append(fr)
    return out


def fig12_memory(cores: Sequence[int] = CORE_COUNTS,
                 machine: Optional[MachineSpec] = None) -> FigureResult:
    """Figure 12: Heat-3D memory transfer volume and bandwidth."""
    cfg = PROBLEMS["heat3d"]
    series = run_scaling(cfg, ("tess", "pluto", "girih", "naive"), cores,
                         machine)
    fr = FigureResult(
        exp_id="fig12",
        title="Heat-3D memory performance",
        kernel=cfg.kernel, shape=cfg.shape, steps=cfg.steps,
        series=series,
        notes="paper: ours and Pluto show similar cache complexity; "
              "Girih (LLC-resident diamonds) transfers the least",
    )
    pmax = max(cores)
    t, pl, gi, na = (fr.at(s, pmax)
                     for s in ("tess", "pluto", "girih", "naive"))
    fr.checks["tess & pluto in the same Θ(1/b) traffic class"] = (
        0.25 <= (t.traffic_bytes / pl.traffic_bytes) <= 4.0,
        f"tess {t.traffic_gb:.2f} GB vs pluto {pl.traffic_gb:.2f} GB "
        f"(paper's Table 4 gives Pluto half the depth: b=6 vs b=12)",
    )
    fr.checks["girih lowest traffic"] = (
        gi.traffic_bytes <= min(t.traffic_bytes, pl.traffic_bytes,
                                na.traffic_bytes),
        f"girih {gi.traffic_gb:.2f} GB vs tess {t.traffic_gb:.2f} / "
        f"pluto {pl.traffic_gb:.2f} / naive {na.traffic_gb:.2f} GB",
    )
    fr.checks["time tiling cuts naive traffic"] = (
        t.traffic_bytes < 0.5 * na.traffic_bytes,
        f"tess {t.traffic_gb:.2f} GB vs naive {na.traffic_gb:.2f} GB",
    )
    return fr


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------

def table1_properties(max_dim: int = 6, b: int = 4) -> str:
    """Regenerate Table 1 for d = 1..max_dim."""
    headers = ["property"] + [f"d={d}" for d in range(1, max_dim + 1)]
    rows = []
    data = [table1(d, b) for d in range(1, max_dim + 1)]
    rows.append(["stages per phase"] + [t["stages_per_phase"] for t in data])
    rows.append([f"|B_0| (b={b})"] + [t["b0_size"] for t in data])
    rows.append(["shape kinds"] + [t["shape_kinds"] for t in data])
    rows.append(["splits of B_0"] + [t["split_counts"][0] for t in data])
    rows.append(["B_1 centres on B_0 surface"]
                + [t["surface_centerpoints"][0] for t in data])
    return format_table(headers, rows)


def table4_problems() -> str:
    """Render Table 4 with the scaled configurations used here."""
    headers = ["benchmark", "paper size", "scaled size", "steps",
               "tess b/widths", "pluto b", "scaling note"]
    rows = []
    for cfg in PROBLEMS.values():
        rows.append([
            cfg.name, cfg.paper_size,
            "x".join(str(n) for n in cfg.shape), cfg.steps,
            f"{cfg.tess_b}/{cfg.tess_core_widths}", cfg.pluto_b,
            cfg.scale_note,
        ])
    return format_table(headers, rows)


# ---------------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)
# ---------------------------------------------------------------------------

def ablation_sync_counts(shape_1d: int = 512, steps: int = 32,
                         b: int = 8) -> str:
    """Barriers per time step for each scheme, d = 1..3 (§2.2 claims)."""
    headers = ["scheme", "d=1", "d=2", "d=3"]
    shapes = [(shape_1d,), (64, 64), (32, 32, 32)]
    kernels = ["heat1d", "heat2d", "heat3d"]
    rows = []
    for scheme in ("tess-unmerged", "tess", "pluto", "pochoir"):
        row = [scheme]
        for shape, kernel in zip(shapes, kernels):
            spec = get_stencil(kernel)
            bb = min(b, min(shape) // 4)
            if scheme in ("tess", "tess-unmerged"):
                lat = make_lattice(spec, shape, bb)
                s = tess_schedule(spec, shape, lat, steps,
                                  merged=(scheme == "tess"))
            elif scheme == "pluto":
                s = diamond_schedule(spec, shape, bb, steps)
            else:
                s = levelize(spec, trapezoid_schedule(
                    spec, shape, steps, base_dt=max(2, bb // 2)))
            row.append(f"{s.num_groups / steps:.2f}")
        rows.append(row)
    return format_table(headers, rows)


def ablation_merge(cores: Sequence[int] = (1, 12, 24),
                   machine: Optional[MachineSpec] = None) -> FigureResult:
    """§4.3 merging on/off on Heat-2D."""
    cfg = PROBLEMS["heat2d"]
    series = run_scaling(cfg, ("tess", "tess-unmerged"), cores, machine)
    fr = FigureResult(
        exp_id="ablation-merge",
        title="B_d + B_0 merging (§4.3) on/off — Heat-2D",
        kernel=cfg.kernel, shape=cfg.shape, steps=cfg.steps, series=series,
    )
    pmax = max(cores)
    m, u = fr.at("tess", pmax), fr.at("tess-unmerged", pmax)
    fr.checks["merging saves barriers"] = (
        m.barriers < u.barriers,
        f"{m.barriers} vs {u.barriers} barriers",
    )
    fr.checks["merging does not hurt"] = (
        m.time_s <= u.time_s * 1.02,
        f"{m.time_s * 1e3:.2f} ms vs {u.time_s * 1e3:.2f} ms",
    )
    return fr


def ablation_tile_sensitivity(
    depths: Sequence[int] = (2, 4, 8, 16, 32),
    cores: int = 24,
    machine: Optional[MachineSpec] = None,
) -> str:
    """§5.1: performance sensitivity to the time-tile depth (Heat-2D).

    Runs on a 1/4-linear Heat-2D (600², caches scaled to match) — the
    sensitivity shape is scale-free and small depths on the full grid
    would generate millions of tiny blocks.
    """
    shape = (600, 600)
    steps = 48
    machine = (machine or paper_machine()).scaled_caches(1 / 16)
    spec = get_stencil("heat2d")
    headers = ["b", "GStencil/s", "tasks", "barriers", "traffic GB"]
    rows = []
    from repro.machine.model import simulate

    for b in depths:
        lat = make_lattice(spec, shape, b,
                           core_widths=(1, max(1, 4 * b)))
        sched = tess_schedule(spec, shape, lat, steps, merged=True)
        r = simulate(spec, sched, machine, cores)
        rows.append([b, r.gstencils, len(sched.tasks), r.barriers,
                     r.traffic_gb])
    return format_table(headers, rows)


def validation_matrix(steps: int = 7) -> str:
    """Every scheme × every kernel, verified against the naive sweep.

    The cross-product safety net behind all experiments: every builder
    scheme × the 7 paper kernels, each run through the unified pipeline
    (:func:`repro.api.run` with ``verify=True``) and checked bit-level
    (integer kernels) or to fp tolerance on a small instance.
    """
    from repro.api import RunConfig, Session

    shapes = {1: (64,), 2: (22, 20), 3: (12, 11, 10)}
    kernels = ["heat1d", "1d5p", "heat2d", "2d9p", "life", "heat3d",
               "3d27p"]
    schemes = ["tess-unmerged", "tess", "diamond", "pochoir", "mwd",
               "hexagonal", "skewed", "overlapped", "naive"]
    headers = ["scheme"] + kernels
    rows = []
    for scheme in schemes:
        row = [scheme]
        for kernel in kernels:
            spec = get_stencil(kernel)
            shape = shapes[spec.ndim]
            b = 2 if spec.order > 1 else 3
            backend = ("baseline:overlapped" if scheme == "overlapped"
                       else "serial")
            cfg = RunConfig(scheme=scheme, shape=shape, steps=steps,
                            b=b, backend=backend, verify=True)
            row.append("ok" if Session(spec).run(cfg).ok else "FAIL")
        rows.append(row)
    return format_table(headers, rows)


def ablation_distributed(nodes: Sequence[int] = (1, 2, 4, 8),
                         machine: Optional[MachineSpec] = None) -> str:
    """§4.1 build-out: strong scaling of Heat-2D across cluster nodes."""
    from repro.distributed import ClusterSpec, simulate_distributed
    from repro.stencils.library import get_stencil

    machine = machine or paper_machine()
    spec = get_stencil("heat2d")
    shape = (2400, 2400)
    steps = 96
    lat = make_lattice(spec, shape, 32, core_widths=(1, 128))
    headers = ["nodes", "GStencil/s", "comm GB", "comm %", "speedup"]
    rows = []
    base = None
    for n in nodes:
        r = simulate_distributed(spec, shape, lat, steps,
                                 ClusterSpec(n, machine))
        if base is None:
            base = r.time_s
        rows.append([
            n, f"{r.gstencils:.2f}", f"{r.comm_bytes / 1e9:.3f}",
            f"{r.comm_fraction * 100:.1f}", f"{base / r.time_s:.2f}x",
        ])
    return format_table(headers, rows)


from repro.bench.resilience import resilience_overhead

#: Experiment registry for ``python -m repro.bench`` and the test-suite.
ALL_EXPERIMENTS: Dict[str, Callable] = {
    "table1": table1_properties,
    "table4": table4_problems,
    "fig8": fig8_1d,
    "fig9": fig9_life,
    "fig10": fig10_2d,
    "fig11": fig11_3d,
    "fig12": fig12_memory,
    "ablation-sync": ablation_sync_counts,
    "ablation-merge": ablation_merge,
    "ablation-tilesize": ablation_tile_sensitivity,
    "ablation-distributed": ablation_distributed,
    "validation": validation_matrix,
    "resilience": resilience_overhead,
}
