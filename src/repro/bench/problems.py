"""Benchmark problem configurations (paper Table 4, scaled).

The paper's problem sizes target hours of C/OpenMP execution on 24
cores; this substrate regenerates the figures through the simulated
machine.  Problems are scaled down with a *consistent* scaling rule
that preserves every ratio the figures depend on:

* grids shrink by a linear factor per axis, **tile sizes shrink with
  them** (so tiles-per-core and wavefront widths are preserved), and
* the machine's caches shrink by the same volume factor
  (``cache_scale``) via :meth:`repro.machine.spec.MachineSpec.scaled_caches`
  — so grid/LLC and tile/cache ratios match the paper's (a 128³ scaled
  grid must not suddenly fit the unscaled 60 MB of combined L3).

Compute and bandwidth rates stay unscaled; they set absolute time, not
the shapes.  Per-benchmark scale notes record the factors.

Blocking parameters map from Table 4 as follows: a Pluto diamond tile
of extent ``E`` corresponds to depth ``b = E/2``; the paper's 2D/3D
tessellation blockings (e.g. Heat-2D 128×256×64 = ``B_x × B_y × bt``)
have ``b_x = B_x − 2·bt = 0`` — i.e. a *uniform* x-axis — and a coarse
y-axis of core width ``B_y − 2·bt``; 3D blockings are ``B_x × B_y ×
bt`` with the unit-stride z axis left uncut (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class ProblemConfig:
    """One benchmark row of Table 4, scaled for this substrate."""

    name: str
    kernel: str
    paper_size: str          # as printed in Table 4
    shape: Tuple[int, ...]   # scaled spatial size
    steps: int               # scaled time steps
    cache_scale: float       # machine cache volume factor
    scale_note: str
    tess_b: int              # time-tile depth for the tessellation
    tess_core_widths: Tuple[int, ...]
    tess_uncut_dims: Tuple[int, ...]
    pluto_b: int             # diamond half-extent (Pluto tile / 2)
    pluto_cut_dims: Tuple[int, ...]
    pochoir_base_dt: int
    pochoir_base_widths: Tuple[int, ...]
    mwd_b: Optional[int] = None  # Girih depth (3D star only in the paper)
    mwd_chunks: int = 12


PROBLEMS: Dict[str, ProblemConfig] = {
    "heat1d": ProblemConfig(
        name="Heat-1D",
        kernel="heat1d",
        paper_size="12000000 x 4000",
        shape=(200_000,),
        steps=256,
        cache_scale=1 / 60,
        scale_note="N/60, T/15.6, caches/60; block 2000 -> b=64 uniform "
                   "(paper: same diamond code/size for ours and Pluto)",
        tess_b=64,
        tess_core_widths=(1,),
        tess_uncut_dims=(),
        pluto_b=64,
        pluto_cut_dims=(0,),
        pochoir_base_dt=5,
        pochoir_base_widths=(500,),
    ),
    "1d5p": ProblemConfig(
        name="1d5p",
        kernel="1d5p",
        paper_size="12000000 x 4000",
        shape=(200_000,),
        steps=256,
        cache_scale=1 / 60,
        scale_note="as Heat-1D; order-2 slope halves the usable depth",
        tess_b=32,
        tess_core_widths=(2,),
        tess_uncut_dims=(),
        pluto_b=32,
        pluto_cut_dims=(0,),
        pochoir_base_dt=5,
        pochoir_base_widths=(500,),
    ),
    "heat2d": ProblemConfig(
        name="Heat-2D",
        kernel="heat2d",
        paper_size="6000^2 x 2000",
        shape=(2400, 2400),
        steps=96,
        cache_scale=1.0,
        scale_note="N 2400^2 (> combined LLC), T/20.8, tiles and caches "
                   "UNSCALED (preserves surface/volume and cache ratios); "
                   "blocking 128x256x64 -> b=32, x uniform, y core 128",
        tess_b=32,
        tess_core_widths=(1, 128),
        tess_uncut_dims=(),
        pluto_b=32,
        pluto_cut_dims=(0, 1),
        pochoir_base_dt=5,
        pochoir_base_widths=(100, 100),
    ),
    "2d9p": ProblemConfig(
        name="2d9p",
        kernel="2d9p",
        paper_size="6000^2 x 2000",
        shape=(2400, 2400),
        steps=96,
        cache_scale=1.0,
        scale_note="as Heat-2D",
        tess_b=32,
        tess_core_widths=(1, 128),
        tess_uncut_dims=(),
        pluto_b=32,
        pluto_cut_dims=(0, 1),
        pochoir_base_dt=5,
        pochoir_base_widths=(100, 100),
    ),
    "life": ProblemConfig(
        name="Game of Life",
        kernel="life",
        paper_size="6000^2 x 2000",
        shape=(2400, 2400),
        steps=96,
        cache_scale=1.0,
        scale_note="as Heat-2D; paper Pluto blocking 128^3 -> b=64",
        tess_b=32,
        tess_core_widths=(1, 128),
        tess_uncut_dims=(),
        pluto_b=64,
        pluto_cut_dims=(0, 1),
        pochoir_base_dt=5,
        pochoir_base_widths=(100, 100),
    ),
    "heat3d": ProblemConfig(
        name="Heat-3D",
        kernel="heat3d",
        paper_size="256^3 x 1000",
        shape=(256, 256, 256),
        steps=48,
        cache_scale=1.0,
        scale_note="full 256^3 grid, T/20.8, tiles and caches UNSCALED; "
                   "blocking 24x24x12 = B_x x B_y x B_z with bt=6: cores "
                   "(12,12,1); Pluto 12^2 tiles -> b=6, z uncut",
        tess_b=6,
        tess_core_widths=(12, 12, 1),
        tess_uncut_dims=(),
        pluto_b=6,
        pluto_cut_dims=(0, 1),
        pochoir_base_dt=4,
        pochoir_base_widths=(16, 16, 128),
        mwd_b=12,
    ),
    "3d27p": ProblemConfig(
        name="3d27p",
        kernel="3d27p",
        paper_size="256^3 x 1000",
        shape=(256, 256, 256),
        steps=48,
        cache_scale=1.0,
        scale_note="as Heat-3D",
        tess_b=6,
        tess_core_widths=(12, 12, 1),
        tess_uncut_dims=(),
        pluto_b=6,
        pluto_cut_dims=(0, 1),
        pochoir_base_dt=4,
        pochoir_base_widths=(16, 16, 128),
    ),
}

#: Core counts swept in the scaling figures (paper: 1..24).
CORE_COUNTS = (1, 2, 4, 8, 12, 16, 20, 24)
