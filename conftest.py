"""Ensure the in-tree package is importable when running pytest.

Equivalent to ``pip install -e .``; kept so the test-suite runs in
environments where editable installs are unavailable (e.g. offline
machines without the ``wheel`` package).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
