"""Tessellation blocks and their per-step update rectangles.

A stage-``i`` block is identified by its set of *glued* dimensions
``S`` (``|S| = i``) and, per dimension, a base interval: a lattice
*plateau* for glued dimensions (the starting region of the block) or a
lattice *core* for ending dimensions.  At phase-local step ``s`` the
block updates the hyper-rectangle

* glued dims: base dilated by ``s·σ_j`` (the block grows from its
  starting region),
* ending dims: base dilated by ``(b-1-s)·σ_j`` (the block shrinks
  toward its ending region),

clipped to the domain — exactly the ``xmin``/``xmax`` bounds the
paper's artifact C code computes (§4.2, coarsened form).  Because every
per-step update set is a rectangle, a whole block step is one
vectorised :meth:`~repro.stencils.spec.StencilSpec.apply_region` call.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.core.profiles import Interval, TessLattice
from repro.stencils.spec import Region, region_size


@dataclass(frozen=True)
class TessBlock:
    """One tessellation block of one stage.

    Attributes
    ----------
    stage: number of glued dimensions ``i``.
    glued: the glued dimension set (sorted tuple).
    base: per-dimension base interval in extended coordinates —
        a plateau for glued dims, a core for ending dims.
    """

    stage: int
    glued: Tuple[int, ...]
    base: Tuple[Interval, ...]

    def region_at(self, s: int, b: int, slopes: Sequence[int],
                  shape: Sequence[int]) -> Region:
        """Clipped update rectangle at phase-local step ``s``."""
        if not 0 <= s < b:
            raise ValueError(f"local step {s} out of range for b={b}")
        out: List[Tuple[int, int]] = []
        gset = set(self.glued)
        for j, ((lo, hi), sig, n) in enumerate(zip(self.base, slopes, shape)):
            r = s * sig if j in gset else (b - 1 - s) * sig
            out.append((max(0, lo - r), min(int(n), hi + r)))
        return tuple(out)

    def bounding_box(self, b: int, slopes: Sequence[int],
                     shape: Sequence[int]) -> Region:
        """Union of all per-step rectangles (max dilation per dim)."""
        out: List[Tuple[int, int]] = []
        for (lo, hi), sig, n in zip(self.base, slopes, shape):
            r = (b - 1) * sig
            out.append((max(0, lo - r), min(int(n), hi + r)))
        return tuple(out)

    def total_points(self, b: int, slopes: Sequence[int],
                     shape: Sequence[int]) -> int:
        """Total point-updates this block performs in a full phase."""
        return sum(
            region_size(self.region_at(s, b, slopes, shape))
            for s in range(b)
        )


def enumerate_stage_blocks(lattice: TessLattice, stage: int,
                           slopes: Sequence[int]) -> Iterator[TessBlock]:
    """All stage-``stage`` blocks whose footprint touches the domain.

    Requires every axis profile to expose plateaus (non-empty gaps) —
    true for uniform/coarse/stretched profiles with the default
    periods.
    """
    d = lattice.ndim
    b = lattice.b
    shape = lattice.shape
    cores = [p.cores for p in lattice.profiles]
    plateaus = [p.plateaus() for p in lattice.profiles]
    for S in itertools.combinations(range(d), stage):
        gset = set(S)
        choices = [
            plateaus[j] if j in gset else cores[j] for j in range(d)
        ]
        if any(len(c) == 0 for c in choices):
            # an axis with no cores (uncut) never acts as an ending
            # dimension; an axis with no plateau never acts as glued —
            # this subset simply contributes no blocks
            continue
        for base in itertools.product(*choices):
            blk = TessBlock(stage=stage, glued=tuple(S), base=tuple(base))
            bbox = blk.bounding_box(b, slopes, shape)
            if region_size(bbox) == 0:
                continue
            yield blk


@dataclass(frozen=True)
class StagePlan:
    """All blocks of one stage of a phase (they run concurrently)."""

    stage: int
    blocks: Tuple[TessBlock, ...]


@dataclass(frozen=True)
class PhasePlan:
    """One full phase: stages ``0..d`` in order, barrier between each."""

    lattice: TessLattice
    slopes: Tuple[int, ...]
    stages: Tuple[StagePlan, ...]

    @property
    def b(self) -> int:
        return self.lattice.b

    def num_blocks(self) -> int:
        return sum(len(sp.blocks) for sp in self.stages)

    def num_barriers(self) -> int:
        """Synchronisations per phase (one after each stage)."""
        return len(self.stages)


def build_phase_plan(lattice: TessLattice,
                     slopes: Sequence[int]) -> PhasePlan:
    """Enumerate every stage's blocks for one phase of this lattice."""
    d = lattice.ndim
    stages = tuple(
        StagePlan(
            stage=i,
            blocks=tuple(enumerate_stage_blocks(lattice, i, slopes)),
        )
        for i in range(d + 1)
    )
    return PhasePlan(lattice=lattice, slopes=tuple(slopes), stages=stages)
