"""Stencil kernel substrate.

This subpackage defines the stencil abstraction used by every tiling
scheme in :mod:`repro`:

* :class:`~repro.stencils.spec.StencilSpec` — immutable description of a
  Jacobi stencil (dimensionality, neighbour offsets, slopes, boundary
  condition) plus the operator that applies one time step to a region.
* :mod:`~repro.stencils.library` — the seven benchmark kernels evaluated
  in the paper (Table 4): Heat-1D, 1d5p, Heat-2D, 2d9p, Game of Life,
  Heat-3D and 3d27p.
* :mod:`~repro.stencils.grid` — halo-padded grid allocation and
  initialisation helpers.
* :mod:`~repro.stencils.reference` — the naive full-grid reference sweep
  every tiled executor is validated against.
"""

from repro.stencils.spec import StencilSpec, Region, full_region
from repro.stencils.operators import (
    StencilOperator,
    LinearStencilOperator,
    GameOfLifeOperator,
)
from repro.stencils.library import (
    heat1d,
    d1p5,
    heat2d,
    d2p9,
    game_of_life,
    heat3d,
    d3p27,
    get_stencil,
    STENCIL_REGISTRY,
)
from repro.stencils.grid import Grid, make_grid
from repro.stencils.reference import reference_sweep, reference_step
from repro.stencils.staged import (
    LinearStage,
    Stage,
    StagedOperator,
    StagedSpec,
    canonical_spec,
    make_staged,
    split_linear_spec,
)
from repro.stencils.systems import (
    SYSTEM_REGISTRY,
    fdtd1d,
    fdtd2d,
    get_system,
    gray_scott,
    shallow_water,
    system_names,
)

__all__ = [
    "StencilSpec",
    "Region",
    "full_region",
    "StencilOperator",
    "LinearStencilOperator",
    "GameOfLifeOperator",
    "heat1d",
    "d1p5",
    "heat2d",
    "d2p9",
    "game_of_life",
    "heat3d",
    "d3p27",
    "get_stencil",
    "STENCIL_REGISTRY",
    "Grid",
    "make_grid",
    "reference_sweep",
    "reference_step",
    "Stage",
    "LinearStage",
    "StagedOperator",
    "StagedSpec",
    "canonical_spec",
    "make_staged",
    "split_linear_spec",
    "SYSTEM_REGISTRY",
    "fdtd1d",
    "fdtd2d",
    "get_system",
    "gray_scott",
    "shallow_water",
    "system_names",
]
