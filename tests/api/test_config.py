"""RunConfig: alias normalisation, validation, override semantics."""

import pytest

from repro.api import RunConfig
from repro.api.config import (
    BACKEND_ALIASES,
    ENGINE_ALIASES,
    normalize_backend,
    normalize_engine,
)

pytestmark = pytest.mark.api


class TestBackendAliases:
    @pytest.mark.parametrize("alias,canonical", sorted(BACKEND_ALIASES.items()))
    def test_alias_resolves(self, alias, canonical):
        assert normalize_backend(alias) == canonical

    def test_canonical_names_pass_through(self):
        from repro.api.backends import backend_names

        for name in backend_names():
            assert normalize_backend(name) == name

    def test_case_and_whitespace(self):
        assert normalize_backend("  Procs ") == "elastic"
        assert normalize_backend("SERIAL") == "serial"

    def test_every_alias_targets_a_registered_backend(self):
        from repro.api.backends import backend_names

        registered = set(backend_names())
        assert set(BACKEND_ALIASES.values()) <= registered


class TestEngineAliases:
    @pytest.mark.parametrize("alias,canonical", sorted(ENGINE_ALIASES.items()))
    def test_alias_resolves(self, alias, canonical):
        assert normalize_engine(alias) == canonical

    def test_unknown_engine_raises(self):
        with pytest.raises(ValueError, match="unknown engine"):
            normalize_engine("jit")


class TestNormalized:
    def test_resolves_aliases_and_tuples(self):
        cfg = RunConfig(backend="procs", engine="wallclock",
                        shape=[40, 40], mutations=["swap-groups@1"],
                        uncut_dims=[0]).normalized()
        assert cfg.backend == "elastic"
        assert cfg.engine == "compiled"
        assert cfg.shape == (40, 40)
        assert cfg.mutations == ("swap-groups@1",)
        assert cfg.uncut_dims == (0,)

    @pytest.mark.parametrize("kwargs", [
        {"steps": -1},
        {"threads": 0},
        {"ranks": 0},
        {"b": 0},
    ])
    def test_range_validation(self, kwargs):
        with pytest.raises(ValueError):
            RunConfig(**kwargs).normalized()

    def test_resilient_property(self):
        from repro.runtime import ResiliencePolicy

        assert not RunConfig().resilient
        assert RunConfig(resilience=ResiliencePolicy()).resilient


class TestOverrides:
    def test_known_fields(self):
        cfg = RunConfig().with_overrides({"backend": "threaded", "threads": 4})
        assert cfg.backend == "threaded"
        assert cfg.threads == 4

    def test_unknown_field_raises(self):
        with pytest.raises(ValueError, match="unknown RunConfig field"):
            RunConfig().with_overrides({"num_threads": 4})

    def test_empty_overrides_is_identity(self):
        cfg = RunConfig()
        assert cfg.with_overrides({}) is cfg

    def test_original_unchanged(self):
        cfg = RunConfig()
        cfg.with_overrides({"steps": 99})
        assert cfg.steps == 32


class TestTileParams:
    def test_distinct_tilings_distinct_keys(self):
        """Everything that changes the built schedule must feed the
        plan-cache identity."""
        base = RunConfig(b=4)
        assert base.tile_params() != RunConfig(b=8).tile_params()
        assert base.tile_params() != RunConfig(
            b=4, core_widths=(4, 8)).tile_params()
        assert base.tile_params() != RunConfig(
            b=4, mutations=("drop-action@0",)).tile_params()
        assert base.tile_params() == RunConfig(b=4).tile_params()
