"""Tile-size auto-tuning (the paper's stated ongoing work, §5.1/§6).

The tessellation has more free parameters than competing schemes (per
dimension: core width, period, phase; plus the time depth ``b``); the
paper notes performance "is very sensitive to the tile sizes" and
defers systematic tuning.  This package provides that missing piece
against the simulated machine:

* :func:`~repro.autotune.search.grid_search` — exhaustive sweep over a
  candidate set;
* :func:`~repro.autotune.search.tune_tessellation` — guided search
  (coordinate descent over ``b`` and per-axis core widths) returning
  the best lattice found.

Both accept ``objective="wallclock"`` to score candidates by measured
compiled-plan execution (via :mod:`repro.engine`) instead of the
machine model; repeated probes of one configuration hit the plan cache.
"""

from repro.autotune.search import (
    MeasuredResult,
    TuneResult,
    candidate_depths,
    grid_search,
    tune_tessellation,
)

__all__ = [
    "MeasuredResult",
    "TuneResult",
    "candidate_depths",
    "grid_search",
    "tune_tessellation",
]
