"""Literal transcription of the paper's 2D artifact code.

Same approach as :mod:`repro.core.paper1d`: the artifact's 2D kernel is
transcribed with its exact parameter set (``Bx``, ``By``, ``bt``,
``bx``, ``by``, ``ix``, ``iy``, the ``xnb*``/``ynb*`` block counts, the
``xleft*``/``ybottom*`` level-indexed anchors and the
``level = 1 - level`` alternation), with each innermost x/y loop nest
replaced by one vectorised region application.

The first loop nest walks the merged ``B_0``+``B_2`` three-dimensional
diamonds of a phase; the second walks the two ``B_1`` families (glued
along x, and glued along y).
"""

from __future__ import annotations

import numpy as np

from repro.stencils.grid import Grid
from repro.stencils.spec import StencilSpec


def _myabs(a: int, c: int) -> int:
    return abs(a - c)


def _ceild(a: int, b: int) -> int:
    """C-style ``ceild`` macro ``(a + b - 1) / b`` with trunc division."""
    v = a + b - 1
    q = abs(v) // b
    return q if v >= 0 else -q


def run_paper2d(
    spec: StencilSpec,
    grid: Grid,
    Bx: int,
    By: int,
    bt: int,
    steps: int,
    on_block=None,
) -> np.ndarray:
    """The artifact's 2D tessellation with block ``Bx × By`` depth ``bt``."""
    if spec.ndim != 2:
        raise ValueError("run_paper2d is the 2D artifact code")
    if spec.is_periodic:
        raise ValueError("the artifact implements non-periodic boundaries")
    xslope, yslope = spec.slopes
    nx, ny = grid.shape
    t_total = steps
    bx = Bx - 2 * (bt * xslope)
    by = By - 2 * (bt * yslope)
    if bx <= 0 or by <= 0:
        raise ValueError(
            f"Bx/By ({Bx},{By}) must exceed 2*bt*slope "
            f"({2 * bt * xslope},{2 * bt * yslope})"
        )

    # --- literal artifact setup -------------------------------------
    ix = Bx + bx
    iy = By + by
    xnb0 = _ceild(nx, ix)
    ynb0 = _ceild(ny, iy)
    xnb11 = _ceild(nx - ix // 2 + 1, ix) + 1
    ynb11 = ynb0
    xnb12 = xnb0
    ynb12 = 1 + _ceild(ny - iy // 2 + 1, iy)
    xnb2 = max(xnb11, xnb0)
    ynb2 = max(ynb12, ynb0)
    nb1 = [xnb12 * ynb12, xnb11 * ynb11]
    nb02 = [xnb2 * ynb2, xnb0 * ynb0]  # B_0 and B_2 merged to 3-d diamonds
    xnb1 = [xnb12, xnb11]
    xnb02 = [xnb2, xnb0]
    xleft02 = [xslope - bx, xslope + (Bx - bx) // 2]
    ybottom02 = [yslope - by, yslope + (By - by) // 2]
    xleft11 = [xslope + (Bx - bx) // 2, xslope - bx]
    ybottom11 = [yslope - (By + by) // 2, yslope]
    xleft12 = [xslope - (Bx + bx) // 2, xslope]
    ybottom12 = [yslope + (By - by) // 2, yslope - by]
    level = 1

    def update(t: int, xmin: int, xmax: int, ymin: int, ymax: int) -> int:
        if xmax <= xmin or ymax <= ymin:
            return 0
        region = ((xmin - xslope, xmax - xslope), (ymin - yslope, ymax - yslope))
        spec.apply_region(grid.at(t), grid.at(t + 1), region)
        return (xmax - xmin) * (ymax - ymin)

    tt = -bt
    while tt < t_total:
        # merged B_0 + B_2 diamonds
        for n in range(nb02[level]):
            pts = 0
            for t in range(max(tt, 0), min(tt + 2 * bt, t_total)):
                ab = _myabs(t + 1, tt + bt)
                xmin = max(
                    xslope,
                    xleft02[level] + (n % xnb02[level]) * ix
                    - bt * xslope + ab * xslope,
                )
                xmax = min(
                    nx + xslope,
                    xleft02[level] + (n % xnb02[level]) * ix
                    + bx + bt * xslope - ab * xslope,
                )
                ymin = max(
                    yslope,
                    ybottom02[level] + (n // xnb02[level]) * iy
                    - bt * yslope + ab * yslope,
                )
                ymax = min(
                    ny + yslope,
                    ybottom02[level] + (n // xnb02[level]) * iy
                    + by + bt * yslope - ab * yslope,
                )
                pts += update(t, xmin, xmax, ymin, ymax)
            if on_block is not None and pts:
                on_block(tt, "b02", level, n, pts)
        # the two B_1 families
        for n in range(nb1[0] + nb1[1]):
            pts = 0
            for t in range(tt + bt, min(tt + 2 * bt, t_total)):
                dt = t + 1 - tt - bt
                if n < nb1[level]:
                    xmin = max(
                        xslope,
                        xleft11[level] + (n % xnb1[level]) * ix - dt * xslope,
                    )
                    xmax = min(
                        nx + xslope,
                        xleft11[level] + (n % xnb1[level]) * ix
                        + bx + dt * xslope,
                    )
                    ymin = max(
                        yslope,
                        ybottom11[level] + (n // xnb1[level]) * iy + dt * yslope,
                    )
                    ymax = min(
                        ny + yslope,
                        ybottom11[level] + (n // xnb1[level]) * iy
                        + By - dt * yslope,
                    )
                else:
                    m = n - nb1[level]
                    xmin = max(
                        xslope,
                        xleft12[level] + (m % xnb1[1 - level]) * ix + dt * xslope,
                    )
                    xmax = min(
                        nx + xslope,
                        xleft12[level] + (m % xnb1[1 - level]) * ix
                        + Bx - dt * xslope,
                    )
                    ymin = max(
                        yslope,
                        ybottom12[level] + (m // xnb1[1 - level]) * iy
                        - dt * yslope,
                    )
                    ymax = min(
                        ny + yslope,
                        ybottom12[level] + (m // xnb1[1 - level]) * iy
                        + by + dt * yslope,
                    )
                pts += update(t, xmin, xmax, ymin, ymax)
            if on_block is not None and pts:
                on_block(tt, "b1", level, n, pts)
        level = 1 - level
        tt += bt
    return grid.interior(t_total)
