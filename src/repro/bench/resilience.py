"""Checkpoint-cadence overhead measurement (ISSUE 1).

Checkpointing at every barrier group minimises replay work after a
failure but pays one buffer-pair copy per group; long intervals
amortise the copies but replay more groups on restore.  This
experiment quantifies the trade-off on the real NumPy substrate:
wall-clock of :func:`~repro.runtime.resilience.execute_resilient`
across cadences, relative to the plain sequential executor, plus the
measured replay cost of one injected late-group fault per cadence.
"""

from __future__ import annotations

import time
from typing import Sequence, Tuple

from repro.bench.report import format_table
from repro.core import make_lattice
from repro.core.schedules import tess_schedule
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.runtime.resilience import ResiliencePolicy, _execute_resilient
from repro.runtime.schedule import _execute_schedule
from repro.stencils.grid import Grid
from repro.stencils.library import get_stencil


def _time_run(fn, repeats: int = 3) -> Tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def resilience_overhead(
    kernel: str = "heat2d",
    shape: Tuple[int, ...] = (160, 160),
    steps: int = 24,
    b: int = 4,
    cadences: Sequence[int] = (1, 2, 4, 8, 0),
    repeats: int = 3,
) -> str:
    """Table: checkpoint cadence vs overhead and recovery cost."""
    spec = get_stencil(kernel)
    lattice = make_lattice(spec, shape, b)
    sched = tess_schedule(spec, shape, lattice, steps, merged=True)
    groups = sched.num_groups

    base_s, _ = _time_run(
        lambda: _execute_schedule(spec, Grid(spec, shape, seed=0), sched),
        repeats)

    # a transient crash in the last group maximises replay distance
    late = groups - 1
    rows = []
    for cadence in cadences:
        policy = ResiliencePolicy(checkpoint_interval=cadence)

        clean_s, (out, rep) = _time_run(
            lambda: _execute_resilient(
                spec, Grid(spec, shape, seed=0), sched, policy=policy),
            repeats)

        def faulty():
            plan = FaultPlan([FaultSpec("corrupt", group=late, task=0)])
            return _execute_resilient(
                spec, Grid(spec, shape, seed=0), sched, policy=policy,
                fault_plan=plan)

        fault_s, (fout, frep) = _time_run(faulty, repeats)
        rows.append([
            cadence if cadence else "init-only",
            rep.checkpoints_taken,
            f"{clean_s * 1e3:.1f}",
            f"{(clean_s / base_s - 1) * 100:+.1f}%",
            f"{(rep.checkpoint_seconds + rep.guard_seconds) * 1e3:.1f}",
            f"{fault_s * 1e3:.1f}",
            frep.restores,
        ])
    header = (f"checkpoint cadence — {kernel} {shape} x{steps} steps, "
              f"b={b}, {groups} groups; sequential baseline "
              f"{base_s * 1e3:.1f} ms (best of {repeats})")
    table = format_table(
        ["every N groups", "ckpts", "clean ms", "overhead",
         "ckpt+guard ms", "1-fault ms", "restores"],
        rows)
    return f"{header}\n{table}"
