"""Command-line interface: ``python -m repro <command> ...``.

Every command routes through the unified pipeline in :mod:`repro.api`
(``Session``/``RunConfig``/backend registry — see
``docs/architecture.md``).

Commands
--------
* ``run``    — execute a kernel with a chosen tiling scheme, verify
  against the naive sweep and report wall-clock + schedule stats;
  ``--backend`` picks the executor explicitly (default ``auto``
  resolves it from the other flags), ``--engine compiled`` lowers the
  schedule to a cached compiled plan (:mod:`repro.engine`) instead of
  walking it action by action;
* ``show``   — render the space-time diagram of a 1D schedule
  (the paper's Figure 1, in ASCII);
* ``tune``   — auto-tune tessellation tile sizes; ``--engine naive``
  scores on the simulated machine, ``--engine compiled`` times each
  candidate's compiled plan (``--objective simulate|wallclock`` is the
  historical spelling, kept as a hidden alias);
* ``dist``   — §4.1: verified multi-rank execution plus an α–β
  cluster strong-scaling estimate; ``--backend distributed`` (default)
  is the in-process simulator, ``--backend elastic`` the real rank
  processes (heartbeats, checksummed exchanges, crash recovery — see
  ``docs/distributed.md``); ``--procs N`` is the historical spelling
  of ``--backend elastic --ranks N``, kept as a hidden alias;
* ``table``  — print the paper's Table 1 for a given dimension;
* ``bench``  — forward to :mod:`repro.bench` (regenerate figures);
* ``sanitize`` — structural schedule sanitizer: prove tessellation,
  ping-pong dependence legality and intra-group race freedom for a
  scheme (or the distributed plan with ``--ranks``) without executing
  it; ``--mutate kind@group[/task]`` plants a seeded bug first;
* ``serve``  — run the durable job runtime (crash-safe journal +
  supervisor + HTTP front, :mod:`repro.service`) over a store
  directory;
* ``submit`` / ``status`` / ``result`` — client side of the job
  runtime: journal a job (``--url`` posts to a running ``serve``,
  ``--root`` journals directly into a store; ``--wait`` drains it in
  place), poll its state, fetch its sealed result.  See
  ``docs/serving.md``.

``run`` and ``dist`` take ``--resilient``/``--fail-fast`` plus
``--inject kind@group[/task][xN]`` fault specs (see
``docs/resilience.md``), ``--sanitize`` to refuse structurally
illegal schedules before execution (see ``docs/sanitizer.md``), and
the QoS flags ``--deadline SECONDS`` / ``--fallback a,b,...`` (see
``docs/reliability.md``).
Errors map to distinct exit codes instead of tracebacks:
1 = numerical mismatch, 2 = usage/:class:`ValueError` (including
:class:`~repro.runtime.qos.AdmissionRejected`),
3 = :class:`ExecutionError` (including :class:`RunCancelled`),
4 = :class:`GuardViolation` (invariant
guard / ghost-band divergence), 5 = :class:`SanitizerViolation`
(structurally illegal schedule), 6 = :class:`RankLostError` (rank
process lost, respawn budget spent), 7 = :class:`ExchangeTimeoutError`
(boundary band never arrived within the retry budget),
8 = :class:`ChecksumMismatchError` (band payload kept failing its CRC),
9 = :class:`RunDeadlineExceeded` (the ``--deadline`` budget expired
and no fallback backend finished in time),
10 = :class:`QueueSaturated` (the job queue refused a submission —
back off and retry), 11 = :class:`JobNotFound` (``status``/``result``
for an unknown job id), 12 = :class:`WorkerCrashed` (a job killed its
isolated worker — segfault/OOM/SIGKILL — and was quarantined as
``poisoned`` after exhausting its crash budget).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.api.builder import SCHEMES
from repro.runtime.errors import (
    EXIT_CHECKSUM,
    EXIT_DEADLINE,
    EXIT_EXCHANGE_TIMEOUT,
    EXIT_EXECUTION,
    EXIT_GUARD,
    EXIT_JOB_NOT_FOUND,
    EXIT_QUEUE_SATURATED,
    EXIT_RANK_LOST,
    EXIT_SANITIZER,
    EXIT_USAGE,
    EXIT_WORKER_CRASHED,
    ChecksumMismatchError,
    ExchangeTimeoutError,
    ExecutionError,
    GuardViolation,
    JobNotFound,
    QueueSaturated,
    RankLostError,
    RunDeadlineExceeded,
    SanitizerViolation,
    WorkerCrashed,
)

__all__ = ["main", "SCHEMES"]


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Tessellating Stencils (SC'17) reproduction toolkit",
    )
    sub = p.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a kernel with a tiling scheme")
    run.add_argument("kernel", nargs="?", default=None,
                     help="heat1d|1d5p|heat2d|2d9p|life|heat3d|3d27p "
                     "(or a staged system name — same as --system)")
    run.add_argument("--system", default=None, metavar="NAME",
                     help="staged system workload "
                     "(fdtd1d|fdtd2d|shallow_water|gray_scott, aliases "
                     "accepted); the whole macro-step runs through the "
                     "chosen tiling scheme")
    run.add_argument("--shape", type=int, nargs="+", default=None,
                     help="grid extents (default: kernel-appropriate)")
    run.add_argument("--steps", type=int, default=32)
    run.add_argument("--scheme", default="tess", choices=SCHEMES)
    run.add_argument("-b", "--depth", type=int, default=8,
                     help="time-tile depth b")
    run.add_argument("--threads", type=int, default=1)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--batch", type=int, default=1, metavar="N",
                     help="run N independent instances (seeded seed.."
                     "seed+N-1) as one stacked batch on the 'batched' "
                     "backend; one compiled plan serves all N")
    run.add_argument("--backend", default="auto", metavar="NAME",
                     help="executor backend (serial|threaded|resilient|"
                     "compiled|baseline:*); 'auto' resolves from "
                     "--threads/--resilient/--inject/--engine")
    run.add_argument("--engine", default="naive",
                     choices=["naive", "compiled"],
                     help="execution engine: 'naive' walks the schedule "
                     "action by action; 'compiled' lowers it to a cached "
                     "CompiledPlan (precomputed slices, fused/batched "
                     "kernels — see docs/performance.md)")
    _add_resilience_args(run)
    _add_sanitizer_args(run)
    _add_qos_args(run)
    run.add_argument("--checkpoint-every", type=int, default=1,
                     metavar="N", help="checkpoint every N barrier "
                     "groups in --resilient mode (0 = initial only)")
    run.add_argument("--retries", type=int, default=2,
                     help="per-task retry budget in --resilient mode")

    show = sub.add_parser("show", help="space-time diagram of a 1D schedule")
    show.add_argument("--scheme", default="tess",
                      choices=["naive", "tess", "tess-unmerged", "diamond",
                               "pochoir", "mwd"])
    show.add_argument("-n", type=int, default=48)
    show.add_argument("--steps", type=int, default=12)
    show.add_argument("-b", "--depth", type=int, default=4)
    show.add_argument("--width", type=int, default=96)

    tune = sub.add_parser("tune", help="auto-tune tessellation tile sizes")
    tune.add_argument("kernel")
    tune.add_argument("--shape", type=int, nargs="+", default=None)
    tune.add_argument("--steps", type=int, default=32)
    tune.add_argument("--cores", type=int, default=24)
    tune.add_argument("--engine", default=None,
                      choices=["naive", "compiled"],
                      help="'naive' scores on the machine model; "
                      "'compiled' times each candidate's compiled plan "
                      "(probes share the plan cache)")
    # historical spelling of --engine, kept as a hidden alias
    tune.add_argument("--objective", default=None,
                      choices=["simulate", "wallclock"],
                      help=argparse.SUPPRESS)
    tune.add_argument("--repeat", type=int, default=3,
                      help="min-of-k repeats per wallclock probe")

    dist = sub.add_parser("dist", help="distributed run + cluster estimate")
    dist.add_argument("kernel")
    dist.add_argument("--shape", type=int, nargs="+", default=None)
    dist.add_argument("--steps", type=int, default=16)
    dist.add_argument("-b", "--depth", type=int, default=4)
    dist.add_argument("--backend", default="distributed", metavar="NAME",
                      help="'distributed' = in-process rank simulator "
                      "(default); 'elastic' = real rank processes with "
                      "heartbeats, checksummed exchanges and crash "
                      "recovery")
    dist.add_argument("--ranks", type=int, default=4)
    dist.add_argument("--nodes", type=int, nargs="+", default=[1, 2, 4, 8])
    # historical spelling of --backend elastic --ranks N, hidden alias
    dist.add_argument("--procs", type=int, default=None, metavar="N",
                      help=argparse.SUPPRESS)
    dist.add_argument("--heartbeat-ms", type=float, default=20.0,
                      help="worker heartbeat period for the elastic "
                      "backend (default 20 ms)")
    dist.add_argument("--max-retries", type=int, default=3,
                      help="per-message retransmit budget for the "
                      "elastic backend")
    dist.add_argument("--max-respawns", type=int, default=2,
                      help="per-rank respawn budget for the elastic "
                      "backend in --resilient mode")
    _add_resilience_args(dist)
    _add_qos_args(dist)
    dist.add_argument("--ghost", type=int, default=None,
                      help="override the exchanged ghost-band width "
                      "(the divergence detector still validates the "
                      "required width)")
    dist.add_argument("--check-divergence", action="store_true",
                      help="run the ghost-band divergence detector "
                      "(implied by --resilient)")
    dist.add_argument("--sanitize", action="store_true",
                      help="ghost-band-aware structural pre-flight: "
                      "refuse an illegal plan (e.g. an under-sized "
                      "--ghost) before executing it (exit 5)")

    san = sub.add_parser(
        "sanitize",
        help="prove tessellation/dependence/race invariants of a scheme",
    )
    san.add_argument("scheme", choices=SCHEMES + ["all"],
                     help="scheme to sanitize ('all' = every scheme)")
    san.add_argument("--kernel", default="heat1d",
                     help="heat1d|1d5p|heat2d|2d9p|life|heat3d|3d27p")
    san.add_argument("--shape", type=int, nargs="+", default=None)
    san.add_argument("--steps", type=int, default=16)
    san.add_argument("-b", "--depth", type=int, default=4)
    san.add_argument("--mutate", action="append", default=[],
                     metavar="SPEC",
                     help="plant a seeded bug before sanitizing: "
                     "kind@group[/task], kind in "
                     "drop-action|shift-region|merge-groups (repeatable)")
    san.add_argument("--ranks", type=int, default=None,
                     help="sanitize the distributed (rank-local) plan "
                     "over N ranks instead of the shared-memory schedule "
                     "(tessellation only)")
    san.add_argument("--ghost", type=int, default=None,
                     help="ghost-band width override to validate with "
                     "--ranks")
    san.add_argument("-v", "--verbose", action="store_true",
                     help="list every violation, not just the first")

    table = sub.add_parser("table", help="print Table 1 properties")
    table.add_argument("--max-dim", type=int, default=6)
    table.add_argument("-b", "--depth", type=int, default=4)

    bench = sub.add_parser("bench", help="regenerate paper experiments")
    bench.add_argument("names", nargs="*", help="experiment ids (default all)")

    serve = sub.add_parser(
        "serve", help="durable job runtime: journal + supervisor + HTTP")
    serve.add_argument("--root", required=True,
                       help="store directory (journal, results, "
                       "checkpoints, leases); reopening it recovers")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642,
                       help="HTTP port (0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="bound on waiting jobs; a full queue "
                       "refuses with exit 10 / HTTP 429")
    serve.add_argument("--max-pending-mb", type=float, default=None,
                       help="bound on the queued jobs' summed admission "
                       "estimates")
    serve.add_argument("--checkpoint-every", type=int, default=0,
                       metavar="STEPS",
                       help="seal a resume checkpoint every N time "
                       "steps (0 = only journal-level restart)")
    serve.add_argument("--retries", type=int, default=2,
                       help="default per-job retry budget for "
                       "transient failures")
    serve.add_argument("--no-fsync", action="store_true",
                       help="skip fsync on journal appends (tests "
                       "only; forfeits the power-loss guarantee)")
    serve.add_argument("--isolation", default=None,
                       choices=["thread", "process"],
                       help="run jobs in-thread (default, zero "
                       "overhead) or in sandboxed worker child "
                       "processes (crash containment, exit 12)")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="on SIGTERM, wait this long for in-flight "
                       "jobs to finish before asking them to stop at "
                       "their next checkpoint")
    serve.add_argument("--max-worker-crashes", type=int, default=3,
                       help="quarantine a job as failed/'poisoned' "
                       "after it crashes this many workers")
    serve.add_argument("--max-batch", type=int, default=1, metavar="N",
                       help="coalesce up to N queued jobs that differ "
                       "only by seed into one stacked batched run "
                       "(thread isolation only; 1 disables)")

    submit = sub.add_parser(
        "submit", help="journal a job (to a server or a store dir)")
    submit.add_argument("kernel",
                        help="heat1d|1d5p|heat2d|2d9p|life|heat3d|3d27p")
    _add_client_args(submit)
    submit.add_argument("--shape", type=int, nargs="+", default=None)
    submit.add_argument("--steps", type=int, default=32)
    submit.add_argument("--scheme", default="tess", choices=SCHEMES)
    submit.add_argument("-b", "--depth", type=int, default=8)
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--backend", default="serial", metavar="NAME")
    submit.add_argument("--engine", default="auto",
                        choices=["auto", "naive", "compiled"])
    submit.add_argument("--threads", type=int, default=1)
    submit.add_argument("--verify", action="store_true",
                        help="verify against the naive sweep server-side")
    _add_qos_args(submit)
    submit.add_argument("--priority", type=int, default=0,
                        help="higher runs first")
    submit.add_argument("--max-retries", type=int, default=None,
                        help="override the server's retry budget")
    submit.add_argument("--max-queued", type=int, default=None,
                        help="(--root mode) refuse with exit 10 if this "
                        "many jobs are already queued")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job is terminal; with "
                        "--root, drain the store in-process")
    submit.add_argument("--isolation", default=None,
                        choices=["thread", "process"],
                        help="(--root --wait mode) isolation of the "
                        "in-process drain supervisor")
    submit.add_argument("--max-worker-crashes", type=int, default=3,
                        help="(--root --wait mode) poison-quarantine "
                        "budget of the drain supervisor")
    submit.add_argument("--timeout", type=float, default=300.0,
                        help="--wait budget in seconds")

    status = sub.add_parser("status", help="job state (or store summary)")
    status.add_argument("job_id", nargs="?", default=None,
                        help="job id (omit to list all jobs)")
    _add_client_args(status)

    result = sub.add_parser("result", help="fetch a sealed job result")
    result.add_argument("job_id")
    _add_client_args(result)
    result.add_argument("--out", default=None, metavar="FILE.npy",
                        help="save the interior array")
    result.add_argument("--no-stats", action="store_true",
                        help="skip the run-stats summary")
    return p


def _add_client_args(sub: argparse.ArgumentParser) -> None:
    where = sub.add_mutually_exclusive_group(required=True)
    where.add_argument("--url", default=None,
                       help="base URL of a running 'repro serve'")
    where.add_argument("--root", default=None,
                       help="operate on a store directory directly")


def _add_resilience_args(sub: argparse.ArgumentParser) -> None:
    mode = sub.add_mutually_exclusive_group()
    mode.add_argument("--resilient", action="store_true",
                      help="enable retries, checkpoint/restart and "
                      "invariant guards")
    mode.add_argument("--fail-fast", action="store_true",
                      help="die on the first failure with a structured "
                      "error (default)")
    sub.add_argument("--inject", action="append", default=[],
                     metavar="SPEC",
                     help="inject a deterministic fault: "
                     "kind@group[/task][xN], kind in "
                     "crash|corrupt|stall|drop|garble (shared-memory / "
                     "simulated paths) or kill_rank|stall_rank|drop_msg|"
                     "flip_bits (elastic process runtime) (repeatable)")


def _add_qos_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--deadline", type=float, default=None,
                     metavar="SECONDS",
                     help="run-level deadline: abort at the next "
                     "cooperative boundary once the budget is spent "
                     "(exit 9; see docs/reliability.md)")
    sub.add_argument("--fallback", default=None, metavar="A,B,...",
                     help="comma-separated backend chain to degrade to "
                     "when the primary backend refuses, loses a rank "
                     "for good or blows the deadline (e.g. "
                     "'threaded,serial'); hops are recorded in the "
                     "run stats")


def _qos_policy(args):
    """Build the QoSPolicy from --deadline/--fallback (None when unused)."""
    fallback = tuple(
        name.strip() for name in (args.fallback or "").split(",")
        if name.strip()
    )
    if args.deadline is None and not fallback:
        return None
    from repro.runtime.qos import QoSPolicy

    return QoSPolicy(deadline_s=args.deadline, fallback=fallback)


def _add_sanitizer_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--sanitize", action="store_true",
                     help="structural pre-flight: refuse a schedule with "
                     "tessellation/dependence/race violations (exit 5)")
    sub.add_argument("--mutate", action="append", default=[],
                     metavar="SPEC",
                     help="plant a seeded schedule bug: kind@group[/task], "
                     "kind in drop-action|shift-region|merge-groups "
                     "(repeatable; for exercising --sanitize)")


def _fault_plan(args):
    from repro.runtime.faults import FaultPlan

    return FaultPlan.parse(args.inject) if args.inject else None


def _build_schedule(spec, shape, steps, scheme, b):
    """Deprecated shim: schedule construction lives in the pipeline's
    :class:`~repro.api.builder.ScheduleBuilder` now."""
    from repro.api import RunConfig, ScheduleBuilder

    cfg = RunConfig(scheme=scheme, shape=tuple(shape), steps=steps, b=b)
    return ScheduleBuilder().build(spec, cfg.normalized()).schedule


def _resolve_run_backend(args, config, sched, fault_plan) -> str:
    """Replicate the historical executor precedence for ``--backend auto``.

    Injection/resilience wins (the resilient executor subsumes
    fail-fast via a zero-budget policy), then the thread pool, then the
    compiled engine; ghost-zone (private-task) schedules fall through
    to the overlapped executor, everything else to the sequential
    walker.
    """
    from repro.api import normalize_backend

    backend = normalize_backend(args.backend)
    if backend != "auto":
        return backend
    if ((args.resilient or fault_plan is not None)
            and not sched.private_tasks):
        return "resilient"
    if args.threads > 1 and not sched.private_tasks:
        return "threaded"
    if config.engine == "compiled":
        return "compiled"
    if sched.private_tasks:
        return "baseline:overlapped"
    return "serial"


def cmd_run(args) -> int:
    from repro import get_stencil
    from repro.api import RunConfig, Session
    from repro.runtime import ResiliencePolicy, schedule_stats

    if args.kernel is None and args.system is None:
        print("error: give a kernel name or --system NAME", file=sys.stderr)
        return 2
    if args.kernel is not None and args.system is not None:
        print("error: give either a kernel or --system, not both",
              file=sys.stderr)
        return 2
    spec = get_stencil(args.system if args.kernel is None else args.kernel)
    fault_plan = _fault_plan(args)
    config = RunConfig(
        shape=tuple(args.shape) if args.shape else None,
        steps=args.steps, seed=args.seed,
        scheme=args.scheme, b=args.depth,
        mutations=tuple(args.mutate),
        engine=args.engine, threads=args.threads,
        sanitize=args.sanitize, verify=True,
        fault_plan=fault_plan, qos=_qos_policy(args),
    ).normalized()
    session = Session(spec)
    shape = config.shape or session.default_shape()

    if args.mutate:
        print(f"mutating: {', '.join(args.mutate)}")
    built = session.build(config, shape)
    sched = built.schedule
    st = schedule_stats(sched)
    print(spec.describe())
    print(f"scheme={args.scheme} shape={shape} steps={args.steps} "
          f"b={args.depth}")
    print(f"tasks={st['tasks']} barriers={st['groups']} "
          f"redundancy={st['redundancy'] * 100:.1f}%")

    if args.batch > 1:
        return _run_batch(args, session, config, shape)

    backend = _resolve_run_backend(args, config, sched, fault_plan)
    overrides = {"backend": backend}
    if backend == "compiled":
        overrides["engine"] = "compiled"
    if backend == "resilient":
        if args.resilient:
            overrides["resilience"] = ResiliencePolicy(
                max_task_retries=args.retries,
                checkpoint_interval=args.checkpoint_every,
            )
        else:
            # fail-fast with injection: no retries, no restarts — the
            # guards still turn silent corruption into a loud exit 4
            overrides["resilience"] = ResiliencePolicy(
                max_task_retries=0, max_group_restarts=0,
                checkpoint_interval=0)
        if fault_plan is not None:
            print(f"injecting: {fault_plan.describe()}")
    config = config.with_overrides(overrides)

    result = session.execute(None, sched, config=config,
                             lattice=built.lattice, params=built.params)
    stats = result.stats
    for hop in stats.degradations:
        print(f"degraded: {hop['from']} -> {hop['to']} ({hop['error']})")
    if args.sanitize and result.sanitizer is not None:
        print(f"sanitizer: {result.sanitizer.describe()}")
    if result.plan is not None and stats.engine == "compiled":
        print(f"engine: compiled — {result.plan.stats.describe()}")
    if stats.resilience is not None:
        print(f"resilience: {stats.resilience.describe()}")
    secs = stats.phases.get("execute", 0.0)
    pts = 1
    for n in shape:
        pts *= n
    ok = bool(stats.verified)
    rate = pts * args.steps / secs / 1e6 if secs > 0 else 0.0
    print(f"wall clock: {secs * 1e3:.1f} ms  ({rate:.1f} MStencil/s)")
    print(f"verified against naive sweep: {'OK' if ok else 'MISMATCH'}")
    return 0 if ok else 1


def _run_batch(args, session, config, shape) -> int:
    """``repro run --batch N``: N instances as one stacked batch."""
    batch_config = config.with_overrides({
        "backend": "batched", "engine": "compiled",
        "shape": tuple(shape), "batch": args.batch,
    })
    results = session.run_many(batch_config)
    stats = results[0].stats
    for hop in stats.degradations:  # pragma: no cover - no fallback path
        print(f"degraded: {hop['from']} -> {hop['to']} ({hop['error']})")
    if results[0].plan is not None:
        print(f"engine: compiled — {results[0].plan.stats.describe()}")
    for i, res in enumerate(results):
        status = "OK" if res.stats.verified else "MISMATCH"
        print(f"instance {i} (seed {config.seed + i}): "
              f"verified {status}")
    secs = stats.phases.get("execute", 0.0)
    pts = 1
    for n in shape:
        pts *= n
    ok = all(bool(r.stats.verified) for r in results)
    rate = (pts * args.steps * len(results) / secs / 1e6
            if secs > 0 else 0.0)
    print(f"wall clock: {secs * 1e3:.1f} ms for {len(results)} "
          f"instances  ({rate:.1f} MStencil/s aggregate)")
    print(f"verified against naive sweep: {'OK' if ok else 'MISMATCH'}")
    return 0 if ok else 1


def cmd_show(args) -> int:
    from repro import get_stencil
    from repro.runtime.spacetime import render_spacetime

    spec = get_stencil("heat1d")
    sched = _build_schedule(spec, (args.n,), args.steps, args.scheme,
                            args.depth)
    print(f"space-time diagram — {args.scheme}, N={args.n}, "
          f"T={args.steps}, b={args.depth} (glyph = barrier group)")
    print(render_spacetime(sched, width=args.width))
    return 0


def cmd_tune(args) -> int:
    from repro import get_stencil
    from repro.api import ScheduleBuilder
    from repro.autotune import tune_tessellation
    from repro.machine import paper_machine

    spec = get_stencil(args.kernel)
    shape = (tuple(args.shape) if args.shape
             else ScheduleBuilder().default_shape(spec))
    # --objective is the historical spelling; the canonical --engine
    # maps naive -> simulate, compiled -> wallclock
    objective = args.objective
    if objective is None:
        objective = ("wallclock" if args.engine == "compiled"
                     else "simulate")
    machine = paper_machine().scaled_caches(0.05)
    best = tune_tessellation(spec, shape, args.steps, machine, args.cores,
                             objective=objective, repeat=args.repeat)
    print(f"best configuration: {best.describe()}")
    if objective == "wallclock":
        from repro.engine.cache import default_cache

        st = default_cache().stats
        print(f"plan cache: {st.hits} hit(s), {st.misses} miss(es), "
              f"{st.compile_seconds * 1e3:.0f} ms compiling")
    return 0


def cmd_dist(args) -> int:
    from repro import get_stencil
    from repro.api import RunConfig, Session, normalize_backend
    from repro.bench.report import format_table
    from repro.distributed import ClusterSpec, simulate_distributed
    from repro.machine import paper_machine

    spec = get_stencil(args.kernel)
    shape = tuple(args.shape) if args.shape else {
        1: (400,), 2: (64, 64), 3: (20, 20, 20)
    }[spec.ndim]
    backend = normalize_backend(args.backend)
    if args.procs is not None:
        backend = "elastic"
    if backend not in ("distributed", "elastic"):
        raise ValueError(
            f"dist runs backend 'distributed' or 'elastic', got "
            f"{backend!r}"
        )
    fault_plan = _fault_plan(args)
    if fault_plan is not None:
        print(f"injecting: {fault_plan.describe()}")

    config = RunConfig(
        shape=shape, steps=args.steps, scheme="tess", b=args.depth,
        backend=backend, verify=True, sanitize=args.sanitize,
        fault_plan=fault_plan, ghost=args.ghost, qos=_qos_policy(args),
    )
    if backend == "elastic":
        from repro.distributed import ElasticConfig, RetryPolicy

        ranks = args.procs if args.procs is not None else args.ranks
        # without --resilient, every recovery budget is zero: the first
        # rank loss / exhausted exchange dies with its typed exit code
        config = config.with_overrides({
            "ranks": ranks,
            "elastic": ElasticConfig(
                heartbeat_s=args.heartbeat_ms / 1e3,
                heartbeat_timeout_s=max(1.0, 50 * args.heartbeat_ms / 1e3),
                retry=RetryPolicy(max_retries=args.max_retries),
                max_respawns=args.max_respawns if args.resilient else 0,
                max_phase_restarts=4 if args.resilient else 0,
            ),
        })
        kind = "rank process(es)"
    else:
        from repro.runtime import ResiliencePolicy

        ranks = args.ranks
        config = config.with_overrides({
            "ranks": ranks,
            "check_divergence": args.check_divergence,
            "resilience": ResiliencePolicy() if args.resilient else None,
        })
        kind = "simulated ranks"

    result = Session(spec).run(config)
    comm = result.stats.comm
    ok = bool(result.stats.verified)
    for hop in result.stats.degradations:
        print(f"degraded: {hop['from']} -> {hop['to']} "
              f"({hop['error']}: {hop['detail']})")
    if comm is not None:
        print(f"{ranks} {kind} on {shape}: "
              f"{'verified OK' if ok else 'MISMATCH'}; "
              f"{comm.messages} messages, {comm.bytes_sent} bytes")
        if comm.had_faults:
            print(f"resilience: {comm.describe_resilience()}")
    else:
        # the fallback chain landed on a shared-memory backend
        print(f"{result.stats.backend} fallback on {shape}: "
              f"{'verified OK' if ok else 'MISMATCH'}")
    rows = []
    base = None
    for n in args.nodes:
        r = simulate_distributed(spec, shape, result.lattice, args.steps,
                                 ClusterSpec(n, paper_machine()))
        base = base or r.time_s
        rows.append([n, f"{r.gstencils:.2f}",
                     f"{r.comm_fraction * 100:.1f}%",
                     f"{base / r.time_s:.2f}x"])
    print(format_table(["nodes", "GStencil/s", "comm share", "speedup"],
                       rows))
    return 0 if ok else 1


def cmd_sanitize(args) -> int:
    from repro import get_stencil, make_lattice
    from repro.api import RunConfig, Session
    from repro.runtime import sanitize_distributed_plan, sanitize_schedule

    spec = get_stencil(args.kernel)
    shape = tuple(args.shape) if args.shape else {
        1: (400,), 2: (64, 64), 3: (20, 20, 20)
    }[spec.ndim]

    if args.ranks is not None:
        if args.scheme not in ("tess", "all"):
            raise ValueError(
                "--ranks sanitizes the distributed tessellation plan; "
                "use scheme 'tess'"
            )
        lat = make_lattice(spec, shape, args.depth)
        report = sanitize_distributed_plan(
            spec, lat, args.steps, args.ranks, ghost=args.ghost,
        )
        reports = [("tess-distributed", report)]
    else:
        schemes = SCHEMES if args.scheme == "all" else [args.scheme]
        session = Session(spec)
        reports = []
        for scheme in schemes:
            cfg = RunConfig(scheme=scheme, shape=shape, steps=args.steps,
                            b=args.depth, mutations=tuple(args.mutate))
            sched = session.build(cfg).schedule
            reports.append((scheme, sanitize_schedule(spec, sched)))

    worst = None
    for scheme, report in reports:
        print(f"{scheme}: {report.describe()}")
        if args.verbose:
            for v in report.violations:
                print(f"  - {v.describe()}")
        if not report.ok and worst is None:
            worst = (scheme, report)
    if worst is not None:
        raise SanitizerViolation(worst[0], worst[1].violations)
    return 0


def cmd_table(args) -> int:
    from repro.bench.experiments import table1_properties

    print(table1_properties(max_dim=args.max_dim, b=args.depth))
    return 0


def cmd_bench(args) -> int:
    from repro.bench.__main__ import main as bench_main

    return bench_main(args.names)


# -- the durable job runtime (repro.service) --------------------------

def _supervisor_config(args):
    from repro.service import SupervisorConfig

    kwargs = dict(
        workers=args.workers,
        queue_depth=args.queue_depth,
        max_pending_bytes=(int(args.max_pending_mb * 1e6)
                           if args.max_pending_mb is not None else None),
        checkpoint_steps=args.checkpoint_every,
        default_max_retries=args.retries,
        max_worker_crashes=args.max_worker_crashes,
        drain_timeout_s=args.drain_timeout,
        max_batch=getattr(args, "max_batch", 1),
    )
    if args.isolation is not None:
        # None keeps the config default (REPRO_ISOLATION env or thread)
        kwargs["isolation"] = args.isolation
    return SupervisorConfig(**kwargs)


def cmd_serve(args) -> int:
    import signal
    import threading

    from repro.service import JobStore, ServiceFront, Supervisor

    store = JobStore(args.root, fsync=not args.no_fsync)
    sup = Supervisor(store, _supervisor_config(args))
    recovery = sup.start()
    print(f"recovered store {store.root}: {recovery.describe()}")
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    with ServiceFront(sup, host=args.host, port=args.port) as front:
        print(f"serving on {front.url} "
              f"(workers={args.workers} queue={args.queue_depth} "
              f"isolation={sup.config.isolation} "
              f"checkpoint_every={args.checkpoint_every})")
        sys.stdout.flush()
        try:
            while not stop.wait(0.2):
                pass
        except KeyboardInterrupt:
            pass
        # graceful drain: the front keeps serving (new submissions get
        # 503 {"state": "draining"}, reads still answer) while
        # in-flight jobs finish — or stop at their next checkpoint and
        # requeue, journaled, for the next incarnation
        print("draining: refusing new submissions...")
        sys.stdout.flush()
        clean = sup.drain(args.drain_timeout)
    print("drained cleanly" if clean else
          "drain timed out; in-flight work requeued at its last "
          "checkpoint")
    sup.stop()
    store.close()
    return 0


def _submit_config(args) -> dict:
    from repro.api import RunConfig

    return RunConfig(
        shape=tuple(args.shape) if args.shape else None,
        steps=args.steps, seed=args.seed,
        scheme=args.scheme, b=args.depth,
        backend=args.backend, engine=args.engine,
        threads=args.threads, verify=args.verify,
        qos=_qos_policy(args),
    ).normalized().to_json()


def cmd_submit(args) -> int:
    config = _submit_config(args)
    if args.url is not None:
        from repro.service import job_status, submit_job

        out = submit_job(args.url, args.kernel, config,
                         priority=args.priority,
                         max_retries=args.max_retries)
        print(f"job {out['job_id']} {out['state']} "
              f"({'new' if out['created'] else 'deduplicated'})")
        if args.wait:
            import time as _time

            deadline = _time.monotonic() + args.timeout
            while _time.monotonic() < deadline:
                st = job_status(args.url, out["job_id"])
                if st["state"] in ("done", "failed", "cancelled"):
                    print(f"job {out['job_id']} {st['state']}"
                          + (f": {st['error']}" if st.get("error") else ""))
                    if st["state"] == "done":
                        return 0
                    if st.get("error_kind") in ("poisoned",
                                                "WorkerCrashed"):
                        return EXIT_WORKER_CRASHED
                    return EXIT_EXECUTION
                _time.sleep(0.2)
            print(f"job {out['job_id']} still "
                  f"{st['state']} after {args.timeout:.0f}s",
                  file=sys.stderr)
            return EXIT_EXECUTION
        return 0

    from repro.service import JobStore, QUEUED, Supervisor, SupervisorConfig

    with JobStore(args.root) as store:
        if args.max_queued is not None:
            queued = len(store.jobs(state=QUEUED))
            if queued >= args.max_queued:
                raise QueueSaturated(queued, args.max_queued)
        job, created = store.submit(
            args.kernel, config, priority=args.priority,
            max_retries=(args.max_retries if args.max_retries is not None
                         else 2))
        print(f"job {job.job_id} {job.state} "
              f"({'new' if created else 'deduplicated'})")
        if not args.wait:
            return 0
        # drain in place: a short-lived supervisor owns the store
        cfg_kwargs = dict(workers=1,
                          max_worker_crashes=args.max_worker_crashes)
        if args.isolation is not None:
            cfg_kwargs["isolation"] = args.isolation
        sup = Supervisor(store, SupervisorConfig(**cfg_kwargs))
        sup.start()
        try:
            job = sup.wait(job.job_id, timeout=args.timeout)
        finally:
            sup.stop()
        print(f"job {job.job_id} {job.state}"
              + (f": {job.error}" if job.error else ""))
        if job.state == "done":
            return 0
        if job.error_kind in ("poisoned", "WorkerCrashed"):
            return EXIT_WORKER_CRASHED
        return EXIT_EXECUTION


def cmd_status(args) -> int:
    import json as _json

    if args.url is not None:
        from repro.service import job_status, server_metrics

        if args.job_id is None:
            print(_json.dumps(server_metrics(args.url), indent=2,
                              default=str))
            return 0
        print(_json.dumps(job_status(args.url, args.job_id), indent=2))
        return 0
    from repro.service import JobStore

    with JobStore(args.root) as store:
        if args.job_id is None:
            for job in store.jobs():
                print(f"{job.job_id}  {job.state:<9} "
                      f"attempts={job.attempts} kernel={job.kernel}")
            return 0
        print(_json.dumps(store.get(args.job_id).to_json(), indent=2))
        return 0


def cmd_result(args) -> int:
    import numpy as np

    if args.url is not None:
        from repro.service import job_result

        out = job_result(args.url, args.job_id)
        if out.get("state") != "done":
            print(f"job {args.job_id} is {out.get('state')}, not done"
                  + (f" ({out.get('error_detail')})"
                     if out.get("error_detail") else ""),
                  file=sys.stderr)
            return EXIT_EXECUTION
        interior, stats = out["interior"], out["stats"]
    else:
        from repro.service import JobStore

        with JobStore(args.root) as store:
            job = store.get(args.job_id)
            if job.state != "done":
                print(f"job {args.job_id} is {job.state}, not done"
                      + (f" ({job.error})" if job.error else ""),
                      file=sys.stderr)
                return EXIT_EXECUTION
            interior, stats = store.load_result(args.job_id)
    print(f"job {args.job_id}: interior {interior.shape} "
          f"{interior.dtype}, checksum {float(np.sum(interior)):.6g}")
    if not args.no_stats:
        secs = stats.get("phases", {}).get("execute", 0.0)
        print(f"backend={stats.get('backend')} "
              f"steps={stats.get('steps')} "
              f"execute={secs * 1e3:.1f} ms "
              f"resumed={'yes' if any(e.get('kind') == 'resume' for e in stats.get('events', [])) else 'no'}")
    if args.out:
        with open(args.out, "wb") as fh:
            np.save(fh, interior, allow_pickle=False)
        print(f"saved {args.out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    cmd = {
        "run": cmd_run,
        "show": cmd_show,
        "tune": cmd_tune,
        "dist": cmd_dist,
        "sanitize": cmd_sanitize,
        "table": cmd_table,
        "bench": cmd_bench,
        "serve": cmd_serve,
        "submit": cmd_submit,
        "status": cmd_status,
        "result": cmd_result,
    }[args.command]
    try:
        return cmd(args)
    except SanitizerViolation as e:
        print(f"sanitizer violation: {e}", file=sys.stderr)
        for v in e.violations:
            print(f"  - {v.describe()}", file=sys.stderr)
        return EXIT_SANITIZER
    except GuardViolation as e:
        print(f"guard violation: {e}", file=sys.stderr)
        return EXIT_GUARD
    except RankLostError as e:
        print(f"rank lost: {e}", file=sys.stderr)
        return EXIT_RANK_LOST
    except ExchangeTimeoutError as e:
        print(f"exchange timeout: {e}", file=sys.stderr)
        return EXIT_EXCHANGE_TIMEOUT
    except ChecksumMismatchError as e:
        print(f"checksum mismatch: {e}", file=sys.stderr)
        return EXIT_CHECKSUM
    except RunDeadlineExceeded as e:
        print(f"deadline exceeded: {e}", file=sys.stderr)
        return EXIT_DEADLINE
    except WorkerCrashed as e:
        print(f"worker crashed: {e}", file=sys.stderr)
        return EXIT_WORKER_CRASHED
    except ExecutionError as e:
        print(f"execution failed: {e}", file=sys.stderr)
        return EXIT_EXECUTION
    except QueueSaturated as e:
        print(f"queue saturated: {e}", file=sys.stderr)
        return EXIT_QUEUE_SATURATED
    except JobNotFound as e:
        print(f"job not found: {e}", file=sys.stderr)
        return EXIT_JOB_NOT_FOUND
    except (ValueError, KeyError) as e:
        msg = e.args[0] if e.args else e
        print(f"error: {msg}", file=sys.stderr)
        return EXIT_USAGE


if __name__ == "__main__":
    raise SystemExit(main())
