"""Naive sweep baseline: one full-grid update per barrier group.

The (d+1)-loop implementation from the paper's introduction: the outer
loop walks time, the inner loops the whole grid.  For parallel
execution each step is chunked into slabs along the first axis; one
barrier per time step, no temporal reuse — the bandwidth-bound
baseline every tiling scheme is measured against.
"""

from __future__ import annotations

from typing import Sequence

from repro.runtime.schedule import RegionAction, RegionSchedule
from repro.stencils.spec import StencilSpec


def naive_schedule(
    spec: StencilSpec,
    shape: Sequence[int],
    steps: int,
    chunks: int = 1,
) -> RegionSchedule:
    """``steps`` naive sweeps, each split into ``chunks`` slabs.

    Slabs split the first axis as evenly as possible; a slab is one
    task, each time step is one barrier group.
    """
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    if chunks < 1:
        raise ValueError(f"chunks must be >= 1, got {chunks}")
    shape = tuple(int(n) for n in shape)
    if len(shape) != spec.ndim:
        raise ValueError(f"shape rank {len(shape)} != ndim {spec.ndim}")
    if any(n == 0 for n in shape):
        # empty interior: nothing to update, a valid empty schedule
        return RegionSchedule(scheme="naive", shape=shape, steps=steps)
    n0 = shape[0]
    chunks = min(chunks, n0)
    bounds = [round(k * n0 / chunks) for k in range(chunks + 1)]
    rest = tuple((0, n) for n in shape[1:])
    sched = RegionSchedule(scheme="naive", shape=shape, steps=steps)
    for t in range(steps):
        for k in range(chunks):
            lo, hi = bounds[k], bounds[k + 1]
            if hi <= lo:
                continue
            sched.add(
                t,
                [RegionAction(t=t, region=((lo, hi),) + rest)],
                label=f"t{t}:slab{k}",
            )
    return sched
