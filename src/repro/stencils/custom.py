"""Custom stencil builders beyond the seven paper benchmarks.

The tessellation framework handles "all kinds of Jacobi stencils"
(§3.6); these builders construct them:

* :func:`custom_star` / :func:`custom_box` — arbitrary dimension and
  order with distance-classed coefficients;
* :func:`anisotropic_star` — different order per axis (the per-axis
  slopes the coarsened lattice of §4.2 is designed around);
* :func:`variable_coefficient` — per-point coefficient fields
  (heterogeneous-media heat equations), implemented as a dedicated
  operator that all executors consume unchanged.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.stencils.operators import StencilOperator, _region_slices
from repro.stencils.spec import StencilSpec


def _classed_coeffs(offsets, weights_by_class: Dict[int, float]):
    coeffs = []
    for off in offsets:
        cls = sum(1 for c in off if c != 0)
        if cls not in weights_by_class:
            raise ValueError(
                f"no weight for offset class {cls} (offset {off})"
            )
        coeffs.append(weights_by_class[cls])
    return coeffs


def custom_star(ndim: int, order: int,
                center: float = 0.5,
                neighbor: float | None = None,
                boundary: str = "dirichlet") -> StencilSpec:
    """Star stencil of arbitrary dimension and order.

    Neighbour weights default to splitting ``1 - center`` equally so a
    constant field stays fixed (stability).
    """
    from repro.stencils.operators import LinearStencilOperator, star_offsets

    offsets = star_offsets(ndim, order)
    taps = len(offsets) - 1
    if neighbor is None:
        neighbor = (1.0 - center) / taps
    coeffs = [center] + [neighbor] * taps
    op = LinearStencilOperator(offsets, coeffs)
    return StencilSpec(f"star{ndim}d-o{order}", ndim, op, shape="star",
                       boundary=boundary)


def custom_box(ndim: int, order: int = 1,
               weights_by_class: Dict[int, float] | None = None,
               boundary: str = "dirichlet") -> StencilSpec:
    """Box stencil with per-distance-class weights.

    ``weights_by_class[k]`` weights offsets with ``k`` non-zero
    components; defaults normalise to a mass-conserving average.
    """
    from repro.stencils.operators import LinearStencilOperator, box_offsets

    offsets = box_offsets(ndim, order)
    if weights_by_class is None:
        # count offsets per class, split mass 50% centre / 50% rest
        counts: Dict[int, int] = {}
        for off in offsets:
            cls = sum(1 for c in off if c != 0)
            counts[cls] = counts.get(cls, 0) + 1
        weights_by_class = {0: 0.5}
        others = len(offsets) - 1
        for cls in counts:
            if cls != 0:
                weights_by_class[cls] = 0.5 / others
    coeffs = _classed_coeffs(offsets, weights_by_class)
    op = LinearStencilOperator(offsets, coeffs)
    return StencilSpec(f"box{ndim}d-o{order}", ndim, op, shape="box",
                       boundary=boundary)


def anisotropic_star(orders: Sequence[int], center: float = 0.5,
                     boundary: str = "dirichlet") -> StencilSpec:
    """Star stencil with a different order along each axis.

    E.g. ``orders=(2, 1)``: 2nd order in x, 1st in y — the per-axis
    slopes exercise the anisotropic supernode handling of §3.6.
    """
    from repro.stencils.operators import LinearStencilOperator

    ndim = len(orders)
    if ndim < 1 or any(o < 1 for o in orders):
        raise ValueError(f"bad orders {orders}")
    offsets = [(0,) * ndim]
    for j, o in enumerate(orders):
        for k in range(1, o + 1):
            for sgn in (-1, 1):
                off = [0] * ndim
                off[j] = sgn * k
                offsets.append(tuple(off))
    taps = len(offsets) - 1
    coeffs = [center] + [(1.0 - center) / taps] * taps
    op = LinearStencilOperator(offsets, coeffs)
    name = "aniso" + "x".join(str(o) for o in orders)
    return StencilSpec(name, ndim, op, shape="star", boundary=boundary)


class VariableCoefficientOperator(StencilOperator):
    """Per-point coefficient fields: ``dst[x] = Σ_k C_k[x] · src[x+o_k]``.

    ``coeff_fields`` maps each offset to a full-interior-shaped array.
    Used for heterogeneous media; the tessellation machinery is
    oblivious to it (the operator contract is unchanged).
    """

    def __init__(self, offsets, coeff_fields: Sequence[np.ndarray]):
        super().__init__(offsets)
        if len(coeff_fields) != len(self.offsets):
            raise ValueError("one coefficient field per offset required")
        shapes = {f.shape for f in coeff_fields}
        if len(shapes) != 1:
            raise ValueError("coefficient fields must share one shape")
        self.coeff_fields = [np.asarray(f, dtype=np.float64)
                             for f in coeff_fields]
        self.field_shape = coeff_fields[0].shape
        if len(self.field_shape) != self.ndim:
            raise ValueError("coefficient field rank != offset rank")

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(np.float64)

    @property
    def flops_per_point(self) -> int:
        return 2 * len(self.offsets) - 1

    def apply(self, src, dst, region, halo) -> None:
        out = dst[_region_slices(region, halo, (0,) * self.ndim)]
        core = tuple(slice(lo, hi) for lo, hi in region)
        first = True
        for off, field in zip(self.offsets, self.coeff_fields):
            view = src[_region_slices(region, halo, off)]
            c = field[core]
            if first:
                np.multiply(view, c, out=out)
                first = False
            else:
                out += view * c

    def apply_wrapped(self, src: np.ndarray) -> np.ndarray:
        if src.shape != self.field_shape:
            raise ValueError("periodic apply needs full-grid input")
        acc = np.zeros_like(src)
        for off, field in zip(self.offsets, self.coeff_fields):
            acc += field * np.roll(src, shift=[-o for o in off],
                                   axis=range(self.ndim))
        return acc


def variable_coefficient(
    ndim: int,
    shape: Sequence[int],
    rng_seed: int = 0,
    boundary: str = "dirichlet",
) -> StencilSpec:
    """A heterogeneous-media heat stencil on a fixed interior shape.

    Coefficients form a random mass-conserving average per point
    (positive weights summing to 1), so constant fields stay fixed.
    """
    from repro.stencils.operators import star_offsets

    shape = tuple(int(n) for n in shape)
    offsets = star_offsets(ndim, 1)
    rng = np.random.default_rng(rng_seed)
    raw = rng.random((len(offsets),) + shape) + 0.1
    raw /= raw.sum(axis=0, keepdims=True)
    op = VariableCoefficientOperator(offsets, list(raw))
    return StencilSpec(f"varcoef{ndim}d", ndim, op, shape="star",
                       boundary=boundary)
