"""Run-level QoS: deadlines, cooperative cancellation, admission control.

PRs 1–4 made a *single run* survive injected faults; this module bounds
the run itself.  A caller attaches a :class:`QoSPolicy` to
:class:`~repro.api.config.RunConfig` and the Session pipeline enforces
it end-to-end:

* **admission** — before any buffer is allocated,
  :func:`estimate_peak_bytes` sizes the run's peak buffer footprint
  from the spec/shape/backend family and :func:`admit` refuses with a
  typed :class:`AdmissionRejected` when it exceeds
  ``max_memory_bytes``;
* **deadline** — the pipeline arms a :class:`RunBudget` (one
  ``time.monotonic`` anchor per run attempt) and every executor calls
  :meth:`RunBudget.check` at its entry and at each cooperative
  boundary (barrier group, time-tiled phase, coordinator poll), so all
  backends honour the same wall-clock budget and stop with buffers and
  checkpoint temp dirs clean;
* **cancellation** — a shared :class:`CancelToken` trips the same
  check points; unlike a deadline it is never retried by the fallback
  chain (:mod:`repro.api.fallback`).

The zero-overhead contract: a run with no policy attached carries
``budget=None`` through every signature and executes the exact pre-QoS
code path — the only added work is one ``is not None`` test per
boundary, guarded by ``benchmarks/bench_qos.py``.

Distinct clocks, deliberately: the per-task soft
:class:`~repro.runtime.errors.DeadlineExceeded` and the resilient
executor's :class:`~repro.runtime.errors.StallTimeoutError` belong to
one executor's *recovery policy*; the :class:`RunBudget` belongs to the
*caller* and outranks both.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np

from repro.runtime.errors import RunCancelled, RunDeadlineExceeded

__all__ = [
    "AdmissionRejected",
    "CancelToken",
    "QoSPolicy",
    "RunBudget",
    "admit",
    "estimate_peak_bytes",
]


class AdmissionRejected(ValueError):
    """The admission check refused a run before buffer allocation.

    A :class:`ValueError` (usage exit code 2): the caller asked for a
    run whose estimated peak footprint exceeds the policy's
    ``max_memory_bytes`` — nothing was allocated, nothing executed.
    The estimate is an order-of-magnitude model (see
    :func:`estimate_peak_bytes`), so the error carries both sides for
    the caller to reason about.
    """

    def __init__(self, backend: str, estimated_bytes: int,
                 limit_bytes: int):
        self.backend = backend
        self.estimated_bytes = estimated_bytes
        self.limit_bytes = limit_bytes
        super().__init__(
            f"admission rejected for backend {backend!r}: estimated peak "
            f"buffer footprint {estimated_bytes} B exceeds the policy "
            f"limit {limit_bytes} B"
        )


class CancelToken:
    """Thread-safe cooperative cancellation flag.

    Create one, attach it to a :class:`QoSPolicy`, hand the policy to a
    run, and call :meth:`cancel` from any thread; the run stops at its
    next budget check point with :class:`RunCancelled`.  One token may
    bound several runs (cancel-all), and it stays tripped across
    fallback hops — cancellation is a caller decision, so the fallback
    chain never retries it.
    """

    __slots__ = ("_event",)

    def __init__(self):
        self._event = threading.Event()

    def cancel(self) -> None:
        """Trip the token (idempotent, callable from any thread)."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "live"
        return f"<CancelToken {state}>"


@dataclass(frozen=True)
class QoSPolicy:
    """The caller's bounds on one run.

    ``deadline_s``
        Wall-clock budget per run *attempt*; each fallback hop re-arms
        a fresh budget.  Expiry raises
        :class:`~repro.runtime.errors.RunDeadlineExceeded` (CLI exit
        code 9).
    ``cancel_token``
        Shared cooperative cancellation flag; tripping it raises
        :class:`~repro.runtime.errors.RunCancelled` at the next check
        point and is never retried.
    ``max_memory_bytes``
        Admission ceiling on the estimated peak buffer footprint;
        exceeding it raises :class:`AdmissionRejected` before any
        allocation.
    ``fallback``
        Backend names to degrade to, in order, when the primary
        refuses (:class:`~repro.api.backends.BackendUnsupported`),
        dies for good (:class:`~repro.runtime.errors.RankLostError`
        after respawn exhaustion), is refused admission, or blows its
        deadline.  Every hop is recorded in
        ``RunStats.degradations``.
    """

    deadline_s: Optional[float] = None
    cancel_token: Optional[CancelToken] = None
    max_memory_bytes: Optional[int] = None
    fallback: Tuple[str, ...] = ()

    def normalized(self) -> "QoSPolicy":
        """Validated copy with canonical fallback backend names."""
        from repro.api.backends import get_backend

        if self.deadline_s is not None and not self.deadline_s > 0:
            raise ValueError(
                f"deadline_s must be > 0, got {self.deadline_s}")
        if (self.max_memory_bytes is not None
                and not self.max_memory_bytes > 0):
            raise ValueError(
                f"max_memory_bytes must be > 0, got "
                f"{self.max_memory_bytes}")
        # resolve each fallback name through the registry now, so a
        # typo'd chain is a usage error up front, not a surprise at
        # degradation time
        return replace(
            self,
            fallback=tuple(get_backend(n).name for n in self.fallback),
        )


class RunBudget:
    """One run attempt's armed wall clock + cancel token.

    Armed (``time.monotonic`` anchored) by the Session pipeline at the
    start of each run attempt and threaded as ``budget=None`` default
    through every executor; :meth:`check` is the single cooperative
    check point everybody calls.  Cancellation outranks the deadline:
    a tripped token raises :class:`RunCancelled` even when the
    deadline also expired, so the fallback chain (which retries
    deadline expiry but never cancellation) sees the caller's intent.
    """

    __slots__ = ("deadline_s", "token", "_t0")

    def __init__(self, deadline_s: Optional[float] = None,
                 token: Optional[CancelToken] = None):
        self.deadline_s = deadline_s
        self.token = token
        self._t0 = time.monotonic()

    @classmethod
    def from_policy(cls, policy: Optional[QoSPolicy]) -> Optional["RunBudget"]:
        """Arm a budget, or None when the policy needs no clock."""
        if policy is None:
            return None
        if policy.deadline_s is None and policy.cancel_token is None:
            return None
        return cls(policy.deadline_s, policy.cancel_token)

    def elapsed(self) -> float:
        return time.monotonic() - self._t0

    def remaining(self) -> Optional[float]:
        """Seconds left on the deadline (None = unbounded)."""
        if self.deadline_s is None:
            return None
        return self.deadline_s - self.elapsed()

    def expired(self) -> bool:
        return (self.deadline_s is not None
                and self.elapsed() > self.deadline_s)

    def cancelled(self) -> bool:
        return self.token is not None and self.token.cancelled

    def check(self, where: str = "") -> None:
        """Raise at a cooperative boundary if the budget is spent."""
        if self.token is not None and self.token.cancelled:
            raise RunCancelled(where)
        if self.deadline_s is not None:
            elapsed = self.elapsed()
            if elapsed > self.deadline_s:
                raise RunDeadlineExceeded(where, elapsed, self.deadline_s)


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------

#: extra ping-pong *pairs* each backend family keeps beyond the grid's
#: own pair: the resilient executor checkpoints both buffers; the
#: distributed simulator replicates the full pair per rank; the
#: elastic runtime additionally ships an init pair to the workers.
_EXTRA_PAIRS = {
    "resilient": lambda config: 1,
    "distributed": lambda config: max(1, config.ranks),
    "elastic": lambda config: 1 + max(1, config.ranks),
    # a batched run holds N member pairs plus the one stacked [N, ...]
    # pair they are copied into: 2N pairs total, of which the grid's
    # own pair is already counted
    "batched": lambda config: 2 * max(1, getattr(config, "batch", 1)) - 1,
}


def estimate_peak_bytes(spec, shape, config) -> int:
    """Order-of-magnitude peak buffer footprint of one run.

    Counts halo-padded ping-pong buffer *pairs*: the grid always owns
    one pair; backend families add checkpoint/replica pairs
    (:data:`_EXTRA_PAIRS`); ghost-zone (overlapped) schedules double
    the total for private task storage; ``verify=True`` adds a
    snapshot copy plus a reference-sweep pair.  Deliberately a model,
    not an accounting: admission exists to refuse runs that are *far*
    over budget before touching the allocator, so a factor-of-two
    estimate with a clear derivation beats a brittle exact count.
    """
    shape = tuple(int(n) for n in shape)
    cells = 1
    for n in spec.padded_shape(shape):
        cells *= int(n)
    itemsize = np.dtype(spec.dtype).itemsize
    pairs = 1 + _EXTRA_PAIRS.get(config.backend, lambda c: 0)(config)
    if config.scheme == "overlapped":
        pairs *= 2
    if config.verify:
        pairs += 2
    return 2 * pairs * cells * itemsize


def admit(spec, shape, config) -> int:
    """Admission check: raise :class:`AdmissionRejected` over budget.

    Returns the estimate (bytes) for recording.  A config with no
    policy or no ``max_memory_bytes`` ceiling admits everything
    without estimating.
    """
    policy = config.qos
    if policy is None or policy.max_memory_bytes is None:
        return 0
    estimate = estimate_peak_bytes(spec, shape, config)
    if estimate > policy.max_memory_bytes:
        raise AdmissionRejected(config.backend, estimate,
                                policy.max_memory_bytes)
    return estimate
