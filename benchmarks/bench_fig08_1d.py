"""Figure 8 — Heat-1D and 1d5p performance vs cores.

Paper claims (§5.2): all three schemes scale linearly in 1D; ours is
comparable to Pluto (identical diamond code and block size) and better
than Pochoir (dynamic trapezoidal blocking).
"""

from conftest import BENCH_CORES, render_result

from repro.bench.experiments import fig8_1d


def test_fig8(benchmark, capsys):
    results = benchmark.pedantic(
        fig8_1d, kwargs={"cores": BENCH_CORES}, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(render_result(results))
    for fr in results:
        t24 = fr.at("tess", 24)
        t1 = fr.at("tess", 1)
        # near-linear scaling of the tessellation
        assert t24.gstencils / t1.gstencils > 12
        # identical diamond structure: tess within a few % of pluto
        pl = fr.at("pluto", 24)
        assert 0.8 <= t24.gstencils / pl.gstencils <= 1.25
        # ahead of the dynamically blocked cache-oblivious code
        po = fr.at("pochoir", 24)
        assert t24.gstencils >= 0.95 * po.gstencils
