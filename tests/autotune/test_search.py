"""Tests for the tile-size auto-tuner."""

import pytest

from repro.autotune import (
    candidate_depths,
    grid_search,
    tune_tessellation,
)
from repro.machine.spec import laptop_machine, paper_machine
from repro.stencils import d1p5, heat1d, heat2d


class TestCandidateDepths:
    def test_powers_of_two_capped_by_geometry(self):
        ds = candidate_depths((64,), steps=64, slopes=(1,))
        assert ds == [2, 4, 8, 16]

    def test_capped_by_steps(self):
        ds = candidate_depths((1000,), steps=4, slopes=(1,))
        assert max(ds) <= 4

    def test_slope_halves_cap(self):
        d1 = candidate_depths((64,), 64, (1,))
        d2 = candidate_depths((64,), 64, (2,))
        assert max(d2) <= max(d1)

    def test_never_empty(self):
        assert candidate_depths((4,), 1, (1,)) == [1]


class TestGridSearch:
    def test_returns_sorted_best_first(self):
        spec = heat1d()
        res = grid_search(spec, (2048,), 32, laptop_machine(), 4)
        assert len(res) >= 2
        times = [r.time_s for r in res]
        assert times == sorted(times)

    def test_respects_depth_list(self):
        spec = heat1d()
        res = grid_search(spec, (2048,), 32, laptop_machine(), 4,
                          depths=[4])
        assert {r.b for r in res} == {4}

    def test_describe(self):
        spec = heat1d()
        res = grid_search(spec, (1024,), 16, laptop_machine(), 2)
        assert "GStencil/s" in res[0].describe()

    def test_order2_kernel(self):
        spec = d1p5()
        res = grid_search(spec, (2048,), 16, laptop_machine(), 2)
        assert res, "no feasible configuration found for order-2 kernel"


class TestTuner:
    def test_tuned_at_least_as_good_as_grid(self):
        spec = heat2d()
        m = paper_machine().scaled_caches(0.05)
        coarse = grid_search(spec, (256, 256), 16, m, 8)
        best = tune_tessellation(spec, (256, 256), 16, m, 8)
        assert best.time_s <= coarse[0].time_s * (1 + 1e-9)

    def test_tuner_beats_bad_depth(self):
        """Autotuned config beats the paper-noted sensitivity: an
        untuned extreme depth is measurably worse."""
        from repro.autotune.search import _evaluate

        spec = heat2d()
        m = paper_machine().scaled_caches(0.05)
        best = tune_tessellation(spec, (256, 256), 32, m, 8)
        worst = _evaluate(spec, (256, 256), 32, m, 8, b=2,
                          core_widths=(1, 1), merged=True)
        assert best.time_s < worst.time_s

    def test_tiny_problem_still_feasible(self):
        # a 4-point grid admits the trivial b=1 tessellation
        spec = heat1d()
        best = tune_tessellation(spec, (4,), 1, laptop_machine(), 1)
        assert best.b == 1

    def test_infeasible_raises(self):
        # zero steps -> no tasks in any configuration
        spec = heat1d()
        with pytest.raises(ValueError):
            tune_tessellation(spec, (32,), 0, laptop_machine(), 1)
