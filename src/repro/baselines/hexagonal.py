"""Hexagonal tiling (Grosser et al. [16, 18]) — §2.1 "Hybrid tiling".

Grosser's hexagonal tiling "extends the classic diamond tiling by
stretching the tiles along the space dimension": instead of diamonds
meeting at points, tiles keep a flat top/bottom of width ``w``,
guaranteeing each tile depends on at most three predecessors even for
high-order stencils and coarsening the diamond apex the paper's §2.2
criticises.

In this framework that is literally a coarse profile whose *plateau*
is wider than a point: cores of width ``w`` with period
``2w' + 2(b-1)σ`` produce stage blocks whose per-step regions are the
hexagons (trapezoid–rectangle–trapezoid columns) of the scheme.  The
paper itself notes (§2.2) there is "no such simple illustration" for
extending hexagons beyond 2D — here the cut happens along one axis
(time × that axis are hexagons, remaining axes uncut), matching the
hybrid hexagonal/parallelogram scheme of [16].
"""

from __future__ import annotations

from typing import Sequence

from repro.core.profiles import AxisProfile, TessLattice
from repro.core.schedules import tess_schedule
from repro.runtime.schedule import RegionSchedule
from repro.stencils.spec import StencilSpec


def hexagonal_lattice(
    spec: StencilSpec,
    shape: Sequence[int],
    b: int,
    hex_width: int,
    cut_dim: int = 0,
) -> TessLattice:
    """Lattice of hexagonal tiles of flat-edge ``hex_width`` along
    ``cut_dim`` (uncut elsewhere)."""
    shape = tuple(int(n) for n in shape)
    if len(shape) != spec.ndim:
        raise ValueError(f"shape rank {len(shape)} != ndim {spec.ndim}")
    if hex_width < 1:
        raise ValueError(f"hex_width must be >= 1, got {hex_width}")
    profiles = []
    for j, (n, sg) in enumerate(zip(shape, spec.slopes)):
        if j == cut_dim:
            profiles.append(AxisProfile.coarse(
                n, b, sigma=sg, core_width=hex_width,
                period=2 * hex_width + 2 * (b - 1) * sg,
                periodic=spec.is_periodic,
            ))
        else:
            profiles.append(AxisProfile.uncut(
                n, b, sigma=sg, periodic=spec.is_periodic
            ))
    return TessLattice(tuple(profiles))


def hexagonal_schedule(
    spec: StencilSpec,
    shape: Sequence[int],
    b: int,
    steps: int,
    hex_width: int,
    cut_dim: int = 0,
    merged: bool = True,
) -> RegionSchedule:
    """Hexagonal tiling of ``steps`` steps.

    ``merged=True`` fuses the two hexagon families across phases —
    the (d+1)-dimensional prisms of the hybrid scheme — which is
    admissible because flat-edge width equals plateau width by
    construction.
    """
    shape = tuple(int(n) for n in shape)
    if any(n == 0 for n in shape):
        # empty interior: nothing to update, a valid empty schedule
        return RegionSchedule(scheme="hexagonal", shape=shape,
                              steps=steps)
    lattice = hexagonal_lattice(spec, shape, b, hex_width, cut_dim=cut_dim)
    sched = tess_schedule(spec, tuple(int(n) for n in shape), lattice,
                          steps, merged=merged)
    sched.scheme = "hexagonal"
    return sched
