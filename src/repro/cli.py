"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
* ``run``    — execute a kernel with a chosen tiling scheme, verify
  against the naive sweep and report wall-clock + schedule stats;
  ``--engine compiled`` runs the cached compiled plan
  (:mod:`repro.engine`) instead of the naive schedule walker;
* ``show``   — render the space-time diagram of a 1D schedule
  (the paper's Figure 1, in ASCII);
* ``tune``   — auto-tune tessellation tile sizes on the simulated
  machine;
* ``dist``   — §4.1: verified multi-rank execution plus an α–β
  cluster strong-scaling estimate; ``--procs N`` runs the elastic
  *process* runtime (real rank processes, heartbeats, checksummed
  exchanges, rank-crash recovery — see ``docs/distributed.md``)
  instead of the in-process simulator;
* ``table``  — print the paper's Table 1 for a given dimension;
* ``bench``  — forward to :mod:`repro.bench` (regenerate figures);
* ``sanitize`` — structural schedule sanitizer: prove tessellation,
  ping-pong dependence legality and intra-group race freedom for a
  scheme (or the distributed plan with ``--ranks``) without executing
  it; ``--mutate kind@group[/task]`` plants a seeded bug first.

``run`` and ``dist`` take ``--resilient``/``--fail-fast`` plus
``--inject kind@group[/task][xN]`` fault specs (see
``docs/resilience.md``), and ``--sanitize`` to refuse structurally
illegal schedules before execution (see ``docs/sanitizer.md``).
Errors map to distinct exit codes instead of tracebacks:
1 = numerical mismatch, 2 = usage/:class:`ValueError`,
3 = :class:`ExecutionError`, 4 = :class:`GuardViolation` (invariant
guard / ghost-band divergence), 5 = :class:`SanitizerViolation`
(structurally illegal schedule), 6 = :class:`RankLostError` (rank
process lost, respawn budget spent), 7 = :class:`ExchangeTimeoutError`
(boundary band never arrived within the retry budget),
8 = :class:`ChecksumMismatchError` (band payload kept failing its CRC).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.runtime.errors import (
    EXIT_CHECKSUM,
    EXIT_EXCHANGE_TIMEOUT,
    EXIT_EXECUTION,
    EXIT_GUARD,
    EXIT_RANK_LOST,
    EXIT_SANITIZER,
    EXIT_USAGE,
    ChecksumMismatchError,
    ExchangeTimeoutError,
    ExecutionError,
    GuardViolation,
    RankLostError,
    SanitizerViolation,
)

#: schemes the CLI can build a RegionSchedule for
SCHEMES = ["naive", "spatial", "tess", "tess-unmerged", "diamond",
           "pochoir", "mwd", "skewed", "hexagonal", "overlapped"]


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Tessellating Stencils (SC'17) reproduction toolkit",
    )
    sub = p.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a kernel with a tiling scheme")
    run.add_argument("kernel", help="heat1d|1d5p|heat2d|2d9p|life|heat3d|3d27p")
    run.add_argument("--shape", type=int, nargs="+", default=None,
                     help="grid extents (default: kernel-appropriate)")
    run.add_argument("--steps", type=int, default=32)
    run.add_argument("--scheme", default="tess", choices=SCHEMES)
    run.add_argument("-b", "--depth", type=int, default=8,
                     help="time-tile depth b")
    run.add_argument("--threads", type=int, default=1)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--engine", default="naive",
                     choices=["naive", "compiled"],
                     help="execution engine: 'naive' walks the schedule "
                     "action by action; 'compiled' lowers it to a cached "
                     "CompiledPlan (precomputed slices, fused/batched "
                     "kernels — see docs/performance.md)")
    _add_resilience_args(run)
    _add_sanitizer_args(run)
    run.add_argument("--checkpoint-every", type=int, default=1,
                     metavar="N", help="checkpoint every N barrier "
                     "groups in --resilient mode (0 = initial only)")
    run.add_argument("--retries", type=int, default=2,
                     help="per-task retry budget in --resilient mode")

    show = sub.add_parser("show", help="space-time diagram of a 1D schedule")
    show.add_argument("--scheme", default="tess",
                      choices=["naive", "tess", "tess-unmerged", "diamond",
                               "pochoir", "mwd"])
    show.add_argument("-n", type=int, default=48)
    show.add_argument("--steps", type=int, default=12)
    show.add_argument("-b", "--depth", type=int, default=4)
    show.add_argument("--width", type=int, default=96)

    tune = sub.add_parser("tune", help="auto-tune tessellation tile sizes")
    tune.add_argument("kernel")
    tune.add_argument("--shape", type=int, nargs="+", default=None)
    tune.add_argument("--steps", type=int, default=32)
    tune.add_argument("--cores", type=int, default=24)
    tune.add_argument("--objective", default="simulate",
                      choices=["simulate", "wallclock"],
                      help="'simulate' scores on the machine model; "
                      "'wallclock' times each candidate's compiled plan "
                      "(probes share the plan cache)")
    tune.add_argument("--repeat", type=int, default=3,
                      help="min-of-k repeats per wallclock probe")

    dist = sub.add_parser("dist", help="distributed run + cluster estimate")
    dist.add_argument("kernel")
    dist.add_argument("--shape", type=int, nargs="+", default=None)
    dist.add_argument("--steps", type=int, default=16)
    dist.add_argument("-b", "--depth", type=int, default=4)
    dist.add_argument("--ranks", type=int, default=4)
    dist.add_argument("--nodes", type=int, nargs="+", default=[1, 2, 4, 8])
    dist.add_argument("--procs", type=int, default=None, metavar="N",
                      help="run the elastic process runtime with N real "
                      "rank processes (heartbeats, checksummed exchanges, "
                      "crash recovery) instead of the in-process simulator")
    dist.add_argument("--heartbeat-ms", type=float, default=20.0,
                      help="worker heartbeat period in --procs mode "
                      "(default 20 ms)")
    dist.add_argument("--max-retries", type=int, default=3,
                      help="per-message retransmit budget in --procs mode")
    dist.add_argument("--max-respawns", type=int, default=2,
                      help="per-rank respawn budget in --procs "
                      "--resilient mode")
    _add_resilience_args(dist)
    dist.add_argument("--ghost", type=int, default=None,
                      help="override the exchanged ghost-band width "
                      "(the divergence detector still validates the "
                      "required width)")
    dist.add_argument("--check-divergence", action="store_true",
                      help="run the ghost-band divergence detector "
                      "(implied by --resilient)")
    dist.add_argument("--sanitize", action="store_true",
                      help="ghost-band-aware structural pre-flight: "
                      "refuse an illegal plan (e.g. an under-sized "
                      "--ghost) before executing it (exit 5)")

    san = sub.add_parser(
        "sanitize",
        help="prove tessellation/dependence/race invariants of a scheme",
    )
    san.add_argument("scheme", choices=SCHEMES + ["all"],
                     help="scheme to sanitize ('all' = every scheme)")
    san.add_argument("--kernel", default="heat1d",
                     help="heat1d|1d5p|heat2d|2d9p|life|heat3d|3d27p")
    san.add_argument("--shape", type=int, nargs="+", default=None)
    san.add_argument("--steps", type=int, default=16)
    san.add_argument("-b", "--depth", type=int, default=4)
    san.add_argument("--mutate", action="append", default=[],
                     metavar="SPEC",
                     help="plant a seeded bug before sanitizing: "
                     "kind@group[/task], kind in "
                     "drop-action|shift-region|merge-groups (repeatable)")
    san.add_argument("--ranks", type=int, default=None,
                     help="sanitize the distributed (rank-local) plan "
                     "over N ranks instead of the shared-memory schedule "
                     "(tessellation only)")
    san.add_argument("--ghost", type=int, default=None,
                     help="ghost-band width override to validate with "
                     "--ranks")
    san.add_argument("-v", "--verbose", action="store_true",
                     help="list every violation, not just the first")

    table = sub.add_parser("table", help="print Table 1 properties")
    table.add_argument("--max-dim", type=int, default=6)
    table.add_argument("-b", "--depth", type=int, default=4)

    bench = sub.add_parser("bench", help="regenerate paper experiments")
    bench.add_argument("names", nargs="*", help="experiment ids (default all)")
    return p


def _add_resilience_args(sub: argparse.ArgumentParser) -> None:
    mode = sub.add_mutually_exclusive_group()
    mode.add_argument("--resilient", action="store_true",
                      help="enable retries, checkpoint/restart and "
                      "invariant guards")
    mode.add_argument("--fail-fast", action="store_true",
                      help="die on the first failure with a structured "
                      "error (default)")
    sub.add_argument("--inject", action="append", default=[],
                     metavar="SPEC",
                     help="inject a deterministic fault: "
                     "kind@group[/task][xN], kind in "
                     "crash|corrupt|stall|drop|garble (shared-memory / "
                     "simulated paths) or kill_rank|stall_rank|drop_msg|"
                     "flip_bits (process runtime, --procs) (repeatable)")


def _add_sanitizer_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--sanitize", action="store_true",
                     help="structural pre-flight: refuse a schedule with "
                     "tessellation/dependence/race violations (exit 5)")
    sub.add_argument("--mutate", action="append", default=[],
                     metavar="SPEC",
                     help="plant a seeded schedule bug: kind@group[/task], "
                     "kind in drop-action|shift-region|merge-groups "
                     "(repeatable; for exercising --sanitize)")


def _fault_plan(args):
    from repro.runtime.faults import FaultPlan

    return FaultPlan.parse(args.inject) if args.inject else None


def _apply_mutations(sched, specs):
    from repro.runtime.mutations import apply_mutation

    for spec_str in specs:
        sched = apply_mutation(sched, spec_str)
    return sched


def _default_shape(spec) -> tuple:
    return {1: (20_000,), 2: (256, 256), 3: (48, 48, 48)}[spec.ndim]


def _build_schedule(spec, shape, steps, scheme, b):
    from repro.baselines import (
        diamond_schedule, hexagonal_schedule, mwd_schedule, naive_schedule,
        overlapped_schedule, skewed_schedule, spatial_schedule,
        trapezoid_schedule,
    )
    from repro.core import make_lattice
    from repro.core.schedules import tess_schedule
    from repro.runtime import levelize

    shape = tuple(int(n) for n in shape)
    if any(n == 0 for n in shape):
        # empty interior: every scheme degenerates to an empty schedule
        # (the lattice builders cannot even represent a 0-cell axis)
        from repro.runtime import RegionSchedule

        return RegionSchedule(scheme=scheme, shape=shape, steps=steps)
    if scheme == "naive":
        return naive_schedule(spec, shape, steps, chunks=8)
    if scheme == "spatial":
        tile = tuple(max(4, n // 8) for n in shape)
        return spatial_schedule(spec, shape, steps, tile)
    if scheme in ("tess", "tess-unmerged"):
        lat = make_lattice(spec, shape, b)
        return tess_schedule(spec, shape, lat, steps,
                             merged=(scheme == "tess"))
    if scheme == "diamond":
        return diamond_schedule(spec, shape, b, steps)
    if scheme == "pochoir":
        return levelize(spec, trapezoid_schedule(spec, shape, steps,
                                                 base_dt=max(2, b // 2)))
    if scheme == "mwd":
        return mwd_schedule(spec, shape, b, steps)
    if scheme == "skewed":
        width = max(spec.slopes[0], max(4, shape[0] // 8))
        return skewed_schedule(spec, shape, steps, width)
    if scheme == "hexagonal":
        return hexagonal_schedule(spec, shape, b, steps,
                                  hex_width=max(b, 2))
    if scheme == "overlapped":
        tile = tuple(max(4, n // 8) for n in shape)
        return overlapped_schedule(spec, shape, steps, tile, max(1, b // 2))
    raise ValueError(scheme)


def cmd_run(args) -> int:
    import time as _time

    from repro import Grid, get_stencil, reference_sweep
    from repro.perf import time_schedule
    from repro.runtime import (
        ResiliencePolicy, execute_resilient, execute_threaded,
        schedule_stats,
    )

    spec = get_stencil(args.kernel)
    shape = tuple(args.shape) if args.shape else _default_shape(spec)
    sched = _build_schedule(spec, shape, args.steps, args.scheme, args.depth)
    if args.mutate:
        print(f"mutating: {', '.join(args.mutate)}")
        sched = _apply_mutations(sched, args.mutate)
    st = schedule_stats(sched)
    print(spec.describe())
    print(f"scheme={args.scheme} shape={shape} steps={args.steps} "
          f"b={args.depth}")
    print(f"tasks={st['tasks']} barriers={st['groups']} "
          f"redundancy={st['redundancy'] * 100:.1f}%")
    if args.sanitize:
        from repro.runtime import sanitize_schedule

        report = sanitize_schedule(spec, sched)
        print(f"sanitizer: {report.describe()}")
        report.raise_if_violations()
    compiled = None
    if args.engine == "compiled":
        from repro.engine.cache import default_cache

        cache = default_cache()
        # mutated schedules get their own cache identity — the base
        # key is (spec, shape, steps, scheme, params) and a mutation
        # changes the schedule without changing any of those
        compiled = cache.get(spec, sched,
                             params=(args.depth, *args.mutate))
        print(f"engine: compiled — {compiled.stats.describe()}")
    plan = _fault_plan(args)
    if (args.resilient or plan is not None) and not sched.private_tasks:
        if args.resilient:
            policy = ResiliencePolicy(
                max_task_retries=args.retries,
                checkpoint_interval=args.checkpoint_every,
            )
        else:
            # fail-fast with injection: no retries, no restarts — the
            # guards still turn silent corruption into a loud exit 4
            policy = ResiliencePolicy(max_task_retries=0,
                                      max_group_restarts=0,
                                      checkpoint_interval=0)
        if plan is not None:
            print(f"injecting: {plan.describe()}")
        g = Grid(spec, shape, seed=args.seed)
        t0 = _time.perf_counter()
        out, report = execute_resilient(
            spec, g, sched, policy=policy, fault_plan=plan,
            num_threads=args.threads, plan=compiled,
        )
        secs = _time.perf_counter() - t0
        print(f"resilience: {report.describe()}")
    elif args.threads > 1 and not sched.private_tasks:
        g = Grid(spec, shape, seed=args.seed)
        t0 = _time.perf_counter()
        out = execute_threaded(spec, g, sched, num_threads=args.threads,
                               plan=compiled)
        secs = _time.perf_counter() - t0
    elif compiled is not None:
        from repro.perf.wallclock import time_plan

        g = Grid(spec, shape, seed=args.seed)
        secs, out = time_plan(compiled, g)
    else:
        secs, out = time_schedule(spec, sched, seed=args.seed)
    g_ref = Grid(spec, shape, seed=args.seed)
    ref = reference_sweep(spec, g_ref, args.steps)
    pts = 1
    for n in shape:
        pts *= n
    ok = (np.array_equal(ref, out)
          if np.issubdtype(spec.dtype, np.integer)
          else np.allclose(ref, out, rtol=1e-11, atol=1e-12))
    rate = pts * args.steps / secs / 1e6
    print(f"wall clock: {secs * 1e3:.1f} ms  ({rate:.1f} MStencil/s)")
    print(f"verified against naive sweep: {'OK' if ok else 'MISMATCH'}")
    return 0 if ok else 1


def cmd_show(args) -> int:
    from repro import get_stencil
    from repro.runtime.spacetime import render_spacetime

    spec = get_stencil("heat1d")
    sched = _build_schedule(spec, (args.n,), args.steps, args.scheme,
                            args.depth)
    print(f"space-time diagram — {args.scheme}, N={args.n}, "
          f"T={args.steps}, b={args.depth} (glyph = barrier group)")
    print(render_spacetime(sched, width=args.width))
    return 0


def cmd_tune(args) -> int:
    from repro import get_stencil
    from repro.autotune import tune_tessellation
    from repro.machine import paper_machine

    spec = get_stencil(args.kernel)
    shape = tuple(args.shape) if args.shape else _default_shape(spec)
    machine = paper_machine().scaled_caches(0.05)
    best = tune_tessellation(spec, shape, args.steps, machine, args.cores,
                             objective=args.objective, repeat=args.repeat)
    print(f"best configuration: {best.describe()}")
    if args.objective == "wallclock":
        from repro.engine.cache import default_cache

        st = default_cache().stats
        print(f"plan cache: {st.hits} hit(s), {st.misses} miss(es), "
              f"{st.compile_seconds * 1e3:.0f} ms compiling")
    return 0


def cmd_dist(args) -> int:
    import numpy as np

    from repro import Grid, get_stencil, make_lattice, reference_sweep
    from repro.bench.report import format_table
    from repro.distributed import (
        ClusterSpec, execute_distributed, simulate_distributed,
    )
    from repro.machine import paper_machine

    spec = get_stencil(args.kernel)
    shape = tuple(args.shape) if args.shape else {
        1: (400,), 2: (64, 64), 3: (20, 20, 20)
    }[spec.ndim]
    lat = make_lattice(spec, shape, args.depth)
    g = Grid(spec, shape, seed=0)
    ref = reference_sweep(spec, g.copy(), args.steps)
    plan = _fault_plan(args)
    if plan is not None:
        print(f"injecting: {plan.describe()}")
    if args.procs is not None:
        from repro.distributed import ElasticConfig, RetryPolicy
        from repro.distributed.elastic import execute_elastic

        ranks = args.procs
        # without --resilient, every recovery budget is zero: the first
        # rank loss / exhausted exchange dies with its typed exit code
        config = ElasticConfig(
            heartbeat_s=args.heartbeat_ms / 1e3,
            heartbeat_timeout_s=max(1.0, 50 * args.heartbeat_ms / 1e3),
            retry=RetryPolicy(max_retries=args.max_retries),
            max_respawns=args.max_respawns if args.resilient else 0,
            max_phase_restarts=4 if args.resilient else 0,
        )
        out, stats = execute_elastic(
            spec, g.copy(), lat, args.steps, ranks,
            fault_plan=plan, config=config,
            ghost_override=args.ghost, sanitize=args.sanitize,
        )
        kind = "rank process(es)"
    else:
        ranks = args.ranks
        out, stats = execute_distributed(
            spec, g.copy(), lat, args.steps, ranks,
            fault_plan=plan,
            check_divergence=args.check_divergence or args.resilient,
            resilient=args.resilient,
            ghost_override=args.ghost,
            sanitize=args.sanitize,
        )
        kind = "simulated ranks"
    ok = (np.array_equal(ref, out)
          if np.issubdtype(spec.dtype, np.integer)
          else np.allclose(ref, out, rtol=1e-11, atol=1e-12))
    print(f"{ranks} {kind} on {shape}: "
          f"{'verified OK' if ok else 'MISMATCH'}; "
          f"{stats.messages} messages, {stats.bytes_sent} bytes")
    if stats.had_faults:
        print(f"resilience: {stats.describe_resilience()}")
    rows = []
    base = None
    for n in args.nodes:
        r = simulate_distributed(spec, shape, lat, args.steps,
                                 ClusterSpec(n, paper_machine()))
        base = base or r.time_s
        rows.append([n, f"{r.gstencils:.2f}",
                     f"{r.comm_fraction * 100:.1f}%",
                     f"{base / r.time_s:.2f}x"])
    print(format_table(["nodes", "GStencil/s", "comm share", "speedup"],
                       rows))
    return 0 if ok else 1


def cmd_sanitize(args) -> int:
    from repro import get_stencil, make_lattice
    from repro.runtime import sanitize_distributed_plan, sanitize_schedule

    spec = get_stencil(args.kernel)
    shape = tuple(args.shape) if args.shape else {
        1: (400,), 2: (64, 64), 3: (20, 20, 20)
    }[spec.ndim]

    if args.ranks is not None:
        if args.scheme not in ("tess", "all"):
            raise ValueError(
                "--ranks sanitizes the distributed tessellation plan; "
                "use scheme 'tess'"
            )
        lat = make_lattice(spec, shape, args.depth)
        report = sanitize_distributed_plan(
            spec, lat, args.steps, args.ranks, ghost=args.ghost,
        )
        reports = [("tess-distributed", report)]
    else:
        schemes = SCHEMES if args.scheme == "all" else [args.scheme]
        reports = []
        for scheme in schemes:
            sched = _build_schedule(spec, shape, args.steps, scheme,
                                    args.depth)
            if args.mutate:
                sched = _apply_mutations(sched, args.mutate)
            reports.append((scheme, sanitize_schedule(spec, sched)))

    worst = None
    for scheme, report in reports:
        print(f"{scheme}: {report.describe()}")
        if args.verbose:
            for v in report.violations:
                print(f"  - {v.describe()}")
        if not report.ok and worst is None:
            worst = (scheme, report)
    if worst is not None:
        raise SanitizerViolation(worst[0], worst[1].violations)
    return 0


def cmd_table(args) -> int:
    from repro.bench.experiments import table1_properties

    print(table1_properties(max_dim=args.max_dim, b=args.depth))
    return 0


def cmd_bench(args) -> int:
    from repro.bench.__main__ import main as bench_main

    return bench_main(args.names)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    cmd = {
        "run": cmd_run,
        "show": cmd_show,
        "tune": cmd_tune,
        "dist": cmd_dist,
        "sanitize": cmd_sanitize,
        "table": cmd_table,
        "bench": cmd_bench,
    }[args.command]
    try:
        return cmd(args)
    except SanitizerViolation as e:
        print(f"sanitizer violation: {e}", file=sys.stderr)
        for v in e.violations:
            print(f"  - {v.describe()}", file=sys.stderr)
        return EXIT_SANITIZER
    except GuardViolation as e:
        print(f"guard violation: {e}", file=sys.stderr)
        return EXIT_GUARD
    except RankLostError as e:
        print(f"rank lost: {e}", file=sys.stderr)
        return EXIT_RANK_LOST
    except ExchangeTimeoutError as e:
        print(f"exchange timeout: {e}", file=sys.stderr)
        return EXIT_EXCHANGE_TIMEOUT
    except ChecksumMismatchError as e:
        print(f"checksum mismatch: {e}", file=sys.stderr)
        return EXIT_CHECKSUM
    except ExecutionError as e:
        print(f"execution failed: {e}", file=sys.stderr)
        return EXIT_EXECUTION
    except (ValueError, KeyError) as e:
        msg = e.args[0] if e.args else e
        print(f"error: {msg}", file=sys.stderr)
        return EXIT_USAGE


if __name__ == "__main__":
    raise SystemExit(main())
