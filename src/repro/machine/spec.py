"""Machine descriptions for the simulator.

:func:`paper_machine` mirrors the evaluation platform of §5.1: two
Intel Xeon E5-2670 sockets at 2.7 GHz, 12 cores per socket, 32 KB
private L1D, 256 KB private L2, one 30 MB L3 shared per socket.
Bandwidth and effective per-core throughput are set from the
platform's public specifications (4-channel DDR3-1600 per socket,
AVX pipelines at a realistic sustained efficiency for
compiler-vectorised stencil loops).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MachineSpec:
    """Parameters of the simulated shared-memory machine."""

    name: str
    sockets: int
    cores_per_socket: int
    freq_hz: float
    #: sustained flops per cycle per core for compiler-vectorised
    #: stencil kernels (well below the 8 DP peak of AVX)
    flops_per_cycle: float
    l1_bytes: int
    l2_bytes: int
    llc_bytes: int          # per socket, shared
    mem_bw_bytes: float     # per socket, bytes/s
    cache_line: int = 64
    #: cost of one full barrier across ``p`` cores (seconds)
    barrier_base_s: float = 2.0e-6
    barrier_per_core_s: float = 1.0e-7
    #: per-task dispatch cost (OpenMP chunk scheduling)
    task_overhead_s: float = 4.0e-7
    #: per region application: loop-bound computation + loop startup
    action_overhead_s: float = 8.0e-8

    @property
    def cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def flop_rate(self) -> float:
        """Sustained flops/s of one core."""
        return self.freq_hz * self.flops_per_cycle

    @property
    def total_mem_bw(self) -> float:
        return self.sockets * self.mem_bw_bytes

    def mem_bw_for(self, p: int) -> float:
        """Aggregate memory bandwidth visible to ``p`` active cores.

        Cores fill socket 0 first (the paper scales 1→24 cores across
        the two sockets); a single core cannot saturate a socket's
        channels, so per-core draw is capped as well.
        """
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        p = min(p, self.cores)
        sockets_used = min(self.sockets, -(-p // self.cores_per_socket))
        per_core_cap = self.mem_bw_bytes / 3.0  # ~3 cores saturate a socket
        return min(sockets_used * self.mem_bw_bytes, p * per_core_cap)

    def barrier_s(self, p: int) -> float:
        """Latency of one barrier across ``p`` cores."""
        return self.barrier_base_s + self.barrier_per_core_s * min(p, self.cores)

    def cache_per_task(self) -> int:
        """Cache budget of one task: private L2 + its share of the LLC."""
        return self.l2_bytes + self.llc_bytes // self.cores_per_socket

    def scaled_caches(self, factor: float) -> "MachineSpec":
        """Shrink every cache level by ``factor`` (problem scaling).

        The benchmark problems are scaled down from the paper's sizes;
        shrinking the caches by the same volume factor preserves every
        ratio the figures depend on (grid/LLC, tile/L2, ...).  Compute
        and bandwidth rates are left untouched — they set absolute
        time, not the shapes.
        """
        if not 0 < factor <= 1:
            raise ValueError(f"factor must be in (0, 1], got {factor}")
        line = self.cache_line

        def scale(nbytes: int) -> int:
            return max(4 * line, int(nbytes * factor))

        return replace(
            self,
            name=f"{self.name} [caches x{factor:.4g}]",
            l1_bytes=scale(self.l1_bytes),
            l2_bytes=scale(self.l2_bytes),
            llc_bytes=scale(self.llc_bytes),
        )

    def with_cores(self, cores: int) -> "MachineSpec":
        """A copy restricted to ``cores`` total cores (for scaling runs)."""
        if not 1 <= cores <= self.cores:
            raise ValueError(
                f"cores must be in [1, {self.cores}], got {cores}"
            )
        # keep per-socket structure; scaling runs pass ``p`` separately,
        # so this is only used for whole-machine reconfiguration
        return replace(self)


def paper_machine() -> MachineSpec:
    """The paper's dual E5-2670 platform (§5.1)."""
    return MachineSpec(
        name="2x Intel Xeon E5-2670, 2.7 GHz (paper §5.1)",
        sockets=2,
        cores_per_socket=12,
        freq_hz=2.7e9,
        flops_per_cycle=4.0,
        l1_bytes=32 * 1024,
        l2_bytes=256 * 1024,
        llc_bytes=30 * 1024 * 1024,
        mem_bw_bytes=51.2e9,
    )


def laptop_machine() -> MachineSpec:
    """A small 4-core configuration for quick experiments and tests."""
    return MachineSpec(
        name="generic 4-core laptop",
        sockets=1,
        cores_per_socket=4,
        freq_hz=3.0e9,
        flops_per_cycle=4.0,
        l1_bytes=32 * 1024,
        l2_bytes=512 * 1024,
        llc_bytes=8 * 1024 * 1024,
        mem_bw_bytes=30.0e9,
    )
