"""Tests for the set-associative LRU cache simulator."""

import pytest

from repro.machine.cache import CacheHierarchy, SetAssociativeCache


class TestSingleCache:
    def test_cold_miss_then_hit(self):
        c = SetAssociativeCache(1024, line_bytes=64, ways=2)
        assert not c.access(0)
        assert c.access(0)
        assert c.access(63)          # same line
        assert not c.access(64)      # next line

    def test_lru_eviction_order(self):
        # 2 ways, 1 set: fully associative pair
        c = SetAssociativeCache(128, line_bytes=64, ways=2)
        c.access(0)       # A
        c.access(64)      # B
        c.access(0)       # touch A -> B is LRU
        c.access(128)     # C evicts B
        assert c.access(0)            # A still resident
        assert not c.access(64)       # B was evicted

    def test_dirty_writeback(self):
        c = SetAssociativeCache(64, line_bytes=64, ways=1)
        c.access(0, is_write=True)
        c.access(64)  # evicts dirty line
        assert c.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = SetAssociativeCache(64, line_bytes=64, ways=1)
        c.access(0)
        c.access(64)
        assert c.stats.writebacks == 0
        assert c.stats.evictions == 1

    def test_set_mapping_conflicts(self):
        # 2 sets, 1 way: addresses 0 and 128 conflict, 0 and 64 do not
        c = SetAssociativeCache(128, line_bytes=64, ways=1)
        c.access(0)
        c.access(64)
        assert c.access(0)
        c.access(128)  # conflicts with 0
        assert not c.access(0)

    def test_fully_associative_via_ways0(self):
        c = SetAssociativeCache(256, line_bytes=64, ways=0)
        assert c.num_sets == 1
        assert c.ways == 4

    def test_flush_counts_dirty(self):
        c = SetAssociativeCache(256, line_bytes=64, ways=4)
        c.access(0, is_write=True)
        c.access(64)
        assert c.flush() == 1
        assert c.resident_lines() == 0

    def test_stats_miss_rate(self):
        c = SetAssociativeCache(256, line_bytes=64)
        c.access(0)
        c.access(0)
        assert c.stats.miss_rate == pytest.approx(0.5)

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(0)
        with pytest.raises(ValueError):
            SetAssociativeCache(32, line_bytes=64)
        with pytest.raises(ValueError):
            SetAssociativeCache(192, line_bytes=64, ways=2)


class TestHierarchy:
    def _hier(self):
        return CacheHierarchy([
            SetAssociativeCache(128, 64, ways=2),
            SetAssociativeCache(512, 64, ways=2),
        ])

    def test_levels_probe_order(self):
        h = self._hier()
        assert h.access(0) == 2      # memory
        assert h.access(0) == 0      # L1 hit
        # fill L1 beyond capacity; the victim still hits L2
        h.access(64)
        h.access(128)
        assert h.access(0) in (0, 1)

    def test_memory_traffic(self):
        h = self._hier()
        for i in range(4):
            h.access(i * 64)
        assert h.mem_reads == 4
        assert h.memory_traffic_bytes == 4 * 64

    def test_flush_writes_dirty(self):
        h = self._hier()
        h.access(0, is_write=True)
        h.flush()
        assert h.mem_writes >= 1

    def test_working_set_fits(self):
        """A loop over a fitting working set misses only once per line."""
        h = CacheHierarchy([SetAssociativeCache(4096, 64, ways=0)])
        for _ in range(5):
            for i in range(32):
                h.access(i * 64)
        assert h.mem_reads == 32

    def test_streaming_misses_every_time(self):
        h = CacheHierarchy([SetAssociativeCache(1024, 64, ways=0)])
        for _ in range(3):
            for i in range(64):  # 4 KB >> 1 KB cache
                h.access(i * 64)
        assert h.mem_reads == 3 * 64

    def test_mixed_line_sizes_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy([
                SetAssociativeCache(128, 64),
                SetAssociativeCache(128, 32),
            ])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy([])
