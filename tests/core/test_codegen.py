"""Tests for the stencil code generator (the paper's §6 future work)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make_lattice
from repro.core.executor import _run_blocked
from repro.core.codegen import (
    compile_tess,
    generate_tess_source,
    run_generated,
)
from repro.stencils import (
    Grid,
    d1p5,
    d3p27,
    game_of_life,
    get_stencil,
    heat1d,
    heat2d,
    heat3d,
    reference_sweep,
)


class TestSourceGeneration:
    def test_source_is_compilable(self):
        for d in (1, 2, 3, 4):
            src = generate_tess_source(d, (1,) * d)
            compile(src, "<test>", "exec")

    def test_source_mentions_every_dim(self):
        src = generate_tess_source(3, (1, 1, 1))
        for j in range(3):
            assert f"n{j}" in src and f"k{j}" in src

    def test_stage_unrolling(self):
        # 2D: stages with C(2,i) subsets => 1 + 2 + 1 = 4 loop nests
        src = generate_tess_source(2, (1, 1))
        assert src.count("# stage") == 4

    def test_slopes_specialised(self):
        src = generate_tess_source(1, (2,))
        assert "s0 = 2" in src

    def test_bad_args(self):
        with pytest.raises(ValueError):
            generate_tess_source(0, ())
        with pytest.raises(ValueError):
            generate_tess_source(2, (1,))
        with pytest.raises(ValueError):
            generate_tess_source(1, (0,))

    def test_compiled_keeps_source(self):
        fn = compile_tess(1, (1,))
        assert "def tess_run" in fn.__source__


class TestGeneratedCorrectness:
    @pytest.mark.parametrize("factory,shape,b", [
        (heat1d, (60,), 4), (d1p5, (70,), 3),
        (heat2d, (22, 19), 3), (game_of_life, (16, 17), 2),
        (heat3d, (11, 10, 12), 2), (d3p27, (10, 10, 10), 2),
    ])
    def test_matches_reference(self, factory, shape, b):
        spec = factory()
        steps = 2 * b + 1
        g1 = Grid(spec, shape, seed=8)
        g2 = g1.copy()
        ref = reference_sweep(spec, g1, steps)
        out = run_generated(spec, g2, steps, b)
        if np.issubdtype(spec.dtype, np.integer):
            assert np.array_equal(ref, out)
        else:
            assert np.allclose(ref, out, rtol=1e-11, atol=1e-12)

    @given(st.integers(12, 40), st.integers(1, 3), st.integers(0, 8),
           st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_random_2d_equals_run_blocked(self, n, b, steps, w):
        spec = get_stencil("heat2d")
        shape = (n, n + 3)
        lat = make_lattice(spec, shape, b, core_widths=(w, w))
        g1 = Grid(spec, shape, seed=steps)
        g2 = g1.copy()
        a = _run_blocked(spec, g1, lat, steps).copy()
        out = run_generated(spec, g2, steps, b, lattice=lat)
        assert np.allclose(a, out, rtol=1e-12, atol=1e-13)

    def test_rejects_periodic(self):
        spec = get_stencil("heat1d", boundary="periodic")
        g = Grid(spec, (20,), seed=0)
        with pytest.raises(ValueError):
            run_generated(spec, g, 4, 2)

    def test_rejects_uncut_axes(self):
        from repro.core.profiles import AxisProfile, TessLattice

        spec = get_stencil("heat2d")
        g = Grid(spec, (16, 16), seed=0)
        lat = TessLattice((AxisProfile.uniform(16, 2),
                           AxisProfile.uncut(16, 2)))
        with pytest.raises(ValueError):
            run_generated(spec, g, 4, 2, lattice=lat)


class TestKernelGeneration:
    def test_kernel_source_linear(self):
        from repro.core.codegen import generate_kernel_source

        spec = get_stencil("heat2d")
        src = generate_kernel_source(spec)
        assert "numpy.multiply" in src
        assert src.count("out +=") == spec.num_neighbors - 1

    def test_kernel_matches_operator(self):
        from repro.core.codegen import compile_kernel

        spec = get_stencil("3d27p")
        kern = compile_kernel(spec)
        g = Grid(spec, (8, 9, 7), seed=5)
        dst_a = np.zeros_like(g.at(0))
        dst_b = np.zeros_like(g.at(0))
        region = ((1, 6), (0, 9), (2, 7))
        spec.apply_region(g.at(0), dst_a, region)
        kern(g.at(0), dst_b, region)
        assert np.allclose(dst_a, dst_b, rtol=1e-15)

    def test_kernel_empty_region_noop(self):
        from repro.core.codegen import compile_kernel

        spec = get_stencil("heat1d")
        kern = compile_kernel(spec)
        g = Grid(spec, (10,), seed=0)
        dst = np.full_like(g.at(0), -1.0)
        kern(g.at(0), dst, ((4, 4),))
        assert np.all(dst == -1.0)

    def test_kernel_rejects_nonlinear(self):
        from repro.core.codegen import generate_kernel_source

        with pytest.raises(ValueError):
            generate_kernel_source(get_stencil("life"))

    def test_full_generated_pipeline_linear(self):
        """Generated driver + generated kernel, no library fallback."""
        spec = get_stencil("heat2d")
        g1 = Grid(spec, (20, 18), seed=9)
        g2 = g1.copy()
        ref = reference_sweep(spec, g1, 7)
        out = run_generated(spec, g2, 7, 2)
        assert np.allclose(ref, out, rtol=1e-11, atol=1e-12)
