"""Rank-process main loop of the elastic distributed runtime.

One :func:`worker_main` process per rank.  Per stage it executes the
blocks it owns (the same block→rank ownership as the simulated
executor, via :func:`~repro.distributed.partition.build_ownership`),
pushes its fresh boundary bands to both neighbours (routed through the
coordinator), then blocks on the neighbours' bands with the
receiver-driven timeout/retransmit protocol of
:mod:`~repro.distributed.transport`.  Per *phase* (one ``b``-deep time
tile) it spills an atomic checkpoint of its buffer pair to the run's
spill directory and enters the coordinator's commit barrier — phase
boundaries are global consistency points (every rank's ping-pong pair
is complete there), so the spill file is everything a restore or a
respawned successor incarnation needs.

Failure behaviour:

* an injected ``kill_rank`` hit exits the process hard
  (``os._exit``) — the coordinator notices via the dead process /
  missed heartbeats and respawns incarnation ``i+1``, which pre-burns
  its fault plan (:meth:`FaultPlan.preburn_rank_lifecycle`) so a
  transient kill does not re-fire forever;
* an injected ``stall_rank`` hit wedges the compute loop; the worker
  keeps pumping control messages while it sleeps, so a coordinator
  ``abort`` (triggered by the straggler watchdog or by a neighbour's
  exchange timeout) can still un-wedge it;
* a band that never arrives, or keeps failing its CRC, exhausts the
  retry budget and is reported to the coordinator as a structured
  ``failure`` message; the worker then parks and waits for the
  coordinator's verdict (phase abort + restore, or shutdown).

A daemon heartbeat thread shares the channel (thread-safe sends) and
beacons ``(state, monotone counter, phase)`` so the coordinator can
tell a dead process (no beacons) from a wedged one (beacons with
frozen *compute* progress) from one legitimately idling at a barrier.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.profiles import TessLattice
from repro.distributed.partition import SlabPartition, build_ownership
from repro.distributed.transport import (
    ABORT,
    BAND,
    COMMIT,
    COORDINATOR,
    Channel,
    ChannelClosed,
    FAILURE,
    HEARTBEAT,
    HELLO,
    Message,
    PHASE_DONE,
    RESEND,
    RESTORED,
    RESULT,
    RESUME,
    RetryPolicy,
    SHUTDOWN,
    corrupt_payload,
    make_data_message,
    unpack_payload,
    verify_message,
)
from repro.engine.kernels import thread_arena
from repro.runtime.faults import FaultPlan
from repro.stencils.spec import StencilSpec, region_is_empty

#: process exit codes (distinct so the coordinator's logs are readable)
KILLED_BY_FAULT = 41      #: injected ``kill_rank`` fired
CHECKPOINT_MISSING = 43   #: restore asked for a spill file that is gone
ORPHANED = 44             #: coordinator channel closed under us

#: ``Message.key`` used for final-result retransmit requests
RESULT_KEY = (-1,)


@dataclass
class WorkerConfig:
    """Everything one rank incarnation needs (fork-inherited)."""

    rank: int
    ranks: int
    spec: StencilSpec
    lattice: TessLattice
    shape: Tuple[int, ...]
    steps: int
    axis: int
    ghost: int
    init_buffers: List[np.ndarray]
    ckpt_dir: str
    epoch: int = 0
    incarnation: int = 0
    restore_phase: int = 0
    heartbeat_s: float = 0.05
    retry: RetryPolicy = RetryPolicy()
    fault_plan: Optional[FaultPlan] = None


class _PhaseAborted(Exception):
    """Coordinator ordered: drop the phase, restore, wait for resume."""

    def __init__(self, epoch: int, restore_phase: int):
        self.epoch = epoch
        self.restore_phase = restore_phase


class _Shutdown(Exception):
    """Coordinator ordered: run over, exit cleanly."""


class _ExchangeFailed(Exception):
    """Retry budget exhausted waiting for a neighbour's band."""

    def __init__(self, cause: str, stage: int, src: int, attempts: int):
        self.cause = cause  # "timeout" | "checksum"
        self.stage = stage
        self.src = src
        self.attempts = attempts


class _Worker:
    def __init__(self, cfg: WorkerConfig, chan: Channel):
        self.cfg = cfg
        self.chan = chan
        self.rank = cfg.rank
        self.epoch = cfg.epoch
        self.spec = cfg.spec
        shape = tuple(cfg.shape)
        self.shape = shape
        self.part = SlabPartition(shape, cfg.ranks, axis=cfg.axis)
        self.bounds = self.part.bounds()
        self.slopes = tuple(p.sigma for p in cfg.lattice.profiles)
        self.b = cfg.lattice.b
        plan, owned = build_ownership(cfg.lattice, self.part)
        self.n_stages = len(plan.stages)
        self.owned = owned[self.rank]
        self.interior = cfg.spec.interior_slices(shape)
        self.init = [buf.copy() for buf in cfg.init_buffers]
        self.bufs = [buf.copy() for buf in cfg.init_buffers]
        self.phases: List[Tuple[int, int]] = [
            (tt, min(self.b, cfg.steps - tt))
            for tt in range(0, cfg.steps, self.b)
        ]
        self.inbox: Dict[Tuple[int, int], object] = {}
        self.outbox: Dict[Tuple[int, int], object] = {}
        self.done_keys: set = set()
        self.crc_failures: Dict[Tuple[int, int], int] = {}
        self.stats: Dict[str, int] = dict(drops=0, timeouts=0, retries=0,
                                          checksum_failures=0)
        self._compile_owned_plan()
        # (state, monotone counter, phase) read by the heartbeat thread
        self.progress: Tuple[str, int, int] = ("init", 0, cfg.restore_phase)
        self._beat_stop = threading.Event()

    def _compile_owned_plan(self) -> None:
        """Compile this rank's owned-block geometry ONCE per incarnation.

        ``blk.region_at(s, ...)`` depends only on the stage, block and
        local step ``s`` — never on the phase start ``tt`` — so every
        slice tuple the compute loop needs is precomputed here instead
        of being rebuilt each phase.  Units are compiled with ``t = s``
        (parity ``s % 2``); phases starting at odd ``tt`` run them on
        the swapped buffer pair, which is the same parity arithmetic as
        ``(tt + s) % 2``.  Truncated last phases simply stop the local
        step loop early.  ``plan_compiles`` is reported with the final
        result so tests can assert compilation happened exactly once
        per run.
        """
        from repro.engine.plan import _CompileCtx

        ctx = _CompileCtx(self.spec, self.shape)
        self._stage_units: List[List[List[Optional[tuple]]]] = []
        for si in range(self.n_stages):
            per_block: List[List[Optional[tuple]]] = []
            for blk in self.owned[si]:
                per_s: List[Optional[tuple]] = []
                for s in range(self.b):
                    region = blk.region_at(s, self.b, self.slopes,
                                           self.shape)
                    if region_is_empty(region):
                        per_s.append(None)
                        continue
                    dirty_idx = tuple(slice(lo, hi) for lo, hi in region)
                    per_s.append((ctx.slice_unit(s, region), dirty_idx))
                per_block.append(per_s)
            self._stage_units.append(per_block)
        self._plan_compiles = 1

    # -- plumbing ----------------------------------------------------

    def _neighbours(self) -> List[int]:
        return [r for r in (self.rank - 1, self.rank + 1)
                if 0 <= r < self.cfg.ranks]

    def _bump(self, state: str, phase: int) -> None:
        self.progress = (state, self.progress[1] + 1, phase)

    def _send_ctrl(self, kind: str, key: Tuple[int, ...] = (),
                   payload=None) -> None:
        self.chan.send(Message(kind=kind, src=self.rank, dst=COORDINATOR,
                               epoch=self.epoch, key=key, payload=payload))

    def _heartbeat_loop(self) -> None:
        while not self._beat_stop.wait(self.cfg.heartbeat_s):
            try:
                state, counter, phase = self.progress
                self.chan.send(Message(
                    kind=HEARTBEAT, src=self.rank, dst=COORDINATOR,
                    epoch=self.epoch, payload=(state, counter, phase),
                ))
            except ChannelClosed:
                return

    def _pump(self, timeout_s: float) -> Optional[Message]:
        """Receive and pre-process at most one message.

        Bands are buffered into the inbox, retransmit requests are
        serviced from the outbox, aborts/shutdowns raise; anything the
        caller might be waiting on (``commit``/``resume``) is returned.
        """
        msg = self.chan.recv(timeout_s)
        if msg is None:
            return None
        if msg.kind == SHUTDOWN:
            raise _Shutdown()
        if msg.kind == ABORT:
            if msg.epoch > self.epoch:
                raise _PhaseAborted(msg.epoch, int(msg.payload))
            return None  # stale duplicate
        if msg.epoch != self.epoch:
            return None  # message from a killed phase
        if msg.kind == BAND:
            key = (msg.key[0], msg.src)
            if key in self.done_keys:
                return None  # duplicate delivery after a retransmit
            if not verify_message(msg):
                self.stats["checksum_failures"] += 1
                self.crc_failures[key] = self.crc_failures.get(key, 0) + 1
                # immediate retransmit requests are bounded by the same
                # retry budget as timeout-driven ones, so persistent
                # corruption cannot flood the channel: once the budget
                # is spent, only the (bounded) timeout path remains and
                # the exchange fails with cause "checksum"
                if self.crc_failures[key] <= self.cfg.retry.max_retries:
                    self.stats["retries"] += 1
                    self._send_resend(msg.key[0], msg.src)
                return None
            self.inbox[key] = unpack_payload(msg.payload)
            return None
        if msg.kind == RESEND:
            self._service_resend(msg)
            return None
        return msg

    def _send_resend(self, stage: int, src: int) -> None:
        self.chan.send(Message(kind=RESEND, src=self.rank, dst=src,
                               epoch=self.epoch, key=(stage,)))

    def _service_resend(self, msg: Message) -> None:
        if tuple(msg.key) == RESULT_KEY:
            self._send_result()
            return
        stage = msg.key[0]
        payload = self.outbox.get((stage, msg.src))
        if payload is not None:
            self._send_band(stage, msg.src, payload)

    # -- exchange ----------------------------------------------------

    def _axis_window(self, lo: int, hi: int) -> Tuple[slice, ...]:
        n_axis = self.shape[self.cfg.axis]
        window = [slice(None)] * len(self.shape)
        window[self.cfg.axis] = slice(max(0, lo), min(n_axis, hi))
        return tuple(window)

    def _band_payload(self, dst: int, dirty: np.ndarray):
        dlo, dhi = self.bounds[dst]
        window = self._axis_window(dlo - self.cfg.ghost,
                                   dhi + self.cfg.ghost)
        mask = dirty[window].copy()
        return (mask,
                self.bufs[0][self.interior][window].copy(),
                self.bufs[1][self.interior][window].copy())

    def _apply_band(self, payload) -> None:
        mask, b0, b1 = payload
        lo, hi = self.bounds[self.rank]
        window = self._axis_window(lo - self.cfg.ghost,
                                   hi + self.cfg.ghost)
        if not mask.any():
            return
        np.copyto(self.bufs[0][self.interior][window], b0, where=mask)
        np.copyto(self.bufs[1][self.interior][window], b1, where=mask)

    def _send_band(self, stage: int, dst: int, payload) -> None:
        """One band send attempt, subject to transport fault injection."""
        msg = make_data_message(BAND, self.rank, dst, self.epoch,
                                (stage,), payload)
        if self.cfg.fault_plan is not None:
            f = self.cfg.fault_plan.send_fault(stage, self.rank)
            if f is not None and f.kind == "drop_msg":
                self.stats["drops"] += 1
                return
            if f is not None and f.kind == "flip_bits":
                msg = corrupt_payload(msg)
        self.chan.send(msg)

    def _await_band(self, stage: int, src: int):
        key = (stage, src)
        retry = self.cfg.retry
        for attempt in range(retry.attempts):
            deadline = time.monotonic() + retry.attempt_timeout(attempt)
            while True:
                if key in self.inbox:
                    self.done_keys.add(key)
                    self.crc_failures.pop(key, None)
                    return self.inbox.pop(key)
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._pump(min(remaining, 0.05))
            self.stats["timeouts"] += 1
            if attempt + 1 < retry.attempts:
                self.stats["retries"] += 1
                self._send_resend(stage, src)
        cause = "checksum" if self.crc_failures.get(key) else "timeout"
        raise _ExchangeFailed(cause, stage, src, retry.attempts)

    # -- checkpoints -------------------------------------------------

    def _ckpt_path(self, phase: int) -> str:
        return os.path.join(self.cfg.ckpt_dir,
                            f"rank{self.rank}_phase{phase}.npz")

    def _write_ckpt(self, phase: int) -> None:
        path = self._ckpt_path(phase)
        tmp = path + ".tmp"
        with open(tmp, "wb") as f:
            np.savez(f, b0=self.bufs[0], b1=self.bufs[1],
                     phase=np.int64(phase))
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)  # atomic: a crash mid-write cannot corrupt

    def _prune_ckpt(self, phase: int) -> None:
        try:
            os.remove(self._ckpt_path(phase))
        except FileNotFoundError:
            pass

    def _restore(self, phase: int) -> None:
        if phase == 0:
            self.bufs = [buf.copy() for buf in self.init]
            return
        path = self._ckpt_path(phase)
        if not os.path.exists(path):
            os._exit(CHECKPOINT_MISSING)
        with np.load(path) as data:
            assert int(data["phase"]) == phase
            self.bufs = [data["b0"].copy(), data["b1"].copy()]

    # -- the run -----------------------------------------------------

    def _run_phase(self, p: int) -> None:
        tt, span = self.phases[p]
        plan_faults = self.cfg.fault_plan
        for si in range(self.n_stages):
            stage = p * self.n_stages + si
            self._bump("compute", p)
            if plan_faults is not None:
                if plan_faults.kill_fault(stage, self.rank) is not None:
                    os._exit(KILLED_BY_FAULT)
                f = plan_faults.stall_rank_fault(stage, self.rank)
                if f is not None:
                    # wedge with frozen *compute* progress, but keep
                    # pumping so an abort can still un-wedge us
                    end = time.monotonic() + f.stall_s
                    while time.monotonic() < end:
                        self._pump(min(0.05, end - time.monotonic()))
            dirty = np.zeros(self.shape, dtype=bool)
            # units were compiled with parity s % 2; a phase starting
            # at odd tt sees the swapped pair, so bufs[(tt + s) % 2]
            # and pair[s % 2] are the same buffer
            pair = (self.bufs if tt % 2 == 0
                    else [self.bufs[1], self.bufs[0]])
            arena = thread_arena()
            for per_s in self._stage_units[si]:
                for s in range(span):
                    entry = per_s[s]
                    if entry is None:
                        continue
                    unit, dirty_idx = entry
                    unit.run(pair, None, self.spec, arena)
                    dirty[dirty_idx] = True
            self._bump("exchange", p)
            for dst in self._neighbours():
                payload = self._band_payload(dst, dirty)
                self.outbox[(stage, dst)] = payload
                self._send_band(stage, dst, payload)
            for src in self._neighbours():
                self._apply_band(self._await_band(stage, src))

    def _await_commit(self, p: int) -> None:
        while True:
            msg = self._pump(0.25)
            if (msg is not None and msg.kind == COMMIT
                    and tuple(msg.key) == (p,)):
                return

    def _await_resume(self) -> None:
        while True:
            msg = self._pump(0.25)
            if msg is not None and msg.kind == RESUME:
                return

    def _send_result(self) -> None:
        lo, hi = self.bounds[self.rank]
        sl = [slice(None)] * len(self.shape)
        sl[self.cfg.axis] = slice(lo, hi)
        slab = self.bufs[self.cfg.steps % 2][self.interior][tuple(sl)].copy()
        self.chan.send(make_data_message(
            RESULT, self.rank, COORDINATOR, self.epoch, RESULT_KEY,
            (slab, dict(self.stats, plan_compiles=self._plan_compiles)),
        ))

    def _handle_abort(self, ab: _PhaseAborted) -> int:
        """Restore, report, and wait out the resume barrier.

        Loops because a *new* abort can land while we wait for resume
        (a second rank failing mid-recovery bumps the epoch again).
        Returns the phase index execution resumes from.
        """
        while True:
            self.epoch = ab.epoch
            p = ab.restore_phase
            self._restore(p)
            self.inbox.clear()
            self.outbox.clear()
            self.done_keys.clear()
            self.crc_failures.clear()
            self._bump("restored", p)
            self._send_ctrl(RESTORED)
            try:
                self._await_resume()
                return p
            except _PhaseAborted as again:
                ab = again

    def run(self) -> None:
        if self.cfg.fault_plan is not None and self.cfg.incarnation > 0:
            self.cfg.fault_plan.preburn_rank_lifecycle(
                self.rank, self.cfg.incarnation)
        beat = threading.Thread(target=self._heartbeat_loop, daemon=True)
        beat.start()
        p = self.cfg.restore_phase
        if p > 0:
            self._restore(p)
        try:
            self._send_ctrl(HELLO, payload=self.cfg.incarnation)
            try:
                self._await_resume()
            except _PhaseAborted as ab:
                p = self._handle_abort(ab)
            while True:
                try:
                    while p < len(self.phases):
                        self._run_phase(p)
                        self._write_ckpt(p + 1)
                        self._bump("barrier", p)
                        self._send_ctrl(PHASE_DONE, key=(p,),
                                        payload=dict(self.stats))
                        self.stats = dict(drops=0, timeouts=0, retries=0,
                                          checksum_failures=0)
                        self._await_commit(p)
                        self._prune_ckpt(p)
                        p += 1
                    self._bump("done", p)
                    self._send_result()
                    while True:  # park: serve result retransmits
                        self._pump(0.25)
                except _PhaseAborted as ab:
                    p = self._handle_abort(ab)
                except _ExchangeFailed as exc:
                    self._send_ctrl(FAILURE, key=(exc.stage, exc.src),
                                    payload=(exc.cause, exc.attempts,
                                             dict(self.stats)))
                    self.stats = dict(drops=0, timeouts=0, retries=0,
                                      checksum_failures=0)
                    self._bump("failed", p)
                    try:
                        while True:  # park until the coordinator decides
                            self._pump(0.25)
                    except _PhaseAborted as ab:
                        p = self._handle_abort(ab)
        except _Shutdown:
            pass
        finally:
            self._beat_stop.set()


def worker_main(cfg: WorkerConfig, conn) -> None:
    """Process entry point for one rank incarnation."""
    chan = Channel(conn)
    try:
        _Worker(cfg, chan).run()
    except ChannelClosed:
        os._exit(ORPHANED)
