"""Region schedules — the common currency of all tiling schemes.

A :class:`RegionSchedule` is a flattened tiling: an ordered list of
:class:`ScheduledTask`, each performing a sequence of
``(global time step t, hyper-rectangle)`` updates (advance every point
of the rectangle from time ``t`` to ``t+1``), annotated with a
*barrier group*.  Semantics:

* groups execute in ascending order with a barrier between groups;
* tasks inside one group are independent and may execute in any order
  or concurrently;
* actions inside one task execute in their listed order.

A schedule is *valid* for ``T`` steps if executing it (in any
group/task-order-respecting interleaving) advances every interior
point from time 0 to time ``T`` while respecting the stencil's
dependences with the two-buffer (ping-pong) discipline.  Validity is
established empirically against the naive reference by
:func:`verify_schedule`; schemes with redundant computation (overlapped
tiling) remain valid because duplicate updates write identical values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.stencils.grid import Grid
from repro.stencils.reference import reference_sweep
from repro.stencils.spec import (
    Region,
    StencilSpec,
    region_is_empty,
    region_size,
)


@dataclass(frozen=True, slots=True)
class RegionAction:
    """One vectorised update: rectangle ``region`` at global step ``t``."""

    t: int
    region: Region

    @property
    def points(self) -> int:
        return region_size(self.region)


@dataclass(slots=True)
class ScheduledTask:
    """A unit of parallel work: ordered actions plus a barrier group."""

    group: int
    actions: List[RegionAction]
    label: str = ""

    @property
    def points(self) -> int:
        """Total point-updates (includes redundant recomputation)."""
        return sum(a.points for a in self.actions)

    @property
    def time_range(self) -> Tuple[int, int]:
        ts = [a.t for a in self.actions]
        return (min(ts), max(ts) + 1) if ts else (0, 0)

    def bounding_box(self) -> Optional[Region]:
        """Union bounding box of all action rectangles (None if empty)."""
        boxes = [a.region for a in self.actions if not region_is_empty(a.region)]
        if not boxes:
            return None
        d = len(boxes[0])
        return tuple(
            (min(b[j][0] for b in boxes), max(b[j][1] for b in boxes))
            for j in range(d)
        )

    def footprint_points(self) -> int:
        """Distinct grid points in the task's bounding box.

        Used by the machine model as the task's resident working set;
        an upper bound on distinct points touched, tight for the
        trapezoid/diamond/rectangle tasks all schemes here produce.
        """
        box = self.bounding_box()
        return region_size(box) if box is not None else 0


@dataclass
class RegionSchedule:
    """A complete tiling of ``steps`` time steps of one grid."""

    scheme: str
    shape: Tuple[int, ...]
    steps: int
    tasks: List[ScheduledTask] = field(default_factory=list)
    #: True for ghost-zone schemes whose tasks need private storage
    #: (see repro.baselines.overlapped); execute_schedule refuses them.
    private_tasks: bool = False
    #: Explicit declaration that the scheme recomputes points
    #: (overlapped tiling): the sanitizer only tolerates a point being
    #: written twice per step when this is set — duplicate updates of
    #: undeclared schemes are flagged even though they would pass the
    #: empirical check by writing identical values.
    redundant: bool = False
    #: Relative cost of one inter-group synchronisation (1.0 = a full
    #: OpenMP-style barrier; MWD-style intra-group wavefront syncs are
    #: cheaper).  Consumed by the machine model.
    group_sync_cost: float = 1.0
    #: Relative per-task dispatch cost (1.0 = OpenMP static chunk).
    #: Runtimes with dynamic blocking / recursive descent / work
    #: stealing (Pochoir's Cilk) pay more per task.  Consumed by the
    #: machine model.
    task_overhead_factor: float = 1.0

    def add(self, group: int, actions: Iterable[RegionAction],
            label: str = "") -> ScheduledTask:
        task = ScheduledTask(group=group, actions=list(actions), label=label)
        self.tasks.append(task)
        return task

    @property
    def num_groups(self) -> int:
        return 1 + max((t.group for t in self.tasks), default=-1)

    def groups(self) -> Dict[int, List[ScheduledTask]]:
        out: Dict[int, List[ScheduledTask]] = {}
        for t in self.tasks:
            out.setdefault(t.group, []).append(t)
        return out

    def total_points(self) -> int:
        return sum(t.points for t in self.tasks)

    def validate_structure(self) -> None:
        """Cheap structural checks (groups ordered, actions in range)."""
        for task in self.tasks:
            if task.group < 0:
                raise ValueError(f"negative barrier group in {task.label!r}")
            for a in task.actions:
                if not 0 <= a.t < self.steps:
                    raise ValueError(
                        f"action at t={a.t} outside [0, {self.steps}) in "
                        f"{task.label!r}"
                    )
                if len(a.region) != len(self.shape):
                    raise ValueError(
                        f"region rank mismatch in {task.label!r}"
                    )


def _execute_schedule(spec: StencilSpec, grid: Grid,
                      schedule: RegionSchedule, budget=None) -> np.ndarray:
    """Sequential schedule walk (the ``serial`` backend's engine)."""
    from repro.api.driver import drive_groups, run_actions

    if spec.is_periodic:
        raise ValueError("region schedules assume non-periodic boundaries")
    if schedule.private_tasks:
        raise ValueError(
            f"schedule {schedule.scheme!r} needs private task storage; "
            f"use its dedicated executor (execute_overlapped)"
        )
    if grid.shape != schedule.shape:
        raise ValueError(
            f"grid shape {grid.shape} != schedule shape {schedule.shape}"
        )
    drive_groups(
        schedule,
        lambda gi, gid, ti, task: run_actions(spec, grid, task.actions),
        budget=budget,
    )
    return grid.interior(schedule.steps)


def execute_schedule(spec: StencilSpec, grid: Grid,
                     schedule: RegionSchedule) -> np.ndarray:
    """Run a schedule sequentially (groups in order, tasks in order).

    Returns the interior at time ``schedule.steps``.

    .. deprecated:: use ``repro.api.run`` / ``Session.execute`` with
       ``backend="serial"`` instead.
    """
    from repro.api import RunConfig, Session, warn_legacy

    warn_legacy("execute_schedule", "repro.api.run(backend='serial')")
    result = Session(spec).execute(
        grid, schedule, config=RunConfig(backend="serial", engine="naive"))
    return result.interior


def verify_schedule(spec: StencilSpec, schedule: RegionSchedule,
                    seed: int = 0, rtol: float = 1e-11,
                    atol: float = 1e-12, sanitize: bool = False) -> bool:
    """Check a schedule against the naive reference on a random grid.

    With ``sanitize=True`` the structural sanitizer
    (:func:`repro.runtime.sanitizer.sanitize_schedule`) runs first and
    raises :class:`~repro.runtime.errors.SanitizerViolation` on any
    finding — catching races and dependence bugs the numeric diff is
    blind to (e.g. double writes of identical values).
    """
    if sanitize:
        from repro.runtime.sanitizer import sanitize_schedule

        sanitize_schedule(spec, schedule).raise_if_violations()
    g_ref = Grid(spec, schedule.shape, init="random", seed=seed)
    g_sch = g_ref.copy()
    ref = reference_sweep(spec, g_ref, schedule.steps)
    if schedule.private_tasks:
        # ghost-zone schemes bring their own executor
        from repro.baselines.overlapped import execute_overlapped

        out = execute_overlapped(spec, g_sch, schedule)
    else:
        out = _execute_schedule(spec, g_sch, schedule)
    if np.issubdtype(spec.dtype, np.integer):
        return bool(np.array_equal(ref, out))
    return bool(np.allclose(ref, out, rtol=rtol, atol=atol))


def schedule_stats(schedule: RegionSchedule) -> Dict[str, float]:
    """Summary statistics used by the bench harness and the tests."""
    groups = schedule.groups()
    sizes = [t.points for t in schedule.tasks]
    widths = [len(ts) for ts in groups.values()]
    interior = 1
    for n in schedule.shape:
        interior *= n
    required = interior * schedule.steps
    total = schedule.total_points()
    return {
        "scheme": schedule.scheme,
        "tasks": len(schedule.tasks),
        "groups": len(groups),
        "total_point_updates": total,
        "required_point_updates": required,
        "redundancy": (total / required - 1.0) if required else 0.0,
        "max_group_width": max(widths, default=0),
        "mean_group_width": float(np.mean(widths)) if widths else 0.0,
        "mean_task_points": float(np.mean(sizes)) if sizes else 0.0,
        "min_task_points": min(sizes, default=0),
        "max_task_points": max(sizes, default=0),
    }
