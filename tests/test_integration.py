"""Cross-module integration tests.

These exercise the whole stack at once — physics-level checks that the
kernels solve what they claim to solve, long multi-phase equivalence
runs across every executor, and end-to-end pipelines combining
tessellation, codegen and the distributed substrate.
"""

import numpy as np
import pytest

from repro import (
    Grid,
    get_stencil,
    make_lattice,
    reference_sweep,
    run_pointwise,
)
from repro.core.executor import _run_blocked, _run_merged
from repro.core.codegen import run_generated
from repro.core.paper1d import run_paper1d
from repro.core.paper2d import run_paper2d
from repro.core.profiles import AxisProfile, TessLattice
from repro.distributed.exec import _execute_distributed


class TestHeatPhysics:
    """The heat kernels must behave like discrete heat equations."""

    def test_sine_mode_decays_exponentially(self):
        """On a periodic domain, u(x) = sin(kx) is an eigenfunction of
        the 3-point smoother with eigenvalue 1 - 0.25(1 - cos k)."""
        spec = get_stencil("heat1d", boundary="periodic")
        n = 64
        k = 2 * np.pi / n
        grid = Grid(spec, (n,), init="zeros")
        x = np.arange(n)
        grid.interior(0)[...] = np.sin(k * x)
        steps = 40
        lat = TessLattice((AxisProfile.uniform(n, 4, periodic=True),))
        out = run_pointwise(spec, grid, lat, steps)
        lam = 1.0 - 0.25 * (1.0 - np.cos(k))
        expect = lam ** steps * np.sin(k * x)
        assert np.allclose(out, expect, atol=1e-12)

    def test_maximum_principle(self):
        """Weighted averages never create new extrema."""
        spec = get_stencil("heat2d")
        grid = Grid(spec, (24, 24), seed=3)
        u0 = grid.interior(0).copy()
        lat = make_lattice(spec, (24, 24), 3)
        out = _run_merged(spec, grid, lat, 9)
        assert out.max() <= u0.max() + 1e-12
        assert out.min() >= min(u0.min(), 0.0) - 1e-12

    def test_diffusion_smooths(self):
        """Total variation decreases monotonically under diffusion."""
        spec = get_stencil("heat1d")
        grid = Grid(spec, (100,), seed=7)
        tv = [np.abs(np.diff(grid.interior(0))).sum()]
        for t in range(8):
            reference_sweep(spec, grid, 1, t0=t)
            tv.append(np.abs(np.diff(grid.interior(t + 1))).sum())
        assert all(b <= a + 1e-12 for a, b in zip(tv, tv[1:]))

    def test_3d_impulse_spreads_symmetrically(self):
        spec = get_stencil("heat3d")
        grid = Grid(spec, (15, 15, 15), init="impulse")
        lat = make_lattice(spec, (15, 15, 15), 2)
        out = _run_blocked(spec, grid, lat, 5)
        # symmetry of the star kernel: all axis permutations agree
        assert np.allclose(out, out.transpose(1, 0, 2))
        assert np.allclose(out, out.transpose(2, 1, 0))
        assert np.allclose(out, out[::-1, :, :])


class TestLongRunEquivalence:
    """Many phases, odd geometry, all executors, one answer."""

    @pytest.mark.parametrize("kernel", ["heat2d", "2d9p", "life"])
    def test_2d_long_run(self, kernel):
        spec = get_stencil(kernel)
        shape = (37, 41)
        steps = 25  # > 8 phases at b=3, truncated tail
        g = Grid(spec, shape, seed=13)
        ref = reference_sweep(spec, g.copy(), steps)
        lat = make_lattice(spec, shape, 3)
        outs = {
            "pointwise": run_pointwise(spec, g.copy(), lat, steps),
            "blocked": _run_blocked(spec, g.copy(), lat, steps),
            "merged": _run_merged(spec, g.copy(), lat, steps),
            "generated": run_generated(spec, g.copy(), steps, 3),
            "paper2d": run_paper2d(spec, g.copy(), 10, 10, 2, steps),
        }
        outs["distributed"], _ = _execute_distributed(
            spec, g.copy(), lat, steps, ranks=3
        )
        for name, out in outs.items():
            if np.issubdtype(spec.dtype, np.integer):
                assert np.array_equal(ref, out), name
            else:
                assert np.allclose(ref, out, rtol=1e-10, atol=1e-11), name

    def test_1d_long_run(self):
        spec = get_stencil("heat1d")
        n, steps = 300, 70
        g = Grid(spec, (n,), seed=21)
        ref = reference_sweep(spec, g.copy(), steps)
        lat = make_lattice(spec, (n,), 8)
        for out in (
            _run_merged(spec, g.copy(), lat, steps),
            run_paper1d(spec, g.copy(), 32, 8, steps),
            run_generated(spec, g.copy(), steps, 8),
        ):
            assert np.allclose(ref, out, rtol=1e-10, atol=1e-11)

    def test_resume_mid_run(self):
        """Executors compose across t0 offsets (phase re-alignment)."""
        spec = get_stencil("heat2d")
        shape = (20, 22)
        g1 = Grid(spec, shape, seed=5)
        g2 = g1.copy()
        lat = make_lattice(spec, shape, 2)
        ref = reference_sweep(spec, g1, 10)
        _run_blocked(spec, g2, lat, 4)
        out = _run_blocked(spec, g2, lat, 6, t0=4)
        assert np.allclose(ref, out, rtol=1e-11, atol=1e-12)


class TestFloat32:
    def test_single_precision_pipeline(self):
        from repro.stencils.operators import LinearStencilOperator
        from repro.stencils.spec import StencilSpec

        op = LinearStencilOperator(
            [(0, 0), (-1, 0), (1, 0), (0, -1), (0, 1)],
            [0.5, 0.125, 0.125, 0.125, 0.125],
            dtype=np.float32,
        )
        spec = StencilSpec("heat2d-f32", 2, op)
        g = Grid(spec, (20, 20), seed=2)
        assert g.at(0).dtype == np.float32
        ref = reference_sweep(spec, g.copy(), 6)
        lat = make_lattice(spec, (20, 20), 2)
        out = _run_merged(spec, g.copy(), lat, 6)
        assert out.dtype == np.float32
        assert np.allclose(ref, out, rtol=1e-5, atol=1e-6)
