"""Cross-validation against independent implementations.

Two of the repository's own building blocks are re-derived with
third-party code and compared:

* the linear stencil operators against ``scipy.ndimage.convolve`` /
  ``correlate`` (an entirely separate convolution engine);
* the work-stealing levelling against ``networkx`` longest-path depths
  on an explicitly constructed dependence DAG.
"""

import networkx as nx
import numpy as np
import pytest
from scipy import ndimage

from repro import Grid, get_stencil
from repro.baselines import trapezoid_schedule
from repro.runtime.levelize import levelize
from repro.stencils import reference_sweep


def _kernel_array(spec):
    """Dense convolution kernel equivalent to the linear operator."""
    order = spec.order
    size = 2 * order + 1
    k = np.zeros((size,) * spec.ndim)
    for off, c in zip(spec.offsets, spec.operator.coeffs):
        idx = tuple(order + o for o in off)
        k[idx] = c
    return k


class TestAgainstScipy:
    @pytest.mark.parametrize("name", ["heat1d", "1d5p", "heat2d", "2d9p",
                                      "heat3d", "3d27p"])
    def test_one_step_equals_scipy_correlate(self, name):
        spec = get_stencil(name, boundary="periodic")
        rng = np.random.default_rng(3)
        u = rng.random((12,) * spec.ndim)
        ours = spec.operator.apply_wrapped(u)
        # correlate with mode='wrap' is exactly the periodic stencil
        theirs = ndimage.correlate(u, _kernel_array(spec), mode="wrap")
        assert np.allclose(ours, theirs, rtol=1e-12, atol=1e-13)

    def test_dirichlet_step_equals_scipy_constant(self):
        spec = get_stencil("heat2d")
        g = Grid(spec, (16, 14), seed=5)
        u0 = g.interior(0).copy()
        reference_sweep(spec, g, 1)
        theirs = ndimage.correlate(u0, _kernel_array(spec),
                                   mode="constant", cval=0.0)
        assert np.allclose(g.interior(1), theirs, rtol=1e-12, atol=1e-13)

    def test_multi_step_against_repeated_convolution(self):
        spec = get_stencil("heat1d", boundary="periodic")
        g = Grid(spec, (32,), seed=9)
        u = g.interior(0).copy()
        steps = 7
        from repro.core.profiles import AxisProfile, TessLattice
        from repro.core.pointwise import run_pointwise

        lat = TessLattice((AxisProfile.uniform(32, 4, periodic=True),))
        ours = run_pointwise(spec, g, lat, steps)
        k = _kernel_array(spec)
        for _ in range(steps):
            u = ndimage.correlate(u, k, mode="wrap")
        assert np.allclose(ours, u, rtol=1e-11, atol=1e-12)


class TestLevelizeAgainstNetworkx:
    def _dep_graph(self, spec, schedule):
        """Explicit dependence DAG with the same interaction predicate
        levelize uses, built independently with networkx."""
        tasks = sorted(
            (t for t in schedule.tasks if t.actions),
            key=lambda t: t.group,
        )
        g = nx.DiGraph()
        g.add_nodes_from(range(len(tasks)))
        slopes = spec.slopes
        for i, a in enumerate(tasks):
            alo, ahi = a.time_range
            abox = a.bounding_box()
            for j in range(i + 1, len(tasks)):
                btask = tasks[j]
                if btask.group == a.group:
                    continue
                blo, bhi = btask.time_range
                if blo > ahi or alo > bhi:
                    continue
                bbox = btask.bounding_box()
                if all(
                    al - s < bh and bl < ah + s
                    for (al, ah), (bl, bh), s in zip(abox, bbox, slopes)
                ):
                    g.add_edge(i, j)
        return tasks, g

    def test_levels_equal_longest_paths(self):
        spec = get_stencil("heat2d")
        raw = trapezoid_schedule(spec, (48, 40), 8, base_dt=2,
                                 base_widths=(10, 10))
        lev = levelize(spec, raw)
        tasks, g = self._dep_graph(spec, raw)
        # networkx longest-path depth per node
        depth = {n: 0 for n in g.nodes}
        for n in nx.topological_sort(g):
            for _, m in g.out_edges(n):
                depth[m] = max(depth[m], depth[n] + 1)
        # levelize emits tasks in group-sorted (stable) order, matching
        # `tasks`; compare positionally (labels are not unique)
        assert len(lev.tasks) == len(tasks)
        for i, task in enumerate(lev.tasks):
            assert task.group == depth[i], (i, task.label)

    def test_group_count_equals_dag_critical_path(self):
        spec = get_stencil("heat1d")
        raw = trapezoid_schedule(spec, (120,), 10, base_dt=2)
        lev = levelize(spec, raw)
        _, g = self._dep_graph(spec, raw)
        assert lev.num_groups == nx.dag_longest_path_length(g) + 1
