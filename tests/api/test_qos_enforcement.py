"""QoS enforcement matrix: every registered backend honours the policy.

Acceptance criteria from the QoS PR, parity-matrix style:

* a pre-cancelled token stops every backend with
  :class:`RunCancelled` — including the empty ``steps=0`` schedule
  (every executor checks the budget at entry);
* an already-expired deadline stops every backend with
  :class:`RunDeadlineExceeded` naming the boundary it fired at;
* a one-byte memory ceiling is refused by every backend with
  :class:`AdmissionRejected` *before any buffer is allocated*;
* the fallback chain degrades across backends, records every hop in
  ``RunStats.degradations`` and recovers bit-identically;
* a config with no policy takes the exact pre-QoS code path (the
  budget/admission machinery is provably never invoked).
"""

import numpy as np
import pytest

from repro.api import (
    CancelToken,
    QoSPolicy,
    RunConfig,
    Session,
    run,
)
from repro.api.backends import BackendUnsupported, backend_names
from repro.runtime.errors import (
    RunCancelled,
    RunDeadlineExceeded,
)
from repro.runtime.qos import AdmissionRejected, estimate_peak_bytes
from repro.stencils import Grid, heat1d, reference_sweep

pytestmark = [pytest.mark.api, pytest.mark.qos]

SHAPE = (50,)
B = 4
STEPS = 6

_EXTRA_MARKS = {
    "elastic": (pytest.mark.dist,),  # spawns real rank processes
    "compiled": (pytest.mark.engine,),
}

BACKEND_PARAMS = [
    pytest.param(name, marks=_EXTRA_MARKS.get(name, ()))
    for name in backend_names()
]


def _config(backend, steps=STEPS, **kw):
    # every backend runs 'tess' except the ghost-zone executor, which
    # only accepts its own scheme — the point here is enforcement, not
    # the support table (tests/api/test_parity_matrix.py owns that)
    scheme = "overlapped" if backend == "baseline:overlapped" else "tess"
    return RunConfig(shape=SHAPE, steps=steps, scheme=scheme, b=B,
                     backend=backend, threads=2, ranks=2, **kw)


# -- the enforcement sweep -------------------------------------------

@pytest.mark.parametrize("steps", (0, STEPS))
@pytest.mark.parametrize("backend", BACKEND_PARAMS)
def test_expired_deadline_stops_every_backend(backend, steps):
    config = _config(backend, steps=steps,
                     qos=QoSPolicy(deadline_s=1e-9))
    with pytest.raises(RunDeadlineExceeded) as excinfo:
        run(heat1d(), config)
    err = excinfo.value
    assert err.deadline_s == 1e-9
    assert err.elapsed_s > err.deadline_s
    assert err.where, "the error must name the boundary it fired at"


@pytest.mark.parametrize("backend", BACKEND_PARAMS)
def test_precancelled_token_stops_every_backend(backend):
    token = CancelToken()
    token.cancel()
    config = _config(backend, qos=QoSPolicy(cancel_token=token))
    with pytest.raises(RunCancelled):
        run(heat1d(), config)


@pytest.mark.parametrize("backend", BACKEND_PARAMS)
def test_admission_ceiling_refuses_every_backend(backend):
    config = _config(backend, qos=QoSPolicy(max_memory_bytes=1))
    with pytest.raises(AdmissionRejected) as excinfo:
        run(heat1d(), config)
    err = excinfo.value
    assert err.backend == backend
    assert err.estimated_bytes > err.limit_bytes == 1


def test_generous_policy_changes_nothing():
    """A policy nowhere near its limits must not perturb the result."""
    spec = heat1d()
    ref = reference_sweep(spec, Grid(spec, SHAPE, seed=0), STEPS)
    token = CancelToken()
    config = _config("serial", qos=QoSPolicy(
        deadline_s=3600.0, cancel_token=token,
        max_memory_bytes=1 << 40))
    result = run(spec, config)
    assert np.array_equal(ref, result.interior)
    assert result.stats.degradations == []


# -- mid-run deadline (not just the entry check) ---------------------

def test_midrun_deadline_fires_at_group_boundary():
    """A stall fault burns the budget mid-run; the deadline must fire
    at a later cooperative boundary, not only at entry."""
    from repro.runtime.faults import FaultPlan, FaultSpec

    spec = heat1d()
    plan = FaultPlan([FaultSpec("stall", group=1, task=0, stall_s=0.3)])
    config = _config("threaded", qos=QoSPolicy(deadline_s=0.1),
                     fault_plan=plan)
    with pytest.raises(RunDeadlineExceeded) as excinfo:
        run(spec, config)
    assert excinfo.value.elapsed_s >= 0.1
    assert "entry" not in excinfo.value.where


# -- zero-overhead default -------------------------------------------

def test_no_policy_never_touches_qos_machinery(monkeypatch):
    """config.qos is None must take the exact pre-QoS code path: the
    budget is never armed, admission is never consulted."""
    import repro.runtime.qos as qos_mod

    def boom(*a, **kw):
        raise AssertionError("QoS machinery invoked without a policy")

    monkeypatch.setattr(qos_mod.RunBudget, "from_policy", boom)
    monkeypatch.setattr(qos_mod, "admit", boom)
    spec = heat1d()
    ref = reference_sweep(spec, Grid(spec, SHAPE, seed=0), STEPS)
    result = run(spec, _config("serial"))
    assert np.array_equal(ref, result.interior)

    # sanity: with a policy the same patch trips, proving the gate
    with pytest.raises(AssertionError):
        run(spec, _config("serial", qos=QoSPolicy(deadline_s=60.0)))


# -- fallback chain --------------------------------------------------

def test_fallback_recovers_from_unsupported_backend():
    """baseline:merged refuses scheme 'naive'; the chain lands on
    serial and the result is bit-identical to the reference."""
    spec = heat1d()
    ref = reference_sweep(spec, Grid(spec, SHAPE, seed=0), STEPS)
    config = RunConfig(shape=SHAPE, steps=STEPS, scheme="naive", b=B,
                       backend="baseline:merged",
                       qos=QoSPolicy(fallback=("serial",)))
    result = run(spec, config)
    assert np.array_equal(ref, result.interior)
    assert result.stats.backend == "serial"
    (hop,) = result.stats.degradations
    assert hop["from"] == "baseline:merged"
    assert hop["to"] == "serial"
    assert hop["error"] == "BackendUnsupported"
    assert hop["detail"]


def test_fallback_chain_dedupes_and_exhausts():
    spec = heat1d()
    # merged repeated in its own chain is skipped; blocked also refuses
    # 'naive', so the chain exhausts and re-raises the last refusal
    config = RunConfig(shape=SHAPE, steps=STEPS, scheme="naive", b=B,
                       backend="baseline:merged",
                       qos=QoSPolicy(fallback=("baseline:merged",
                                               "baseline:blocked")))
    with pytest.raises(BackendUnsupported) as excinfo:
        run(spec, config)
    assert excinfo.value.backend == "baseline:blocked"


def test_fallback_recovers_from_admission_rejection():
    """A ceiling between the replicated elastic footprint and the lean
    serial footprint: elastic is refused at admission (before any rank
    process spawns), serial runs."""
    spec = heat1d()
    lean = _config("serial")
    fat = _config("elastic")
    lo = estimate_peak_bytes(spec, SHAPE, lean)
    hi = estimate_peak_bytes(spec, SHAPE, fat)
    assert lo < hi
    config = _config("elastic", qos=QoSPolicy(
        max_memory_bytes=(lo + hi) // 2, fallback=("serial",)))
    ref = reference_sweep(spec, Grid(spec, SHAPE, seed=0), STEPS)
    result = run(spec, config)
    assert np.array_equal(ref, result.interior)
    (hop,) = result.stats.degradations
    assert hop["from"] == "elastic"
    assert hop["error"] == "AdmissionRejected"


def test_cancellation_is_never_retried():
    """The shared token stays tripped across hops: a cancelled run
    stays cancelled even with a willing fallback chain."""
    token = CancelToken()
    token.cancel()
    config = _config("threaded", qos=QoSPolicy(
        cancel_token=token, fallback=("serial", "baseline:merged")))
    with pytest.raises(RunCancelled):
        run(heat1d(), config)


def test_deadline_hop_rearms_a_fresh_budget(monkeypatch):
    """Per-attempt deadline semantics: the hop after a deadline expiry
    re-enters the pipeline and re-arms, and the hop is recorded."""
    spec = heat1d()
    ref = reference_sweep(spec, Grid(spec, SHAPE, seed=0), STEPS)
    real = Session._pipeline_once
    calls = []

    def flaky(self, config, **kw):
        calls.append(config.backend)
        if config.backend == "threaded":
            raise RunDeadlineExceeded("group 1", 0.2, 0.1)
        return real(self, config, **kw)

    monkeypatch.setattr(Session, "_pipeline_once", flaky)
    config = _config("threaded", qos=QoSPolicy(
        deadline_s=60.0, fallback=("serial",)))
    result = run(spec, config)
    assert calls == ["threaded", "serial"]
    assert np.array_equal(ref, result.interior)
    (hop,) = result.stats.degradations
    assert (hop["from"], hop["to"], hop["error"]) == (
        "threaded", "serial", "RunDeadlineExceeded")


def test_fallback_restores_caller_grid_between_hops(monkeypatch):
    """A hop that mutated the caller's buffers mid-run must not leak
    its partial state into the next attempt."""
    spec = heat1d()
    grid = Grid(spec, SHAPE, init="random", seed=7)
    ref = reference_sweep(spec, grid.copy(), STEPS)
    pristine = [buf.copy() for buf in grid.buffers]
    real = Session._pipeline_once
    seen = []

    def vandal(self, config, **kw):
        if config.backend == "threaded":
            kw["grid"].buffers[0][:] = np.nan  # partial mid-run state
            raise RunDeadlineExceeded("group 2", 0.2, 0.1)
        seen.append([buf.copy() for buf in kw["grid"].buffers])
        return real(self, config, **kw)

    monkeypatch.setattr(Session, "_pipeline_once", vandal)
    config = _config("threaded", qos=QoSPolicy(
        deadline_s=60.0, fallback=("serial",)))
    result = Session(spec).execute(grid, config=config)
    for before, after in zip(pristine, seen[0]):
        assert np.array_equal(before, after), "hop saw vandalised state"
    assert np.array_equal(ref, result.interior)


@pytest.mark.dist
@pytest.mark.faults
def test_chaos_kill_rank_exhaustion_falls_back_to_threaded():
    """Satellite acceptance: a kill_rank fault with a zero respawn
    budget loses the rank for good (RankLostError); the chain re-runs
    on 'threaded' and completes bit-identically to the naive oracle
    with exactly one recorded hop."""
    from repro.distributed import ElasticConfig
    from repro.runtime.faults import FaultPlan, FaultSpec

    spec = heat1d()
    shape, steps = (400,), 16
    ref = reference_sweep(spec, Grid(spec, shape, seed=0), steps)
    config = RunConfig(
        shape=shape, steps=steps, scheme="tess", b=B,
        backend="elastic", ranks=4, threads=2,
        fault_plan=FaultPlan([FaultSpec("kill_rank", group=3, task=1)]),
        elastic=ElasticConfig(max_respawns=0, stall_timeout_s=0.6,
                              heartbeat_timeout_s=1.5, deadline_s=60.0),
        qos=QoSPolicy(fallback=("threaded",)))
    result = run(spec, config)
    assert np.array_equal(ref, result.interior), (
        "fallback recovery diverged from the naive oracle")
    assert result.stats.backend == "threaded"
    assert len(result.stats.degradations) == 1
    hop = result.stats.degradations[0]
    assert (hop["from"], hop["to"], hop["error"]) == (
        "elastic", "threaded", "RankLostError")


def test_fallback_records_trace_events():
    from repro.runtime.tracing import ExecutionTrace

    spec = heat1d()
    trace = ExecutionTrace(scheme="naive")
    config = RunConfig(shape=SHAPE, steps=STEPS, scheme="naive", b=B,
                       backend="baseline:merged", trace=trace,
                       qos=QoSPolicy(fallback=("serial",)))
    result = run(spec, config)
    assert result.stats.degradations
    kinds = [e.kind for e in trace.events]
    assert "fallback" in kinds
    (ev,) = [e for e in trace.events if e.kind == "fallback"]
    assert ev.label == "baseline:merged"
    assert "serial" in ev.detail
