#!/usr/bin/env python3
"""Compare every tiling scheme on one problem — validity, structure,
simulated performance and real wall clock.

This is the library's "everything on one screen" tour: the seven
schemes are compiled to the common RegionSchedule form, validated
against the naive sweep, analysed (tasks/barriers/redundancy), run
through the simulated 24-core machine, and timed for real on this
host's NumPy substrate.

Run:  python examples/compare_schemes.py
"""

from repro import get_stencil, make_lattice
from repro.baselines import (
    diamond_schedule,
    hexagonal_schedule,
    mwd_schedule,
    naive_schedule,
    overlapped_schedule,
    skewed_schedule,
    spatial_schedule,
    trapezoid_schedule,
)
from repro.bench.report import format_table
from repro.core.schedules import tess_schedule
from repro.machine import paper_machine, simulate
from repro.perf import time_schedule
from repro.runtime import levelize, schedule_stats, verify_schedule


def main() -> None:
    spec = get_stencil("heat2d")
    shape = (480, 480)
    steps = 32
    b = 8

    lattice = make_lattice(spec, shape, b, core_widths=(8, 16))
    schemes = {
        "naive": naive_schedule(spec, shape, steps, chunks=24),
        "spatial": spatial_schedule(spec, shape, steps, (64, 64)),
        "overlapped": overlapped_schedule(spec, shape, steps, (60, 60), 4),
        "skewed/diamond": diamond_schedule(spec, shape, b, steps),
        "pochoir-style": levelize(
            spec, trapezoid_schedule(spec, shape, steps, base_dt=4,
                                     base_widths=(40, 40))
        ),
        "girih-style": mwd_schedule(spec, shape, b, steps, chunks=6),
        "hexagonal": hexagonal_schedule(spec, shape, b, steps,
                                        hex_width=2 * b),
        "time-skewed": skewed_schedule(spec, shape, steps, 60),
        "tessellation": tess_schedule(spec, shape, lattice, steps,
                                      merged=True),
    }

    machine = paper_machine().scaled_caches(0.05)
    rows = []
    for name, sched in schemes.items():
        ok = verify_schedule(spec, sched)
        st = schedule_stats(sched)
        sim = simulate(spec, sched, machine, 24)
        secs, _ = time_schedule(spec, sched)
        rows.append([
            name,
            "yes" if ok else "NO!",
            st["tasks"],
            st["groups"],
            f"{st['redundancy'] * 100:.1f}%",
            f"{sim.gstencils:.2f}",
            f"{sim.traffic_gb * 1e3:.0f}",
            f"{secs * 1e3:.0f}",
        ])
    print(f"{spec.describe()}   grid={shape}  T={steps}\n")
    print(format_table(
        ["scheme", "valid", "tasks", "barriers", "redundant",
         "sim GStencil/s @24c", "sim traffic MB", "real ms (1 core)"],
        rows,
    ))
    print(
        "\nNotes: 'valid' = bit-agreement with the naive sweep; the "
        "simulated columns use the paper's 2x12-core machine (caches "
        "scaled to the problem); the real column is single-core NumPy "
        "wall clock on this host."
    )


if __name__ == "__main__":
    main()
