"""Analytic performance models and measurement utilities.

* :mod:`~repro.perf.model` — arithmetic intensity, cache-complexity
  and memory-traffic formulas (the quantities behind Figure 12), and a
  closed-form roofline;
* :mod:`~repro.perf.wallclock` — wall-clock measurement of real
  (NumPy) schedule execution, used by the pytest-benchmark suite.
"""

from repro.perf.model import (
    arithmetic_intensity,
    naive_traffic_bytes,
    timetile_traffic_bytes,
    roofline_time_s,
    machine_balance,
)
from repro.perf.wallclock import time_schedule, time_executor

__all__ = [
    "arithmetic_intensity",
    "naive_traffic_bytes",
    "timetile_traffic_bytes",
    "roofline_time_s",
    "machine_balance",
    "time_schedule",
    "time_executor",
]
