#!/usr/bin/env python3
"""Quickstart: tessellated time tiling of a 2D heat stencil.

Builds the paper's two-level tessellation for a Heat-2D kernel, runs
the merged (§4.3) block executor, and verifies bit-level agreement
with the naive sweep.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Grid, get_stencil, make_lattice, reference_sweep, run_merged
from repro.core.schedules import tess_schedule
from repro.runtime import schedule_stats

def main() -> None:
    # 1. pick a stencil kernel (any of the paper's seven benchmarks)
    spec = get_stencil("heat2d")
    print(spec.describe())

    # 2. allocate a grid and a tessellation lattice: time-tile depth
    #    b=8, anisotropic core widths (the §4.2 coarsening)
    shape = (300, 300)
    steps = 32
    grid = Grid(spec, shape, init="gradient", seed=0)
    lattice = make_lattice(spec, shape, b=8, core_widths=(8, 16))

    # 3. run the merged tessellation executor
    out = run_merged(spec, grid.copy(), lattice, steps)

    # 4. verify against the naive reference
    ref = reference_sweep(spec, grid.copy(), steps)
    assert np.allclose(ref, out, rtol=1e-12, atol=1e-13)
    print(f"verified: {steps} steps on {shape} grid match the naive sweep")

    # 5. inspect the schedule the executor ran (tasks, barriers, ...)
    sched = tess_schedule(spec, shape, lattice, steps, merged=True)
    st = schedule_stats(sched)
    print(
        f"schedule: {st['tasks']} blocks in {st['groups']} barrier groups "
        f"({st['groups'] / (steps / lattice.b):.1f} syncs per phase), "
        f"0 redundant updates"
    )
    print(
        f"concurrency: up to {st['max_group_width']} independent blocks "
        f"per stage (concurrent start)"
    )


if __name__ == "__main__":
    main()
