"""Per-step rectangular space tiling (§1 "space blocking").

Each time step is tiled into hyper-rectangles; one barrier group per
step.  Improves single-step locality over the naive slab sweep (tile
working sets fit in cache) but, like it, exploits no temporal reuse —
the classic limitation the paper's introduction describes: "the
locality exploited by space blocking is limited by the neighbor
pattern size of a stencil".
"""

from __future__ import annotations

import itertools
from typing import Sequence

from repro.runtime.schedule import RegionAction, RegionSchedule
from repro.stencils.spec import StencilSpec


def spatial_schedule(
    spec: StencilSpec,
    shape: Sequence[int],
    steps: int,
    tile: Sequence[int],
) -> RegionSchedule:
    """``steps`` sweeps of rectangular ``tile``-sized space tiles."""
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    shape = tuple(int(n) for n in shape)
    tile = tuple(int(t) for t in tile)
    if len(shape) != spec.ndim or len(tile) != spec.ndim:
        raise ValueError("shape/tile rank mismatch")
    if any(t < 1 for t in tile):
        raise ValueError(f"tile sizes must be >= 1, got {tile}")
    grids = [range(0, n, t) for n, t in zip(shape, tile)]
    sched = RegionSchedule(scheme="spatial", shape=shape, steps=steps)
    for t in range(steps):
        for origin in itertools.product(*grids):
            region = tuple(
                (o, min(o + w, n)) for o, w, n in zip(origin, tile, shape)
            )
            sched.add(
                t,
                [RegionAction(t=t, region=region)],
                label=f"t{t}:tile{origin}",
            )
    return sched
