"""The supervisor: leased workers driving jobs through the pipeline.

One :class:`Supervisor` owns a :class:`~repro.service.jobstore.JobStore`
and a :class:`~repro.service.queue.JobQueue` and runs a small pool of
worker threads.  Each worker:

1. leases a queued job (``leases/<id>.lease``, heartbeat-renewed by a
   keeper thread so a live run is visibly claimed and a dead one is
   visibly stale);
2. drives it ``queued → admitted → running`` and executes through
   :meth:`repro.api.Session.run` — the same pipeline, QoS machinery
   and backends as a direct caller, with a per-job
   :class:`~repro.runtime.qos.CancelToken` grafted onto the job's QoS
   policy so ``cancel()`` stops it at the next cooperative boundary;
3. for checkpointable (local) backends, runs the job in *segments* of
   ``checkpoint_steps`` steps, sealing the padded ping-pong buffer
   into the store after each segment.  Schedules are deterministic
   replay, and every scheme is bit-identical to the naive sweep, so a
   run resumed from the buffer at step *k* finishes bit-identical to
   an uninterrupted run — the property the SIGKILL recovery test pins;
4. retries **transient** failures (executor deaths, injected faults)
   with exponential backoff plus deterministic jitter under a per-job
   retry budget; **permanent** verdicts (unsupported backend, usage
   errors, blown QoS deadlines, cancellation) fail or cancel
   immediately;
5. on startup, recovers: the store's journal scan re-queues jobs a
   dead supervisor left ``admitted``/``running``, and the worker that
   picks one up resumes from its newest restorable checkpoint — the
   resumption is journaled (``resumed_from_step``) and recorded as a
   ``resume`` event in the result's RunStats.

Cleanup discipline: the supervisor registers an ``atexit`` hook (the
elastic coordinator's pattern) so even an un-stopped supervisor sweeps
its lease files and half-written temp files; a SIGKILL cannot run it,
which is exactly what the startup recovery scan is for.
"""

from __future__ import annotations

import atexit
import random
import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.errors import JobNotFound
from repro.service.jobstore import (
    ADMITTED,
    CANCELLED,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    JobStore,
)
from repro.service.queue import JobQueue

__all__ = ["Supervisor", "SupervisorConfig"]

#: backends whose execution mutates the caller's Grid in place, so the
#: padded ping-pong buffer after a segment is the authoritative state
#: a later segment (or a recovered supervisor) can resume from.  The
#: distributed families scatter/gather rank-local slabs instead; jobs
#: on those backends run as one segment and restart from the journal.
_CHECKPOINTABLE = frozenset(
    ("serial", "compiled", "threaded", "resilient"))


@dataclass
class SupervisorConfig:
    """Tunable knobs of the durable job runtime."""

    #: worker threads leasing jobs concurrently
    workers: int = 2
    #: queue depth bound (refusals raise QueueSaturated, exit 10)
    queue_depth: int = 64
    #: ceiling on the queued jobs' summed admission estimates
    max_pending_bytes: Optional[int] = None
    #: lease lifetime; a lease not renewed for this long is stale
    lease_ttl_s: float = 30.0
    #: keeper-thread heartbeat period (lease renewal cadence)
    lease_renew_s: float = 2.0
    #: checkpoint every N steps on checkpointable backends (0 = only
    #: run whole; recovery then restarts from the journal)
    checkpoint_steps: int = 0
    #: default per-job retry budget for transient failures
    default_max_retries: int = 2
    #: base backoff before a retry; attempt ``k`` waits ``base * 2**k``
    retry_backoff_s: float = 0.05
    #: backoff ceiling
    retry_backoff_cap_s: float = 2.0
    #: multiplicative jitter span (0.25 = up to +25%), seeded per
    #: (job, attempt) so tests replay deterministically
    retry_jitter: float = 0.25
    #: worker poll period while the queue is idle
    poll_s: float = 0.05


@dataclass
class _Metrics:
    submitted: int = 0
    deduplicated: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    retries: int = 0
    resumes: int = 0
    refused: int = 0
    segments_run: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(vars(self))


def _grid_from_buffer(spec, shape: Tuple[int, ...], padded: np.ndarray):
    """Rebuild a Grid whose local time 0 holds the padded buffer.

    ``Grid.at(t)`` indexes ``buffers[t % 2]``; seeding both buffers
    with the checkpointed state makes local time 0 of the resumed
    segment equal global time *k* of the original run.
    """
    from repro.stencils.grid import Grid

    expected = tuple(spec.padded_shape(shape))
    if tuple(padded.shape) != expected:
        raise ValueError(
            f"checkpoint buffer shape {tuple(padded.shape)} does not "
            f"match padded grid shape {expected}")
    grid = Grid.__new__(Grid)
    grid.spec = spec
    grid.shape = tuple(shape)
    arr = np.array(padded, dtype=spec.dtype, copy=True)
    grid.buffers = [arr, arr.copy()]
    return grid


def _merge_block(blocks: List[Any]):
    """Field-wise sum of per-segment counter blocks (same type)."""
    blocks = [b for b in blocks if b is not None]
    if not blocks:
        return None
    if len(blocks) == 1:
        return blocks[0]
    merged = type(blocks[0])()
    for name, value in vars(merged).items():
        if isinstance(value, str):
            setattr(merged, name, getattr(blocks[-1], name, value))
        elif isinstance(value, dict):
            acc: Dict[Any, Any] = {}
            for b in blocks:
                for k, v in getattr(b, name, {}).items():
                    acc[k] = acc.get(k, 0) + v
            setattr(merged, name, acc)
        elif isinstance(value, (int, float)):
            setattr(merged, name,
                    type(value)(sum(getattr(b, name, 0) for b in blocks)))
    return merged


def _merge_stats(segments: List[Any], *, total_steps: int,
                 resume_step: int, job_id: str):
    """Fold per-segment RunStats into one job-level RunStats.

    Phase seconds, compile/hit counters and counter blocks sum across
    segments; the event streams concatenate (prefixed with a ``resume``
    event when the job restarted from a checkpoint); ``steps`` reports
    the job's total, not the last segment's.
    """
    from repro.runtime.tracing import RuntimeEvent

    last = segments[-1]
    if len(segments) == 1 and resume_step < 0:
        return last
    phases: Dict[str, float] = {}
    events: List[Any] = []
    if resume_step >= 0:
        events.append(RuntimeEvent(
            kind="resume", group=0, label=job_id,
            detail=f"resumed from checkpoint at step {resume_step}"))
    for seg in segments:
        for k, v in seg.phases.items():
            phases[k] = phases.get(k, 0.0) + float(v)
        events.extend(seg.events)
    merged = replace(
        last,
        steps=int(total_steps),
        phases=phases,
        events=events,
        comm=_merge_block([s.comm for s in segments]),
        resilience=_merge_block([s.resilience for s in segments]),
        cache=_merge_block([s.cache for s in segments]),
        plan_compiles=sum(int(s.plan_compiles) for s in segments),
        cache_hits=sum(int(s.cache_hits) for s in segments),
        degradations=[hop for s in segments for hop in s.degradations],
    )
    return merged


class Supervisor:
    """Worker pool that makes journaled jobs finish, whatever happens."""

    def __init__(self, store: JobStore,
                 config: Optional[SupervisorConfig] = None):
        self.store = store
        self.config = config or SupervisorConfig()
        self.queue = JobQueue(
            maxsize=self.config.queue_depth,
            max_pending_bytes=self.config.max_pending_bytes)
        self.metrics = _Metrics()
        self._owner = f"supervisor-{id(self):x}"
        self._threads: List[threading.Thread] = []
        self._keeper: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._started = False
        self._tokens: Dict[str, Any] = {}
        self._tokens_lock = threading.Lock()
        self._sessions: Dict[str, Any] = {}
        self._done_cond = threading.Condition()
        self.recovery = None  #: RecoveryReport of the last start()

    # -- lifecycle ----------------------------------------------------

    def start(self):
        """Recover the store, re-queue pending work, spawn workers."""
        if self._started:
            raise RuntimeError("supervisor already started")
        self._started = True
        self._stop.clear()
        self.recovery = self.store.recover()
        for job in self.store.jobs(state=QUEUED):
            # journaled work is never refused on the way back in
            self.queue.put(job, force=True)
        for wid in range(self.config.workers):
            t = threading.Thread(target=self._worker_loop, args=(wid,),
                                 name=f"repro-worker-{wid}", daemon=True)
            t.start()
            self._threads.append(t)
        self._keeper = threading.Thread(target=self._keeper_loop,
                                        name="repro-lease-keeper",
                                        daemon=True)
        self._keeper.start()
        # a dying parent sweeps its leases/tmp files even without a
        # clean stop(); a SIGKILL cannot run this — that is what the
        # startup recovery scan is for
        atexit.register(self._atexit_cleanup)
        return self.recovery

    def stop(self, timeout: float = 10.0) -> None:
        """Drain nothing, stop promptly: workers finish their current
        job segment and exit."""
        if not self._started:
            return
        self._stop.set()
        self.queue.close()
        for t in self._threads:
            t.join(timeout=timeout)
        if self._keeper is not None:
            self._keeper.join(timeout=timeout)
        self._threads = []
        self._keeper = None
        self._started = False
        atexit.unregister(self._atexit_cleanup)
        self._release_all_leases()
        self.store.sweep_tmp()

    def _atexit_cleanup(self) -> None:
        self._stop.set()
        self.queue.close()
        self._release_all_leases()
        try:
            self.store.sweep_tmp()
            self.store.close()
        except Exception:
            pass

    def _release_all_leases(self) -> None:
        with self._tokens_lock:
            active = list(self._tokens)
        for job_id in active:
            self.store.release_lease(job_id)

    # -- submission / control -----------------------------------------

    def submit(self, kernel: str, config: Dict[str, Any], *,
               priority: int = 0,
               max_retries: Optional[int] = None) -> Tuple[Job, bool]:
        """Admit, journal and enqueue one job (idempotent).

        Admission order is the backpressure contract: the queue bound
        is checked *before* the journal write, so a refused submission
        (:class:`~repro.runtime.errors.QueueSaturated`) leaves no
        record.  A deduplicated resubmission returns the existing job
        without touching the queue.
        """
        from repro.service.jobstore import job_identity

        _, _, _, key, estimate = job_identity(kernel, config)
        with self.store._lock:
            known = self.store._by_key.get(key)
        if known is None:
            try:
                self.queue.check_admit(estimate)
            except Exception:
                self.metrics.refused += 1
                raise
        job, created = self.store.submit(
            kernel, config, priority=priority,
            max_retries=(self.config.default_max_retries
                         if max_retries is None else max_retries))
        if created:
            self.metrics.submitted += 1
            self.queue.put(job, force=True)
        else:
            self.metrics.deduplicated += 1
        return job, created

    def cancel(self, job_id: str) -> Job:
        """Cancel a job: drop it from the queue, or trip its token.

        Queued jobs cancel immediately; a running job stops at its
        next cooperative QoS boundary (the PR-6 cancellation path) and
        is journaled ``cancelled`` by its worker.  Terminal jobs are
        returned unchanged — cancellation is idempotent.
        """
        job = self.store.get(job_id)
        if job.terminal:
            return job
        if self.queue.remove(job_id) and job.state == QUEUED:
            self.metrics.cancelled += 1
            return self.store.transition(job_id, CANCELLED,
                                         detail="cancelled while queued")
        with self._tokens_lock:
            token = self._tokens.get(job_id)
        if token is not None:
            token.cancel()
        return self.store.get(job_id)

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> Job:
        """Block until the job reaches a terminal state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.store.get(job_id)
            if job.terminal:
                return job
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return job
            with self._done_cond:
                self._done_cond.wait(
                    timeout=0.05 if remaining is None
                    else min(0.05, remaining))

    def snapshot_metrics(self) -> Dict[str, Any]:
        out = {
            "supervisor": self.metrics.as_dict(),
            "queue": {
                "depth": len(self.queue),
                "capacity": self.queue.maxsize,
                "pending_bytes": self.queue.pending_bytes,
            },
            "store": self.store.metrics(),
        }
        if self.recovery is not None:
            out["recovery"] = dict(vars(self.recovery))
        return out

    # -- worker internals ---------------------------------------------

    def _session(self, kernel: str):
        from repro import get_stencil
        from repro.api.session import Session

        session = self._sessions.get(kernel)
        if session is None:
            session = Session(get_stencil(kernel))
            self._sessions[kernel] = session
        return session

    def _worker_loop(self, wid: int) -> None:
        owner = f"{self._owner}/w{wid}"
        while not self._stop.is_set():
            job = self.queue.get(timeout=self.config.poll_s)
            if job is None:
                continue
            try:
                current = self.store.get(job.job_id)
            except JobNotFound:  # pragma: no cover - defensive
                continue
            if current.state != QUEUED:
                continue  # cancelled (or finalized) while waiting
            if not self.store.acquire_lease(job.job_id, owner,
                                            self.config.lease_ttl_s):
                continue  # someone live holds it; never run twice
            from repro.runtime.qos import CancelToken

            token = CancelToken()
            with self._tokens_lock:
                self._tokens[job.job_id] = token
            try:
                self.store.transition(job.job_id, ADMITTED,
                                      detail=f"leased by {owner}")
                self._run_job(current, owner, token)
            except Exception as exc:
                self._handle_failure(current, exc)
            finally:
                with self._tokens_lock:
                    self._tokens.pop(job.job_id, None)
                self.store.release_lease(job.job_id)
                with self._done_cond:
                    self._done_cond.notify_all()

    def _keeper_loop(self) -> None:
        """Heartbeat: renew the leases of every in-flight job."""
        while not self._stop.wait(self.config.lease_renew_s):
            with self._tokens_lock:
                active = list(self._tokens)
            for job_id in active:
                try:
                    self.store.renew_lease(
                        job_id, self._owner, self.config.lease_ttl_s)
                except Exception:  # pragma: no cover - defensive
                    pass

    def _run_job(self, job: Job, owner: str, token) -> None:
        """Execute one leased job, in checkpointed segments."""
        from repro.api.config import RunConfig
        from repro.runtime.qos import QoSPolicy
        from repro.stencils.grid import Grid

        session = self._session(job.kernel)
        spec = session.spec
        cfg = RunConfig.from_json(job.config).normalized()
        shape = tuple(cfg.shape) if cfg.shape is not None \
            else tuple(session.default_shape())
        qos = (replace(cfg.qos, cancel_token=token)
               if cfg.qos is not None else QoSPolicy(cancel_token=token))
        cfg = replace(cfg, shape=shape, qos=qos)
        total = int(cfg.steps)
        segmented = cfg.backend in _CHECKPOINTABLE

        grid = None
        resume_step = -1
        if segmented:
            restored = self.store.load_checkpoint(job.job_id)
            if restored is not None:
                step, padded = restored
                grid = _grid_from_buffer(spec, shape, padded)
                resume_step = int(step)
        self.store.transition(
            job.job_id, RUNNING,
            attempts=job.attempts + 1,
            resumed_from_step=resume_step if resume_step >= 0 else None,
            detail=(f"resumed from step {resume_step}"
                    if resume_step >= 0 else "started"))
        if grid is None:
            grid = Grid(spec, shape, init="random", seed=cfg.seed)
            k = 0
        else:
            k = resume_step
            self.metrics.resumes += 1

        step_quota = (self.config.checkpoint_steps if segmented else 0)
        segments = []
        result = None
        while True:
            n = (total - k) if step_quota <= 0 \
                else min(step_quota, total - k)
            result = session.run(replace(cfg, steps=n), grid=grid)
            segments.append(result.stats)
            self.metrics.segments_run += 1
            k += n
            if k >= total:
                break
            buffer = np.ascontiguousarray(grid.at(n))
            self.store.save_checkpoint(job.job_id, k, buffer)
            self.store.renew_lease(job.job_id, owner,
                                   self.config.lease_ttl_s)
            # fresh parity: local time 0 of the next segment is
            # global time k
            grid = _grid_from_buffer(spec, shape, buffer)

        stats = _merge_stats(segments, total_steps=total,
                             resume_step=resume_step, job_id=job.job_id)
        interior = np.ascontiguousarray(result.interior)
        self.store.record_result(job.job_id, interior, stats.to_json())
        self.metrics.completed += 1

    # -- failure policy -----------------------------------------------

    def _classify(self, exc: Exception) -> str:
        """``cancelled`` | ``permanent`` | ``transient``."""
        from repro.api.backends import BackendUnsupported
        from repro.runtime.errors import (
            RunCancelled,
            RunDeadlineExceeded,
            SanitizerViolation,
        )

        if isinstance(exc, RunCancelled):
            return "cancelled"
        if isinstance(exc, (BackendUnsupported, SanitizerViolation,
                            RunDeadlineExceeded, ValueError, KeyError,
                            TypeError)):
            # usage errors, structural refusals and blown caller
            # deadlines reproduce identically on a retry
            return "permanent"
        return "transient"

    def _backoff_s(self, job: Job, attempt: int) -> float:
        base = self.config.retry_backoff_s * (2 ** max(0, attempt - 1))
        base = min(base, self.config.retry_backoff_cap_s)
        # deterministic jitter: seeded by (job, attempt) so two workers
        # retrying different jobs desynchronize, yet tests replay
        rng = random.Random(f"{job.job_id}:{attempt}")
        return base * (1.0 + self.config.retry_jitter * rng.random())

    def _handle_failure(self, job: Job, exc: Exception) -> None:
        current = self.store.get(job.job_id)
        verdict = self._classify(exc)
        error, kind = str(exc), type(exc).__name__
        if verdict == "cancelled":
            self.metrics.cancelled += 1
            if current.state in (ADMITTED, RUNNING):
                self.store.transition(job.job_id, CANCELLED,
                                      error=error, error_kind=kind)
            return
        attempts = max(current.attempts, 1)
        if verdict == "transient" and attempts <= current.max_retries \
                and not self._stop.is_set():
            delay = self._backoff_s(current, attempts)
            self.metrics.retries += 1
            time.sleep(delay)
            requeued = self.store.transition(
                job.job_id, QUEUED, error=error, error_kind=kind,
                detail=f"retry {attempts}/{current.max_retries} "
                       f"after {delay * 1e3:.0f} ms backoff")
            self.queue.put(requeued, force=True)
            return
        self.metrics.failed += 1
        if current.state in (ADMITTED, RUNNING):
            if current.state == ADMITTED:
                # failures before the running record (config parse,
                # checkpoint restore) still end in a legal terminal
                # state: admitted jobs may cancel but not fail, so
                # walk the legal edge through running
                self.store.transition(job.job_id, RUNNING,
                                      attempts=current.attempts + 1,
                                      detail="failed during admission")
            self.store.transition(job.job_id, FAILED, error=error,
                                  error_kind=kind)
