"""Tests for the space-time renderer and the execution tracer."""

import numpy as np
import pytest

from repro import Grid, get_stencil, make_lattice, reference_sweep
from repro.baselines import diamond_schedule, naive_schedule, trapezoid_schedule
from repro.core.schedules import tess_schedule
from repro.runtime.spacetime import (
    coverage_gaps,
    group_spans,
    render_spacetime,
    spacetime_matrix,
)
from repro.runtime.tracing import traced_execute


@pytest.fixture()
def spec():
    return get_stencil("heat1d")


class TestSpacetime:
    def test_no_gaps_in_valid_schedules(self, spec):
        for sched in (
            naive_schedule(spec, (40,), 6),
            diamond_schedule(spec, (40,), 3, 6),
            tess_schedule(spec, (40,), make_lattice(spec, (40,), 3), 6),
            tess_schedule(spec, (40,), make_lattice(spec, (40,), 3), 6,
                          merged=True),
            trapezoid_schedule(spec, (40,), 6, base_dt=2),
        ):
            assert coverage_gaps(sched) == 0, sched.scheme

    def test_matrix_shape_and_marks(self, spec):
        sched = naive_schedule(spec, (10,), 3)
        m = spacetime_matrix(sched)
        assert m.shape == (3, 10)
        assert set(np.unique(m)) == {0, 1, 2}  # one group per step

    def test_render_contains_rows(self, spec):
        sched = diamond_schedule(spec, (24,), 3, 6)
        art = render_spacetime(sched)
        assert art.count("t=") == 6
        assert "." not in art.split("\n")[0].split("|")[1]

    def test_render_width_clip(self, spec):
        sched = naive_schedule(spec, (50,), 2)
        art = render_spacetime(sched, width=10)
        body = art.splitlines()[0].split("|")[1]
        assert len(body) == 10

    def test_group_spans_diamond_vs_naive(self, spec):
        b = 3
        naive = naive_schedule(spec, (40,), 6)
        assert set(group_spans(naive).values()) == {1}
        diam = diamond_schedule(spec, (40,), b, 6)
        assert max(group_spans(diam).values()) == b
        merged = tess_schedule(spec, (40,),
                               make_lattice(spec, (40,), b), 6, merged=True)
        assert max(group_spans(merged).values()) == 2 * b

    def test_rejects_2d(self):
        spec2 = get_stencil("heat2d")
        sched = naive_schedule(spec2, (8, 8), 2)
        with pytest.raises(ValueError):
            spacetime_matrix(sched)


class TestTracing:
    def test_traced_matches_reference(self, spec):
        g1 = Grid(spec, (60,), seed=3)
        g2 = g1.copy()
        ref = reference_sweep(spec, g1, 8)
        sched = diamond_schedule(spec, (60,), 4, 8)
        out, trace = traced_execute(spec, g2, sched)
        assert np.allclose(ref, out, rtol=1e-11)
        assert len(trace.tasks) == len(sched.tasks)
        assert trace.total_seconds > 0
        assert trace.points_per_second() > 0

    def test_group_seconds_partition_total(self, spec):
        g = Grid(spec, (60,), seed=3)
        sched = naive_schedule(spec, (60,), 4, chunks=3)
        _, trace = traced_execute(spec, g, sched)
        assert sum(trace.group_seconds().values()) == pytest.approx(
            trace.total_seconds
        )

    def test_overhead_fit(self, spec):
        # mix task sizes so the fit is well-conditioned
        g = Grid(spec, (4000,), seed=1)
        s1 = naive_schedule(spec, (4000,), 2, chunks=1)
        s2 = naive_schedule(spec, (4000,), 2, chunks=40)
        s1.tasks.extend(s2.tasks)
        _, trace = traced_execute(spec, g, s1)
        a, c = trace.overhead_estimate()
        assert np.isfinite(a) and np.isfinite(c)
        # the fit reconstructs the measured total to first order
        pred = sum(a + c * t.points for t in trace.tasks)
        assert pred == pytest.approx(trace.total_seconds, rel=0.5)

    def test_rejects_private(self, spec):
        from repro.baselines import overlapped_schedule

        g = Grid(spec, (40,), seed=0)
        sched = overlapped_schedule(spec, (40,), 4, (10,), 2)
        with pytest.raises(ValueError):
            traced_execute(spec, g, sched)
