"""Allocation-free stencil kernels for compiled plans.

The naive operator path (:meth:`LinearStencilOperator.apply`) allocates
one fresh temporary per neighbour tap per region action (``out += view
* c``) and rebuilds every slice tuple from the region geometry on every
call.  For the thousands of small region actions a tessellated schedule
emits, those allocations and the per-call slice construction dominate
the run time on this substrate.

This module provides the two bit-identical rewrites the compiled
engine uses:

* **slice kernels** — the operator loop expressed as
  ``np.multiply``/``np.add`` with ``out=`` into a reusable per-thread
  scratch arena, consuming slice tuples precomputed at plan-compile
  time.  Per point, the float operation sequence is exactly the naive
  one (``((v0*c0) + v1*c1) + v2*c2 ...``), so results are bit-identical.
* **batch kernels** — many small same-step write-disjoint actions
  executed as one gather → compute → scatter over precomputed flat
  index arrays.  Elementwise arithmetic is independent of array
  layout, so this too is bit-identical while replacing thousands of
  tiny ufunc dispatches with a handful of large ones.

Scratch buffers live in a :class:`ScratchArena`: one geometric-growth
1D array per (name, dtype), reshaped into views on demand — zero
steady-state allocation.  Arenas are per-thread (:func:`thread_arena`)
so compiled plans can be shared by the threaded executor.
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

import numpy as np

__all__ = [
    "ScratchArena",
    "thread_arena",
    "linear_slices",
    "linear_batch",
    "linear_batch_many",
    "life_slices",
    "life_batch",
    "life_batch_many",
]


class ScratchArena:
    """Reusable scratch buffers: one growable 1D array per name/dtype.

    ``get(name, n, dtype)`` returns a length-``n`` view; the backing
    array grows geometrically and is never shrunk, so after warm-up no
    call allocates.  Not thread-safe — use one arena per thread
    (:func:`thread_arena`).
    """

    __slots__ = ("_bufs",)

    def __init__(self) -> None:
        self._bufs: Dict[Tuple[str, object], np.ndarray] = {}

    def get(self, name: str, n: int, dtype) -> np.ndarray:
        key = (name, dtype)
        buf = self._bufs.get(key)
        if buf is None or buf.shape[0] < n:
            cap = max(n, 2 * buf.shape[0] if buf is not None else n)
            buf = np.empty(cap, dtype=dtype)
            self._bufs[key] = buf
        return buf[:n]

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self._bufs.values())


_local = threading.local()


def thread_arena() -> ScratchArena:
    """The calling thread's scratch arena (created on first use)."""
    arena = getattr(_local, "arena", None)
    if arena is None:
        arena = ScratchArena()
        _local.arena = arena
    return arena


# ---------------------------------------------------------------------------
# linear (weighted-sum) kernels
# ---------------------------------------------------------------------------

def linear_slices(src, dst, out_sl, in_sls, coeffs, arena) -> None:
    """One region action of a linear stencil, via precomputed slices.

    Bit-identical to :meth:`LinearStencilOperator.apply`: the first tap
    multiplies into the output, each further tap multiplies into scratch
    and adds in place — the same per-point float sequence as
    ``out += view * c``, minus the temporary allocation.
    """
    out = dst[out_sl]
    np.multiply(src[in_sls[0]], coeffs[0], out=out)
    if len(coeffs) > 1:
        tmp = arena.get("lin", out.size, out.dtype).reshape(out.shape)
        for sl, c in zip(in_sls[1:], coeffs[1:]):
            np.multiply(src[sl], c, out=tmp)
            np.add(out, tmp, out=out)


def linear_batch(flat_src, flat_dst, idx, off_flats, coeffs, arena) -> None:
    """Many same-step actions of a linear stencil as one gather/scatter.

    ``idx`` holds the flat (padded-array) indices of every output
    point; tap ``k`` reads ``flat_src[idx + off_flats[k]]``.  The
    accumulation order per point matches the naive operator exactly.
    """
    n = idx.shape[0]
    ish = arena.get("bidx", n, np.intp)
    acc = arena.get("bacc", n, flat_src.dtype)
    g = arena.get("bg", n, flat_src.dtype)
    np.add(idx, off_flats[0], out=ish)
    np.take(flat_src, ish, out=acc)
    np.multiply(acc, coeffs[0], out=acc)
    for off, c in zip(off_flats[1:], coeffs[1:]):
        np.add(idx, off, out=ish)
        np.take(flat_src, ish, out=g)
        np.multiply(g, c, out=g)
        np.add(acc, g, out=acc)
    flat_dst[idx] = acc


def linear_batch_many(flat_src, flat_dst, idx, off_flats, coeffs,
                      arena) -> None:
    """:func:`linear_batch` across a leading instance axis.

    ``flat_src``/``flat_dst`` are ``[N, P]`` views of N stacked padded
    buffers; ``idx`` holds the per-instance flat indices (identical for
    every instance, so one gather with ``axis=1`` serves the whole
    batch).  Per point the float sequence is exactly the single-instance
    one — the batch axis only widens the arrays.
    """
    n = flat_src.shape[0]
    m = idx.shape[0]
    ish = arena.get("bidx", m, np.intp)
    acc = arena.get("bacc", n * m, flat_src.dtype).reshape(n, m)
    g = arena.get("bg", n * m, flat_src.dtype).reshape(n, m)
    np.add(idx, off_flats[0], out=ish)
    np.take(flat_src, ish, axis=1, out=acc)
    np.multiply(acc, coeffs[0], out=acc)
    for off, c in zip(off_flats[1:], coeffs[1:]):
        np.add(idx, off, out=ish)
        np.take(flat_src, ish, axis=1, out=g)
        np.multiply(g, c, out=g)
        np.add(acc, g, out=acc)
    flat_dst[:, idx] = acc


# ---------------------------------------------------------------------------
# Game-of-Life kernels
# ---------------------------------------------------------------------------

def life_slices(src, dst, out_sl, in_sls, centre_idx, arena) -> None:
    """One region action of the Conway rule with preallocated buffers.

    ``in_sls`` lists the neighbour slices (centre excluded),
    ``centre_idx`` the centre slice.  All arithmetic is exact integer /
    boolean work, so buffer reuse cannot change results.
    """
    centre = src[centre_idx]
    n = arena.get("nbuf", centre.size, np.uint8).reshape(centre.shape)
    np.copyto(n, src[in_sls[0]])
    for sl in in_sls[1:]:
        np.add(n, src[sl], out=n)
    born = arena.get("b1", centre.size, np.bool_).reshape(centre.shape)
    two = arena.get("b2", centre.size, np.bool_).reshape(centre.shape)
    alive = arena.get("b3", centre.size, np.bool_).reshape(centre.shape)
    np.equal(n, 3, out=born)
    np.equal(n, 2, out=two)
    np.equal(centre, 1, out=alive)
    np.logical_and(alive, two, out=two)
    np.logical_or(born, two, out=born)
    out = dst[out_sl]
    np.copyto(out, born, casting="unsafe")


def life_batch(flat_src, flat_dst, idx, off_flats, centre_off, arena) -> None:
    """Batched Conway rule over flat indices (gather → rule → scatter)."""
    m = idx.shape[0]
    ish = arena.get("bidx", m, np.intp)
    n = arena.get("nbuf", m, np.uint8)
    g = arena.get("gbuf", m, np.uint8)
    np.add(idx, off_flats[0], out=ish)
    np.take(flat_src, ish, out=n)
    for off in off_flats[1:]:
        np.add(idx, off, out=ish)
        np.take(flat_src, ish, out=g)
        np.add(n, g, out=n)
    centre = arena.get("cbuf", m, np.uint8)
    np.add(idx, centre_off, out=ish)
    np.take(flat_src, ish, out=centre)
    born = arena.get("b1", m, np.bool_)
    two = arena.get("b2", m, np.bool_)
    alive = arena.get("b3", m, np.bool_)
    np.equal(n, 3, out=born)
    np.equal(n, 2, out=two)
    np.equal(centre, 1, out=alive)
    np.logical_and(alive, two, out=two)
    np.logical_or(born, two, out=born)
    out = arena.get("obuf", m, np.uint8)
    np.copyto(out, born, casting="unsafe")
    flat_dst[idx] = out


def life_batch_many(flat_src, flat_dst, idx, off_flats, centre_off,
                    arena) -> None:
    """:func:`life_batch` across a leading instance axis (exact
    integer/boolean work, so the widened buffers cannot change results).
    """
    nn = flat_src.shape[0]
    m = idx.shape[0]
    ish = arena.get("bidx", m, np.intp)
    n = arena.get("nbuf", nn * m, np.uint8).reshape(nn, m)
    g = arena.get("gbuf", nn * m, np.uint8).reshape(nn, m)
    np.add(idx, off_flats[0], out=ish)
    np.take(flat_src, ish, axis=1, out=n)
    for off in off_flats[1:]:
        np.add(idx, off, out=ish)
        np.take(flat_src, ish, axis=1, out=g)
        np.add(n, g, out=n)
    centre = arena.get("cbuf", nn * m, np.uint8).reshape(nn, m)
    np.add(idx, centre_off, out=ish)
    np.take(flat_src, ish, axis=1, out=centre)
    born = arena.get("b1", nn * m, np.bool_).reshape(nn, m)
    two = arena.get("b2", nn * m, np.bool_).reshape(nn, m)
    alive = arena.get("b3", nn * m, np.bool_).reshape(nn, m)
    np.equal(n, 3, out=born)
    np.equal(n, 2, out=two)
    np.equal(centre, 1, out=alive)
    np.logical_and(alive, two, out=two)
    np.logical_or(born, two, out=born)
    out = arena.get("obuf", nn * m, np.uint8).reshape(nn, m)
    np.copyto(out, born, casting="unsafe")
    flat_dst[:, idx] = out
