"""Tests for the machine spec and the roofline/LPT cost model."""

import pytest

from repro.baselines import diamond_schedule, naive_schedule
from repro.core import make_lattice
from repro.core.schedules import tess_schedule
from repro.machine.model import (
    LLCResidency,
    SimResult,
    _lpt_makespan,
    scaling_curve,
    simulate,
)
from repro.machine.spec import laptop_machine, paper_machine
from repro.stencils import heat1d, heat2d


class TestMachineSpec:
    def test_paper_machine_matches_section_5_1(self):
        m = paper_machine()
        assert m.cores == 24
        assert m.sockets == 2
        assert m.freq_hz == pytest.approx(2.7e9)
        assert m.l1_bytes == 32 * 1024
        assert m.l2_bytes == 256 * 1024
        assert m.llc_bytes == 30 * 1024 * 1024

    def test_bandwidth_model_monotone(self):
        m = paper_machine()
        bws = [m.mem_bw_for(p) for p in (1, 4, 12, 13, 24)]
        assert all(b2 >= b1 for b1, b2 in zip(bws, bws[1:]))
        assert m.mem_bw_for(24) == m.total_mem_bw

    def test_single_core_cannot_saturate_socket(self):
        m = paper_machine()
        assert m.mem_bw_for(1) < m.mem_bw_bytes

    def test_barrier_grows_with_cores(self):
        m = paper_machine()
        assert m.barrier_s(24) > m.barrier_s(1)

    def test_scaled_caches(self):
        m = paper_machine().scaled_caches(0.5)
        assert m.llc_bytes == 15 * 1024 * 1024
        assert m.cores == 24  # structure untouched
        with pytest.raises(ValueError):
            paper_machine().scaled_caches(0)
        with pytest.raises(ValueError):
            paper_machine().scaled_caches(2.0)

    def test_scaled_caches_floor(self):
        m = paper_machine().scaled_caches(1e-9)
        assert m.l1_bytes >= 4 * m.cache_line

    def test_bw_for_bad_cores(self):
        with pytest.raises(ValueError):
            paper_machine().mem_bw_for(0)


class TestLPT:
    def test_empty(self):
        assert _lpt_makespan([], 4) == (0.0, 1.0)

    def test_single_core_sums(self):
        ms, imb = _lpt_makespan([1.0, 2.0, 3.0], 1)
        assert ms == 6.0
        assert imb == pytest.approx(1.0)

    def test_perfect_balance(self):
        ms, imb = _lpt_makespan([1.0] * 8, 4)
        assert ms == 2.0
        assert imb == pytest.approx(1.0)

    def test_imbalance_with_fewer_tasks_than_cores(self):
        ms, imb = _lpt_makespan([1.0, 1.0], 4)
        assert ms == 1.0
        assert imb == pytest.approx(2.0)

    def test_lpt_packs_longest_first(self):
        # LPT is a 4/3-approximation, not optimal: {3,2,2}/{3,2} here
        ms, _ = _lpt_makespan([3.0, 3.0, 2.0, 2.0, 2.0], 2)
        assert ms == pytest.approx(7.0)
        # but it does beat naive in-order packing on this case
        assert ms <= 4.0 / 3.0 * 6.0


class TestLLCResidency:
    def test_cold_then_free(self):
        llc = LLCResidency(1e9)
        box = ((0, 10), (0, 10))
        assert llc.charge(box, 1000.0) == 1000.0
        assert llc.charge(box, 1000.0) == 0.0

    def test_partial_overlap(self):
        llc = LLCResidency(1e9)
        llc.charge(((0, 10),), 100.0)
        got = llc.charge(((5, 15),), 100.0)
        assert got == pytest.approx(50.0)

    def test_capacity_eviction(self):
        llc = LLCResidency(150.0)
        llc.charge(((0, 10),), 100.0)
        llc.charge(((10, 20),), 100.0)  # evicts the first box
        assert llc.charge(((0, 10),), 100.0) == pytest.approx(100.0)

    def test_none_box_full_charge(self):
        llc = LLCResidency(1e9)
        assert llc.charge(None, 77.0) == 77.0


class TestSimulate:
    def _setup(self):
        spec = heat2d()
        shape = (120, 120)
        lat = make_lattice(spec, shape, 4)
        return spec, tess_schedule(spec, shape, lat, 12)

    def test_result_fields(self):
        spec, sched = self._setup()
        r = simulate(spec, sched, laptop_machine(), 2)
        assert r.time_s > 0
        assert r.useful_points == 120 * 120 * 12
        assert r.gstencils > 0
        assert r.gflops == pytest.approx(
            r.gstencils * spec.flops_per_point
        )
        assert r.barriers == sched.num_groups

    def test_more_cores_never_slower(self):
        spec, sched = self._setup()
        m = paper_machine()
        times = [simulate(spec, sched, m, p).time_s for p in (1, 4, 12)]
        assert times[0] >= times[1] >= times[2]

    def test_scaling_curve_shares_taskgraph(self):
        spec, sched = self._setup()
        rs = scaling_curve(spec, sched, laptop_machine(), [1, 2, 4])
        assert [r.cores for r in rs] == [1, 2, 4]

    def test_tiled_traffic_below_naive(self):
        spec = heat2d()
        shape = (512, 512)
        steps = 16
        m = paper_machine().scaled_caches(0.05)
        naive = simulate(spec, naive_schedule(spec, shape, steps, 8), m, 8)
        lat = make_lattice(spec, shape, 8)
        tess = simulate(spec, tess_schedule(spec, shape, lat, steps), m, 8)
        assert tess.traffic_bytes < 0.7 * naive.traffic_bytes

    def test_overhead_factor_slows_down(self):
        spec = heat1d()
        sched = diamond_schedule(spec, (4000,), 8, 16)
        m = paper_machine()
        base = simulate(spec, sched, m, 4).time_s
        sched.task_overhead_factor = 10.0
        slow = simulate(spec, sched, m, 4).time_s
        assert slow > base

    def test_bad_core_count(self):
        spec, sched = self._setup()
        with pytest.raises(ValueError):
            simulate(spec, sched, laptop_machine(), 0)
        with pytest.raises(ValueError):
            simulate(spec, sched, laptop_machine(), 999)
