"""Tables 2 and 3 — iteration-space tessellation of the 2D/3D stencil.

Regenerates the per-stage T tables over the B_0^+ quadrant and checks
the golden invariants (Theorem 3.5: every column of tables sums to b).
"""

import numpy as np

from repro.core.iteration_space import (
    format_table,
    stage_tables,
    time_tile_total,
)


def _build():
    t2 = {i: stage_tables(2, 3, i) for i in range(3)}
    t3 = {i: stage_tables(3, 3, i) for i in range(4)}
    return t2, t3


def test_tables_2_and_3(benchmark, capsys):
    t2, t3 = benchmark.pedantic(_build, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n[Table 2] T_i over B_0^+ (2D, b=3); '-' = no update")
        for i in range(3):
            print(f"stage {i}:")
            print(format_table(t2[i]["count"]))
        print("\n[Table 3] stage counts (3D, b=3) — stage-1 slice k=3:")
        print(format_table(t3[1]["count"][:, :, 0]))
    assert np.all(time_tile_total(2, 3) == 3)
    assert np.all(time_tile_total(3, 3) == 3)
    # the '-' cells are exactly the zero-update cells
    for i in range(3):
        dead = t2[i]["count"] == -1
        assert (t2[i]["start"][dead] == -1).all()
