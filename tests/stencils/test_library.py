"""Tests for the seven paper benchmark kernels."""

import numpy as np
import pytest

from repro.stencils import STENCIL_REGISTRY, get_stencil


EXPECTED = {
    # name -> (ndim, shape class, neighbour count, slopes)
    "heat1d": (1, "star", 3, (1,)),
    "1d5p": (1, "star", 5, (2,)),
    "heat2d": (2, "star", 5, (1, 1)),
    "2d9p": (2, "box", 9, (1, 1)),
    "life": (2, "box", 9, (1, 1)),
    "heat3d": (3, "star", 7, (1, 1, 1)),
    "3d27p": (3, "box", 27, (1, 1, 1)),
}


class TestRegistry:
    def test_all_seven_present(self):
        assert set(STENCIL_REGISTRY) == set(EXPECTED)

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            get_stencil("heat4d")

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_kernel_metadata(self, name):
        ndim, shape, pts, slopes = EXPECTED[name]
        spec = get_stencil(name)
        assert spec.ndim == ndim
        assert spec.shape == shape
        assert spec.num_neighbors == pts
        assert spec.slopes == slopes
        assert spec.boundary == "dirichlet"

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_periodic_variant(self, name):
        spec = get_stencil(name, boundary="periodic")
        assert spec.is_periodic


class TestCoefficientProperties:
    @pytest.mark.parametrize("name", ["heat1d", "1d5p", "heat2d", "2d9p",
                                      "heat3d", "3d27p"])
    def test_coefficients_sum_to_one(self, name):
        """All heat-style kernels are weighted averages — a constant
        field is a fixed point (stability of the discretisation)."""
        spec = get_stencil(name)
        assert sum(spec.operator.coeffs) == pytest.approx(1.0)

    @pytest.mark.parametrize("name", ["heat1d", "1d5p", "heat2d", "2d9p",
                                      "heat3d", "3d27p"])
    def test_constant_field_is_fixed_point(self, name):
        spec = get_stencil(name, boundary="periodic")
        u = np.full((12,) * spec.ndim, 3.25)
        out = spec.operator.apply_wrapped(u)
        assert np.allclose(out, u)

    @pytest.mark.parametrize("name", ["heat1d", "heat2d", "heat3d"])
    def test_symmetry(self, name):
        """Star heat kernels are symmetric under axis reflection."""
        spec = get_stencil(name, boundary="periodic")
        rng = np.random.default_rng(1)
        u = rng.random((10,) * spec.ndim)
        out = spec.operator.apply_wrapped(u)
        flipped = spec.operator.apply_wrapped(u[::-1])
        assert np.allclose(out[::-1], flipped)
