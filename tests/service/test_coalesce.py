"""Service-queue coalescing: N seed-siblings, one stacked batched run.

A worker leasing a job may claim up to ``max_batch`` queued jobs that
differ *only by seed* and run them as one ``[N, ...]`` batch — one
compiled plan, one schedule walk, one kernel dispatch per unit.  The
durability story must stay per member: individual journaled
transitions, checkpoint seals, result commits and lease epochs, so a
SIGKILL mid-batch loses at most one segment per member and every
member resumes individually, bit-identical.
"""

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro import get_stencil
from repro.api import RunConfig, Session
from repro.service import (
    CANCELLED,
    DONE,
    QUEUED,
    Job,
    JobQueue,
    JobStore,
    Supervisor,
    SupervisorConfig,
)
from repro.service.supervisor import coalesce_key

pytestmark = pytest.mark.service

KERNEL = "heat1d"
BASE = {"shape": [64], "steps": 12, "scheme": "tess", "b": 4,
        "backend": "serial"}
SEEDS = (0, 7, 42, 100)


def _store(tmp_path):
    return JobStore(str(tmp_path / "store"), fsync=False)


def _submit_siblings(sup, cfg=None, seeds=SEEDS):
    ids = []
    for seed in seeds:
        job, created = sup.submit(KERNEL, dict(cfg or BASE, seed=seed))
        assert created
        ids.append(job.job_id)
    return ids


def _solo(seed, cfg=None):
    session = Session(get_stencil(KERNEL))
    return session.run(
        RunConfig.from_json(dict(cfg or BASE, seed=seed))).interior


# -- the happy path ---------------------------------------------------

def test_coalesced_batch_bit_identical(tmp_path):
    with _store(tmp_path) as store:
        sup = Supervisor(store, SupervisorConfig(
            workers=1, max_batch=4, checkpoint_steps=4,
            isolation="thread"))
        # submit before start(): all four are queued when the single
        # worker takes its first lease, so the claim is deterministic
        ids = _submit_siblings(sup)
        sup.start()
        try:
            for jid in ids:
                assert sup.wait(jid, timeout=60).state == DONE
        finally:
            sup.stop()
        assert sup.metrics.batches_run == 1
        assert sup.metrics.coalesced_jobs == 4
        assert sup.metrics.completed == 4
        # the coalescing counters ride the /metrics payload
        snap = sup.snapshot_metrics()["supervisor"]
        assert snap["batches_run"] == 1
        assert snap["coalesced_jobs"] == 4
        for jid, seed in zip(ids, SEEDS):
            interior, _ = store.load_result(jid)
            ref = _solo(seed)
            assert np.array_equal(interior, ref)
            assert interior.tobytes() == ref.tobytes()


def test_coalescing_disabled_by_default(tmp_path):
    with _store(tmp_path) as store:
        sup = Supervisor(store, SupervisorConfig(workers=1))
        ids = _submit_siblings(sup)
        sup.start()
        try:
            for jid in ids:
                assert sup.wait(jid, timeout=60).state == DONE
        finally:
            sup.stop()
        assert sup.metrics.batches_run == 0
        assert sup.metrics.coalesced_jobs == 0


def test_only_seed_siblings_coalesce(tmp_path):
    """Jobs differing in anything but the seed form separate groups."""
    with _store(tmp_path) as store:
        sup = Supervisor(store, SupervisorConfig(
            workers=1, max_batch=8, isolation="thread"))
        ids = _submit_siblings(sup, seeds=(0, 1))
        other, created = sup.submit(KERNEL, dict(BASE, seed=0, steps=20))
        assert created
        sup.start()
        try:
            for jid in ids + [other.job_id]:
                assert sup.wait(jid, timeout=60).state == DONE
        finally:
            sup.stop()
        assert sup.metrics.coalesced_jobs == 2  # the 20-step job ran solo
        interior, _ = store.load_result(other.job_id)
        assert np.array_equal(interior, _solo(0, dict(BASE, steps=20)))


def test_coalesce_key_ignores_seed_only():
    a = coalesce_key(KERNEL, dict(BASE, seed=1))
    b = coalesce_key(KERNEL, dict(BASE, seed=99))
    c = coalesce_key(KERNEL, dict(BASE, seed=1, steps=13))
    assert a == b
    assert a != c
    # alias spellings canonicalise into the same group
    d = coalesce_key(KERNEL, dict(BASE, seed=5, backend="seq"))
    assert a == d


# -- per-member durability --------------------------------------------

def test_stop_mid_batch_requeues_every_member(tmp_path):
    cfg = dict(BASE, shape=[2000], steps=200, backend="compiled")
    with _store(tmp_path) as store:
        sup = Supervisor(store, SupervisorConfig(
            workers=1, max_batch=4, checkpoint_steps=2,
            isolation="thread"))
        ids = _submit_siblings(sup, cfg=cfg)
        sup.start()
        # wait for the batch to make restorable progress, then stop
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if all(store.get(j).checkpoints for j in ids):
                break
            time.sleep(0.005)
        else:
            pytest.fail("no checkpoints appeared")
        sup.stop()
        assert sup.metrics.preempted == 4
        for jid in ids:
            job = store.get(jid)
            assert job.state == QUEUED
            assert job.checkpoints

    # a fresh supervisor resumes each member individually (members
    # with checkpoints never coalesce again), bit-identical
    with JobStore(str(tmp_path / "store"), fsync=False) as store:
        sup = Supervisor(store, SupervisorConfig(
            workers=2, max_batch=4, checkpoint_steps=50,
            isolation="thread"))
        sup.start()
        try:
            for jid in ids:
                assert sup.wait(jid, timeout=120).state == DONE
        finally:
            sup.stop()
        assert sup.metrics.batches_run == 0  # resumes ran solo
        assert sup.metrics.resumes == 4
        for jid, seed in zip(ids, SEEDS):
            interior, stats = store.load_result(jid)
            ref = _solo(seed, cfg)
            assert interior.tobytes() == ref.tobytes()
            resumes = [e for e in stats["events"]
                       if e.get("kind") == "resume"]
            assert len(resumes) == 1


def test_cancel_member_at_batch_boundary(tmp_path):
    cfg = dict(BASE, shape=[2000], steps=200, backend="compiled")
    with _store(tmp_path) as store:
        sup = Supervisor(store, SupervisorConfig(
            workers=1, max_batch=4, checkpoint_steps=1,
            isolation="thread"))
        ids = _submit_siblings(sup, cfg=cfg)
        victim = ids[2]
        sup.start()
        try:
            deadline = time.monotonic() + 60
            while (store.get(victim).state != "running"
                   and time.monotonic() < deadline):
                time.sleep(0.002)
            sup.cancel(victim)
            for jid in ids:
                job = sup.wait(jid, timeout=120)
                assert job.terminal
        finally:
            sup.stop()
        assert store.get(victim).state == CANCELLED
        for jid, seed in zip(ids, SEEDS):
            if jid == victim:
                continue
            assert store.get(jid).state == DONE
            interior, _ = store.load_result(jid)
            assert interior.tobytes() == _solo(seed, cfg).tobytes()


# -- footprint accounting (the PR-9 admission fix) --------------------

def _q_job(i, estimated=100):
    return Job(job_id=f"job-{i}", kernel="heat1d", config={"seed": i},
               idempotency_key=f"k{i}", estimated_bytes=estimated)


def test_claim_compatible_matches_and_preserves_order():
    q = JobQueue(maxsize=8)
    for i in range(5):
        q.put(_q_job(i))
    claimed = q.claim_compatible(
        lambda j: int(j.config["seed"]) % 2 == 1, limit=8)
    assert [j.job_id for j in claimed] == ["job-1", "job-3"]
    assert [q.get(timeout=0.1).job_id for _ in range(3)] == [
        "job-0", "job-2", "job-4"]
    assert q.pending_bytes == 0


def test_claim_compatible_charges_one_stacked_allocation():
    """The batch is ONE [N, ...] allocation: claiming stops when that
    stacked estimate would blow the footprint ceiling, even though the
    members' individual estimates would have fit."""
    q = JobQueue(maxsize=16, max_pending_bytes=1000)
    for i in range(6):
        q.put(_q_job(i, estimated=100))
    # batch of n members costs 300*n as one stacked allocation: the
    # ceiling admits n=3, refuses n=4 — individual estimates (100 each)
    # would wrongly have admitted all six
    claimed = q.claim_compatible(lambda j: True, limit=8,
                                 batch_bytes=lambda n: 300 * n)
    assert len(claimed) == 2  # leader + 2 = 3 members at 900 <= 1000
    assert len(q) == 4
    assert q.pending_bytes == 400


def test_claim_compatible_without_ceiling_claims_up_to_limit():
    q = JobQueue(maxsize=16)
    for i in range(6):
        q.put(_q_job(i))
    claimed = q.claim_compatible(lambda j: True, limit=3,
                                 batch_bytes=lambda n: 10**9)
    assert len(claimed) == 3


# -- SIGKILL mid-batch ------------------------------------------------

_CHILD = """\
import sys
from repro.service import JobStore, Supervisor, SupervisorConfig

root = sys.argv[1]
store = JobStore(root)  # fsync'd: the durable discipline under test
sup = Supervisor(store, SupervisorConfig(
    workers=1, max_batch=4, checkpoint_steps=2, isolation="thread"))
ids = []
for seed in {seeds!r}:
    job, _ = sup.submit({kernel!r}, dict({cfg!r}, seed=seed))
    ids.append(job.job_id)
sup.start()
print(" ".join(ids), flush=True)
for jid in ids:
    sup.wait(jid, timeout=600)
""".format(seeds=SEEDS, kernel=KERNEL,
           cfg=dict(BASE, shape=[2000], steps=200, backend="compiled"))


def test_sigkill_mid_batch_members_resume_bit_identical(tmp_path):
    root = str(tmp_path / "store")
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.Popen(
        [sys.executable, "-c", _CHILD, root],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
        text=True)
    try:
        ids = proc.stdout.readline().split()
        assert len(ids) == 4, proc.stderr.read()
        # wait until every member has a sealed checkpoint: the kill
        # then provably lands mid-batch, after restorable progress
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            dirs = [os.path.join(root, "checkpoints", j) for j in ids]
            if all(os.path.isdir(d) and any(n.endswith(".npy")
                                            for n in os.listdir(d))
                   for d in dirs):
                break
            if proc.poll() is not None:
                pytest.fail(f"child exited early: {proc.stderr.read()}")
            time.sleep(0.002)
        else:
            pytest.fail("not every member sealed a checkpoint in time")
        time.sleep(0.1)  # let a few more boundaries seal
        proc.kill()
        proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.stdout.close()
        proc.stderr.close()

    with JobStore(root) as store:
        sup = Supervisor(store, SupervisorConfig(
            workers=2, max_batch=4, checkpoint_steps=50,
            isolation="thread"))
        report = sup.start()
        assert report.requeued == 4
        try:
            for jid in ids:
                assert sup.wait(jid, timeout=300).state == DONE
        finally:
            sup.stop()
        # every member resumed from its own sealed checkpoint...
        assert sup.metrics.resumes == 4
        cfg = dict(BASE, shape=[2000], steps=200, backend="compiled")
        for jid, seed in zip(ids, SEEDS):
            job = store.get(jid)
            assert job.resumed_from_step > 0
            interior, _ = store.load_result(jid)
            # ...bit-identical to a run that was never interrupted
            ref = _solo(seed, cfg)
            assert interior.tobytes() == ref.tobytes()
