"""Elastic process runtime: recovery to bit-identical results.

The tentpole acceptance properties:

* the fault-free process runtime matches both the in-process simulator
  and the naive reference **exactly** (bit-identical);
* every process-level fault kind — ``kill_rank``, ``stall_rank``,
  ``drop_msg``, ``flip_bits`` — injected mid-run on runs with >= 2
  ranks is healed back to the bit-identical result (respawn + phase
  replay for kills, straggler cull + replay for stalls, retransmit for
  transient message loss/corruption), including a seeded chaos sweep
  mixing all kinds across 8 seeds;
* exhausted budgets surface as *typed* errors — ``RankLostError``,
  ``ExchangeTimeoutError``, ``ChecksumMismatchError`` — instead of
  hangs;
* checkpoint spill files live in a per-run temp directory that is gone
  after success and after a coordinator abort.
"""

import glob
import os
import tempfile

import numpy as np
import pytest

from repro import Grid, get_stencil, make_lattice, reference_sweep
from repro.distributed import (
    ElasticConfig,
    RetryPolicy,
)
from repro.distributed.exec import _execute_distributed
from repro.distributed.elastic import _execute_elastic
from repro.distributed.partition import SlabPartition, build_ownership
from repro.runtime import (
    ChecksumMismatchError,
    ExchangeTimeoutError,
    FaultPlan,
    FaultSpec,
    RankLostError,
)
from repro.runtime.tracing import ExecutionTrace

pytestmark = [pytest.mark.dist, pytest.mark.faults]

#: watchdog timings tightened so recovery tests converge in seconds
FAST = dict(stall_timeout_s=0.6, heartbeat_timeout_s=1.5, deadline_s=60.0)


def _setup(kernel="heat1d", shape=(400,), steps=16, b=4, ranks=4):
    spec = get_stencil(kernel)
    lat = make_lattice(spec, shape, b)
    grid = Grid(spec, shape, seed=0)
    base, _ = _execute_distributed(spec, grid.copy(), lat, steps, ranks)
    return spec, lat, grid, base


def _stages_total(spec, shape, steps, b, ranks):
    lat = make_lattice(spec, shape, b)
    plan, _ = build_ownership(lat, SlabPartition(shape, ranks))
    return ((steps + b - 1) // b) * len(plan.stages)


class TestFaultFree:
    @pytest.mark.parametrize("kernel,shape,steps,b,ranks", [
        ("heat1d", (400,), 16, 4, 4),
        ("heat2d", (64, 64), 12, 4, 3),
    ])
    def test_matches_simulator_and_reference(self, kernel, shape, steps,
                                             b, ranks):
        spec, lat, grid, base = _setup(kernel, shape, steps, b, ranks)
        ref = reference_sweep(spec, grid.copy(), steps)
        out, stats = _execute_elastic(spec, grid.copy(), lat, steps, ranks)
        assert np.array_equal(base, out)
        assert np.array_equal(ref, out)
        assert stats.messages > 0 and stats.bytes_sent > 0
        assert stats.heartbeats > 0
        assert not stats.had_faults

    def test_single_rank_and_zero_steps(self):
        spec, lat, grid, _ = _setup()
        out, _ = _execute_elastic(spec, grid.copy(), lat, 16, 1)
        assert np.array_equal(reference_sweep(spec, grid.copy(), 16), out)
        out0, _ = _execute_elastic(spec, grid.copy(), lat, 0, 3)
        assert np.array_equal(grid.interior(0), out0)

    def test_periodic_boundary_rejected(self):
        spec = get_stencil("heat1d", boundary="periodic")
        lat = make_lattice(spec, (64,), 4)
        with pytest.raises(ValueError, match="Dirichlet"):
            _execute_elastic(spec, Grid(spec, (64,), seed=0), lat, 4, 2)


class TestSingleFaultRecovery:
    """One injected fault of each kind, mid-run, >= 2 ranks affected."""

    @pytest.mark.parametrize("fault,expect", [
        (FaultSpec("kill_rank", group=3, task=1),
         dict(respawns=1, phase_restarts=1)),
        (FaultSpec("stall_rank", group=2, task=2, stall_s=30.0),
         dict(phase_restarts=1)),
        (FaultSpec("drop_msg", group=1, task=1),
         dict(drops=1, retries=1)),
        (FaultSpec("flip_bits", group=2, task=0),
         dict(checksum_failures=1, retries=1)),
    ], ids=["kill_rank", "stall_rank", "drop_msg", "flip_bits"])
    def test_bit_identical_recovery(self, fault, expect):
        spec, lat, grid, base = _setup()
        trace = ExecutionTrace(scheme="elastic")
        out, stats = _execute_elastic(
            spec, grid.copy(), lat, 16, 4,
            fault_plan=FaultPlan([fault]),
            config=ElasticConfig(**FAST), trace=trace,
        )
        assert np.array_equal(base, out), f"{fault.describe()} diverged"
        for key, floor in expect.items():
            assert getattr(stats, key) >= floor, (key, stats)
        counts = trace.event_counts()
        assert counts.get("commit", 0) >= 4
        assert counts.get("heartbeat", 0) == 4  # one summary per rank
        if "respawns" in expect:
            assert counts.get("respawn", 0) >= 1
            assert counts.get("restore", 0) >= 1

    def test_kill_two_ranks_same_run(self):
        spec, lat, grid, base = _setup()
        plan = FaultPlan([FaultSpec("kill_rank", group=2, task=0),
                          FaultSpec("kill_rank", group=5, task=3)])
        out, stats = _execute_elastic(spec, grid.copy(), lat, 16, 4,
                                     fault_plan=plan,
                                     config=ElasticConfig(**FAST))
        assert np.array_equal(base, out)
        assert stats.respawns >= 2

    def test_persistent_kill_fires_across_respawns(self):
        """xN kills re-fire N times before the rank stays up."""
        spec, lat, grid, base = _setup()
        plan = FaultPlan([FaultSpec("kill_rank", group=3, task=1,
                                    max_hits=2)])
        out, stats = _execute_elastic(
            spec, grid.copy(), lat, 16, 4, fault_plan=plan,
            config=ElasticConfig(max_respawns=3, max_phase_restarts=6,
                                 **FAST))
        assert np.array_equal(base, out)
        assert stats.respawns >= 2


class TestChaosSweep:
    """Seeded chaos: all four kinds mixed, 8 seeds, bit-identical."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_process_faults_recover(self, seed):
        spec, lat, grid, base = _setup("heat1d", (240,), 12, 4, 3)
        stages = _stages_total(spec, (240,), 12, 4, 3)
        plan = FaultPlan.random_process(stages, 3, rate=0.25, seed=seed,
                                        stall_s=30.0)
        out, stats = _execute_elastic(
            spec, grid.copy(), lat, 12, 3, fault_plan=plan,
            config=ElasticConfig(max_phase_restarts=8, max_respawns=4,
                                 **FAST),
        )
        assert np.array_equal(base, out), (
            f"seed {seed} ({plan.describe()}) diverged"
        )

    def test_sweep_actually_injects_every_kind(self):
        """Guard against a sweep that silently tests nothing."""
        stages = _stages_total(get_stencil("heat1d"), (240,), 12, 4, 3)
        kinds = set()
        for seed in range(8):
            plan = FaultPlan.random_process(stages, 3, rate=0.25,
                                            seed=seed)
            kinds.update(f.kind for f in plan.faults)
        assert kinds == {"kill_rank", "stall_rank", "drop_msg",
                         "flip_bits"}

    def test_per_rank_substreams_stable_across_rank_count(self):
        """Rank r draws the same faults whether 2 or 8 ranks exist."""
        few = FaultPlan.random_process(12, 2, rate=0.3, seed=7)
        many = FaultPlan.random_process(12, 8, rate=0.3, seed=7)
        of = lambda p, r: [f.describe() for f in p.faults if f.task == r]
        for r in range(2):
            assert of(few, r) == of(many, r)


class TestStructuredFailures:
    """Exhausted budgets end in typed errors, never hangs."""

    def test_respawn_budget_exhausted_raises_rank_lost(self):
        spec, lat, grid, _ = _setup()
        plan = FaultPlan([FaultSpec("kill_rank", group=3, task=1)])
        with pytest.raises(RankLostError) as ei:
            _execute_elastic(spec, grid.copy(), lat, 16, 4,
                            fault_plan=plan,
                            config=ElasticConfig(max_respawns=0, **FAST))
        assert ei.value.rank == 1 and ei.value.cause == "dead"

    def test_persistent_drop_raises_exchange_timeout(self):
        spec, lat, grid, _ = _setup()
        plan = FaultPlan([FaultSpec("drop_msg", group=1, task=1,
                                    max_hits=10 ** 6)])
        with pytest.raises(ExchangeTimeoutError) as ei:
            _execute_elastic(spec, grid.copy(), lat, 16, 4,
                            fault_plan=plan,
                            config=ElasticConfig(max_phase_restarts=0,
                                                 **FAST))
        assert ei.value.stage == 1 and ei.value.src == 1

    def test_persistent_corruption_raises_checksum_mismatch(self):
        spec, lat, grid, _ = _setup()
        plan = FaultPlan([FaultSpec("flip_bits", group=1, task=1,
                                    max_hits=10 ** 6)])
        with pytest.raises(ChecksumMismatchError) as ei:
            _execute_elastic(spec, grid.copy(), lat, 16, 4,
                            fault_plan=plan,
                            config=ElasticConfig(max_phase_restarts=0,
                                                 **FAST))
        assert ei.value.stage == 1 and ei.value.src == 1


class TestSpillFileLifecycle:
    """Per-run temp dir: gone on success AND on coordinator abort."""

    def _leftovers(self, parent):
        return (glob.glob(os.path.join(parent, "repro-elastic-*"))
                + glob.glob(os.path.join(parent, "**", "*.npz"),
                            recursive=True))

    def test_no_leak_on_success(self, tmp_path):
        spec, lat, grid, base = _setup()
        cfg = ElasticConfig(checkpoint_dir=str(tmp_path), **FAST)
        out, _ = _execute_elastic(
            spec, grid.copy(), lat, 16, 4,
            fault_plan=FaultPlan([FaultSpec("kill_rank", group=3,
                                            task=1)]),
            config=cfg)
        assert np.array_equal(base, out)
        assert self._leftovers(str(tmp_path)) == []

    def test_no_leak_on_coordinator_abort(self, tmp_path):
        spec, lat, grid, _ = _setup()
        cfg = ElasticConfig(checkpoint_dir=str(tmp_path), max_respawns=0,
                            **FAST)
        with pytest.raises(RankLostError):
            _execute_elastic(
                spec, grid.copy(), lat, 16, 4,
                fault_plan=FaultPlan([FaultSpec("kill_rank", group=3,
                                                task=1)]),
                config=cfg)
        assert self._leftovers(str(tmp_path)) == []

    def test_default_dir_is_system_tmp_and_cleaned(self):
        spec, lat, grid, _ = _setup()
        before = set(glob.glob(os.path.join(tempfile.gettempdir(),
                                            "repro-elastic-*")))
        _execute_elastic(spec, grid.copy(), lat, 8, 2,
                        config=ElasticConfig(**FAST))
        after = set(glob.glob(os.path.join(tempfile.gettempdir(),
                                           "repro-elastic-*")))
        assert after <= before


class TestStatsAndTraceSchema:
    """CommStats: one schema for the simulated and process paths."""

    def test_same_counter_schema_as_simulator(self):
        spec, lat, grid, _ = _setup()
        _, sim = _execute_distributed(spec, grid.copy(), lat, 8, 2)
        _, ela = _execute_elastic(spec, grid.copy(), lat, 8, 2,
                                 config=ElasticConfig(**FAST))
        assert set(vars(sim)) == set(vars(ela))
        assert "retries" in ela.describe_resilience()
        assert "respawns" in sim.describe_resilience()

    def test_retry_and_crc_counters_reach_the_report(self):
        spec, lat, grid, _ = _setup()
        out, stats = _execute_elastic(
            spec, grid.copy(), lat, 16, 4,
            fault_plan=FaultPlan([FaultSpec("flip_bits", group=2,
                                            task=0)]),
            config=ElasticConfig(**FAST))
        assert stats.checksum_failures >= 1
        assert stats.retries >= 1
        text = stats.describe_resilience()
        assert "checksum_failures=" in text and "retries=" in text

    def test_elastic_retry_policy_is_configurable(self):
        spec, lat, grid, base = _setup()
        cfg = ElasticConfig(retry=RetryPolicy(timeout_s=0.1,
                                              max_retries=5), **FAST)
        out, _ = _execute_elastic(
            spec, grid.copy(), lat, 16, 4,
            fault_plan=FaultPlan([FaultSpec("drop_msg", group=1,
                                            task=2)]),
            config=cfg)
        assert np.array_equal(base, out)

    def test_sanitize_preflight_rejects_undersized_ghost(self):
        from repro.runtime import SanitizerViolation

        spec, lat, grid, _ = _setup()
        with pytest.raises(SanitizerViolation):
            _execute_elastic(spec, grid.copy(), lat, 8, 4,
                            ghost_override=1, sanitize=True)
