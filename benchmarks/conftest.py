"""Shared fixtures for the figure/table benchmark suite.

Each bench regenerates one paper table/figure through the simulated
machine (see DESIGN.md §5).  The figure benches run a reduced core
sweep by default to keep the suite's runtime reasonable; run
``python -m repro.bench`` for the full 1–24-core curves.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

#: reduced core sweep for the benchmark suite
BENCH_CORES = (1, 12, 24)


@pytest.fixture(scope="session")
def bench_cores():
    return BENCH_CORES


def render_result(result) -> str:
    from repro.bench.experiments import FigureResult

    if isinstance(result, FigureResult):
        return result.render()
    if isinstance(result, list):
        return "\n\n".join(render_result(r) for r in result)
    return str(result)
