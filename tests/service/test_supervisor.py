"""Supervisor: execution, retry/backoff, cancellation, resume."""

import os
import threading
import time

import numpy as np
import pytest

from repro import get_stencil
from repro.api import RunConfig, Session
from repro.runtime.errors import ExecutionError, QueueSaturated, RunCancelled
from repro.service import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    JobStore,
    Supervisor,
    SupervisorConfig,
)

pytestmark = pytest.mark.service

#: tests that inject a wrapped session into the supervisor process
#: only make sense in thread mode — a process-mode child builds its
#: own sessions on the far side of the fork
THREAD_ONLY = pytest.mark.skipif(
    os.environ.get("REPRO_ISOLATION") == "process",
    reason="session-injection hooks are thread-mode only")

CFG = {"shape": [48], "steps": 24, "backend": "serial"}


def _direct(kernel="heat1d", **overrides):
    cfg = dict(CFG, **overrides)
    spec = get_stencil(kernel)
    return Session(spec).run(RunConfig.from_json(cfg)).interior


@pytest.fixture
def store(tmp_path):
    with JobStore(str(tmp_path / "store"), fsync=False) as s:
        yield s


def _run(store, config=None):
    sup = Supervisor(store, config or SupervisorConfig(workers=1))
    sup.start()
    try:
        yield sup
    finally:
        sup.stop()


@pytest.fixture
def sup(store):
    yield from _run(store)


def test_job_runs_to_done_bit_identical(store, sup):
    job, created = sup.submit("heat1d", CFG)
    assert created
    job = sup.wait(job.job_id, timeout=60)
    assert job.state == DONE and job.attempts == 1
    interior, stats = store.load_result(job.job_id)
    np.testing.assert_array_equal(interior, _direct())
    assert stats["steps"] == 24
    assert sup.snapshot_metrics()["supervisor"]["completed"] == 1


def test_compiled_backend_job(store, sup):
    job, _ = sup.submit("heat1d", dict(CFG, backend="compiled",
                                       engine="compiled"))
    job = sup.wait(job.job_id, timeout=60)
    assert job.state == DONE
    interior, _ = store.load_result(job.job_id)
    np.testing.assert_array_equal(
        interior, _direct(backend="compiled", engine="compiled"))


def test_segmented_run_checkpoints_and_stays_bit_identical(store):
    for sup in _run(store, SupervisorConfig(workers=1,
                                            checkpoint_steps=5)):
        job, _ = sup.submit("heat2d", {"shape": [24, 24], "steps": 17,
                                       "backend": "serial"})
        job = sup.wait(job.job_id, timeout=60)
        assert job.state == DONE
        # 17 steps in segments of 5 → checkpoints at 5, 10, 15
        assert [c[0] for c in job.checkpoints] == [5, 10, 15]
        interior, stats = store.load_result(job.job_id)
        spec = get_stencil("heat2d")
        direct = Session(spec).run(
            RunConfig(shape=(24, 24), steps=17, backend="serial"))
        np.testing.assert_array_equal(interior, direct.interior)
        assert stats["steps"] == 17  # job total, not the last segment


def test_dedup_returns_existing_job(store, sup):
    a, created_a = sup.submit("heat1d", CFG)
    sup.wait(a.job_id, timeout=60)
    b, created_b = sup.submit("heat1d", CFG)
    assert created_a and not created_b and a.job_id == b.job_id
    assert sup.metrics.deduplicated == 1


def test_queue_saturation_refuses_before_journal(store):
    sup = Supervisor(store, SupervisorConfig(workers=1, queue_depth=1))
    # not started: jobs stay queued, the bound is reachable
    sup.submit("heat1d", CFG)
    with pytest.raises(QueueSaturated):
        sup.submit("heat1d", dict(CFG, steps=25))
    assert sup.metrics.refused == 1
    # the refused submission left no journal record
    assert len(store.jobs()) == 1


def test_cancel_queued_job(store):
    sup = Supervisor(store, SupervisorConfig(workers=1))
    job, _ = sup.submit("heat1d", CFG)
    out = sup.cancel(job.job_id)
    assert out.state == CANCELLED
    assert sup.cancel(job.job_id).state == CANCELLED  # idempotent


class _Gate:
    """Session wrapper: holds the run until released, honours the
    cancel token, optionally fails the first N calls."""

    def __init__(self, session, fail_first=0, hold=None):
        self._session = session
        self.spec = session.spec
        self.calls = 0
        self.fail_first = fail_first
        self.hold = hold

    def default_shape(self):
        return self._session.default_shape()

    def run(self, config=None, **kw):
        self.calls += 1
        if self.hold is not None:
            token = config.qos.cancel_token
            while not self.hold.is_set():
                if token is not None and token.cancelled:
                    raise RunCancelled("test gate")
                time.sleep(0.005)
        if self.calls <= self.fail_first:
            raise ExecutionError("transient executor death",
                                 group=self.calls)
        return self._session.run(config, **kw)


@THREAD_ONLY
def test_transient_failure_retries_with_backoff(store):
    sup = Supervisor(store, SupervisorConfig(
        workers=1, retry_backoff_s=0.001, retry_backoff_cap_s=0.01))
    gate = _Gate(Session(get_stencil("heat1d")), fail_first=2)
    sup._sessions["heat1d"] = gate
    sup.start()
    try:
        job, _ = sup.submit("heat1d", CFG)
        job = sup.wait(job.job_id, timeout=60)
    finally:
        sup.stop()
    assert job.state == DONE
    assert job.attempts == 3  # two failures + the success
    assert sup.metrics.retries == 2
    interior, _ = store.load_result(job.job_id)
    np.testing.assert_array_equal(interior, _direct())


@THREAD_ONLY
def test_retry_budget_exhaustion_fails_with_error_kind(store):
    sup = Supervisor(store, SupervisorConfig(
        workers=1, retry_backoff_s=0.001, default_max_retries=1))
    gate = _Gate(Session(get_stencil("heat1d")), fail_first=99)
    sup._sessions["heat1d"] = gate
    sup.start()
    try:
        job, _ = sup.submit("heat1d", CFG)
        job = sup.wait(job.job_id, timeout=60)
    finally:
        sup.stop()
    assert job.state == FAILED
    assert job.attempts == 2  # initial + one retry
    assert job.error_kind == "ExecutionError"
    assert "transient" in job.error


def test_permanent_failure_never_retries(store, sup):
    job, _ = sup.submit("heat1d", dict(CFG, backend="no-such-backend"))
    job = sup.wait(job.job_id, timeout=60)
    assert job.state == FAILED
    assert job.attempts == 1  # BackendUnsupported is permanent
    assert sup.metrics.retries == 0


@THREAD_ONLY
def test_cancel_running_job_stops_at_boundary(store):
    sup = Supervisor(store, SupervisorConfig(workers=1))
    hold = threading.Event()
    sup._sessions["heat1d"] = _Gate(Session(get_stencil("heat1d")),
                                    hold=hold)
    sup.start()
    try:
        job, _ = sup.submit("heat1d", CFG)
        deadline = time.monotonic() + 30
        while (store.get(job.job_id).state == QUEUED
               and time.monotonic() < deadline):
            time.sleep(0.005)
        sup.cancel(job.job_id)
        job = sup.wait(job.job_id, timeout=30)
    finally:
        hold.set()
        sup.stop()
    assert job.state == CANCELLED
    assert sup.metrics.cancelled == 1


@THREAD_ONLY
def test_in_process_resume_after_mid_run_failure(store):
    """A job that dies between segments resumes from its checkpoint —
    and the resumed result is bit-identical to an unbroken run."""

    class _DieOnce(_Gate):
        def __init__(self, session):
            super().__init__(session)
            self.died = False

        def run(self, config=None, **kw):
            self.calls += 1
            if self.calls == 3 and not self.died:
                self.died = True  # die after two sealed segments
                raise ExecutionError("executor died mid-job")
            return self._session.run(config, **kw)

    sup = Supervisor(store, SupervisorConfig(
        workers=1, checkpoint_steps=5, retry_backoff_s=0.001))
    sup._sessions["heat1d"] = _DieOnce(Session(get_stencil("heat1d")))
    sup.start()
    try:
        job, _ = sup.submit("heat1d", CFG)  # 24 steps, segments of 5
        job = sup.wait(job.job_id, timeout=60)
    finally:
        sup.stop()
    assert job.state == DONE
    assert job.attempts == 2
    assert job.resumed_from_step == 10  # two sealed segments
    assert sup.metrics.resumes == 1
    interior, stats = store.load_result(job.job_id)
    np.testing.assert_array_equal(interior, _direct())
    # the resumption is visible in the result's trace events
    assert any(e.get("kind") == "resume" for e in stats["events"])


@THREAD_ONLY
def test_stop_returns_promptly_during_retry_backoff(store):
    """Regression: the retry backoff used to be a bare time.sleep, so
    stop()/drain could block for up to retry_backoff_cap_s per pending
    retry.  The wait now sits on an interrupt event stop() sets."""
    sup = Supervisor(store, SupervisorConfig(
        workers=1, default_max_retries=5,
        retry_backoff_s=30.0, retry_backoff_cap_s=30.0))
    gate = _Gate(Session(get_stencil("heat1d")), fail_first=99)
    sup._sessions["heat1d"] = gate
    sup.start()
    job, _ = sup.submit("heat1d", CFG)
    deadline = time.monotonic() + 30
    while gate.calls < 1 and time.monotonic() < deadline:
        time.sleep(0.005)
    time.sleep(0.05)  # let the worker enter its 30 s backoff wait
    t0 = time.monotonic()
    sup.stop()
    assert time.monotonic() - t0 < 5.0  # far under one backoff
    # the interrupted retry is journaled queued, not lost
    assert store.get(job.job_id).state == QUEUED


def test_recovery_requeue_runs_to_completion(tmp_path):
    """Jobs a dead supervisor left queued/admitted finish after a
    restart (the journal is the source of truth, not the process)."""
    root = str(tmp_path / "store")
    with JobStore(root, fsync=False) as store:
        store.submit("heat1d", CFG)
        job2, _ = store.submit("heat1d", dict(CFG, steps=25))
        # simulate a crash mid-claim: admitted but the worker is gone
        store.transition(job2.job_id, "admitted")
    with JobStore(root, fsync=False) as store:
        sup = Supervisor(store, SupervisorConfig(workers=2))
        report = sup.start()
        assert report.requeued == 1
        try:
            for job in store.jobs():
                assert sup.wait(job.job_id, timeout=60).state == DONE
        finally:
            sup.stop()
        np.testing.assert_array_equal(
            store.load_result(store.jobs()[0].job_id)[0], _direct())


def test_wait_timeout_returns_nonterminal(store):
    sup = Supervisor(store, SupervisorConfig(workers=1))
    job, _ = sup.submit("heat1d", CFG)  # never started
    out = sup.wait(job.job_id, timeout=0.05)
    assert out.state == QUEUED
