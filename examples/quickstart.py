#!/usr/bin/env python3
"""Quickstart: tessellated time tiling through the unified pipeline.

One :func:`repro.api.run` call drives the whole paper: build the
two-level tessellation schedule for a Heat-2D kernel (§3), execute it,
and verify bit-level agreement with the naive sweep.

Run:  python examples/quickstart.py
"""

from repro import get_stencil
from repro.api import run


def main() -> None:
    # 1. pick a stencil kernel (any of the paper's seven benchmarks)
    spec = get_stencil("heat2d")
    print(spec.describe())

    # 2. run the pipeline: build the tessellated schedule (time-tile
    #    depth b=8, anisotropic §4.2 core widths), execute it, verify
    #    against the naive reference
    shape, steps = (300, 300), 32
    result = run(spec, shape=shape, steps=steps, scheme="tess",
                 b=8, core_widths=(8, 16), verify=True)
    assert result.ok
    print(f"verified: {steps} steps on {shape} grid match the naive sweep")

    # 3. inspect the schedule the backend ran (tasks, barriers, ...)
    st = result.stats.schedule
    print(
        f"schedule: {st['tasks']} blocks in {st['groups']} barrier groups "
        f"({st['groups'] / (steps / result.config.b):.1f} syncs per phase), "
        f"0 redundant updates"
    )
    print(
        f"concurrency: up to {st['max_group_width']} independent blocks "
        f"per stage (concurrent start)"
    )

    # 4. any other executor is one flag away — the same config runs on
    #    the thread pool, the compiled engine, or the rank simulator:
    #    run(spec, ..., backend="threaded", threads=4)
    #    run(spec, ..., backend="compiled")
    #    run(spec, ..., backend="distributed", ranks=4)


if __name__ == "__main__":
    main()
