"""Backend protocol + registry: the last stage of the pipeline.

A *backend* consumes the pipeline's artifacts (grid, schedule or
lattice, optionally a compiled plan) and produces the final interior
plus whatever counter block its family maintains.  All backends are
interchangeable behind :class:`Backend`; the registry maps canonical
names (plus the aliases in :data:`repro.api.config.BACKEND_ALIASES`)
to singleton instances:

================== =================================================
``serial``          sequential schedule walker (the validation path)
``compiled``        compiled-plan stream (:mod:`repro.engine`)
``batched``         one compiled plan over N stacked instances
``threaded``        barrier-group thread pool, fail-fast
``resilient``       checkpoint/restart + retries + guards
``distributed``     in-process rank simulator with band exchanges
``elastic``         real rank processes, heartbeats, crash recovery
``baseline:pointwise``  mask-oracle lattice executor (periodic OK)
``baseline:blocked``    unmerged §3 block executor
``baseline:merged``     §4.3 merged block executor
``baseline:overlapped`` ghost-zone executor for private-task schedules
================== =================================================

Every backend implements :meth:`Backend.supports` so an unsupported
``backend x scheme`` cell fails with a typed
:class:`BackendUnsupported` *before* touching a buffer — the parity
matrix test relies on the refusal being loud and structured, never a
silent wrong answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

__all__ = [
    "Backend",
    "BackendOutcome",
    "BackendUnsupported",
    "ExecutionContext",
    "backend_names",
    "get_backend",
    "register_backend",
]


class BackendUnsupported(ValueError):
    """A backend was asked for a configuration it cannot execute."""

    def __init__(self, backend: str, reason: str):
        super().__init__(f"backend {backend!r} cannot run this "
                         f"configuration: {reason}")
        self.backend = backend
        self.reason = reason


@dataclass
class ExecutionContext:
    """Everything a backend may consume for one run."""

    spec: object
    grid: object
    config: object  #: normalised RunConfig
    schedule: object = None
    lattice: object = None
    plan: object = None  #: CompiledPlan when the engine lowered one
    trace: object = None  #: ExecutionTrace collecting runtime events
    #: armed RunBudget when the config carries a QoSPolicy with a
    #: deadline or cancel token; None keeps the pre-QoS code path
    budget: object = None
    #: Sequence[Grid] for a batched (many-instances) run; ``grid`` is
    #: then the first member.  None for every single-instance backend
    batch_grids: object = None


@dataclass
class BackendOutcome:
    """What a backend hands back to the session."""

    interior: np.ndarray
    comm: object = None  #: CommStats (distributed family)
    resilience: object = None  #: ResilienceReport (resilient backend)


class Backend:
    """One execution strategy behind the unified pipeline."""

    name: str = ""
    #: "schedule" backends consume a RegionSchedule; "lattice" backends
    #: walk the tessellation lattice directly
    kind: str = "schedule"
    #: whether an engine-lowered CompiledPlan is consumed when present
    consumes_plan: bool = False
    #: schemes this backend can run (None = any region schedule)
    schemes: Optional[frozenset] = None
    handles_private: bool = False
    handles_periodic: bool = False

    def supports(self, spec, config, schedule=None) -> Optional[str]:
        """Return a refusal reason, or None when the cell is runnable."""
        if spec.is_periodic and not self.handles_periodic:
            return ("periodic boundaries are only supported by "
                    "'baseline:pointwise'; every other backend assumes "
                    "Dirichlet halos")
        if getattr(spec, "is_staged", False) and self.kind == "lattice":
            return ("lattice executors walk single-field buffers; staged "
                    "systems run on the schedule backends (serial, "
                    "compiled, batched, threaded, resilient)")
        if self.schemes is not None and config.scheme not in self.schemes:
            return (f"scheme {config.scheme!r} not supported "
                    f"(supports: {sorted(self.schemes)})")
        if (schedule is not None and schedule.private_tasks
                and not self.handles_private):
            return (f"schedule {schedule.scheme!r} needs private task "
                    f"storage; use backend 'baseline:overlapped' or "
                    f"'compiled'")
        if config.engine == "compiled" and not self.consumes_plan:
            return "this backend cannot consume a compiled plan"
        return None

    def execute(self, ctx: ExecutionContext) -> BackendOutcome:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Backend {self.name!r} kind={self.kind}>"


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, Backend] = {}


def register_backend(backend: Backend, name: Optional[str] = None) -> Backend:
    """Register a backend instance under its canonical name."""
    key = (name or backend.name).strip().lower()
    if not key:
        raise ValueError("backend must have a name")
    _REGISTRY[key] = backend
    return backend


def backend_names() -> List[str]:
    """Sorted canonical names of every registered backend."""
    return sorted(_REGISTRY)


def get_backend(name: str) -> Backend:
    """Resolve a (possibly aliased) backend name to its instance."""
    from repro.api.config import normalize_backend

    key = normalize_backend(name)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; registered backends: "
            f"{backend_names()}"
        ) from None


# ---------------------------------------------------------------------------
# schedule-consuming backends
# ---------------------------------------------------------------------------


class SerialBackend(Backend):
    """Sequential schedule walker — the correctness-validation path."""

    name = "serial"
    consumes_plan = True  # a prebuilt plan runs as a sequential stream

    def execute(self, ctx: ExecutionContext) -> BackendOutcome:
        if ctx.plan is not None:
            from repro.engine.plan import _execute_plan

            out = _execute_plan(ctx.plan, ctx.grid,
                                arena=ctx.config.options.get("arena"),
                                budget=ctx.budget)
        else:
            from repro.runtime.schedule import _execute_schedule

            out = _execute_schedule(ctx.spec, ctx.grid, ctx.schedule,
                                    budget=ctx.budget)
        return BackendOutcome(interior=out)


class CompiledBackend(Backend):
    """Compiled-plan stream runner (:mod:`repro.engine`)."""

    name = "compiled"
    consumes_plan = True
    handles_private = True  # ghost-zone plans carry private storage

    def supports(self, spec, config, schedule=None) -> Optional[str]:
        if spec.is_periodic:
            return "compiled plans assume non-periodic boundaries"
        if getattr(spec, "is_staged", False) and (
                config.scheme == "overlapped"
                or (schedule is not None and schedule.private_tasks)):
            return ("ghost-zone (private-task) plans do not support "
                    "staged systems")
        return None

    def execute(self, ctx: ExecutionContext) -> BackendOutcome:
        from repro.engine.plan import _execute_plan

        out = _execute_plan(ctx.plan, ctx.grid,
                            arena=ctx.config.options.get("arena"),
                            budget=ctx.budget)
        return BackendOutcome(interior=out)


class BatchedBackend(Backend):
    """One compiled plan over N stacked instances (:mod:`repro.engine.batch`).

    The throughput backend of the serving story: N independent
    instances of the same ``(spec, shape, steps, scheme)`` are stacked
    into one ``[N, ...]`` ping-pong pair and every plan unit runs once
    for the whole batch, amortising plan lookup and Python dispatch.
    Bit-identical per instance to ``backend="compiled"`` — the batch
    axis only widens the arrays (see ``docs/performance.md``).
    """

    name = "batched"
    consumes_plan = True

    def supports(self, spec, config, schedule=None) -> Optional[str]:
        if spec.is_periodic:
            return "compiled plans assume non-periodic boundaries"
        if config.scheme == "overlapped" or (
                schedule is not None and schedule.private_tasks):
            return ("ghost-zone (private-task) schedules have no "
                    "batched lowering; use backend 'compiled'")
        if config.engine == "naive":
            return ("the batched backend runs compiled plans only; "
                    "use engine 'auto' or 'compiled'")
        from repro.stencils.operators import (
            GameOfLifeOperator,
            LinearStencilOperator,
        )
        from repro.stencils.staged import StagedOperator

        op = spec.operator
        if not (isinstance(op, GameOfLifeOperator)
                or type(op) is LinearStencilOperator
                or isinstance(op, StagedOperator)):
            return (f"operator {type(op).__name__} has no batched "
                    f"kernel; only linear, Game-of-Life and staged "
                    f"operators are batchable")
        return None

    def execute(self, ctx: ExecutionContext) -> BackendOutcome:
        from repro.engine.batch import _execute_plan_batched, stack_grids

        grids = (list(ctx.batch_grids) if ctx.batch_grids is not None
                 else [ctx.grid])
        bgrid = stack_grids(ctx.spec, grids)
        _execute_plan_batched(bgrid=bgrid, plan=ctx.plan,
                              arena=ctx.config.options.get("arena"),
                              budget=ctx.budget)
        # both parities go back so member grids are checkpointable and
        # per-instance interiors alias their own buffers, exactly as a
        # single-instance run would leave them
        bgrid.scatter(grids)
        return BackendOutcome(
            interior=grids[0].interior(ctx.config.steps))


class ThreadedBackend(Backend):
    """Fail-fast barrier-group thread pool."""

    name = "threaded"
    consumes_plan = True

    def execute(self, ctx: ExecutionContext) -> BackendOutcome:
        from repro.runtime.threadpool import _execute_threaded

        cfg = ctx.config
        out = _execute_threaded(
            ctx.spec, ctx.grid, ctx.schedule,
            num_threads=max(1, cfg.threads),
            fault_plan=cfg.fault_plan,
            plan=ctx.plan,
            budget=ctx.budget,
        )
        return BackendOutcome(interior=out)


class ResilientBackend(Backend):
    """Checkpoint/restart executor with retries and invariant guards."""

    name = "resilient"
    consumes_plan = True

    def execute(self, ctx: ExecutionContext) -> BackendOutcome:
        from repro.runtime.resilience import (
            ResiliencePolicy,
            _execute_resilient,
        )

        cfg = ctx.config
        policy = cfg.resilience or ResiliencePolicy()
        out, report = _execute_resilient(
            ctx.spec, ctx.grid, ctx.schedule,
            policy=policy,
            fault_plan=cfg.fault_plan,
            num_threads=max(1, cfg.threads),
            trace=ctx.trace,
            plan=ctx.plan,
            budget=ctx.budget,
        )
        return BackendOutcome(interior=out, resilience=report)


class OverlappedBackend(Backend):
    """Ghost-zone executor for private-task (overlapped) schedules."""

    name = "baseline:overlapped"
    handles_private = True

    def supports(self, spec, config, schedule=None) -> Optional[str]:
        if spec.is_periodic:
            return "region schedules assume non-periodic boundaries"
        if getattr(spec, "is_staged", False):
            return ("the ghost-zone discipline snapshots single-field "
                    "boxes; staged systems are not supported")
        if schedule is not None and not schedule.private_tasks:
            return ("the overlapped executor needs a private-task "
                    "(ghost-zone) schedule; use backend 'serial'")
        if config.scheme != "overlapped" and schedule is None:
            return "supports the 'overlapped' scheme only"
        if config.engine == "compiled":
            return "use backend 'compiled' for ghost-zone plans"
        return None

    def execute(self, ctx: ExecutionContext) -> BackendOutcome:
        from repro.baselines.overlapped import execute_overlapped

        out = execute_overlapped(ctx.spec, ctx.grid, ctx.schedule,
                                 budget=ctx.budget)
        return BackendOutcome(interior=out)


# ---------------------------------------------------------------------------
# lattice-walking and distributed backends
# ---------------------------------------------------------------------------

_TESS_FAMILY = frozenset({"tess", "tess-unmerged"})


class PointwiseBackend(Backend):
    """Mask-oracle tessellation executor (the only periodic-capable one)."""

    name = "baseline:pointwise"
    kind = "lattice"
    schemes = _TESS_FAMILY
    handles_periodic = True

    def execute(self, ctx: ExecutionContext) -> BackendOutcome:
        from repro.core.pointwise import run_pointwise

        opts = ctx.config.options
        out = run_pointwise(ctx.spec, ctx.grid, ctx.lattice,
                            ctx.config.steps,
                            t0=opts.get("t0", 0),
                            on_update=opts.get("on_update"),
                            validate=opts.get("validate", True),
                            budget=ctx.budget)
        return BackendOutcome(interior=out)


class BlockedBackend(Backend):
    """Unmerged §3 phase/stage block executor."""

    name = "baseline:blocked"
    kind = "lattice"
    schemes = _TESS_FAMILY

    def execute(self, ctx: ExecutionContext) -> BackendOutcome:
        from repro.core.executor import _run_blocked

        opts = ctx.config.options
        out = _run_blocked(ctx.spec, ctx.grid, ctx.lattice,
                           ctx.config.steps,
                           t0=opts.get("t0", 0),
                           plan=opts.get("phase_plan"),
                           on_block=opts.get("on_block"),
                           validate=opts.get("validate", True),
                           budget=ctx.budget)
        return BackendOutcome(interior=out)


class MergedBackend(Backend):
    """§4.3 merged (``B_d`` + ``B_0``) block executor."""

    name = "baseline:merged"
    kind = "lattice"
    schemes = frozenset({"tess"})

    def execute(self, ctx: ExecutionContext) -> BackendOutcome:
        from repro.core.executor import _run_merged

        opts = ctx.config.options
        out = _run_merged(ctx.spec, ctx.grid, ctx.lattice,
                          ctx.config.steps,
                          t0=opts.get("t0", 0),
                          on_block=opts.get("on_block"),
                          validate=opts.get("validate", True),
                          budget=ctx.budget)
        return BackendOutcome(interior=out)


class DistributedBackend(Backend):
    """In-process rank simulator with boundary-band exchanges."""

    name = "distributed"
    kind = "lattice"
    schemes = frozenset({"tess"})

    def execute(self, ctx: ExecutionContext) -> BackendOutcome:
        from repro.distributed.exec import _execute_distributed

        cfg = ctx.config
        out, stats = _execute_distributed(
            ctx.spec, ctx.grid, ctx.lattice, cfg.steps, cfg.ranks,
            axis=cfg.axis,
            fault_plan=cfg.fault_plan,
            check_divergence=cfg.check_divergence or cfg.resilient,
            resilient=cfg.resilient,
            max_phase_restarts=cfg.max_phase_restarts,
            ghost_override=cfg.ghost,
            trace=ctx.trace,
            sanitize=cfg.sanitize,
            budget=ctx.budget,
        )
        return BackendOutcome(interior=out, comm=stats)


class ElasticBackend(Backend):
    """Elastic multiprocess runtime (real rank processes)."""

    name = "elastic"
    kind = "lattice"
    schemes = frozenset({"tess"})

    def execute(self, ctx: ExecutionContext) -> BackendOutcome:
        from repro.distributed.elastic import _execute_elastic

        cfg = ctx.config
        out, stats = _execute_elastic(
            ctx.spec, ctx.grid, ctx.lattice, cfg.steps, cfg.ranks,
            axis=cfg.axis,
            fault_plan=cfg.fault_plan,
            config=cfg.elastic,
            ghost_override=cfg.ghost,
            trace=ctx.trace,
            sanitize=cfg.sanitize,
            budget=ctx.budget,
        )
        return BackendOutcome(interior=out, comm=stats)


for _backend in (
    SerialBackend(), CompiledBackend(), BatchedBackend(),
    ThreadedBackend(), ResilientBackend(), DistributedBackend(),
    ElasticBackend(), PointwiseBackend(), BlockedBackend(),
    MergedBackend(), OverlappedBackend(),
):
    register_backend(_backend)
