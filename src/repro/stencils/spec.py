"""Stencil specification.

A :class:`StencilSpec` captures everything the tiling machinery needs to
know about a Jacobi stencil:

* the *geometry* — dimensionality, neighbour offsets, per-dimension
  slopes (how far the dependence cone spreads per time step), shape
  classification (star vs box as in the paper §3.6);
* the *operator* — how one time step maps the previous grid to the next
  on an arbitrary hyper-rectangular region;
* the *boundary condition* — Dirichlet (constant halo, the paper's
  evaluated configuration) or periodic.

Regions
-------
Throughout the package a *region* is a tuple of ``(lo, hi)`` pairs in
interior coordinates: dimension ``j`` covers the half-open interval
``[lo_j, hi_j)`` with ``0 <= lo_j <= hi_j <= N_j``.  Halo cells are
addressed by the operators internally and never appear in regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.stencils.operators import StencilOperator

#: A hyper-rectangular update region: one (lo, hi) half-open pair per dim.
Region = Tuple[Tuple[int, int], ...]

_VALID_BOUNDARIES = ("dirichlet", "periodic")
_VALID_SHAPES = ("star", "box", "custom")


def full_region(shape: Sequence[int]) -> Region:
    """Region covering the whole interior of a grid with ``shape``."""
    return tuple((0, int(n)) for n in shape)


def region_size(region: Region) -> int:
    """Number of grid points inside ``region`` (0 if empty in any dim)."""
    total = 1
    for lo, hi in region:
        if hi <= lo:
            return 0
        total *= hi - lo
    return total


def clip_region(region: Region, shape: Sequence[int]) -> Region:
    """Clip ``region`` to the interior box ``[0, N_j)`` of ``shape``."""
    return tuple(
        (max(0, lo), min(int(n), hi)) for (lo, hi), n in zip(region, shape)
    )


def region_is_empty(region: Region) -> bool:
    """True if the region contains no points."""
    return any(hi <= lo for lo, hi in region)


@dataclass(frozen=True)
class StencilSpec:
    """Immutable description of a Jacobi stencil.

    Parameters
    ----------
    name:
        Human-readable identifier (``"heat2d"``, ``"3d27p"``, ...).
    ndim:
        Spatial dimensionality ``d``.
    operator:
        The :class:`~repro.stencils.operators.StencilOperator` applying
        one time step on a region.
    shape:
        ``"star"`` (offsets along axes only), ``"box"`` (full
        ``(±s/0)^d`` neighbourhood) or ``"custom"``.
    boundary:
        ``"dirichlet"`` (constant halo — what the paper evaluates) or
        ``"periodic"``.
    """

    name: str
    ndim: int
    operator: StencilOperator
    shape: str = "star"
    boundary: str = "dirichlet"

    def __post_init__(self) -> None:
        if self.ndim < 1:
            raise ValueError(f"ndim must be >= 1, got {self.ndim}")
        if self.shape not in _VALID_SHAPES:
            raise ValueError(f"unknown stencil shape {self.shape!r}")
        if self.boundary not in _VALID_BOUNDARIES:
            raise ValueError(f"unknown boundary condition {self.boundary!r}")
        if self.operator.ndim != self.ndim:
            raise ValueError(
                f"operator dimensionality {self.operator.ndim} does not "
                f"match spec ndim {self.ndim}"
            )

    # -- geometry ----------------------------------------------------

    @property
    def slopes(self) -> Tuple[int, ...]:
        """Per-dimension dependence slope (max |offset| along each axis).

        A slope of ``m`` in dimension ``j`` means an update at time
        ``t+1`` may read points up to ``m`` away along ``j`` at time
        ``t`` — the paper's ``XSLOPE``/``YSLOPE``.
        """
        return self.operator.slopes

    @property
    def order(self) -> int:
        """Max slope over all dimensions (the stencil *order*)."""
        return max(self.slopes)

    @property
    def halo(self) -> Tuple[int, ...]:
        """Halo width needed per dimension (equals the slopes)."""
        return self.slopes

    @property
    def offsets(self) -> Tuple[Tuple[int, ...], ...]:
        """Neighbour offsets read by one update (includes centre)."""
        return self.operator.offsets

    @property
    def num_neighbors(self) -> int:
        """Number of points read per update (the "N-point" in names)."""
        return len(self.offsets)

    @property
    def flops_per_point(self) -> int:
        """Floating-point (or logical) operations per point update."""
        return self.operator.flops_per_point

    @property
    def dtype(self) -> np.dtype:
        """Element dtype of grids this stencil operates on."""
        return self.operator.dtype

    @property
    def is_periodic(self) -> bool:
        return self.boundary == "periodic"

    @property
    def is_staged(self) -> bool:
        """True for multi-stage systems (see ``stencils.staged``)."""
        return False

    # -- application -------------------------------------------------

    def apply_region(
        self, src: np.ndarray, dst: np.ndarray, region: Region
    ) -> None:
        """Advance ``region`` one time step: ``dst[region] = f(src)``.

        ``src``/``dst`` are halo-padded arrays (padding = :attr:`halo`).
        Points outside ``region`` in ``dst`` are untouched.  Empty
        regions are a no-op.
        """
        if region_is_empty(region):
            return
        self.operator.apply(src, dst, region, self.halo)

    def padded_shape(self, shape: Sequence[int]) -> Tuple[int, ...]:
        """Allocation shape for an interior of ``shape`` plus halo."""
        if len(shape) != self.ndim:
            raise ValueError(
                f"grid rank {len(shape)} does not match stencil ndim {self.ndim}"
            )
        return tuple(int(n) + 2 * h for n, h in zip(shape, self.halo))

    def interior_slices(self, shape: Sequence[int]) -> Tuple[slice, ...]:
        """Slices selecting the interior of a halo-padded array."""
        return tuple(slice(h, h + int(n)) for n, h in zip(shape, self.halo))

    def describe(self) -> str:
        """One-line summary used by the bench harness."""
        return (
            f"{self.name}: {self.ndim}D {self.shape} stencil, "
            f"{self.num_neighbors}-point, slopes={self.slopes}, "
            f"{self.flops_per_point} flops/pt, {self.boundary} boundary"
        )
