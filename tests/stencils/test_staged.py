"""StagedSpec core: construction legality, composed geometry, the
degenerate single-stage regression, grids, pickling and timings.

The load-bearing regression here is the degenerate case: a 1-stage,
1-field staged wrapper of a plain linear kernel must be
indistinguishable from the plain spec at every observable layer —
signature, plan cache key, run results, stats — because the pipeline
canonicalizes it away at the spec boundary instead of forking the
drive loop on ``if staged:``.
"""

import pickle

import numpy as np
import pytest

from repro.api import RunConfig, Session
from repro.engine.cache import plan_key, spec_signature
from repro.stencils import (
    Grid,
    LinearStage,
    get_stencil,
    heat1d,
    make_grid,
)
from repro.stencils.staged import (
    canonical_spec,
    make_staged,
    split_linear_spec,
)
from repro.stencils.systems import fdtd1d, fdtd2d, gray_scott, shallow_water

pytestmark = pytest.mark.stages


def _stage(name, writes, taps):
    return LinearStage(name, writes, taps)


# ---------------------------------------------------------------------------
# construction legality
# ---------------------------------------------------------------------------

def test_empty_stages_rejected():
    with pytest.raises(ValueError, match="at least one stage"):
        make_staged("empty", ())


def test_mixed_ranks_rejected():
    s1 = _stage("a", "u", [("u", (0,), 1.0, False)])
    s2 = _stage("b", "v", [("v", (0, 0), 1.0, False)])
    with pytest.raises(ValueError, match="share one spatial rank"):
        make_staged("mixed", (s1, s2))


def test_duplicate_writes_rejected():
    s1 = _stage("a", "u", [("u", (0,), 1.0, False)])
    s2 = _stage("b", "u", [("u", (0,), 2.0, False)])
    with pytest.raises(ValueError, match="more than one stage"):
        make_staged("dup", (s1, s2))


def test_unknown_read_field_rejected():
    s1 = _stage("a", "u", [("ghost", (0,), 1.0, False)])
    with pytest.raises(ValueError, match="unknown field"):
        make_staged("unknown", (s1,))


def test_new_read_must_name_earlier_stage():
    # "a" new-reads "v", but "v" is written by the *later* stage — the
    # tuple is not in dependence order and must be refused, not
    # silently read stale values.
    s1 = _stage("a", "u", [("v", (0,), 1.0, True)])
    s2 = _stage("b", "v", [("u", (0,), 1.0, False)])
    with pytest.raises(ValueError, match="dependence order"):
        make_staged("disorder", (s1, s2))


def test_split_point_validation():
    spec = heat1d()
    with pytest.raises(ValueError):
        split_linear_spec(spec, 0)
    with pytest.raises(ValueError):
        split_linear_spec(spec, len(spec.operator.offsets))
    gol = get_stencil("life")
    with pytest.raises(TypeError):
        split_linear_spec(gol, 1)


# ---------------------------------------------------------------------------
# composed geometry: grown regions and macro-step slopes
# ---------------------------------------------------------------------------

def test_grow_and_slopes_fdtd1d():
    spec = fdtd1d()
    assert spec.operator.grow == ((1,), (0,))
    assert spec.slopes == (2,)


def test_grow_and_slopes_fdtd2d():
    spec = fdtd2d()
    assert spec.operator.grow == ((1, 1), (0, 0), (0, 0))
    assert spec.slopes == (2, 2)


def test_grow_and_slopes_shallow_water():
    spec = shallow_water()
    assert spec.operator.grow == ((1, 0), (0, 1), (0, 0))
    assert spec.slopes == (2, 2)


def test_grow_and_slopes_gray_scott():
    # No new-reads at all: grow is zero and the composed slope is just
    # the widest old-read reach (the 5-point laplacian).
    spec = gray_scott()
    assert spec.operator.grow == ((0, 0), (0, 0))
    assert spec.slopes == (1, 1)


def test_grow_chain_accumulates():
    # c new-reads b at reach 1, b new-reads a at reach 2: a must be
    # grown by 3, not max(1, 2) — the recursion composes reaches.
    a = _stage("a", "x", [("x", (0,), 1.0, False)])
    b = _stage("b", "y", [("x", (-2,), 1.0, True), ("x", (2,), 1.0, True)])
    c = _stage("c", "z", [("y", (1,), 1.0, True)])
    spec = make_staged("chain", (a, b, c))
    assert spec.operator.grow == ((3,), (1,), (0,))


# ---------------------------------------------------------------------------
# the degenerate case: 1-stage wrapper == plain spec, everywhere
# ---------------------------------------------------------------------------

def _wrapped_heat1d():
    plain = heat1d()
    op = plain.operator
    taps = [("u", off, c, False) for off, c in zip(op.offsets, op.coeffs)]
    return plain, make_staged("heat1d", (LinearStage("only", "u", taps),))


def test_degenerate_unwraps_to_plain_spec():
    plain, wrapped = _wrapped_heat1d()
    unwrapped = canonical_spec(wrapped)
    assert not unwrapped.is_staged
    assert unwrapped.operator.offsets == plain.operator.offsets
    assert unwrapped.operator.coeffs == plain.operator.coeffs
    # non-trivial specs pass through untouched
    assert canonical_spec(fdtd1d()) is not None
    assert canonical_spec(fdtd1d()).is_staged


def test_degenerate_signature_and_plan_key_match():
    plain, wrapped = _wrapped_heat1d()
    assert spec_signature(wrapped) == spec_signature(plain)

    from repro.core import make_lattice
    from repro.core.schedules import tess_schedule

    shape, steps, b = (50,), 6, 4
    lat = make_lattice(plain, shape, b)
    sched = tess_schedule(plain, shape, lat, steps)
    assert plan_key(wrapped, sched) == plan_key(plain, sched)


def test_degenerate_run_identical_and_no_stage_stats():
    plain, wrapped = _wrapped_heat1d()
    config = RunConfig(shape=(50,), steps=6, scheme="tess", b=4,
                       backend="compiled")
    r_plain = Session(plain).run(config)
    sess = Session(wrapped)
    # the session itself holds the canonical (plain) spec
    assert not sess.spec.is_staged
    r_wrapped = sess.run(config)
    assert np.array_equal(r_plain.interior, r_wrapped.interior)
    assert r_wrapped.stats.stages == {}


# ---------------------------------------------------------------------------
# grids over the field axis
# ---------------------------------------------------------------------------

def test_staged_grid_shapes_and_independent_fields():
    spec = shallow_water()
    shape = (12, 14)
    arr = make_grid(spec, shape, init="random", seed=3)
    assert arr.shape == spec.padded_shape(shape)
    assert arr.shape[0] == spec.num_fields
    interior = arr[spec.interior_slices(shape)]
    assert interior.shape == (spec.num_fields,) + shape
    # every field gets its own random values
    for i in range(spec.num_fields):
        for j in range(i + 1, spec.num_fields):
            assert not np.array_equal(interior[i], interior[j])
    # halo stays zero on every field
    interior[...] = 0.0
    assert not arr.any()


def test_staged_grid_impulse_hits_every_field():
    spec = fdtd1d()
    arr = make_grid(spec, (11,), init="impulse")
    interior = arr[spec.interior_slices((11,))]
    assert np.array_equal(interior[:, 5], np.ones(spec.num_fields))
    assert interior.sum() == spec.num_fields


# ---------------------------------------------------------------------------
# pickling (the plan cache's disk tier round-trips specs' plans; the
# service layer ships specs to worker processes)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("factory", [fdtd1d, fdtd2d, shallow_water,
                                     gray_scott])
def test_staged_spec_pickles(factory):
    spec = factory()
    clone = pickle.loads(pickle.dumps(spec))
    assert spec_signature(clone) == spec_signature(spec)
    g1 = Grid(spec, (10,) * spec.ndim, seed=1)
    g2 = Grid(clone, (10,) * spec.ndim, seed=1)
    from repro.stencils import reference_sweep
    assert np.array_equal(reference_sweep(spec, g1, 3),
                          reference_sweep(clone, g2, 3))


# ---------------------------------------------------------------------------
# per-stage timings
# ---------------------------------------------------------------------------

def test_stage_timings_in_stats():
    spec = fdtd2d()
    result = Session(spec).run(RunConfig(shape=(24, 24), steps=4,
                                         scheme="tess", b=2,
                                         backend="compiled"))
    assert set(result.stats.stages) == set(spec.fields)
    assert all(v >= 0.0 for v in result.stats.stages.values())
    # and they survive the JSON round trip
    from repro.api.stats import RunStats
    blob = result.stats.to_json()
    back = RunStats.from_json(blob)
    assert back.stages == pytest.approx(result.stats.stages)


def test_plain_run_has_no_stage_stats():
    result = Session(heat1d()).run(RunConfig(shape=(40,), steps=4,
                                             scheme="tess", b=4,
                                             backend="compiled"))
    assert result.stats.stages == {}
