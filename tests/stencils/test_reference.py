"""Tests for the naive reference sweep (the correctness oracle itself)."""

import numpy as np
import pytest

from repro.stencils import (
    Grid,
    game_of_life,
    heat1d,
    heat2d,
    reference_step,
    reference_sweep,
)


class TestReferenceStep:
    def test_manual_1d(self):
        spec = heat1d()
        g = Grid(spec, (4,), init="zeros")
        g.interior(0)[...] = [1.0, 0.0, 0.0, 2.0]
        reference_step(spec, g, 0)
        u1 = g.interior(1)
        assert u1[0] == pytest.approx(0.75 * 1.0)
        assert u1[1] == pytest.approx(0.125 * 1.0)
        assert u1[2] == pytest.approx(0.125 * 2.0)
        assert u1[3] == pytest.approx(0.75 * 2.0)

    def test_periodic_wraps(self):
        spec = heat1d("periodic")
        g = Grid(spec, (4,), init="zeros")
        g.interior(0)[...] = [1.0, 0.0, 0.0, 0.0]
        reference_step(spec, g, 0)
        u1 = g.interior(1)
        assert u1[3] == pytest.approx(0.125)  # wrapped neighbour
        assert u1[1] == pytest.approx(0.125)

    def test_dirichlet_mass_leaks(self):
        """Non-periodic heat loses mass through the cold boundary."""
        spec = heat1d()
        g = Grid(spec, (6,), seed=0)
        m0 = g.interior(0).sum()
        reference_sweep(spec, g, 5)
        assert g.interior(5).sum() < m0

    def test_periodic_mass_conserved(self):
        spec = heat1d("periodic")
        g = Grid(spec, (6,), seed=0)
        m0 = g.interior(0).sum()
        reference_sweep(spec, g, 5)
        assert g.interior(5).sum() == pytest.approx(m0)


class TestReferenceSweep:
    def test_zero_steps(self):
        spec = heat2d()
        g = Grid(spec, (5, 5), seed=2)
        before = g.interior(0).copy()
        out = reference_sweep(spec, g, 0)
        assert np.array_equal(before, out)

    def test_negative_steps(self):
        spec = heat2d()
        g = Grid(spec, (5, 5), seed=2)
        with pytest.raises(ValueError):
            reference_sweep(spec, g, -1)

    def test_sweep_composes(self):
        spec = heat2d()
        g1 = Grid(spec, (8, 9), seed=3)
        g2 = g1.copy()
        a = reference_sweep(spec, g1, 6).copy()
        reference_sweep(spec, g2, 2)
        b = reference_sweep(spec, g2, 4, t0=2)
        assert np.allclose(a, b)

    def test_life_reference_is_binary(self):
        spec = game_of_life()
        g = Grid(spec, (10, 10), seed=1)
        out = reference_sweep(spec, g, 4)
        assert set(np.unique(out)) <= {0, 1}
