"""Figure 12 — Heat-3D memory transfer volume and bandwidth.

Paper claims: the tessellation and Pluto show similar cache
complexity; Girih (LLC-resident wavefront diamonds) transfers the
least data.
"""

from conftest import BENCH_CORES, render_result

from repro.bench.experiments import fig12_memory
from repro.bench.report import format_scaling


def test_fig12(benchmark, capsys):
    fr = benchmark.pedantic(
        fig12_memory, kwargs={"cores": BENCH_CORES}, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(render_result(fr))
        print("\nmemory transfer volume:")
        print(format_scaling(fr.series, metric="traffic_gb"))
        print("\nachieved bandwidth:")
        print(format_scaling(fr.series, metric="bandwidth_gbs"))
    t, pl, gi, na = (fr.at(s, 24)
                     for s in ("tess", "pluto", "girih", "naive"))
    # similar Θ(1/b) cache complexity for tess and pluto
    assert 0.25 <= t.traffic_bytes / pl.traffic_bytes <= 4.0
    # girih transfers the least
    assert gi.traffic_bytes <= min(t.traffic_bytes, pl.traffic_bytes,
                                   na.traffic_bytes)
    # time tiling cuts the naive traffic substantially
    assert t.traffic_bytes < 0.6 * na.traffic_bytes
