"""The supervisor: leased workers driving jobs through the pipeline.

One :class:`Supervisor` owns a :class:`~repro.service.jobstore.JobStore`
and a :class:`~repro.service.queue.JobQueue` and runs a small pool of
worker slots.  Each worker:

1. leases a queued job (``leases/<id>.lease``, heartbeat-renewed by a
   keeper thread so a live run is visibly claimed and a dead one is
   visibly stale).  Acquisition mints a fencing *epoch*; every store
   mutation the job produces carries it, so a worker whose lease was
   reclaimed can never commit late (:class:`StaleLeaseError`);
2. drives it ``queued → admitted → running`` and executes through
   :meth:`repro.api.Session.run` — the same pipeline, QoS machinery
   and backends as a direct caller, with a per-job
   :class:`~repro.runtime.qos.CancelToken` grafted onto the job's QoS
   policy so ``cancel()`` stops it at the next cooperative boundary;
3. runs the job either **in-thread** (``isolation="thread"``, the
   default zero-overhead path) or in a sandboxed **worker child
   process** (``isolation="process"``, :mod:`repro.service.isolation`):
   the child talks over a CRC-framed duplex channel, beacons
   heartbeats, and applies an ``RLIMIT_AS`` ceiling derived from the
   job's QoS policy — so a segfault, SIGKILL or runaway allocation
   kills the *child*, is detected by process exit or heartbeat
   silence, and surfaces as a typed
   :class:`~repro.runtime.errors.WorkerCrashed` (exit 12) instead of
   taking the server down;
4. for checkpointable (local) backends, runs the job in *segments* of
   ``checkpoint_steps`` steps, sealing the padded ping-pong buffer
   into the store after each segment.  Schedules are deterministic
   replay, and every scheme is bit-identical to the naive sweep, so a
   run resumed from the buffer at step *k* finishes bit-identical to
   an uninterrupted run — the property the SIGKILL chaos tests pin;
5. retries **transient** failures (executor deaths, injected faults)
   with exponential backoff plus deterministic jitter under a per-job
   retry budget; **permanent** verdicts (unsupported backend, usage
   errors, blown QoS deadlines, cancellation) fail or cancel
   immediately.  Worker **crashes** have their own circuit breaker: a
   job that kills ``max_worker_crashes`` worker incarnations is
   quarantined as ``failed``/``"poisoned"`` instead of burning
   respawns forever;
6. on startup, recovers: the store's journal scan re-queues jobs a
   dead supervisor left ``admitted``/``running``, and the worker that
   picks one up resumes from its newest restorable checkpoint — the
   resumption is journaled (``resumed_from_step``) and recorded as a
   ``resume`` event in the result's RunStats.

Graceful drain (the SIGTERM lifecycle): :meth:`Supervisor.begin_drain`
stops admission (:class:`~repro.runtime.errors.ServiceDraining`, HTTP
503) while in-flight jobs keep running; :meth:`Supervisor.drain` then
waits up to a deadline for them to finish, asks the stragglers to stop
at their next checkpoint boundary (they requeue, journaled, and the
next start picks them up), and reports whether the shutdown was clean.

Cleanup discipline: the supervisor registers an ``atexit`` hook (the
elastic coordinator's pattern) so even an un-stopped supervisor sweeps
its lease files, worker children and half-written temp files; a
SIGKILL cannot run it, which is exactly what the startup recovery scan
is for.
"""

from __future__ import annotations

import atexit
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.distributed.transport import (
    FAILURE,
    HEARTBEAT,
    RESULT,
    SHUTDOWN,
    Channel,
    ChannelClosed,
    Message,
    make_data_message,
    unpack_payload,
    verify_message,
)
from repro.runtime.errors import (
    JobNotFound,
    ServiceDraining,
    StaleLeaseError,
    WorkerCrashed,
)
from repro.service.isolation import (
    CANCEL,
    CHECKPOINT,
    CHECKPOINTABLE,
    EXIT_CHILD_OOM,
    JOB,
    PARENT,
    PREEMPT,
    PREEMPTED,
    ChildConfig,
    JobAssignment,
    JobPreempted,
    RemoteJobFailure,
    classify_failure,
    grid_from_buffer as _grid_from_buffer,  # noqa: F401 - compat re-export
    merge_stats as _merge_stats,  # noqa: F401 - compat re-export
    prepare_run_config,
    run_batch_segments,
    run_job_segments,
    worker_child_main,
)
from repro.service.jobstore import (
    ADMITTED,
    CANCELLED,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    JobStore,
)
from repro.service.queue import JobQueue

__all__ = ["Supervisor", "SupervisorConfig", "coalesce_key"]

#: pre-isolation spelling, kept for callers of the old private name
_CHECKPOINTABLE = CHECKPOINTABLE

#: isolation modes a supervisor accepts
ISOLATION_MODES = ("thread", "process")

#: backends whose jobs may be coalesced into one stacked batched run:
#: checkpointable, plan-consuming, and proven bit-identical to the
#: batched lowering by the parity matrix.  A job already carrying a
#: checkpoint resumes solo (members of a batch must share step 0).
COALESCE_BACKENDS = frozenset(("serial", "compiled"))


def coalesce_key(kernel: str, config: Dict[str, Any]) -> Optional[str]:
    """Coalescing group key: jobs differing *only by seed* may run as
    members of one stacked batch.

    The key is the kernel plus the canonical JSON of the normalized
    config with the seed removed — the same canonicalisation as the
    idempotency key, one knob looser.  ``None`` means the config does
    not normalize (the job will fail on its own; never coalesce it).
    """
    import json

    from repro.api.config import RunConfig

    try:
        cfg = RunConfig.from_json(config).normalized()
    except Exception:
        return None
    data = cfg.to_json()
    data.pop("seed", None)
    canon = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return f"{kernel}|{canon}"


def _default_isolation() -> str:
    # the CI matrix runs the whole service suite under both modes by
    # exporting REPRO_ISOLATION=process; thread stays the default
    return os.environ.get("REPRO_ISOLATION", "thread")


@dataclass
class SupervisorConfig:
    """Tunable knobs of the durable job runtime."""

    #: worker slots leasing jobs concurrently
    workers: int = 2
    #: queue depth bound (refusals raise QueueSaturated, exit 10)
    queue_depth: int = 64
    #: ceiling on the queued jobs' summed admission estimates
    max_pending_bytes: Optional[int] = None
    #: lease lifetime; a lease not renewed for this long is stale
    lease_ttl_s: float = 30.0
    #: keeper-thread heartbeat period (lease renewal cadence)
    lease_renew_s: float = 2.0
    #: checkpoint every N steps on checkpointable backends (0 = only
    #: run whole; recovery then restarts from the journal)
    checkpoint_steps: int = 0
    #: default per-job retry budget for transient failures
    default_max_retries: int = 2
    #: base backoff before a retry; attempt ``k`` waits ``base * 2**k``
    retry_backoff_s: float = 0.05
    #: backoff ceiling
    retry_backoff_cap_s: float = 2.0
    #: multiplicative jitter span (0.25 = up to +25%), seeded per
    #: (job, attempt) so tests replay deterministically
    retry_jitter: float = 0.25
    #: worker poll period while the queue is idle
    poll_s: float = 0.05
    #: ``"thread"`` (in-process, zero overhead) or ``"process"``
    #: (sandboxed worker children with crash containment)
    isolation: str = field(default_factory=_default_isolation)
    #: per-job circuit breaker: a job that crashes this many worker
    #: incarnations is quarantined ``failed``/``"poisoned"``
    max_worker_crashes: int = 3
    #: child heartbeat beacon period (process mode)
    worker_heartbeat_s: float = 0.25
    #: heartbeat silence past this declares the child crashed
    worker_heartbeat_timeout_s: float = 30.0
    #: slack added to a job's QoS memory ceiling before it becomes the
    #: child's RLIMIT_AS (interpreter + numpy need address space too)
    rlimit_headroom_bytes: int = 256 << 20
    #: default deadline for :meth:`Supervisor.drain`
    drain_timeout_s: float = 30.0
    #: extra grace after asking in-flight jobs to preempt at their next
    #: checkpoint boundary
    drain_grace_s: float = 5.0
    #: queued jobs one worker may coalesce into a single stacked
    #: batched run (thread isolation only; 1 disables coalescing).
    #: Members must share everything but the seed (:func:`coalesce_key`)
    max_batch: int = 1

    def __post_init__(self) -> None:
        if self.isolation not in ISOLATION_MODES:
            raise ValueError(
                f"isolation must be one of {ISOLATION_MODES}, "
                f"got {self.isolation!r}")
        if self.max_batch < 1:
            raise ValueError(
                f"max_batch must be >= 1, got {self.max_batch}")


@dataclass
class _Metrics:
    submitted: int = 0
    deduplicated: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    retries: int = 0
    resumes: int = 0
    refused: int = 0
    segments_run: int = 0
    worker_crashes: int = 0
    poisoned: int = 0
    preempted: int = 0
    stale_rejected: int = 0
    #: coalesced batch executions (each ran >= 2 jobs as one stack)
    batches_run: int = 0
    #: jobs that executed as members of a coalesced batch
    coalesced_jobs: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(vars(self))


@dataclass
class _Child:
    """Parent-side handle of one worker child incarnation."""

    proc: Any
    chan: Channel
    incarnation: int
    last_beat: float
    job_id: Optional[str] = None


class Supervisor:
    """Worker pool that makes journaled jobs finish, whatever happens."""

    def __init__(self, store: JobStore,
                 config: Optional[SupervisorConfig] = None):
        self.store = store
        self.config = config or SupervisorConfig()
        self.queue = JobQueue(
            maxsize=self.config.queue_depth,
            max_pending_bytes=self.config.max_pending_bytes)
        self.metrics = _Metrics()
        self._owner = f"supervisor-{id(self):x}"
        self._threads: List[threading.Thread] = []
        self._keeper: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._draining = threading.Event()
        #: set when drain patience runs out: in-flight jobs stop at
        #: their next checkpoint boundary and requeue
        self._abandon = threading.Event()
        #: wakes retry-backoff sleepers on stop()/begin_drain() so
        #: shutdown never blocks behind a pending backoff
        self._interrupt = threading.Event()
        self._started = False
        self._tokens: Dict[str, Any] = {}
        self._epochs: Dict[str, int] = {}
        self._tokens_lock = threading.Lock()
        self._sessions: Dict[str, Any] = {}
        self._done_cond = threading.Condition()
        self._children: Dict[int, _Child] = {}
        self._children_lock = threading.Lock()
        #: per-slot incarnation counter; survives retirement so a
        #: respawned child is visibly a *new* incarnation
        self._incarnations: Dict[int, int] = {}
        self._info: Dict[int, Dict[str, Any]] = {}
        self._info_lock = threading.Lock()
        self.recovery = None  #: RecoveryReport of the last start()

    # -- lifecycle ----------------------------------------------------

    def start(self):
        """Recover the store, re-queue pending work, spawn workers."""
        if self._started:
            raise RuntimeError("supervisor already started")
        self._started = True
        self._stop.clear()
        self._draining.clear()
        self._abandon.clear()
        self._interrupt.clear()
        self.recovery = self.store.recover()
        for job in self.store.jobs(state=QUEUED):
            # journaled work is never refused on the way back in
            self.queue.put(job, force=True)
        for wid in range(self.config.workers):
            t = threading.Thread(target=self._worker_loop, args=(wid,),
                                 name=f"repro-worker-{wid}", daemon=True)
            t.start()
            self._threads.append(t)
        self._keeper = threading.Thread(target=self._keeper_loop,
                                        name="repro-lease-keeper",
                                        daemon=True)
        self._keeper.start()
        # a dying parent sweeps its leases/tmp files even without a
        # clean stop(); a SIGKILL cannot run this — that is what the
        # startup recovery scan is for
        atexit.register(self._atexit_cleanup)
        return self.recovery

    def stop(self, timeout: float = 10.0) -> None:
        """Stop promptly: in-flight jobs stop at their next checkpoint
        boundary (requeued, journaled) or finish their final segment;
        worker children are shut down and reaped."""
        if not self._started:
            return
        self._stop.set()
        self._interrupt.set()
        self.queue.close()
        for t in self._threads:
            t.join(timeout=timeout)
        if self._keeper is not None:
            self._keeper.join(timeout=timeout)
        self._threads = []
        self._keeper = None
        self._started = False
        atexit.unregister(self._atexit_cleanup)
        self._shutdown_children()
        self._release_all_leases()
        self.store.sweep_tmp()

    # -- graceful drain -----------------------------------------------

    def begin_drain(self) -> None:
        """Stop admission immediately; in-flight jobs keep running.

        New submissions refuse with
        :class:`~repro.runtime.errors.ServiceDraining` (HTTP 503) from
        this point on.  Idle workers stop picking up queued jobs —
        those stay journaled for the next incarnation.
        """
        self._draining.set()
        self._interrupt.set()
        self.queue.set_draining(True)

    def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Drain in-flight work; True iff everything settled in time.

        Phase 1 waits up to ``timeout_s`` (default
        ``config.drain_timeout_s``) for in-flight jobs to finish on
        their own.  Phase 2 asks the stragglers to stop at their next
        checkpoint boundary (process-mode children get a ``preempt``
        message, thread workers check the same flag) and grants
        ``config.drain_grace_s``; a preempted job requeues journaled,
        so nothing is lost either way — False only means the exit was
        not clean and a job may re-run its last segment.
        """
        if not self._started:
            return True
        self.begin_drain()
        timeout = (self.config.drain_timeout_s
                   if timeout_s is None else float(timeout_s))
        if self._wait_idle(time.monotonic() + max(0.0, timeout)):
            return True
        self._abandon.set()
        return self._wait_idle(
            time.monotonic() + max(0.0, self.config.drain_grace_s))

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def _wait_idle(self, deadline: float) -> bool:
        while True:
            with self._tokens_lock:
                busy = len(self._tokens)
            if busy == 0:
                return True
            if time.monotonic() >= deadline:
                return False
            with self._done_cond:
                self._done_cond.wait(timeout=0.05)

    # -- cleanup ------------------------------------------------------

    def _atexit_cleanup(self) -> None:
        self._stop.set()
        self._interrupt.set()
        self.queue.close()
        self._shutdown_children()
        self._release_all_leases()
        try:
            self.store.sweep_tmp()
            self.store.close()
        except Exception:
            pass

    def _release_all_leases(self) -> None:
        with self._tokens_lock:
            active = dict(self._epochs)
        for job_id, epoch in active.items():
            self.store.release_lease(job_id, epoch=epoch)

    # -- submission / control -----------------------------------------

    def submit(self, kernel: str, config: Dict[str, Any], *,
               priority: int = 0,
               max_retries: Optional[int] = None) -> Tuple[Job, bool]:
        """Admit, journal and enqueue one job (idempotent).

        Admission order is the backpressure contract: the queue bound
        is checked *before* the journal write, so a refused submission
        (:class:`~repro.runtime.errors.QueueSaturated`) leaves no
        record.  A deduplicated resubmission returns the existing job
        without touching the queue.  A draining supervisor refuses
        everything (:class:`~repro.runtime.errors.ServiceDraining`).
        """
        from repro.service.jobstore import job_identity

        if self._draining.is_set():
            self.metrics.refused += 1
            raise ServiceDraining()
        _, _, _, key, estimate = job_identity(kernel, config)
        with self.store._lock:
            known = self.store._by_key.get(key)
        if known is None:
            try:
                self.queue.check_admit(estimate)
            except Exception:
                self.metrics.refused += 1
                raise
        job, created = self.store.submit(
            kernel, config, priority=priority,
            max_retries=(self.config.default_max_retries
                         if max_retries is None else max_retries))
        if created:
            self.metrics.submitted += 1
            self.queue.put(job, force=True)
        else:
            self.metrics.deduplicated += 1
        return job, created

    def cancel(self, job_id: str) -> Job:
        """Cancel a job: drop it from the queue, or trip its token.

        Queued jobs cancel immediately; a running job stops at its
        next cooperative QoS boundary (the PR-6 cancellation path) and
        is journaled ``cancelled`` by its worker — in process mode the
        token trip is forwarded to the child over the channel.
        Terminal jobs are returned unchanged — cancellation is
        idempotent.
        """
        job = self.store.get(job_id)
        if job.terminal:
            return job
        if self.queue.remove(job_id) and job.state == QUEUED:
            self.metrics.cancelled += 1
            return self.store.transition(job_id, CANCELLED,
                                         detail="cancelled while queued")
        with self._tokens_lock:
            token = self._tokens.get(job_id)
        if token is not None:
            token.cancel()
        return self.store.get(job_id)

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> Job:
        """Block until the job reaches a terminal state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.store.get(job_id)
            if job.terminal:
                return job
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return job
            with self._done_cond:
                self._done_cond.wait(
                    timeout=0.05 if remaining is None
                    else min(0.05, remaining))

    # -- observability ------------------------------------------------

    def worker_states(self) -> List[Dict[str, Any]]:
        """Per-slot liveness: heartbeat age, current job, incarnation."""
        now = time.monotonic()
        with self._info_lock:
            infos = {w: dict(i) for w, i in self._info.items()}
        out = []
        for wid in range(self.config.workers):
            info = infos.get(wid, {})
            beat = info.get("last_beat")
            out.append({
                "worker": wid,
                "mode": self.config.isolation,
                "job_id": info.get("job_id"),
                "incarnation": int(info.get("incarnation", 0)),
                "alive": bool(info.get("alive", True)),
                "heartbeat_age_s": (round(now - beat, 3)
                                    if beat is not None else None),
            })
        return out

    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` payload: state, workers, queue pressure."""
        draining = self._draining.is_set()
        state = ("draining" if draining
                 else "serving" if self._started else "stopped")
        return {
            "ok": self._started and not draining,
            "state": state,
            "isolation": self.config.isolation,
            "workers": self.worker_states(),
            "queue": {
                "depth": len(self.queue),
                "capacity": self.queue.maxsize,
                "pending_bytes": self.queue.pending_bytes,
            },
        }

    def snapshot_metrics(self) -> Dict[str, Any]:
        out = {
            "supervisor": self.metrics.as_dict(),
            "state": ("draining" if self._draining.is_set()
                      else "serving" if self._started else "stopped"),
            "isolation": self.config.isolation,
            "workers": self.worker_states(),
            "queue": {
                "depth": len(self.queue),
                "capacity": self.queue.maxsize,
                "pending_bytes": self.queue.pending_bytes,
            },
            "store": self.store.metrics(),
        }
        if self.recovery is not None:
            out["recovery"] = dict(vars(self.recovery))
        return out

    def _set_info(self, wid: int, **fields: Any) -> None:
        with self._info_lock:
            info = self._info.setdefault(wid, {})
            info.update(fields)
            info["last_beat"] = time.monotonic()

    def _touch_info(self, wid: int) -> None:
        with self._info_lock:
            self._info.setdefault(wid, {})["last_beat"] = time.monotonic()

    # -- worker internals ---------------------------------------------

    def _session(self, kernel: str):
        from repro import get_stencil
        from repro.api.session import Session

        session = self._sessions.get(kernel)
        if session is None:
            session = Session(get_stencil(kernel))
            self._sessions[kernel] = session
        return session

    def _worker_loop(self, wid: int) -> None:
        owner = f"{self._owner}/w{wid}"
        process_mode = self.config.isolation == "process"
        while not self._stop.is_set():
            if self._draining.is_set():
                # in-flight work (if any) was handled inside a previous
                # iteration; queued jobs stay journaled for a successor
                break
            job = self.queue.get(timeout=self.config.poll_s)
            self._touch_info(wid)
            if job is None:
                if process_mode:
                    self._pump_child(wid)
                continue
            try:
                current = self.store.get(job.job_id)
            except JobNotFound:  # pragma: no cover - defensive
                continue
            if current.state != QUEUED:
                continue  # cancelled (or finalized) while waiting
            epoch = self.store.acquire_lease(job.job_id, owner,
                                             self.config.lease_ttl_s)
            if not epoch:
                continue  # someone live holds it; never run twice
            from repro.runtime.qos import CancelToken

            token = CancelToken()
            with self._tokens_lock:
                self._tokens[job.job_id] = token
                self._epochs[job.job_id] = epoch
            try:
                self.store.transition(job.job_id, ADMITTED,
                                      detail=f"leased by {owner}")
                if process_mode:
                    self._run_job_process(current, owner, wid, token,
                                          epoch)
                else:
                    members = self._claim_members(current, owner)
                    if members:
                        self._run_job_batch(
                            [(current, token, epoch)] + members,
                            owner, wid)
                    else:
                        self._run_job(current, owner, wid, token, epoch)
            except JobPreempted as exc:
                self._requeue_preempted(job.job_id, exc.step)
            except StaleLeaseError:
                # our lease was reclaimed mid-run; the new holder owns
                # the job's story now — stand down without journaling
                self.metrics.stale_rejected += 1
                if process_mode:
                    # the child is computing a fenced job; stop it
                    self._retire_child(wid)
            except Exception as exc:
                self._handle_failure(current, exc, epoch=epoch)
            finally:
                with self._tokens_lock:
                    self._tokens.pop(job.job_id, None)
                    self._epochs.pop(job.job_id, None)
                self.store.release_lease(job.job_id, epoch=epoch)
                self._set_info(wid, job_id=None)
                with self._done_cond:
                    self._done_cond.notify_all()

    def _keeper_loop(self) -> None:
        """Heartbeat: renew the leases of every in-flight job."""
        while not self._stop.wait(self.config.lease_renew_s):
            with self._tokens_lock:
                active = dict(self._epochs)
            for job_id, epoch in active.items():
                try:
                    self.store.renew_lease(
                        job_id, self._owner, self.config.lease_ttl_s,
                        epoch=epoch)
                except Exception:  # pragma: no cover - defensive
                    pass

    def _should_preempt(self) -> bool:
        return self._abandon.is_set() or self._stop.is_set()

    # -- thread-mode execution ----------------------------------------

    def _run_job(self, job: Job, owner: str, wid: int, token,
                 epoch: int) -> None:
        """Execute one leased job in-thread, in checkpointed segments."""
        session = self._session(job.kernel)
        cfg = prepare_run_config(session, job.config, token)
        resume = None
        if cfg.backend in CHECKPOINTABLE:
            resume = self.store.load_checkpoint(job.job_id)
        resume_step = int(resume[0]) if resume is not None else -1
        self.store.transition(
            job.job_id, RUNNING,
            attempts=job.attempts + 1,
            resumed_from_step=resume_step if resume_step >= 0 else None,
            detail=(f"resumed from step {resume_step}"
                    if resume_step >= 0 else "started"))
        if resume_step >= 0:
            self.metrics.resumes += 1
        self._set_info(wid, job_id=job.job_id)

        def on_checkpoint(step: int, buffer) -> None:
            self.store.save_checkpoint(job.job_id, step, buffer,
                                       epoch=epoch)
            self.store.renew_lease(job.job_id, owner,
                                   self.config.lease_ttl_s, epoch=epoch)

        def on_segment() -> None:
            self.metrics.segments_run += 1
            self._touch_info(wid)

        interior, stats, _ = run_job_segments(
            session, cfg, job_id=job.job_id,
            checkpoint_steps=self.config.checkpoint_steps,
            resume=resume, on_checkpoint=on_checkpoint,
            on_segment=on_segment, should_preempt=self._should_preempt)
        self.store.record_result(job.job_id, interior, stats.to_json(),
                                 epoch=epoch)
        self.metrics.completed += 1

    # -- coalesced (batched) execution --------------------------------

    def _claim_members(self, leader: Job, owner: str) -> List[Tuple]:
        """Claim up to ``max_batch - 1`` queued jobs that may run as
        one stacked batch with the already-leased ``leader``.

        Members must share the leader's coalescing group (everything
        but the seed), carry no checkpoint, and their backend/scheme
        must have a batched lowering.  Each claimed member is leased
        and admitted exactly like a solo job — crash-resume and lease
        fencing stay per member.  A member that cannot be leased or
        admitted goes straight back on the queue.
        """
        limit = self.config.max_batch - 1
        if limit <= 0 or self.config.isolation == "process":
            return []
        if leader.checkpoints:
            return []  # a resume runs solo; members must share step 0
        from dataclasses import replace as _replace

        from repro.api.backends import get_backend
        from repro.runtime.qos import CancelToken, estimate_peak_bytes

        session = self._session(leader.kernel)
        try:
            cfg = prepare_run_config(session, leader.config, None)
        except Exception:
            return []
        if cfg.backend not in COALESCE_BACKENDS or cfg.batch != 1:
            return []
        batched_cfg = _replace(cfg, backend="batched")
        if get_backend("batched").supports(session.spec,
                                           batched_cfg) is not None:
            return []
        key = coalesce_key(leader.kernel, leader.config)
        if key is None:
            return []

        def batch_bytes(n: int) -> int:
            # the PR-9 footprint fix: a coalesced batch is ONE
            # [N, ...] stacked allocation (2N ping-pong pairs), not N
            # independent single-instance estimates
            return estimate_peak_bytes(
                session.spec, cfg.shape, _replace(batched_cfg, batch=n))

        def match(job: Job) -> bool:
            return (job.kernel == leader.kernel
                    and not job.checkpoints
                    and coalesce_key(job.kernel, job.config) == key)

        members: List[Tuple] = []
        for job in self.queue.claim_compatible(match, limit,
                                               batch_bytes=batch_bytes):
            try:
                current = self.store.get(job.job_id)
            except JobNotFound:  # pragma: no cover - defensive
                continue
            if current.state != QUEUED or current.checkpoints:
                continue  # cancelled or resumed while waiting
            epoch = self.store.acquire_lease(job.job_id, owner,
                                             self.config.lease_ttl_s)
            if not epoch:
                self._requeue(current)
                continue
            token = CancelToken()
            with self._tokens_lock:
                self._tokens[job.job_id] = token
                self._epochs[job.job_id] = epoch
            try:
                self.store.transition(job.job_id, ADMITTED,
                                      detail=f"coalesced by {owner}")
            except ValueError:
                with self._tokens_lock:
                    self._tokens.pop(job.job_id, None)
                    self._epochs.pop(job.job_id, None)
                self.store.release_lease(job.job_id, epoch=epoch)
                continue
            members.append((current, token, epoch))
        return members

    def _run_job_batch(self, entries: List[Tuple], owner: str,
                       wid: int) -> None:
        """Run coalesced members as one stacked batched segment run.

        One ``[N, ...]`` execution, N independent durability stories:
        every member keeps its own lease epoch, journaled transitions,
        checkpoint seals and result commit, so a crash, preemption or
        per-member cancellation behaves exactly as it would for N solo
        runs — only the compute is shared.
        """
        from repro.stencils.grid import Grid

        from repro.api.config import RunConfig

        jobs = [e[0] for e in entries]
        n = len(entries)
        session = self._session(jobs[0].kernel)
        spec = session.spec
        cfg = prepare_run_config(session, jobs[0].config, None)
        shape = tuple(cfg.shape)
        dropped: Dict[int, str] = {}
        self._set_info(wid, job_id=jobs[0].job_id)
        grids = []
        for job in jobs:
            seed = int(RunConfig.from_json(job.config).normalized().seed)
            grids.append(Grid(spec, shape, init="random", seed=seed))

        def on_checkpoint(i: int, step: int, buffer) -> bool:
            job, token, epoch = entries[i]
            if token.cancelled:
                dropped[i] = "cancelled"
                self.metrics.cancelled += 1
                try:
                    self.store.transition(
                        job.job_id, CANCELLED,
                        detail=f"cancelled at batch boundary {step}")
                except (ValueError, JobNotFound):  # pragma: no cover
                    pass
                return False
            try:
                self.store.save_checkpoint(job.job_id, step, buffer,
                                           epoch=epoch)
                self.store.renew_lease(job.job_id, owner,
                                       self.config.lease_ttl_s,
                                       epoch=epoch)
            except StaleLeaseError:
                # the lease moved on mid-batch; the new holder owns
                # this member's story — drop it, keep the others
                dropped[i] = "stale"
                self.metrics.stale_rejected += 1
                return False
            return True

        def on_segment() -> None:
            self.metrics.segments_run += 1
            self._touch_info(wid)

        try:
            try:
                for job in jobs:
                    self.store.transition(
                        job.job_id, RUNNING, attempts=job.attempts + 1,
                        detail=f"started (batch of {n}, worker {wid})")
                results = run_batch_segments(
                    session, cfg, grids,
                    job_ids=[j.job_id for j in jobs],
                    checkpoint_steps=self.config.checkpoint_steps,
                    on_checkpoint=on_checkpoint, on_segment=on_segment,
                    should_preempt=self._should_preempt)
            except JobPreempted as exc:
                for i, job in enumerate(jobs):
                    if i not in dropped:
                        self._requeue_preempted(job.job_id, exc.step)
                return
            except Exception as exc:
                # one failure, N verdicts: each member retries (or
                # fails) under its own budget and backoff
                for i, (job, _, epoch) in enumerate(entries):
                    if i not in dropped:
                        self._handle_failure(job, exc, epoch=epoch)
                return
            for i in sorted(results):
                interior, stats = results[i]
                job, _, epoch = entries[i]
                try:
                    self.store.record_result(job.job_id, interior,
                                             stats.to_json(),
                                             epoch=epoch)
                    self.metrics.completed += 1
                except StaleLeaseError:
                    self.metrics.stale_rejected += 1
            self.metrics.batches_run += 1
            self.metrics.coalesced_jobs += n
        finally:
            for i, (job, _, epoch) in enumerate(entries):
                if i == 0:
                    continue  # the worker loop cleans up the leader
                with self._tokens_lock:
                    self._tokens.pop(job.job_id, None)
                    self._epochs.pop(job.job_id, None)
                self.store.release_lease(job.job_id, epoch=epoch)
            with self._done_cond:
                self._done_cond.notify_all()

    # -- process-mode execution ---------------------------------------

    def _spawn_child(self, wid: int, incarnation: int) -> _Child:
        import multiprocessing as mp

        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = mp.get_context()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        child_cfg = ChildConfig(
            worker=wid, heartbeat_s=self.config.worker_heartbeat_s,
            incarnation=incarnation)
        proc = ctx.Process(target=worker_child_main,
                           args=(child_cfg, child_conn),
                           name=f"repro-svc-child-{wid}", daemon=True)
        proc.start()
        child_conn.close()
        child = _Child(proc=proc, chan=Channel(parent_conn),
                       incarnation=incarnation,
                       last_beat=time.monotonic())
        with self._children_lock:
            self._children[wid] = child
            self._incarnations[wid] = incarnation
        self._set_info(wid, incarnation=incarnation, alive=True)
        return child

    def _ensure_child(self, wid: int) -> _Child:
        with self._children_lock:
            child = self._children.get(wid)
            next_incarnation = self._incarnations.get(wid, -1) + 1
        if child is not None and child.proc.is_alive():
            return child
        if child is not None:
            self._retire_child(wid)
        return self._spawn_child(wid, next_incarnation)

    def _retire_child(self, wid: int) -> None:
        """Kill, join and *reap* a child — no zombies, ever."""
        with self._children_lock:
            child = self._children.pop(wid, None)
        if child is None:
            return
        child.chan.close()
        child.proc.join(timeout=0.2)
        if child.proc.is_alive():
            child.proc.terminate()
            child.proc.join(timeout=2.0)
        if child.proc.is_alive():  # pragma: no cover - hard straggler
            child.proc.kill()
            child.proc.join(timeout=2.0)
        self._set_info(wid, alive=False, job_id=None)

    def _shutdown_children(self) -> None:
        with self._children_lock:
            wids = list(self._children)
            for wid in wids:
                try:
                    self._children[wid].chan.send(Message(
                        kind=SHUTDOWN, src=PARENT, dst=wid, epoch=0))
                except ChannelClosed:
                    pass
        for wid in wids:
            self._retire_child(wid)

    def _pump_child(self, wid: int) -> None:
        """Drain idle-child heartbeats so the pipe never backs up."""
        with self._children_lock:
            child = self._children.get(wid)
        if child is None:
            return
        try:
            while child.chan.poll():
                if child.chan.recv(0) is not None:
                    child.last_beat = time.monotonic()
        except ChannelClosed:
            pass
        if not child.proc.is_alive():
            # an idle child died (operator kill, OOM sweep): retire it
            # now, respawn lazily when the next job arrives
            self._retire_child(wid)

    def _child_limit_bytes(self, job: Job, cfg) -> Optional[int]:
        """RLIMIT_AS for the child: QoS ceiling + admission estimate +
        headroom.  None (no limit) when the job carries no ceiling —
        opt-in containment, matching the QoS admission contract."""
        qos = cfg.qos
        if qos is None or qos.max_memory_bytes is None:
            return None
        base = max(int(qos.max_memory_bytes), int(job.estimated_bytes))
        return base + int(self.config.rlimit_headroom_bytes)

    def _child_signal(self, child: _Child, kind: str, epoch: int,
                      job_id: str) -> bool:
        try:
            child.chan.send(Message(kind=kind, src=PARENT,
                                    dst=child.incarnation, epoch=epoch,
                                    payload=job_id))
        except ChannelClosed:
            pass  # death surfaces on the next liveness check
        return True

    def _run_job_process(self, job: Job, owner: str, wid: int, token,
                         epoch: int) -> None:
        """Assign one leased job to this slot's worker child and watch
        it: heartbeats, checkpoints, result/failure, crash detection."""
        from repro.api.config import RunConfig

        cfg = RunConfig.from_json(job.config).normalized()
        resume = None
        if cfg.backend in CHECKPOINTABLE:
            resume = self.store.load_checkpoint(job.job_id)
        resume_step = int(resume[0]) if resume is not None else -1

        child = self._ensure_child(wid)
        self._pump_child(wid)
        self.store.transition(
            job.job_id, RUNNING,
            attempts=job.attempts + 1,
            resumed_from_step=resume_step if resume_step >= 0 else None,
            detail=(f"resumed from step {resume_step} "
                    f"(worker {wid}#{child.incarnation})"
                    if resume_step >= 0
                    else f"started (worker {wid}#{child.incarnation})"))
        if resume_step >= 0:
            self.metrics.resumes += 1
        assignment = JobAssignment(
            job_id=job.job_id, kernel=job.kernel,
            config=dict(job.config),
            checkpoint_steps=self.config.checkpoint_steps,
            resume_step=resume_step,
            resume_buffer=resume[1] if resume is not None else None,
            limit_bytes=self._child_limit_bytes(job, cfg))
        child.job_id = job.job_id
        self._set_info(wid, job_id=job.job_id,
                       incarnation=child.incarnation)
        try:
            child.chan.send(make_data_message(
                JOB, PARENT, wid, epoch, (), assignment))
        except ChannelClosed:
            self._retire_child(wid)
            raise WorkerCrashed(job.job_id, wid, "exit",
                                detail="channel closed at assignment")
        try:
            self._watch_child(job, wid, child, owner, token, epoch)
        finally:
            child.job_id = None

    def _watch_child(self, job: Job, wid: int, child: _Child,
                     owner: str, token, epoch: int) -> None:
        cancel_sent = False
        preempt_sent = False
        segments = 0
        hb_timeout = self.config.worker_heartbeat_timeout_s
        while True:
            if token.cancelled and not cancel_sent:
                cancel_sent = self._child_signal(child, CANCEL, epoch,
                                                 job.job_id)
            if self._should_preempt() and not preempt_sent:
                preempt_sent = self._child_signal(child, PREEMPT, epoch,
                                                  job.job_id)
            try:
                msg = child.chan.recv(self.config.poll_s)
            except ChannelClosed:
                msg = None
            if msg is None:
                if not child.proc.is_alive():
                    code = child.proc.exitcode
                    self._retire_child(wid)
                    cause = "oom" if code == EXIT_CHILD_OOM else "exit"
                    raise WorkerCrashed(
                        job.job_id, wid, cause, exit_code=code,
                        detail=f"incarnation {child.incarnation}")
                silent = time.monotonic() - child.last_beat
                if silent > hb_timeout:
                    self._retire_child(wid)
                    raise WorkerCrashed(
                        job.job_id, wid, "heartbeat",
                        detail=f"silent for {silent:.1f}s "
                               f"(timeout {hb_timeout:.1f}s)")
                continue
            child.last_beat = time.monotonic()
            self._touch_info(wid)
            if msg.kind == HEARTBEAT:
                continue
            if int(msg.epoch) != int(epoch):
                continue  # stale incarnation traffic; store-fenced too
            if msg.kind == CHECKPOINT:
                if not verify_message(msg):
                    continue  # drop; a later checkpoint supersedes it
                step, buffer = unpack_payload(msg.payload)
                self.store.save_checkpoint(job.job_id, int(step),
                                           buffer, epoch=epoch)
                self.store.renew_lease(job.job_id, owner,
                                       self.config.lease_ttl_s,
                                       epoch=epoch)
                segments += 1
                self.metrics.segments_run += 1
                continue
            if msg.kind == RESULT:
                if not verify_message(msg):
                    self._retire_child(wid)
                    raise WorkerCrashed(
                        job.job_id, wid, "checksum",
                        detail="result payload failed its CRC")
                interior, stats_json = unpack_payload(msg.payload)
                self.store.record_result(job.job_id, interior,
                                         stats_json, epoch=epoch)
                self.metrics.completed += 1
                self.metrics.segments_run += 1  # the final segment
                return
            if msg.kind == PREEMPTED:
                raise JobPreempted(int(msg.payload))
            if msg.kind == FAILURE:
                verdict, error, kind = msg.payload
                raise RemoteJobFailure(verdict, error, kind)

    def _requeue_preempted(self, job_id: str, step: int) -> None:
        """A drain/stop preemption is not a failure: requeue journaled
        (the sealed checkpoint at ``step`` is the resume point)."""
        self.metrics.preempted += 1
        try:
            self.store.transition(
                job_id, QUEUED,
                detail=f"preempted at step {step} for drain/stop")
        except (ValueError, JobNotFound):  # pragma: no cover
            return
        # no live re-put: we are draining or stopping, and the next
        # start() re-enqueues every journaled queued job

    # -- failure policy -----------------------------------------------

    def _classify(self, exc: Exception) -> str:
        """``cancelled`` | ``permanent`` | ``transient`` | ``crash``."""
        if isinstance(exc, WorkerCrashed):
            return "crash"
        if isinstance(exc, RemoteJobFailure):
            return (exc.verdict if exc.verdict in
                    ("cancelled", "permanent", "transient")
                    else "transient")
        return classify_failure(exc)

    def _backoff_s(self, job: Job, attempt: int) -> float:
        base = self.config.retry_backoff_s * (2 ** max(0, attempt - 1))
        base = min(base, self.config.retry_backoff_cap_s)
        # deterministic jitter: seeded by (job, attempt) so two workers
        # retrying different jobs desynchronize, yet tests replay
        rng = random.Random(f"{job.job_id}:{attempt}")
        return base * (1.0 + self.config.retry_jitter * rng.random())

    def _requeue(self, job: Job) -> None:
        try:
            self.queue.put(job, force=True)
        except RuntimeError:
            # queue closed (stop/drain): the job is journaled queued
            # and the next start() re-enqueues it
            pass

    def _handle_failure(self, job: Job, exc: Exception, *,
                        epoch: Optional[int] = None) -> None:
        if (epoch is not None
                and self.store.lease_epoch(job.job_id) != epoch):
            # the lease moved on while we were failing; the new holder
            # owns the job's story — journaling anything now would race
            self.metrics.stale_rejected += 1
            return
        try:
            current = self.store.get(job.job_id)
        except JobNotFound:  # pragma: no cover - defensive
            return
        verdict = self._classify(exc)
        if isinstance(exc, RemoteJobFailure):
            error, kind = exc.error, exc.kind
        else:
            error, kind = str(exc), type(exc).__name__
        if verdict == "cancelled":
            self.metrics.cancelled += 1
            if current.state in (ADMITTED, RUNNING):
                self.store.transition(job.job_id, CANCELLED,
                                      error=error, error_kind=kind)
            return
        if verdict == "crash":
            self._handle_crash(current, error, kind)
            return
        attempts = max(current.attempts, 1)
        if verdict == "transient" and attempts <= current.max_retries:
            delay = self._backoff_s(current, attempts)
            self.metrics.retries += 1
            # interruptible: stop()/begin_drain() set _interrupt, so
            # shutdown never waits out a pending backoff
            self._interrupt.wait(delay)
            requeued = self.store.transition(
                job.job_id, QUEUED, error=error, error_kind=kind,
                detail=f"retry {attempts}/{current.max_retries} "
                       f"after {delay * 1e3:.0f} ms backoff")
            self._requeue(requeued)
            return
        self.metrics.failed += 1
        if current.state in (ADMITTED, RUNNING):
            if current.state == ADMITTED:
                # failures before the running record (config parse,
                # checkpoint restore) still end in a legal terminal
                # state: admitted jobs may cancel but not fail, so
                # walk the legal edge through running
                self.store.transition(job.job_id, RUNNING,
                                      attempts=current.attempts + 1,
                                      detail="failed during admission")
            self.store.transition(job.job_id, FAILED, error=error,
                                  error_kind=kind)

    def _handle_crash(self, current: Job, error: str,
                      kind: str) -> None:
        """Crash containment: requeue under the per-job circuit
        breaker, quarantine as ``poisoned`` once it trips.

        Worker crashes deliberately do *not* consume the transient
        retry budget — ``max_retries`` governs failures the job's own
        execution reported, ``max_worker_crashes`` governs jobs that
        kill the worker before it can report anything.
        """
        crashes = current.worker_crashes + 1
        self.metrics.worker_crashes += 1
        limit = self.config.max_worker_crashes
        if current.state not in (ADMITTED, RUNNING):  # pragma: no cover
            return
        if crashes >= limit:
            self.metrics.poisoned += 1
            self.metrics.failed += 1
            if current.state == ADMITTED:
                self.store.transition(current.job_id, RUNNING,
                                      attempts=current.attempts + 1,
                                      detail="crashed during admission")
            self.store.transition(
                current.job_id, FAILED,
                error=(f"quarantined after crashing {crashes} worker "
                       f"incarnation(s): {error}"),
                error_kind="poisoned", worker_crashes=crashes)
            return
        requeued = self.store.transition(
            current.job_id, QUEUED, error=error, error_kind=kind,
            worker_crashes=crashes,
            detail=f"worker crash {crashes}/{limit}; requeued for "
                   f"checkpoint resume")
        self._requeue(requeued)
