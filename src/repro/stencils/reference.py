"""Naive reference sweeps.

The reference executor advances the whole grid one time step at a time —
the (d+1)-loop naive implementation from the paper's introduction.  It
is the correctness oracle every tiled scheme in this package is checked
against, and the "no temporal reuse" baseline of the cost models.
"""

from __future__ import annotations

import numpy as np

from repro.stencils.grid import Grid
from repro.stencils.operators import _region_slices
from repro.stencils.spec import StencilSpec, full_region


def _staged_reference_step(spec, grid: Grid, t: int) -> None:
    """One naive macro-step of a staged system, full grid per stage.

    Deliberately a *different* traversal from the composed operator: no
    grown regions, no scratch — each stage sweeps the whole interior,
    new-reads coming straight from the destination parity (whose halo
    is zero, the Dirichlet value of intermediate fields), old reads
    from the source parity.  Same per-point kernel, independent
    drive loop — a genuine oracle for the staged pipeline.
    """
    src = grid.at(t)
    dst = grid.at(t + 1)
    halo = spec.halo
    region = full_region(grid.shape)
    zero = (0,) * spec.ndim
    out_sl = _region_slices(region, halo, zero)
    for stage in spec.stages:
        out = dst[(spec.field_index(stage.writes),) + out_sl]
        views = [
            (dst if new else src)[
                (spec.field_index(f),) + _region_slices(region, halo, off)
            ]
            for f, off, new in stage.reads
        ]
        stage.apply_stage(out, views)


def reference_step(spec: StencilSpec, grid: Grid, t: int) -> None:
    """Advance every interior point from global time ``t`` to ``t+1``."""
    if getattr(spec, "is_staged", False):
        _staged_reference_step(spec, grid, t)
        return
    src = grid.at(t)
    dst = grid.at(t + 1)
    if spec.is_periodic:
        cur = grid.interior(t)
        nxt = spec.operator.apply_wrapped(cur)
        grid.interior(t + 1)[...] = nxt
    else:
        spec.apply_region(src, dst, full_region(grid.shape))


def reference_sweep(
    spec: StencilSpec, grid: Grid, steps: int, t0: int = 0
) -> np.ndarray:
    """Run ``steps`` naive time steps starting at global time ``t0``.

    Returns the interior view at time ``t0 + steps`` (the grid's
    buffers are advanced in place).
    """
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    for t in range(t0, t0 + steps):
        reference_step(spec, grid, t)
    return grid.interior(t0 + steps)
