"""Tile-size auto-tuning (the paper's stated ongoing work, §5.1/§6).

The tessellation has more free parameters than competing schemes (per
dimension: core width, period, phase; plus the time depth ``b``); the
paper notes performance "is very sensitive to the tile sizes" and
defers systematic tuning.  This package provides that missing piece
against the simulated machine:

* :func:`~repro.autotune.search.grid_search` — exhaustive sweep over a
  candidate set;
* :func:`~repro.autotune.search.tune_tessellation` — guided search
  (coordinate descent over ``b`` and per-axis core widths) returning
  the best lattice found.
"""

from repro.autotune.search import (
    TuneResult,
    candidate_depths,
    grid_search,
    tune_tessellation,
)

__all__ = [
    "TuneResult",
    "candidate_depths",
    "grid_search",
    "tune_tessellation",
]
