"""Process isolation for service workers: crash containment at the job.

The PR-7 supervisor ran every job on a thread *inside* the server
process — one segfaulting kernel, runaway allocation or hard-stalled
backend took down the HTTP front, the supervisor and every in-flight
job at once.  This module is the blast wall: a worker *child* process
that runs one job at a time on the far side of an OS boundary, so the
worst a job can do is kill its own child.

The machinery is deliberately the elastic runtime's, promoted one
layer up:

* the parent and child talk over one CRC-framed duplex
  :class:`~repro.distributed.transport.Channel` (the same wire
  discipline as rank/coordinator traffic — data-bearing messages are
  sealed with a CRC32 at pack time and verified at receive time);
* the child beacons heartbeats from a daemon thread
  (:data:`~repro.distributed.transport.HEARTBEAT`), and the supervisor
  applies the elastic coordinator's watchdog pattern: a child whose
  process died *or* whose heartbeat went silent past the timeout is
  declared crashed, retired, and respawned with a fresh incarnation;
* every store mutation the job produces (checkpoint seals, the result
  commit) carries the *lease epoch* the job was assigned under, so a
  stalled old incarnation that wakes up late is fenced out by the
  store (:class:`~repro.runtime.errors.StaleLeaseError`), never
  trusted.

The segment engine (:func:`run_job_segments`) is shared by both
isolation modes: thread-mode workers call it with callbacks that seal
checkpoints straight into the store, the child calls it with callbacks
that ship them over the channel.  One execution path, two blast radii.

Resource containment: the child applies ``resource.setrlimit``
(``RLIMIT_AS``) derived from the job's QoS ceiling and admission
estimate before running, so a runaway allocation OOMs the *child* —
the parent sees a crashed worker, not a dead server.
"""

from __future__ import annotations

import os
import queue as _queue
import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.distributed.transport import (
    COORDINATOR,
    FAILURE,
    HEARTBEAT,
    RESULT,
    SHUTDOWN,
    Channel,
    ChannelClosed,
    Message,
    make_data_message,
    unpack_payload,
    verify_message,
)

__all__ = [
    "CHECKPOINTABLE",
    "ChildConfig",
    "JobAssignment",
    "JobPreempted",
    "RemoteJobFailure",
    "classify_failure",
    "grid_from_buffer",
    "merge_stats",
    "prepare_run_config",
    "run_batch_segments",
    "run_job_segments",
    "worker_child_main",
]

# -- wire protocol ----------------------------------------------------

#: parent -> child: one :class:`JobAssignment` (CRC-sealed payload)
JOB = "job"
#: child -> parent: sealed segment buffer ``(step, padded)`` to persist
CHECKPOINT = "checkpoint"
#: parent -> child: trip the current job's cancel token (payload: id)
CANCEL = "cancel"
#: parent -> child: stop at the next checkpoint boundary (drain/stop)
PREEMPT = "preempt"
#: child -> parent: preempted cleanly at step ``payload``; job requeues
PREEMPTED = "preempted"

#: the supervisor's endpoint id on a worker channel
PARENT = COORDINATOR

# -- child exit codes (disjoint from distributed/worker.py's 41-44) ---

#: the chaos hook fired (test-only deterministic "segfault")
EXIT_CHILD_CHAOS = 45
#: the child hit its RLIMIT_AS ceiling (MemoryError with a starved
#: heap is not safe to keep computing on; die and let the parent see a
#: contained crash)
EXIT_CHILD_OOM = 46
#: the parent's end of the pipe vanished; an orphan must not keep
#: computing against a store it can no longer report to
EXIT_CHILD_ORPHANED = 47

#: backends whose execution mutates the caller's Grid in place, so the
#: padded ping-pong buffer after a segment is the authoritative state
#: a later segment (or a recovered supervisor) can resume from.  The
#: distributed families scatter/gather rank-local slabs instead; jobs
#: on those backends run as one segment and restart from the journal.
CHECKPOINTABLE = frozenset(("serial", "compiled", "threaded", "resilient"))

#: test hook: fork-inherited chaos verdict ("crash" | "segv" | "oom").
#: The environment variable is the CLI-smoke spelling of the same knob.
CHAOS: Optional[str] = None
_CHAOS_ENV = "REPRO_CHAOS_WORKER"


def chaos_mode() -> Optional[str]:
    return CHAOS or os.environ.get(_CHAOS_ENV) or None


@dataclass(frozen=True)
class ChildConfig:
    """Knobs a worker child is born with."""

    worker: int
    heartbeat_s: float = 0.5
    incarnation: int = 0


@dataclass(frozen=True)
class JobAssignment:
    """Everything a child needs to run one job (travels CRC-sealed)."""

    job_id: str
    kernel: str
    config: Dict[str, Any]
    checkpoint_steps: int = 0
    resume_step: int = -1
    resume_buffer: Optional[np.ndarray] = None
    limit_bytes: Optional[int] = None


class JobPreempted(Exception):
    """The job stopped at a checkpoint boundary on parent request."""

    def __init__(self, step: int):
        self.step = int(step)
        super().__init__(f"preempted at step {step}")


class RemoteJobFailure(RuntimeError):
    """A child-reported job failure, re-raised parent-side.

    Carries the child's classification verdict and the original
    exception's message/kind so the supervisor journals exactly what a
    thread-mode failure would have journaled.
    """

    def __init__(self, verdict: str, error: str, kind: str):
        self.verdict = verdict
        self.error = error
        self.kind = kind
        super().__init__(f"{kind}: {error}")


def classify_failure(exc: BaseException) -> str:
    """``cancelled`` | ``permanent`` | ``transient`` — shared verdict.

    Both isolation modes must classify identically, or a job would
    retry in one mode and fail fast in the other.
    """
    from repro.api.backends import BackendUnsupported
    from repro.runtime.errors import (
        RunCancelled,
        RunDeadlineExceeded,
        SanitizerViolation,
    )

    if isinstance(exc, RunCancelled):
        return "cancelled"
    if isinstance(exc, (BackendUnsupported, SanitizerViolation,
                        RunDeadlineExceeded, ValueError, KeyError,
                        TypeError)):
        # usage errors, structural refusals and blown caller
        # deadlines reproduce identically on a retry
        return "permanent"
    return "transient"


# -- shared execution engine ------------------------------------------

def grid_from_buffer(spec, shape: Tuple[int, ...], padded: np.ndarray):
    """Rebuild a Grid whose local time 0 holds the padded buffer.

    ``Grid.at(t)`` indexes ``buffers[t % 2]``; seeding both buffers
    with the checkpointed state makes local time 0 of the resumed
    segment equal global time *k* of the original run.
    """
    from repro.stencils.grid import Grid

    expected = tuple(spec.padded_shape(shape))
    if tuple(padded.shape) != expected:
        raise ValueError(
            f"checkpoint buffer shape {tuple(padded.shape)} does not "
            f"match padded grid shape {expected}")
    grid = Grid.__new__(Grid)
    grid.spec = spec
    grid.shape = tuple(shape)
    arr = np.array(padded, dtype=spec.dtype, copy=True)
    grid.buffers = [arr, arr.copy()]
    return grid


def _merge_block(blocks):
    """Field-wise sum of per-segment counter blocks (same type)."""
    blocks = [b for b in blocks if b is not None]
    if not blocks:
        return None
    if len(blocks) == 1:
        return blocks[0]
    merged = type(blocks[0])()
    for name, value in vars(merged).items():
        if isinstance(value, str):
            setattr(merged, name, getattr(blocks[-1], name, value))
        elif isinstance(value, dict):
            acc: Dict[Any, Any] = {}
            for b in blocks:
                for k, v in getattr(b, name, {}).items():
                    acc[k] = acc.get(k, 0) + v
            setattr(merged, name, acc)
        elif isinstance(value, (int, float)):
            setattr(merged, name,
                    type(value)(sum(getattr(b, name, 0) for b in blocks)))
    return merged


def merge_stats(segments, *, total_steps: int, resume_step: int,
                job_id: str):
    """Fold per-segment RunStats into one job-level RunStats.

    Phase seconds, compile/hit counters and counter blocks sum across
    segments; the event streams concatenate (prefixed with a ``resume``
    event when the job restarted from a checkpoint); ``steps`` reports
    the job's total, not the last segment's.
    """
    from repro.runtime.tracing import RuntimeEvent

    last = segments[-1]
    if len(segments) == 1 and resume_step < 0:
        return last
    phases: Dict[str, float] = {}
    events = []
    if resume_step >= 0:
        events.append(RuntimeEvent(
            kind="resume", group=0, label=job_id,
            detail=f"resumed from checkpoint at step {resume_step}"))
    for seg in segments:
        for k, v in seg.phases.items():
            phases[k] = phases.get(k, 0.0) + float(v)
        events.extend(seg.events)
    merged = replace(
        last,
        steps=int(total_steps),
        phases=phases,
        events=events,
        comm=_merge_block([s.comm for s in segments]),
        resilience=_merge_block([s.resilience for s in segments]),
        cache=_merge_block([s.cache for s in segments]),
        plan_compiles=sum(int(s.plan_compiles) for s in segments),
        cache_hits=sum(int(s.cache_hits) for s in segments),
        degradations=[hop for s in segments for hop in s.degradations],
    )
    return merged


def prepare_run_config(session, config: Dict[str, Any], token):
    """Normalize a job's journaled config and graft its cancel token."""
    from repro.api.config import RunConfig
    from repro.runtime.qos import QoSPolicy

    cfg = RunConfig.from_json(config).normalized()
    shape = tuple(cfg.shape) if cfg.shape is not None \
        else tuple(session.default_shape())
    qos = (replace(cfg.qos, cancel_token=token)
           if cfg.qos is not None else QoSPolicy(cancel_token=token))
    return replace(cfg, shape=shape, qos=qos)


def run_job_segments(
    session,
    cfg,
    *,
    job_id: str,
    checkpoint_steps: int,
    resume: Optional[Tuple[int, np.ndarray]] = None,
    on_checkpoint: Optional[Callable[[int, np.ndarray], None]] = None,
    on_segment: Optional[Callable[[], None]] = None,
    should_preempt: Optional[Callable[[], bool]] = None,
):
    """Drive one job through ``Session.run`` in checkpointed segments.

    The one segment engine both isolation modes share.  ``cfg`` must be
    normalized with its shape resolved (:func:`prepare_run_config`).
    After each non-final segment the sealed padded buffer goes to
    ``on_checkpoint`` (thread mode persists it into the store, the
    child ships it over the channel), then ``should_preempt`` may stop
    the job cleanly at that boundary (:class:`JobPreempted` — the
    graceful-drain path: the buffer just shipped is the resume point).

    Returns ``(interior, merged RunStats, resume_step)``; segmenting is
    bit-identical to an unsegmented run because every scheme is
    bit-identical to the naive sweep — the property the chaos tests pin.
    """
    from repro.stencils.grid import Grid

    spec = session.spec
    shape = tuple(cfg.shape)
    total = int(cfg.steps)
    segmented = cfg.backend in CHECKPOINTABLE

    resume_step = -1
    if segmented and resume is not None:
        step, padded = resume
        grid = grid_from_buffer(spec, shape, padded)
        k = resume_step = int(step)
    else:
        grid = Grid(spec, shape, init="random", seed=cfg.seed)
        k = 0

    step_quota = checkpoint_steps if segmented else 0
    segments = []
    result = None
    while True:
        n = (total - k) if step_quota <= 0 else min(step_quota, total - k)
        result = session.run(replace(cfg, steps=n), grid=grid)
        segments.append(result.stats)
        if on_segment is not None:
            on_segment()
        k += n
        if k >= total:
            break
        buffer = np.ascontiguousarray(grid.at(n))
        if on_checkpoint is not None:
            on_checkpoint(k, buffer)
        if should_preempt is not None and should_preempt():
            raise JobPreempted(k)
        # fresh parity: local time 0 of the next segment is global
        # time k
        grid = grid_from_buffer(spec, shape, buffer)

    stats = merge_stats(segments, total_steps=total,
                        resume_step=resume_step, job_id=job_id)
    return np.ascontiguousarray(result.interior), stats, resume_step


def run_batch_segments(
    session,
    cfg,
    grids,
    *,
    job_ids,
    checkpoint_steps: int,
    on_checkpoint: Optional[Callable[[int, int, np.ndarray], bool]] = None,
    on_segment: Optional[Callable[[], None]] = None,
    should_preempt: Optional[Callable[[], bool]] = None,
):
    """Drive N coalesced jobs through ``Session.run_many`` in segments.

    The batched sibling of :func:`run_job_segments`: every segment runs
    all members as one stacked ``[N, ...]`` batch, but every durability
    action stays **per member**.  After each non-final segment each
    member's sealed padded buffer goes to
    ``on_checkpoint(index, step, buffer)`` individually; a callback
    returning ``False`` *drops* that member from the rest of the batch
    (its lease was fenced away, or its caller cancelled it) and the
    survivors continue.  ``should_preempt`` is consulted once per
    boundary, *after* every member's checkpoint sealed, so a
    :class:`JobPreempted` leaves each member individually resumable —
    a SIGKILL mid-batch loses at most one segment per member, exactly
    like a solo run.

    ``cfg`` must be normalized with its shape resolved; its ``backend``
    is forced to ``batched`` per segment.  Member identity (seed) lives
    in ``grids``, which the caller built one per member.

    Returns ``{original index: (interior, merged RunStats)}`` for the
    members that ran to completion.  Segmenting is bit-identical to an
    unsegmented run — the batched backend scatters both parities back
    into the member grids, so a sealed buffer is the authoritative
    state at its step.
    """
    spec = session.spec
    shape = tuple(cfg.shape)
    total = int(cfg.steps)
    step_quota = max(0, int(checkpoint_steps))
    grids = list(grids)
    if len(job_ids) != len(grids):
        raise ValueError("job_ids and grids must pair up")
    live = list(range(len(grids)))
    segments: Dict[int, list] = {i: [] for i in live}
    final: Dict[int, Any] = {}
    k = 0
    while True:
        n = (total - k) if step_quota <= 0 else min(step_quota, total - k)
        batch_cfg = replace(cfg, steps=n, backend="batched",
                            batch=len(live))
        results = session.run_many(batch_cfg,
                                   grids=[grids[i] for i in live])
        for i, res in zip(live, results):
            segments[i].append(res.stats)
            final[i] = res
        if on_segment is not None:
            on_segment()
        k += n
        if k >= total:
            break
        survivors = []
        for i in live:
            buffer = np.ascontiguousarray(grids[i].at(n))
            keep = True
            if on_checkpoint is not None:
                keep = on_checkpoint(i, k, buffer) is not False
            if keep:
                # fresh parity: local time 0 of the next segment is
                # global time k
                grids[i] = grid_from_buffer(spec, shape, buffer)
                survivors.append(i)
            else:
                final.pop(i, None)
        live = survivors
        if should_preempt is not None and should_preempt():
            raise JobPreempted(k)
        if not live:
            return {}
    out = {}
    for i in live:
        stats = merge_stats(segments[i], total_steps=total,
                            resume_step=-1, job_id=job_ids[i])
        out[i] = (np.ascontiguousarray(final[i].interior), stats)
    return out


# -- resource containment ---------------------------------------------

def apply_rlimit(limit_bytes: Optional[int]):
    """Cap the child's address space; returns a restore token.

    Best-effort and gated on platform support (``resource`` is
    POSIX-only and some kernels refuse RLIMIT_AS): isolation must not
    make the service less portable than the thread mode it wraps.
    """
    if limit_bytes is None or limit_bytes <= 0:
        return None
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    try:
        soft, hard = resource.getrlimit(resource.RLIMIT_AS)
        new_soft = int(limit_bytes)
        if hard != resource.RLIM_INFINITY:
            new_soft = min(new_soft, hard)
        resource.setrlimit(resource.RLIMIT_AS, (new_soft, hard))
        return (soft, hard)
    except (ValueError, OSError):  # pragma: no cover - kernel refusal
        return None


def restore_rlimit(token) -> None:
    if token is None:
        return
    try:
        import resource

        resource.setrlimit(resource.RLIMIT_AS, token)
    except (ImportError, ValueError, OSError):  # pragma: no cover
        pass


# -- the worker child -------------------------------------------------

def worker_child_main(child_cfg: ChildConfig, conn) -> None:
    """Main loop of one sandboxed worker child.

    Three threads, one pipe:

    * a *listener* (the sole pipe reader) routes
      :data:`JOB`/:data:`SHUTDOWN` into an inbox and handles
      :data:`CANCEL`/:data:`PREEMPT` for the current job in place —
      cancellation must not wait for a segment boundary to be *seen*,
      only to take effect;
    * a *heartbeat* daemon beacons ``(phase, segments, job_id)`` every
      ``heartbeat_s`` (the channel's send lock interleaves it safely
      with result traffic — the same sharing discipline as the elastic
      worker);
    * the main thread runs jobs through :func:`run_job_segments`.

    A child that loses its pipe exits ``EXIT_CHILD_ORPHANED``: an
    orphan must never keep computing against a store it cannot report
    to (its lease epoch is fenced anyway — this just saves the CPU).
    """
    # the parent may have custom SIGTERM/SIGINT handlers (the serve
    # loop's drain trigger) which a fork-spawned child inherits; reset
    # them or Process.terminate() would flip the parent's stop event
    # in the child instead of killing it
    import signal as _signal

    try:
        _signal.signal(_signal.SIGTERM, _signal.SIG_DFL)
        _signal.signal(_signal.SIGINT, _signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass

    chan = Channel(conn)
    inbox: "_queue.Queue[Optional[Message]]" = _queue.Queue()
    closed = threading.Event()
    preempt = threading.Event()
    cancelled: set = set()
    state: Dict[str, Any] = {
        "phase": "idle", "segments": 0, "job": None, "epoch": 0,
        "token": None,
    }

    def listen() -> None:
        while True:
            try:
                msg = chan.recv(None)
            except ChannelClosed:
                closed.set()
                inbox.put(None)
                return
            if msg is None:  # pragma: no cover - recv(None) blocks
                continue
            if msg.kind == CANCEL:
                # remember the id as well as tripping the live token:
                # a CANCEL can outrun the main thread's pickup of the
                # JOB it chases (both ride the same pipe), and a
                # dropped cancel would let the job run to completion
                cancelled.add(msg.payload)
                token = state.get("token")
                if token is not None and msg.payload == state.get("job"):
                    token.cancel()
                continue
            if msg.kind == PREEMPT:
                preempt.set()
                continue
            inbox.put(msg)
            if msg.kind == SHUTDOWN:
                return

    threading.Thread(target=listen, name="repro-child-listen",
                     daemon=True).start()

    def beat() -> None:
        while not closed.is_set():
            try:
                chan.send(Message(
                    kind=HEARTBEAT, src=child_cfg.worker, dst=PARENT,
                    epoch=int(state["epoch"]),
                    payload=(state["phase"], int(state["segments"]),
                             state["job"])))
            except ChannelClosed:
                return
            time.sleep(child_cfg.heartbeat_s)

    threading.Thread(target=beat, name="repro-child-beat",
                     daemon=True).start()

    from repro import get_stencil
    from repro.api.session import Session
    from repro.runtime.qos import CancelToken

    sessions: Dict[str, Any] = {}
    while True:
        msg = inbox.get()
        if msg is None or msg.kind == SHUTDOWN:
            break
        if msg.kind != JOB:
            continue
        epoch = int(msg.epoch)
        if not verify_message(msg):
            # a torn assignment cannot be run; report and let the
            # parent reassign (it will see the failure, not a hang)
            try:
                chan.send(Message(
                    kind=FAILURE, src=child_cfg.worker, dst=PARENT,
                    epoch=epoch,
                    payload=("transient", "job assignment failed CRC",
                             "ChecksumMismatchError")))
            except ChannelClosed:
                os._exit(EXIT_CHILD_ORPHANED)
            continue
        assignment: JobAssignment = unpack_payload(msg.payload)

        chaos = chaos_mode()
        if chaos == "crash":
            os._exit(EXIT_CHILD_CHAOS)
        elif chaos == "segv":  # pragma: no cover - signal-kill path
            import signal as _signal

            os.kill(os.getpid(), _signal.SIGSEGV)
        elif chaos == "oom":
            os._exit(EXIT_CHILD_OOM)

        token = CancelToken()
        preempt.clear()
        state.update(token=token, job=assignment.job_id, epoch=epoch,
                     phase="run", segments=0)
        if assignment.job_id in cancelled:
            # the CANCEL beat us to the pickup; honour it now (the set
            # publishes, the token trips — whichever thread runs last
            # wins either way under the GIL)
            token.cancel()
        rlimit_token = apply_rlimit(assignment.limit_bytes)
        try:
            session = sessions.get(assignment.kernel)
            if session is None:
                session = Session(get_stencil(assignment.kernel))
                sessions[assignment.kernel] = session
            cfg = prepare_run_config(session, assignment.config, token)

            def on_checkpoint(step: int, buffer: np.ndarray) -> None:
                chan.send(make_data_message(
                    CHECKPOINT, child_cfg.worker, PARENT, epoch,
                    (int(step),), (int(step), buffer)))

            def on_segment() -> None:
                state["segments"] = int(state["segments"]) + 1

            resume = None
            if (assignment.resume_step >= 0
                    and assignment.resume_buffer is not None):
                resume = (assignment.resume_step, assignment.resume_buffer)
            interior, stats, _ = run_job_segments(
                session, cfg, job_id=assignment.job_id,
                checkpoint_steps=assignment.checkpoint_steps,
                resume=resume, on_checkpoint=on_checkpoint,
                on_segment=on_segment,
                should_preempt=preempt.is_set)
            chan.send(make_data_message(
                RESULT, child_cfg.worker, PARENT, epoch, (),
                (interior, stats.to_json())))
        except JobPreempted as exc:
            try:
                chan.send(Message(
                    kind=PREEMPTED, src=child_cfg.worker, dst=PARENT,
                    epoch=epoch, payload=int(exc.step)))
            except ChannelClosed:
                os._exit(EXIT_CHILD_ORPHANED)
        except MemoryError:
            # the heap is starved; nothing (not even pickling an
            # apology) is safe — die and let the parent contain it
            os._exit(EXIT_CHILD_OOM)
        except ChannelClosed:
            os._exit(EXIT_CHILD_ORPHANED)
        except BaseException as exc:  # noqa: BLE001 - the blast wall
            verdict = classify_failure(exc)
            try:
                chan.send(Message(
                    kind=FAILURE, src=child_cfg.worker, dst=PARENT,
                    epoch=epoch,
                    payload=(verdict, str(exc), type(exc).__name__)))
            except ChannelClosed:
                os._exit(EXIT_CHILD_ORPHANED)
        finally:
            restore_rlimit(rlimit_token)
            cancelled.discard(assignment.job_id)
            state.update(token=None, job=None, phase="idle")

    chan.close()
