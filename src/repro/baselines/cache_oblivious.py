"""Pochoir-style cache-oblivious trapezoidal decomposition [13, 57].

Implements the Frigo–Strumpen recursion with Pochoir's *hyperspace
cut*: a (d+1)-dimensional zoid (product of per-dimension trapezoids ×
a time interval) is recursively divided by

* a **hyperspace cut** when dimensions are wide enough: every cuttable
  dimension is split simultaneously into a *closing* piece (right edge
  slope ``-σ``, executed early) and an *opening* piece (left edge slope
  ``-σ``, executed after its closing neighbours), producing ``2^k``
  sub-zoids executed in ``k+1`` ordered groups by opening-dimension
  count — the source of the ``2^d``-synchronisation behaviour the
  paper criticises in §2.2;
* a **time cut** otherwise (lower half, then upper half);
* a **base case** when the height reaches the cutoff: the zoid becomes
  one task whose actions are its per-step rectangles.

Barrier groups are assigned by recursive phase counting: siblings of a
hyperspace-cut group share phase ranges (they are independent), a time
cut's upper part starts after every phase of the lower part.  The
resulting schedule is two-buffer safe for the same frontier argument
as the tessellation (the skew across every cut line is at most one
step) and is validated against the naive reference in the test-suite.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.runtime.schedule import RegionAction, RegionSchedule
from repro.stencils.spec import StencilSpec


@dataclass(frozen=True)
class Trap:
    """One dimension of a zoid: interval ``[x0 + τ·dx0, x1 + τ·dx1)``."""

    x0: int
    dx0: int
    x1: int
    dx1: int

    def at(self, tau: int) -> Tuple[int, int]:
        return (self.x0 + tau * self.dx0, self.x1 + tau * self.dx1)

    def valid(self, h: int) -> bool:
        lo, hi = self.at(0)
        lo2, hi2 = self.at(h)
        return hi >= lo and hi2 >= lo2


@dataclass
class _Leaf:
    t0: int
    t1: int
    traps: Tuple[Trap, ...]


@dataclass
class _TimeCut:
    lower: "._Node"
    upper: "._Node"


@dataclass
class _SpaceCut:
    #: groups in execution order; zoids within a group are independent
    groups: List[List["._Node"]]


_Node = object  # _Leaf | _TimeCut | _SpaceCut


def _decompose(t0: int, t1: int, traps: Tuple[Trap, ...],
               slopes: Sequence[int], base_dt: int,
               base_widths: Sequence[int]) -> _Node:
    h = t1 - t0
    if h <= base_dt:
        return _Leaf(t0, t1, traps)
    cuts: List[Optional[Tuple[Trap, Trap]]] = []
    any_cut = False
    for tr, sg, bw in zip(traps, slopes, base_widths):
        pieces = _try_space_cut(tr, h, sg, bw)
        cuts.append(pieces)
        if pieces is not None:
            any_cut = True
    if any_cut:
        cut_dims = [j for j, p in enumerate(cuts) if p is not None]
        k = len(cut_dims)
        # hyperspace cut: 2^k sub-zoids in k+1 ordered groups by
        # opening-dimension count (all-closing first, all-opening
        # last); zoids of one group are mutually safe — a piece only
        # reads corner values abandoned by strictly-fewer-opening
        # pieces at exactly the time it needs them (≤1 skew), so the
        # ping-pong discipline holds under any intra-group interleaving
        groups: List[List[_Node]] = [[] for _ in range(k + 1)]
        for combo in itertools.product((0, 1), repeat=k):
            new_traps = list(traps)
            opening = 0
            for j, pick in zip(cut_dims, combo):
                new_traps[j] = cuts[j][pick]
                opening += pick
            node = _decompose(t0, t1, tuple(new_traps), slopes,
                              base_dt, base_widths)
            groups[opening].append(node)
        return _SpaceCut(groups=groups)
    tm = t0 + h // 2
    lower = _decompose(t0, tm, traps, slopes, base_dt, base_widths)
    upper_traps = tuple(
        Trap(tr.x0 + tr.dx0 * (tm - t0), tr.dx0,
             tr.x1 + tr.dx1 * (tm - t0), tr.dx1)
        for tr in traps
    )
    upper = _decompose(tm, t1, upper_traps, slopes, base_dt, base_widths)
    return _TimeCut(lower=lower, upper=upper)


def _try_space_cut(tr: Trap, h: int, sigma: int,
                   base_width: int) -> Optional[Tuple[Trap, Trap]]:
    """Split a trapezoid into (closing, opening) pieces, or None.

    The cut line starts at ``xm`` and recedes with slope ``-σ``; ``xm``
    is chosen to balance the two volumes (Frigo–Strumpen).  Cutting is
    declined when the mid-height width is below ``max(base_width,
    2σh) + 2σh`` — the cache-oblivious "too narrow to cut" rule with
    Pochoir's spatial cutoff folded in.
    """
    w_bot = tr.x1 - tr.x0
    w_top = (tr.x1 + tr.dx1 * h) - (tr.x0 + tr.dx0 * h)
    if w_bot + w_top < 2 * (max(base_width, 2 * sigma * h) + 2 * sigma * h):
        return None
    # volume-balancing centre of the cut line
    xm = (2 * (tr.x0 + tr.x1) + (2 * sigma + tr.dx0 + tr.dx1) * h) // 4
    closing = Trap(tr.x0, tr.dx0, xm, -sigma)
    opening = Trap(xm, -sigma, tr.x1, tr.dx1)
    if not (closing.valid(h) and opening.valid(h)):
        return None
    if xm < tr.x0 or xm > tr.x1:
        return None
    return closing, opening


def _phase_depth(node: _Node) -> int:
    if isinstance(node, _Leaf):
        return 1
    if isinstance(node, _TimeCut):
        return _phase_depth(node.lower) + _phase_depth(node.upper)
    if isinstance(node, _SpaceCut):
        return sum(
            max((_phase_depth(n) for n in grp), default=0)
            for grp in node.groups
        )
    raise TypeError(node)


def _emit(node: _Node, g0: int, sched: RegionSchedule,
          shape: Tuple[int, ...]) -> int:
    """Assign barrier groups and emit leaf tasks; returns groups used."""
    if isinstance(node, _Leaf):
        actions = []
        for t in range(node.t0, node.t1):
            tau = t - node.t0
            region = tuple(
                (max(0, lo), min(n, hi))
                for (lo, hi), n in zip(
                    (tr.at(tau) for tr in node.traps), shape
                )
            )
            if all(hi > lo for lo, hi in region):
                actions.append(RegionAction(t=t, region=region))
        if actions:
            sched.add(g0, actions, label=f"zoid@t{node.t0}")
        return 1
    if isinstance(node, _TimeCut):
        used = _emit(node.lower, g0, sched, shape)
        used += _emit(node.upper, g0 + used, sched, shape)
        return used
    if isinstance(node, _SpaceCut):
        g = g0
        for grp in node.groups:
            width = 0
            for n in grp:
                width = max(width, _emit(n, g, sched, shape))
            g += width
        return g - g0
    raise TypeError(node)


def trapezoid_schedule(
    spec: StencilSpec,
    shape: Sequence[int],
    steps: int,
    base_dt: int = 4,
    base_widths: Optional[Sequence[int]] = None,
) -> RegionSchedule:
    """Cache-oblivious decomposition of ``steps`` steps of the grid.

    ``base_dt`` and ``base_widths`` are Pochoir's cutoffs (the paper's
    evaluation uses the defaults 100×100×5 in 2D and 1000×3×3×3 in 3D;
    scale them down with the problem).
    """
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    if base_dt < 1:
        raise ValueError(f"base_dt must be >= 1, got {base_dt}")
    shape = tuple(int(n) for n in shape)
    if len(shape) != spec.ndim:
        raise ValueError(f"shape rank {len(shape)} != ndim {spec.ndim}")
    if base_widths is None:
        base_widths = [max(4 * s * base_dt, 8) for s in spec.slopes]
    base_widths = tuple(int(w) for w in base_widths)
    sched = RegionSchedule(
        scheme="cache-oblivious", shape=shape, steps=steps
    )
    if steps == 0:
        return sched
    traps = tuple(Trap(0, 0, n, 0) for n in shape)
    root = _decompose(0, steps, traps, spec.slopes, base_dt, base_widths)
    _emit(root, 0, sched, shape)
    return sched
