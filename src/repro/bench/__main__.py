"""Regenerate every experiment: ``python -m repro.bench [exp ...]``.

With no arguments runs the full registry (Tables 1/4, Figures 8–12 and
the ablations) and prints the paper-versus-measured report — the same
content recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
import time

from repro.bench.experiments import ALL_EXPERIMENTS, FigureResult


def _render(result) -> str:
    if isinstance(result, FigureResult):
        return result.render()
    if isinstance(result, list):
        return "\n\n".join(_render(r) for r in result)
    return str(result)


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    names = argv or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; "
              f"available: {sorted(ALL_EXPERIMENTS)}")
        return 2
    for name in names:
        t0 = time.perf_counter()
        result = ALL_EXPERIMENTS[name]()
        dt = time.perf_counter() - t0
        print(f"\n{'#' * 70}\n# {name}  ({dt:.1f}s)\n{'#' * 70}")
        print(_render(result))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
