"""Distributed-memory strong scaling (the paper's §4.1, built out).

Not a paper figure — the paper defers distributed memory — but the
"simple data/computation distribution and efficient data communication
plan" it promises, measured: per-node compute from the real block
ownership, per-stage exchange volumes from the analytic plan, an α-β
network on top.
"""

from repro.bench.experiments import ablation_distributed
from repro.distributed import ClusterSpec, simulate_distributed
from repro.machine.spec import paper_machine
from repro.stencils import get_stencil
from repro.core import make_lattice


def test_distributed_scaling(benchmark, capsys):
    out = benchmark.pedantic(ablation_distributed, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n[§4.1] Heat-2D strong scaling across cluster nodes:")
        print(out)
    spec = get_stencil("heat2d")
    shape = (2400, 2400)
    lat = make_lattice(spec, shape, 32, core_widths=(1, 128))
    r1 = simulate_distributed(spec, shape, lat, 96,
                              ClusterSpec(1, paper_machine()))
    r4 = simulate_distributed(spec, shape, lat, 96,
                              ClusterSpec(4, paper_machine()))
    assert r4.time_s < r1.time_s          # strong scaling helps
    assert r4.comm_fraction < 0.5          # compute still dominates
