"""Stencil code generation — the paper's stated future work (§6).

    "Future work will design a tool to automatically generate the
    stencil codes based on the proposed framework."

This module is that tool for the Python substrate: given a stencil's
dimensionality and slopes plus tessellation parameters, it emits a
*flat, self-contained* source string in the style of the paper's
artifact codes — explicit per-dimension ``lo/hi`` bound arithmetic,
one loop nest per stage, no library calls besides a single
``apply(t, region)`` callback — then compiles it to a callable.

Generated code is specialised at generation time: dimension count,
slopes, stage subsets and dilation directions are unrolled into
straight-line bound computations, exactly the specialisation a C code
generator would perform.  The test-suite validates generated executors
bit-for-bit against :func:`repro.core.executor.run_blocked`.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

from repro.core.executor import make_lattice
from repro.core.profiles import TessLattice
from repro.stencils.grid import Grid
from repro.stencils.spec import StencilSpec


def generate_tess_source(
    ndim: int,
    slopes: Sequence[int],
    func_name: str = "tess_run",
) -> str:
    """Emit the source of a ``d``-dimensional tessellation driver.

    The generated function has the signature::

        def tess_run(apply, shape, steps, b, core_widths, periods, phases):
            ...

    where ``apply(t, region)`` advances the half-open hyper-rectangle
    ``region`` from global time ``t`` to ``t + 1``.  Stage loops are
    fully unrolled over the ``C(d, i)`` glued-dimension subsets; block
    bases are enumerated by explicit core/plateau arithmetic on the
    per-axis lattice (period/phase/width), matching
    :mod:`repro.core.blocks`.
    """
    if ndim < 1:
        raise ValueError(f"ndim must be >= 1, got {ndim}")
    slopes = tuple(int(s) for s in slopes)
    if len(slopes) != ndim or any(s < 1 for s in slopes):
        raise ValueError(f"bad slopes {slopes} for ndim {ndim}")

    lines = []
    emit = lines.append
    emit(f"def {func_name}(apply, shape, steps, b, core_widths, periods, phases):")
    emit(f'    """Generated {ndim}D tessellation driver (slopes={slopes})."""')
    for j in range(ndim):
        emit(f"    n{j} = shape[{j}]")
        emit(f"    w{j} = core_widths[{j}]")
        emit(f"    p{j} = periods[{j}]")
        emit(f"    f{j} = phases[{j}] % p{j}")
        emit(f"    s{j} = {slopes[j]}")
        # plateau geometry: theta = (b-1)*sigma + 1 offsets from cores
        emit(f"    th{j} = (b - 1) * s{j} + 1")
        # core index range covering the dilated domain
        emit(f"    klo{j} = -((f{j} + p{j} + b * s{j}) // p{j}) - 1")
        emit(f"    khi{j} = (n{j} + p{j} + b * s{j} - f{j}) // p{j} + 1")
    emit("    tt = 0")
    emit("    while tt < steps:")
    emit("        span = min(b, steps - tt)")

    # one fully specialised loop nest per (stage, glued subset)
    for stage in range(ndim + 1):
        for glued in itertools.combinations(range(ndim), stage):
            gset = set(glued)
            emit(f"        # stage {stage}, glued dims {sorted(gset)}")
            indent = "        "
            for j in range(ndim):
                emit(f"{indent}for k{j} in range(klo{j}, khi{j} + 1):")
                indent += "    "
                if j in gset:
                    # plateau of the gap following core k
                    emit(f"{indent}base_lo{j} = f{j} + k{j} * p{j} + w{j} "
                         f"+ th{j} - 1")
                    emit(f"{indent}base_hi{j} = f{j} + k{j} * p{j} + p{j} "
                         f"- th{j} + 1")
                    emit(f"{indent}if base_hi{j} <= base_lo{j}: continue")
                else:
                    emit(f"{indent}base_lo{j} = f{j} + k{j} * p{j}")
                    emit(f"{indent}base_hi{j} = base_lo{j} + w{j}")
            emit(f"{indent}for s in range(span):")
            indent += "    "
            for j in range(ndim):
                if j in gset:
                    emit(f"{indent}lo{j} = base_lo{j} - s * s{j}")
                    emit(f"{indent}hi{j} = base_hi{j} + s * s{j}")
                else:
                    emit(f"{indent}lo{j} = base_lo{j} - (b - 1 - s) * s{j}")
                    emit(f"{indent}hi{j} = base_hi{j} + (b - 1 - s) * s{j}")
                emit(f"{indent}if lo{j} < 0: lo{j} = 0")
                emit(f"{indent}if hi{j} > n{j}: hi{j} = n{j}")
                emit(f"{indent}if hi{j} <= lo{j}: continue")
            region = ", ".join(f"(lo{j}, hi{j})" for j in range(ndim))
            emit(f"{indent}apply(tt + s, ({region},))")
    emit("        tt += b")
    return "\n".join(lines) + "\n"


def generate_kernel_source(
    spec: StencilSpec,
    func_name: str = "stencil_apply",
) -> str:
    """Emit a specialised region kernel for a linear stencil.

    The generated function has the signature
    ``stencil_apply(src, dst, region)`` on halo-padded arrays, with the
    offsets and coefficients burned into straight-line slice
    arithmetic — the in-core half of the paper's envisioned code
    generator (the driver half is :func:`generate_tess_source`).
    """
    from repro.stencils.operators import LinearStencilOperator

    op = spec.operator
    if not isinstance(op, LinearStencilOperator):
        raise ValueError(
            f"kernel generation supports linear stencils, not "
            f"{type(op).__name__}"
        )
    d = spec.ndim
    halo = spec.halo
    lines = [f"def {func_name}(src, dst, region):"]
    emit = lines.append
    emit(f'    """Generated {spec.name} kernel '
         f'({spec.num_neighbors}-point, slopes={spec.slopes})."""')
    for j in range(d):
        emit(f"    lo{j}, hi{j} = region[{j}]")
        emit(f"    if hi{j} <= lo{j}: return")

    def slices(off):
        return ", ".join(
            f"lo{j} + {halo[j] + off[j]}:hi{j} + {halo[j] + off[j]}"
            for j in range(d)
        )

    first_off, first_c = op.offsets[0], op.coeffs[0]
    emit(f"    out = dst[{slices((0,) * d)}]")
    emit(f"    numpy.multiply(src[{slices(first_off)}], {first_c!r}, "
         f"out=out)")
    for off, c in zip(op.offsets[1:], op.coeffs[1:]):
        emit(f"    out += src[{slices(off)}] * {c!r}")
    return "\n".join(lines) + "\n"


def compile_kernel(spec: StencilSpec,
                   func_name: str = "stencil_apply") -> Callable:
    """Compile the generated kernel source into a callable."""
    source = generate_kernel_source(spec, func_name=func_name)
    namespace: Dict[str, object] = {"numpy": np}
    exec(compile(source, f"<generated kernel {spec.name}>", "exec"),
         namespace)  # noqa: S102
    fn = namespace[func_name]
    fn.__source__ = source
    return fn


def compile_tess(
    ndim: int,
    slopes: Sequence[int],
    func_name: str = "tess_run",
) -> Callable:
    """Compile the generated source into a callable driver."""
    source = generate_tess_source(ndim, slopes, func_name=func_name)
    namespace: Dict[str, object] = {}
    code = compile(source, f"<generated {func_name} d={ndim}>", "exec")
    exec(code, namespace)  # noqa: S102 - code we just generated
    fn = namespace[func_name]
    fn.__source__ = source  # keep for inspection/tests
    return fn


def run_generated(
    spec: StencilSpec,
    grid: Grid,
    steps: int,
    b: int,
    core_widths: Sequence[int] | None = None,
    lattice: TessLattice | None = None,
) -> np.ndarray:
    """Convenience wrapper: generate, compile and run on a grid.

    The lattice (or ``b``/``core_widths``) fixes the tessellation
    parameters exactly as :func:`repro.core.executor.make_lattice`
    would; the generated driver performs the same updates as
    :func:`repro.core.executor.run_blocked`.
    """
    if spec.is_periodic:
        raise ValueError("generated drivers support Dirichlet boundaries")
    if lattice is None:
        lattice = make_lattice(spec, grid.shape, b, core_widths=core_widths)
    for p in lattice.profiles:
        if p.period is None:
            raise ValueError(
                "code generation needs structurally periodic axes "
                "(uniform/coarse profiles)"
            )
    driver = compile_tess(spec.ndim, [p.sigma for p in lattice.profiles])
    from repro.stencils.operators import LinearStencilOperator

    if isinstance(spec.operator, LinearStencilOperator):
        # fully generated pipeline: specialised kernel + driver
        kernel = compile_kernel(spec)

        def apply(t: int, region: Tuple[Tuple[int, int], ...]) -> None:
            kernel(grid.at(t), grid.at(t + 1), region)
    else:
        def apply(t: int, region: Tuple[Tuple[int, int], ...]) -> None:
            spec.apply_region(grid.at(t), grid.at(t + 1), region)

    driver(
        apply,
        grid.shape,
        steps,
        lattice.b,
        [p.core_width for p in lattice.profiles],
        [p.period for p in lattice.profiles],
        [p.phase for p in lattice.profiles],
    )
    return grid.interior(steps)
