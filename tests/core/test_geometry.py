"""Tests for block-shape combinatorics — the paper's Table 1 & Lemma 3.1."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import geometry as g

dims = st.integers(min_value=1, max_value=5)
depths = st.integers(min_value=1, max_value=5)


class TestTable1Rows:
    def test_stages(self):
        assert [g.num_stages(d) for d in range(1, 5)] == [2, 3, 4, 5]

    def test_b0_size(self):
        assert g.b0_size(1, 3) == 7
        assert g.b0_size(2, 3) == 49
        assert g.b0_size(3, 1) == 27

    @given(dims, depths)
    def test_b0_size_formula(self, d, b):
        assert g.b0_size(d, b) == (2 * b + 1) ** d

    def test_split_and_combine(self):
        # Table 1: B_i splits into 2(d-i); B_i combines from 2i
        assert g.split_count(3, 0) == 6
        assert g.split_count(3, 2) == 2
        assert g.combine_count(1) == 2
        assert g.combine_count(3) == 6

    def test_surface_centerpoints(self):
        # 2^i C(d,i) centres of B_i on a B_0 surface
        assert g.centerpoints_on_b0_surface(2, 1) == 4
        assert g.centerpoints_on_b0_surface(2, 2) == 4
        assert g.centerpoints_on_b0_surface(3, 1) == 6
        assert g.centerpoints_on_b0_surface(3, 2) == 12
        assert g.centerpoints_on_b0_surface(3, 3) == 8

    @given(dims)
    def test_quadrant_centerpoints_sum_to_2d(self, d):
        # C(d,0)+...+C(d,d) = 2^d vertices of B_0^+
        total = sum(g.centerpoints_on_b0_plus(d, i) for i in range(d + 1))
        assert total == 2 ** d

    def test_shape_kinds(self):
        # ceil((d+1)/2)
        assert [g.num_shape_kinds(d) for d in range(1, 7)] == [1, 2, 2, 3, 3, 4]

    @given(dims, depths)
    def test_table1_dict_consistency(self, d, b):
        t = g.table1(d, b)
        assert t["stages_per_phase"] == d + 1
        assert len(t["split_counts"]) == d
        assert len(t["quadrant_centerpoints"]) == d + 1

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            g.num_stages(0)
        with pytest.raises(ValueError):
            g.b0_size(1, 0)
        with pytest.raises(ValueError):
            g.split_count(2, 3)
        with pytest.raises(ValueError):
            g.combine_count(0)
        with pytest.raises(ValueError):
            g.centerpoints_on_b0_surface(2, 0)


class TestCenterGeneration:
    def test_b1_centers_2d(self):
        c = g.b_i_centers_on_b0(2, 3, 1)
        assert sorted(map(tuple, c)) == [(-3, 0), (0, -3), (0, 3), (3, 0)]

    def test_b0_center_is_origin(self):
        c = g.b_i_centers_on_b0(3, 2, 0)
        assert c.shape == (1, 3)
        assert not c.any()

    @given(dims.filter(lambda d: d <= 4), depths,
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=50, deadline=None)
    def test_center_count_matches_table1(self, d, b, i):
        if i > d:
            return
        c = g.b_i_centers_on_b0(d, b, i)
        assert len(c) == g.centerpoints_on_b0_surface(d, i)
        # each centre has exactly i coords equal to ±b
        assert bool(np.all((np.abs(c) == b).sum(axis=1) == i))


class TestBlockShapes:
    def test_b0_is_a_cube(self):
        pts = g.block_points(2, 3, glued=())
        # interior of B_0: (2b-1)^d points
        assert len(pts) == 5 * 5
        assert np.abs(pts).max() == 2

    def test_b1_is_a_diamond_2d(self):
        pts = g.block_points(2, 3, glued=(0,))
        # |x| + |y| <= b-1 style counts: the 2D B_1 diamond interior
        assert len(pts) == sum(
            1 for x in range(-2, 3) for y in range(-2, 3)
            if abs(x) + abs(y) <= 2
        )

    @given(st.integers(1, 4), st.integers(1, 4), st.data())
    @settings(max_examples=60, deadline=None)
    def test_lemma_3_1_congruence(self, d, b, data):
        """B_i and B_{d-i} have the same shape (Lemma 3.1)."""
        i = data.draw(st.integers(0, d))
        a = g.block_points(d, b, glued=range(i))
        bpts = g.block_points(d, b, glued=range(d - i))
        assert g.blocks_congruent(a, bpts)

    @given(st.integers(1, 3), st.integers(1, 4), st.data())
    @settings(max_examples=40, deadline=None)
    def test_volume_ratio(self, d, b, data):
        """|B_0| = C(d,i) * |B_i| for interior volumes (Table 1)."""
        i = data.draw(st.integers(0, d))
        v0 = g.block_volume(d, b, 0)
        vi = g.block_volume(d, b, i)
        # interior volumes satisfy the ratio only asymptotically for
        # small b; check the exact identity that per-stage volumes
        # tile the same space: C(d,i) copies of B_i fill like B_0 does
        if b >= 3:
            assert vi * math.comb(d, i) == pytest.approx(
                v0, rel=0.5 / b
            )

    def test_block_points_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            g.block_points(2, 3, glued=(5,))

    def test_blocks_congruent_negative(self):
        a = g.block_points(2, 3, glued=())
        c = g.block_points(2, 2, glued=())
        assert not g.blocks_congruent(a, c)
