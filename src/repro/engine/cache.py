"""Plan cache: compile a schedule once, run it many times.

Autotune probes, distributed ranks and benchmark repeats all re-derive
identical schedules from identical parameters.  The cache keys a
:class:`~repro.engine.plan.CompiledPlan` by everything that determines
it — a structural *spec signature* (operator class, offsets,
coefficients, dtype, boundary), the grid shape, step count, scheme name
and the scheme's tile parameters — so the second request for the same
configuration is a dictionary hit instead of a recompilation.

Two tiers:

* an in-memory LRU (:class:`PlanCache`), always on, with
  :class:`CacheStats` counters (``hits``/``misses``/``evictions``) that
  tests and the autotuner assert on;
* an optional on-disk pickle tier (``disk_dir=``) so plans survive
  process restarts — useful for repeated benchmark invocations.  Disk
  entries are keyed by a SHA-256 of the in-memory key and validated by
  unpickling; any failure is treated as a miss.

A module-level default cache (:func:`default_cache`,
:func:`get_plan`) serves the executors and the CLI.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass, field
from threading import Lock
from typing import Optional, Tuple

from repro.engine.plan import CompiledPlan, compile_plan
from repro.runtime.schedule import RegionSchedule
from repro.stencils.operators import LinearStencilOperator
from repro.stencils.spec import StencilSpec
from repro.stencils.staged import canonical_spec

__all__ = [
    "CacheStats",
    "PlanCache",
    "default_cache",
    "get_plan",
    "plan_key",
    "spec_signature",
]


def spec_signature(spec: StencilSpec) -> Tuple:
    """Hashable structural identity of a stencil spec.

    Two specs with equal signatures produce bit-identical updates, so
    their compiled plans are interchangeable.  Staged specs are
    canonicalized first (a trivial 1-stage wrapper signs identically to
    its plain spec — no degenerate-case forks anywhere downstream) and
    then signed per stage: stage class, written field, read taps and
    coefficients, in order.
    """
    spec = canonical_spec(spec)
    op = spec.operator
    parts: Tuple = (
        type(op).__name__,
        op.offsets,
        str(op.dtype),
        spec.boundary,
    )
    if getattr(spec, "is_staged", False):
        return parts + (
            spec.fields,
            tuple(stage.signature() for stage in spec.stages),
        )
    if isinstance(op, LinearStencilOperator):
        parts = parts + (op.coeffs,)
    return parts


def plan_key(
    spec: StencilSpec,
    schedule: RegionSchedule,
    params: Tuple = (),
    batch_threshold: int = 4096,
    fuse: bool = True,
) -> Tuple:
    """Cache key: (spec signature, shape, steps, scheme, tile params).

    ``params`` carries whatever the scheme was built from (``b``, core
    widths, phase layout ...) — callers that derive schedules from
    parameters pass them so distinct tilings of the same scheme name
    never collide.
    """
    return (
        spec_signature(spec),
        tuple(schedule.shape),
        schedule.steps,
        schedule.scheme,
        tuple(params),
        batch_threshold,
        bool(fuse),
    )


@dataclass
class CacheStats:
    """Counters asserted by tests and reported by the CLI/bench."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: subset of ``hits`` made on behalf of a batched (many-instances)
    #: run — each one amortises a single compile over a whole batch, so
    #: ``/metrics`` can show how much lookup/compile work coalescing
    #: saved
    batched_hits: int = 0
    disk_hits: int = 0
    disk_stores: int = 0
    #: disk entries whose pickle failed to load (corrupted/truncated);
    #: each is quarantined to ``<path>.corrupt`` and treated as a miss
    disk_corrupt: int = 0
    compile_seconds: float = 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.batched_hits = 0
        self.disk_hits = 0
        self.disk_stores = 0
        self.disk_corrupt = 0
        self.compile_seconds = 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "batched_hits": self.batched_hits,
            "disk_hits": self.disk_hits,
            "disk_stores": self.disk_stores,
            "disk_corrupt": self.disk_corrupt,
            "compile_seconds": self.compile_seconds,
        }


class PlanCache:
    """Thread-safe LRU of compiled plans with an optional disk tier."""

    def __init__(self, capacity: int = 32,
                 disk_dir: Optional[str] = None) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.disk_dir = disk_dir
        self.stats = CacheStats()
        self._entries: "OrderedDict[Tuple, CompiledPlan]" = OrderedDict()
        self._lock = Lock()

    def __len__(self) -> int:
        return len(self._entries)

    # -- internals ---------------------------------------------------

    def _disk_path(self, key: Tuple) -> Optional[str]:
        if self.disk_dir is None:
            return None
        digest = hashlib.sha256(repr(key).encode()).hexdigest()[:32]
        return os.path.join(self.disk_dir, f"plan-{digest}.pkl")

    def _disk_load(self, key: Tuple) -> Optional[CompiledPlan]:
        path = self._disk_path(key)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as fh:
                stored_key, plan = pickle.load(fh)
        except Exception:
            # corrupted/truncated pickle (a crashed writer, disk rot):
            # quarantine the file so it is never re-read — leaving it in
            # place would pay the failed unpickle on every future miss —
            # and fall through to a recompile
            self.stats.disk_corrupt += 1
            try:
                os.replace(path, f"{path}.corrupt")
            except OSError:
                pass
            return None
        if stored_key != key or not isinstance(plan, CompiledPlan):
            # a healthy pickle of the wrong thing (hash collision,
            # foreign file): a plain miss, not corruption
            return None
        return plan

    def _disk_store(self, key: Tuple, plan: CompiledPlan) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            os.makedirs(self.disk_dir, exist_ok=True)
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "wb") as fh:
                pickle.dump((key, plan), fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
            self.stats.disk_stores += 1
        except Exception:
            pass

    def _insert(self, key: Tuple, plan: CompiledPlan) -> None:
        self._entries[key] = plan
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    # -- public API --------------------------------------------------

    def get(
        self,
        spec: StencilSpec,
        schedule: RegionSchedule,
        params: Tuple = (),
        batch_threshold: int = 4096,
        fuse: bool = True,
        batched: bool = False,
    ) -> CompiledPlan:
        """Return the compiled plan for ``schedule``, compiling on miss.

        ``batched=True`` marks the lookup as made on behalf of a
        many-instances run: the key is unchanged (one compile serves
        any batch width), only the ``batched_hits`` counter moves.
        """
        key = plan_key(spec, schedule, params=params,
                       batch_threshold=batch_threshold, fuse=fuse)
        with self._lock:
            plan = self._entries.get(key)
            if plan is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                if batched:
                    self.stats.batched_hits += 1
                return plan
            plan = self._disk_load(key)
            if plan is not None:
                # unpickled plans lose nothing: units and indices are
                # plain data; refresh the live spec so operator identity
                # is the caller's
                self.stats.disk_hits += 1
                self._insert(key, plan)
                return plan
            self.stats.misses += 1
            plan = compile_plan(spec, schedule,
                                batch_threshold=batch_threshold, fuse=fuse)
            self.stats.compile_seconds += plan.stats.compile_seconds
            self._insert(key, plan)
            self._disk_store(key, plan)
            return plan

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


_default = PlanCache()


def default_cache() -> PlanCache:
    """The process-wide plan cache used by executors and the CLI."""
    return _default


def get_plan(spec: StencilSpec, schedule: RegionSchedule,
             params: Tuple = (), **kwargs) -> CompiledPlan:
    """Compile-or-fetch from the default cache."""
    return _default.get(spec, schedule, params=params, **kwargs)
