"""Wall-clock measurement of real (NumPy) schedule execution.

Used by the pytest-benchmark suite and the engine bench: on this
substrate the kernels are vectorised NumPy region updates rather than
compiled C, so absolute numbers are not comparable to the paper's, but
relative costs between schemes on the *same* substrate are still
informative (loop/dispatch overhead per task, cache behaviour of block
traversals, and the compiled engine's speedup over the naive executor).

Measurement discipline for the engine comparisons: ``repeat=k`` runs
the workload ``k`` times after ``warmup`` discarded runs and reports
the **minimum** — the standard estimator for the noise floor of a
deterministic computation (any excess over the minimum is interference,
not work).  The single-shot path (``repeat=1, warmup=0``, the default)
is unchanged for existing callers.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Tuple

import numpy as np

from repro.runtime.schedule import RegionSchedule, _execute_schedule
from repro.stencils.grid import Grid
from repro.stencils.spec import StencilSpec


def _timed_runs(run: Callable[[], object], repeat: int,
                warmup: int) -> Tuple[float, object]:
    """Min-of-``repeat`` seconds after ``warmup`` discarded runs."""
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        run()
    best, out = float("inf"), None
    for _ in range(repeat):
        t0 = time.perf_counter()
        out = run()
        dt = time.perf_counter() - t0
        if dt < best:
            best = dt
    return best, out


def time_schedule(
    spec: StencilSpec,
    schedule: RegionSchedule,
    seed: int = 0,
    repeat: int = 1,
    warmup: int = 0,
    engine: str = "naive",
) -> Tuple[float, np.ndarray]:
    """Time a schedule on a fresh grid; returns (seconds, final interior).

    ``repeat``/``warmup`` select min-of-k measurement (see module
    docstring); every run starts from the same initial state, restored
    by buffer copy (an identical, negligible cost under either engine),
    so repeats measure identical work.  ``engine="compiled"`` times the
    cached compiled plan's stream (compile time excluded — that is the
    cache's amortised cost); ``"naive"`` times the sequential schedule
    walk (or the overlapped executor for ghost-zone schedules).

    Timing runs the backend engines directly — not through the
    :mod:`repro.api` facade — so measured numbers exclude the facade's
    stats assembly; plans are still obtained via the shared plan cache.
    """
    if engine not in ("naive", "compiled"):
        raise ValueError(f"unknown engine {engine!r}")
    grid = Grid(spec, schedule.shape, init="random", seed=seed)
    if engine == "compiled":
        from repro.engine.cache import get_plan

        plan = get_plan(spec, schedule)
        return time_plan(plan, grid, repeat=repeat, warmup=warmup)
    if schedule.private_tasks:
        from repro.baselines.overlapped import execute_overlapped as runner
    else:
        runner = _execute_schedule
    if repeat == 1 and warmup == 0:
        # single-shot compatibility path: exactly the historical
        # measurement (no restore machinery)
        t0 = time.perf_counter()
        out = runner(spec, grid, schedule)
        return time.perf_counter() - t0, out
    init = [b.copy() for b in grid.buffers]

    def run():
        for dst, src in zip(grid.buffers, init):
            np.copyto(dst, src)
        return runner(spec, grid, schedule)

    return _timed_runs(run, repeat, warmup)


def time_plan(plan, grid: Optional[Grid] = None, seed: int = 0,
              repeat: int = 1, warmup: int = 0) -> Tuple[float, np.ndarray]:
    """Time a compiled plan; returns (min seconds, final interior).

    The grid's initial buffer pair is snapshotted once and restored
    (by buffer copy) at the start of every run, so each repeat executes
    the identical computation on warmed scratch arenas.
    """
    from repro.engine.plan import _execute_plan

    if grid is None:
        grid = Grid(plan.spec, plan.shape, init="random", seed=seed)
    init = [b.copy() for b in grid.buffers]

    def run():
        for dst, src in zip(grid.buffers, init):
            np.copyto(dst, src)
        return _execute_plan(plan, grid)

    return _timed_runs(run, repeat, warmup)


def time_executor(fn: Callable[[], object]) -> float:
    """Time one invocation of an arbitrary executor closure."""
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0
