"""Ablation A2 — synchronisation counts per scheme and dimension.

The paper's §2.2 argues sync structure is the tessellation's edge:
d+1 barriers per phase (d with merging) versus the 2^d-flavoured
recursion of nested split-tiling / Pochoir.  This bench measures
barriers per time step from the real schedules.
"""

from repro.bench.experiments import ablation_sync_counts
from repro.bench.problems import PROBLEMS
from repro.core import make_lattice
from repro.core.schedules import tess_schedule
from repro.stencils import get_stencil


def test_sync_counts(benchmark, capsys):
    out = benchmark.pedantic(ablation_sync_counts, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n[A2] barriers per time step:")
        print(out)
    # structural law: (d+1)/b unmerged, d/b merged (+1 prologue)
    for kernel, shape in [("heat1d", (64,)), ("heat2d", (48, 48)),
                          ("heat3d", (24, 24, 24))]:
        spec = get_stencil(kernel)
        d = spec.ndim
        b = 4
        steps = 4 * b
        lat = make_lattice(spec, shape, b)
        plain = tess_schedule(spec, shape, lat, steps)
        merged = tess_schedule(spec, shape, lat, steps, merged=True)
        assert plain.num_groups == (d + 1) * (steps // b)
        assert merged.num_groups == d * (steps // b) + 1
