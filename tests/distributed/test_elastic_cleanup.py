"""Checkpoint spill-dir lifecycle when the *parent* dies mid-run.

``shutdown()`` already sweeps the per-run temp dir on success and on
coordinator abort (tests/distributed/test_elastic.py).  The remaining
leak path is a killed parent process: the coordinator never reaches
``shutdown()``, so the dir must be removed by an atexit hook instead —
and that hook must be unregistered on the normal path so a long-lived
process does not accumulate stale callbacks.
"""

import os
import subprocess
import sys

import pytest

from repro import Grid, get_stencil, make_lattice
from repro.distributed import ElasticConfig
from repro.distributed.elastic import _Coordinator

pytestmark = pytest.mark.dist


def _coordinator(tmp_path):
    spec = get_stencil("heat1d")
    lat = make_lattice(spec, (64,), 4)
    grid = Grid(spec, (64,), seed=0)
    return _Coordinator(
        spec, grid, lat, 8, 2, 0, fault_plan=None,
        config=ElasticConfig(checkpoint_dir=str(tmp_path)),
        ghost_override=None, trace=None)


# the child constructs a coordinator (which creates the spill dir and
# registers the atexit hook) and exits WITHOUT calling shutdown() —
# modelling a parent killed mid-run.  No workers are spawned: atexit
# hooks run LIFO, so multiprocessing's own exit handler (registered at
# import) would only reap live workers *after* our cleanup anyway.
_CHILD = """
import sys
from repro import Grid, get_stencil, make_lattice
from repro.distributed import ElasticConfig
from repro.distributed.elastic import _Coordinator

spec = get_stencil("heat1d")
lat = make_lattice(spec, (64,), 4)
grid = Grid(spec, (64,), seed=0)
coord = _Coordinator(spec, grid, lat, 8, 2, 0, fault_plan=None,
                     config=ElasticConfig(checkpoint_dir=sys.argv[1]),
                     ghost_override=None, trace=None)
print(coord.ckpt_dir, flush=True)
sys.exit(0)  # no shutdown(): the atexit hook is the only sweeper
"""


def test_parent_exit_without_shutdown_sweeps_ckpt_dir(tmp_path):
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, str(tmp_path)],
        capture_output=True, text=True, timeout=60, env=env)
    assert proc.returncode == 0, proc.stderr
    ckpt_dir = proc.stdout.strip()
    assert ckpt_dir.startswith(str(tmp_path))
    assert not os.path.exists(ckpt_dir), (
        "killed parent leaked its checkpoint spill dir")


def test_shutdown_unregisters_the_atexit_hook(tmp_path):
    """The normal path must not leave a stale callback behind (it
    would pile up one lambda per run in a long-lived process)."""
    import atexit

    coord = _coordinator(tmp_path)
    assert os.path.isdir(coord.ckpt_dir)
    unregistered = []
    real = atexit.unregister

    def spy(fn):
        unregistered.append(fn)
        real(fn)

    atexit.unregister = spy
    try:
        coord.shutdown()
    finally:
        atexit.unregister = real
    assert coord._cleanup in unregistered
    assert not os.path.exists(coord.ckpt_dir)


def test_cleanup_is_idempotent(tmp_path):
    """shutdown() then a late hook firing must not raise."""
    coord = _coordinator(tmp_path)
    coord.shutdown()
    coord._cleanup()  # dir already gone: ignore_errors swallows it
    assert not os.path.exists(coord.ckpt_dir)
