"""Tests for the benchmark harness (small, fast configurations)."""

import pytest

from repro.bench.experiments import (
    FigureResult,
    build_schedules,
    run_scaling,
    table1_properties,
    table4_problems,
)
from repro.bench.problems import CORE_COUNTS, PROBLEMS, ProblemConfig
from repro.bench.report import format_scaling, format_table
from repro.machine.spec import paper_machine
from repro.runtime import verify_schedule
from repro.stencils import get_stencil

#: a miniature problem so harness tests stay fast
MINI = ProblemConfig(
    name="mini-2d",
    kernel="heat2d",
    paper_size="(test)",
    shape=(96, 96),
    steps=12,
    cache_scale=0.01,
    scale_note="test-only",
    tess_b=4,
    tess_core_widths=(2, 4),
    tess_uncut_dims=(),
    pluto_b=4,
    pluto_cut_dims=(0, 1),
    pochoir_base_dt=3,
    pochoir_base_widths=(12, 12),
    mwd_b=4,
    mwd_chunks=2,
)


class TestProblems:
    def test_all_table4_rows_present(self):
        assert set(PROBLEMS) == {
            "heat1d", "1d5p", "heat2d", "2d9p", "life", "heat3d", "3d27p"
        }

    def test_kernels_resolve(self):
        for cfg in PROBLEMS.values():
            spec = get_stencil(cfg.kernel)
            assert spec.ndim == len(cfg.shape)

    def test_core_counts_reach_24(self):
        assert max(CORE_COUNTS) == 24


class TestBuildSchedules:
    @pytest.mark.parametrize("scheme", [
        "tess", "tess-unmerged", "pluto", "pochoir", "girih", "naive",
        "overlapped",
    ])
    def test_scheme_builds_and_is_valid(self, scheme):
        spec = get_stencil(MINI.kernel)
        scheds = build_schedules(MINI, (scheme,))
        assert set(scheds) == {scheme}
        assert verify_schedule(spec, scheds[scheme])

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            build_schedules(MINI, ("magic",))

    def test_girih_requires_config(self):
        cfg = PROBLEMS["heat2d"]
        assert cfg.mwd_b is None
        with pytest.raises(ValueError):
            build_schedules(cfg, ("girih",))


class TestRunScaling:
    def test_series_structure(self):
        series = run_scaling(MINI, ("tess", "naive"), cores=(1, 4))
        assert set(series) == {"tess", "naive"}
        assert [r.cores for r in series["tess"]] == [1, 4]

    def test_figure_result_accessors(self):
        series = run_scaling(MINI, ("tess",), cores=(1, 4))
        fr = FigureResult(
            exp_id="t", title="t", kernel=MINI.kernel,
            shape=MINI.shape, steps=MINI.steps, series=series,
        )
        assert fr.at("tess", 4).cores == 4
        with pytest.raises(KeyError):
            fr.at("tess", 3)
        fr.checks["x"] = (True, "ok")
        rendered = fr.render()
        assert "PASS" in rendered and "GStencil/s" in fr.table()


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.001]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "---" in lines[1]

    def test_format_scaling_metrics(self):
        series = run_scaling(MINI, ("tess",), cores=(1, 4))
        for metric in ("gstencils", "gflops", "speedup", "traffic_gb",
                       "bandwidth_gbs", "time_ms"):
            out = format_scaling(series, metric=metric)
            assert "tess" in out

    def test_format_scaling_bad_metric(self):
        with pytest.raises(ValueError):
            format_scaling({}, metric="joules")

    def test_empty_series(self):
        assert format_scaling({}) == "(no series)"


class TestStaticTables:
    def test_table1_renders(self):
        out = table1_properties(max_dim=4)
        assert "stages per phase" in out
        assert "d=4" in out

    def test_table4_lists_every_benchmark(self):
        out = table4_problems()
        for cfg in PROBLEMS.values():
            assert cfg.name in out
