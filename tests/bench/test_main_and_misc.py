"""Tests for the bench entry point and assorted harness paths."""

import pytest

from repro.bench.__main__ import _render, main
from repro.bench.experiments import (
    FigureResult,
    ablation_sync_counts,
    table1_properties,
    validation_matrix,
)
from repro.machine.model import SimResult


def _dummy_result(scheme="s", cores=1):
    return SimResult(
        scheme=scheme, cores=cores, time_s=1.0, useful_flops=10,
        useful_points=5, total_points=5, traffic_bytes=100.0,
        barriers=2, compute_bound_groups=1, memory_bound_groups=1,
        load_imbalance=1.0,
    )


class TestMain:
    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["does-not-exist"]) == 2
        assert "unknown experiments" in capsys.readouterr().out

    def test_single_experiment_runs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "stages per phase" in out

    def test_render_string_passthrough(self):
        assert _render("hello") == "hello"

    def test_render_figure_and_list(self):
        fr = FigureResult(
            exp_id="x", title="T", kernel="heat1d", shape=(4,), steps=1,
            series={"s": [_dummy_result()]},
        )
        fr.checks["claim"] = (False, "detail")
        out = _render([fr, fr])
        assert out.count("== x: T ==") == 2
        assert "DIVERGES" in out


class TestExperimentHelpers:
    def test_sync_counts_renders(self):
        out = ablation_sync_counts(shape_1d=128, steps=8, b=4)
        assert "tess" in out and "pochoir" in out

    def test_validation_matrix_all_ok(self):
        out = validation_matrix(steps=5)
        assert "FAIL" not in out
        assert out.count("ok") == 9 * 7

    def test_table1_custom_depth(self):
        out = table1_properties(max_dim=3, b=2)
        assert "|B_0| (b=2)" in out


class TestSimResultProperties:
    def test_rates(self):
        r = _dummy_result()
        assert r.gflops == pytest.approx(10 / 1e9)
        assert r.gstencils == pytest.approx(5 / 1e9)
        assert r.bandwidth_gbs == pytest.approx(100 / 1e9)
        assert r.traffic_gb == pytest.approx(100 / 1e9)

    def test_zero_time_guards(self):
        r = SimResult(
            scheme="s", cores=1, time_s=0.0, useful_flops=1,
            useful_points=1, total_points=1, traffic_bytes=1.0,
            barriers=0, compute_bound_groups=0, memory_bound_groups=0,
            load_imbalance=1.0,
        )
        assert r.gflops == 0.0
        assert r.gstencils == 0.0
        assert r.bandwidth_gbs == 0.0
