"""Tests for the RegionSchedule substrate."""

import numpy as np
import pytest

from repro.runtime.schedule import (
    RegionAction,
    RegionSchedule,
    ScheduledTask,
    _execute_schedule,
    schedule_stats,
)
from repro.stencils import Grid, heat1d, heat2d


class TestRegionAction:
    def test_points(self):
        assert RegionAction(0, ((0, 4), (1, 3))).points == 8
        assert RegionAction(0, ((2, 2),)).points == 0


class TestScheduledTask:
    def test_points_and_time_range(self):
        t = ScheduledTask(group=0, actions=[
            RegionAction(2, ((0, 3),)), RegionAction(3, ((1, 2),)),
        ])
        assert t.points == 4
        assert t.time_range == (2, 4)

    def test_empty_task(self):
        t = ScheduledTask(group=0, actions=[])
        assert t.points == 0
        assert t.time_range == (0, 0)
        assert t.bounding_box() is None
        assert t.footprint_points() == 0

    def test_bounding_box_union(self):
        t = ScheduledTask(group=0, actions=[
            RegionAction(0, ((2, 5), (0, 1))),
            RegionAction(1, ((0, 3), (4, 6))),
        ])
        assert t.bounding_box() == ((0, 5), (0, 6))
        assert t.footprint_points() == 30


class TestRegionSchedule:
    def test_groups_and_num_groups(self):
        s = RegionSchedule("x", (10,), 4)
        s.add(0, [RegionAction(0, ((0, 10),))])
        s.add(2, [RegionAction(1, ((0, 10),))])
        assert s.num_groups == 3
        assert sorted(s.groups()) == [0, 2]

    def test_validate_structure_catches_bad_time(self):
        s = RegionSchedule("x", (10,), 2)
        s.add(0, [RegionAction(5, ((0, 10),))])
        with pytest.raises(ValueError):
            s.validate_structure()

    def test_validate_structure_catches_bad_rank(self):
        s = RegionSchedule("x", (10,), 2)
        s.add(0, [RegionAction(0, ((0, 10), (0, 1)))])
        with pytest.raises(ValueError):
            s.validate_structure()

    def test_validate_structure_catches_negative_group(self):
        s = RegionSchedule("x", (10,), 2)
        s.add(-1, [RegionAction(0, ((0, 10),))])
        with pytest.raises(ValueError):
            s.validate_structure()


class TestExecuteSchedule:
    def test_runs_in_group_order(self):
        spec = heat1d()
        g = Grid(spec, (8,), seed=0)
        s = RegionSchedule("manual", (8,), 2)
        # deliberately add groups out of order: execution sorts them
        s.add(1, [RegionAction(1, ((0, 8),))])
        s.add(0, [RegionAction(0, ((0, 8),))])
        out = _execute_schedule(spec, g, s)
        g2 = Grid(spec, (8,), seed=0)
        from repro.stencils import reference_sweep
        ref = reference_sweep(spec, g2, 2)
        assert np.allclose(out, ref)

    def test_rejects_periodic(self):
        spec = heat1d("periodic")
        g = Grid(spec, (8,), seed=0)
        s = RegionSchedule("x", (8,), 1)
        with pytest.raises(ValueError):
            _execute_schedule(spec, g, s)

    def test_rejects_shape_mismatch(self):
        spec = heat1d()
        g = Grid(spec, (9,), seed=0)
        s = RegionSchedule("x", (8,), 1)
        with pytest.raises(ValueError):
            _execute_schedule(spec, g, s)


class TestStats:
    def test_stats_fields(self):
        spec = heat2d()
        s = RegionSchedule("x", (4, 4), 2)
        s.add(0, [RegionAction(0, ((0, 4), (0, 4)))])
        s.add(1, [RegionAction(1, ((0, 4), (0, 4)))])
        st = schedule_stats(s)
        assert st["tasks"] == 2
        assert st["groups"] == 2
        assert st["total_point_updates"] == 32
        assert st["required_point_updates"] == 32
        assert st["redundancy"] == 0.0
        assert st["max_group_width"] == 1
