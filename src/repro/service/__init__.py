"""Durable job runtime: crash-safe store, supervisor, serving front.

The service layer turns the one-shot :class:`repro.api.Session`
pipeline into something a caller can *submit to and walk away from*:

* :mod:`repro.service.jobstore` — append-only CRC-framed write-ahead
  journal, idempotent submission, atomic state machine, checkpoints,
  sealed results, advisory leases, startup recovery;
* :mod:`repro.service.queue` — bounded priority queue whose
  backpressure reuses the QoS admission estimate
  (:class:`~repro.runtime.errors.QueueSaturated`, exit 10);
* :mod:`repro.service.supervisor` — leased worker pool with retry +
  exponential backoff, segmented checkpointing, bit-identical resume,
  epoch-fenced commits and graceful drain;
* :mod:`repro.service.isolation` — sandboxed worker-child processes
  (``isolation="process"``): crash containment, heartbeat watchdog,
  RLIMIT_AS memory ceilings, poison-job quarantine;
* :mod:`repro.service.front` — stdlib HTTP front + client helpers
  (``repro serve`` / ``submit`` / ``status`` / ``result``).

Nothing here is imported by the direct ``Session.run`` path — using
the library without the service costs zero new imports.
"""

from repro.service.front import (
    ServiceFront,
    cancel_job,
    job_result,
    job_status,
    server_metrics,
    submit_job,
)
from repro.service.jobstore import (
    ADMITTED,
    CANCELLED,
    DONE,
    FAILED,
    LEGAL_TRANSITIONS,
    QUEUED,
    RUNNING,
    STATES,
    TERMINAL_STATES,
    Job,
    JobStore,
    JournalReplayError,
    RecoveryReport,
    job_identity,
)
from repro.service.isolation import (
    CHECKPOINTABLE,
    ChildConfig,
    JobAssignment,
    worker_child_main,
)
from repro.service.queue import JobQueue
from repro.service.supervisor import Supervisor, SupervisorConfig

__all__ = [
    "Job",
    "JobStore",
    "JobQueue",
    "JournalReplayError",
    "RecoveryReport",
    "ServiceFront",
    "Supervisor",
    "SupervisorConfig",
    "QUEUED",
    "ADMITTED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "STATES",
    "TERMINAL_STATES",
    "LEGAL_TRANSITIONS",
    "CHECKPOINTABLE",
    "ChildConfig",
    "JobAssignment",
    "worker_child_main",
    "job_identity",
    "submit_job",
    "job_status",
    "job_result",
    "cancel_job",
    "server_metrics",
]
