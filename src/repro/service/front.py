"""Minimal serving front: stdlib HTTP over the durable job runtime.

One :class:`ServiceFront` binds a :class:`~repro.service.supervisor.
Supervisor` to a ``ThreadingHTTPServer``.  The API is deliberately
small — submit, poll, fetch, cancel, observe — and speaks only JSON
(arrays travel as the base64 + SHA-256 codec of
:func:`repro.api.stats.encode_array`):

====== ========================== =====================================
verb   path                       meaning
====== ========================== =====================================
POST   ``/jobs``                  submit ``{"kernel", "config", ...}``;
                                  202 with the job id (idempotent —
                                  resubmitting returns the same id)
GET    ``/jobs``                  list job summaries
GET    ``/jobs/<id>``             full job status (journaled view)
GET    ``/jobs/<id>/result``      sealed result: stats + interior
                                  array; 409 until the job is ``done``
POST   ``/jobs/<id>/cancel``      cancel (idempotent)
GET    ``/metrics``               supervisor + queue + store counters,
                                  plus per-worker liveness
GET    ``/healthz``               deep liveness: per-worker heartbeat
                                  age / current job / incarnation and
                                  queue pressure; **503** with
                                  ``{"state": "draining"}`` while the
                                  service drains
====== ========================== =====================================

Failure taxonomy on the wire mirrors the CLI exit codes:
:class:`~repro.runtime.errors.QueueSaturated` → **429** (exit 10),
:class:`~repro.runtime.errors.ServiceDraining` → **503** (a draining
server refuses new submissions but keeps answering reads),
:class:`~repro.runtime.errors.JobNotFound` → **404** (exit 11), usage
errors → 400.  Every error body is ``{"error", "kind"}`` so clients
re-raise the typed exception — the module's client helpers
(:func:`submit_job` & co.) do exactly that, which is how the CLI's
``repro submit/status/result`` map server-side saturation onto the
same exit code a local refusal produces.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.request import Request, urlopen

from repro.runtime.errors import (
    JobNotFound,
    QueueSaturated,
    ServiceDraining,
)

__all__ = [
    "ServiceFront",
    "submit_job",
    "job_status",
    "job_result",
    "cancel_job",
    "server_metrics",
]

_MAX_BODY = 8 << 20  # request bodies are job specs, not bulk data


def _error_payload(exc: Exception) -> Tuple[int, Dict[str, Any]]:
    """Map an exception to ``(http_status, body)`` — the wire-side
    mirror of the CLI's exit-code taxonomy."""
    if isinstance(exc, ServiceDraining):
        # checked before QueueSaturated: draining subclasses it so
        # existing retry-on-saturation clients keep working
        return 503, {"error": str(exc), "kind": "ServiceDraining",
                     "state": "draining"}
    if isinstance(exc, QueueSaturated):
        return 429, {"error": str(exc), "kind": "QueueSaturated"}
    if isinstance(exc, JobNotFound):
        return 404, {"error": str(exc), "kind": "JobNotFound"}
    if isinstance(exc, (ValueError, KeyError, TypeError)):
        return 400, {"error": str(exc), "kind": type(exc).__name__}
    return 500, {"error": str(exc), "kind": type(exc).__name__}


class _Handler(BaseHTTPRequestHandler):
    """Routes one request; the supervisor hangs off the server."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------

    def log_message(self, fmt, *args):  # quiet by default
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(fmt, *args)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY:
            raise ValueError(f"request body of {length} bytes exceeds "
                             f"the {_MAX_BODY} byte bound")
        raw = self.rfile.read(length) if length else b"{}"
        data = json.loads(raw or b"{}")
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    def _route(self) -> Tuple[int, Dict[str, Any]]:
        sup = self.server.supervisor
        parts = [p for p in self.path.split("?", 1)[0].split("/") if p]
        if self.command == "GET":
            if parts == ["healthz"]:
                health = sup.health()
                return (200 if health.get("ok") else 503), health
            if parts == ["metrics"]:
                return 200, sup.snapshot_metrics()
            if parts == ["jobs"]:
                return 200, {"jobs": [
                    {"job_id": j.job_id, "kernel": j.kernel,
                     "state": j.state, "attempts": j.attempts,
                     "priority": j.priority}
                    for j in sup.store.jobs()]}
            if len(parts) == 2 and parts[0] == "jobs":
                return 200, sup.store.get(parts[1]).to_json()
            if len(parts) == 3 and parts[:1] == ["jobs"] \
                    and parts[2] == "result":
                return self._result(sup, parts[1])
        elif self.command == "POST":
            if parts == ["jobs"]:
                return self._submit(sup)
            if len(parts) == 3 and parts[0] == "jobs" \
                    and parts[2] == "cancel":
                job = sup.cancel(parts[1])
                return 200, {"job_id": job.job_id, "state": job.state}
        raise JobNotFound(self.path)

    # -- handlers -----------------------------------------------------

    def _submit(self, sup) -> Tuple[int, Dict[str, Any]]:
        body = self._read_body()
        kernel = body.get("kernel")
        config = body.get("config") or {}
        if not kernel:
            raise ValueError("submission needs a 'kernel' name")
        job, created = sup.submit(
            str(kernel), dict(config),
            priority=int(body.get("priority", 0)),
            max_retries=body.get("max_retries"))
        return (202 if created else 200), {
            "job_id": job.job_id,
            "state": job.state,
            "created": created,
            "idempotency_key": job.idempotency_key,
        }

    def _result(self, sup, job_id: str) -> Tuple[int, Dict[str, Any]]:
        from repro.api.stats import encode_array
        from repro.service.jobstore import DONE

        job = sup.store.get(job_id)
        if job.state != DONE:
            return 409, {"job_id": job_id, "state": job.state,
                         "error": f"job is {job.state}, not done",
                         "kind": "NotReady",
                         "error_detail": job.error,
                         "error_kind": job.error_kind}
        interior, stats = sup.store.load_result(job_id)
        return 200, {"job_id": job_id, "state": job.state,
                     "stats": stats, "interior": encode_array(interior)}

    def _dispatch(self) -> None:
        try:
            status, payload = self._route()
        except Exception as exc:  # typed taxonomy, not a stack trace
            status, payload = _error_payload(exc)
        self._send_json(status, payload)

    do_GET = _dispatch
    do_POST = _dispatch


class ServiceFront:
    """Own the HTTP server thread over a started supervisor."""

    def __init__(self, supervisor, host: str = "127.0.0.1",
                 port: int = 0):
        self.supervisor = supervisor
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.supervisor = supervisor
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ServiceFront":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-serve", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ServiceFront":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


# -- client helpers ---------------------------------------------------

def _request(base: str, path: str, *, method: str = "GET",
             body: Optional[Dict[str, Any]] = None,
             timeout: float = 30.0) -> Dict[str, Any]:
    """One JSON round trip; server error bodies re-raise typed."""
    from urllib.error import HTTPError

    data = None if body is None else json.dumps(body).encode()
    req = Request(f"{base.rstrip('/')}{path}", data=data, method=method,
                  headers={"Content-Type": "application/json"})
    try:
        with urlopen(req, timeout=timeout) as resp:
            return json.loads(resp.read() or b"{}")
    except HTTPError as exc:
        try:
            payload = json.loads(exc.read() or b"{}")
        except ValueError:
            payload = {"error": str(exc), "kind": "HTTPError"}
        raise _typed(payload, exc.code) from None


def _typed(payload: Dict[str, Any], status: int) -> Exception:
    kind = payload.get("kind", "")
    message = payload.get("error", f"HTTP {status}")
    if kind == "ServiceDraining" or status == 503:
        return ServiceDraining(message)
    if kind == "QueueSaturated" or status == 429:
        return QueueSaturated(0, 0, detail=message)
    if kind == "JobNotFound" or status == 404:
        exc = JobNotFound(message)
        exc.args = (message,)  # the server already phrased it
        return exc
    if status == 400:
        return ValueError(message)
    return RuntimeError(message)


def submit_job(base: str, kernel: str, config: Dict[str, Any], *,
               priority: int = 0, max_retries: Optional[int] = None,
               timeout: float = 30.0) -> Dict[str, Any]:
    body: Dict[str, Any] = {"kernel": kernel, "config": config,
                            "priority": priority}
    if max_retries is not None:
        body["max_retries"] = max_retries
    return _request(base, "/jobs", method="POST", body=body,
                    timeout=timeout)


def job_status(base: str, job_id: str, *,
               timeout: float = 30.0) -> Dict[str, Any]:
    return _request(base, f"/jobs/{job_id}", timeout=timeout)


def job_result(base: str, job_id: str, *, timeout: float = 30.0,
               decode: bool = True) -> Dict[str, Any]:
    """Fetch a sealed result; with ``decode`` the interior comes back
    as an ndarray (hash-verified)."""
    from urllib.error import HTTPError  # noqa: F401  (re-raise path)

    out = _request(base, f"/jobs/{job_id}/result", timeout=timeout)
    if decode and isinstance(out.get("interior"), dict):
        from repro.api.stats import decode_array

        out["interior"] = decode_array(out["interior"])
    return out


def cancel_job(base: str, job_id: str, *,
               timeout: float = 30.0) -> Dict[str, Any]:
    return _request(base, f"/jobs/{job_id}/cancel", method="POST",
                    timeout=timeout)


def server_metrics(base: str, *,
                   timeout: float = 30.0) -> Dict[str, Any]:
    return _request(base, "/metrics", timeout=timeout)
