"""Golden tests: regenerate the paper's printed Tables 2 and 3.

Table 2 tabulates ``T_i^s``/``T_i^e``/``T_i`` over the quadrant
``B_0^+`` of the 2D stencil with ``b = 3``; Table 3 the stage counts of
the 3D stencil.  The matrices below are transcribed from the paper
('-' = no update in that stage); the paper prints the 3D tables with
the k (z) axis measured from the opposite corner, so those slices are
compared with the z-axis flipped.
"""

import numpy as np
import pytest

from repro.core.iteration_space import (
    NO_UPDATE,
    block_resolved_counts,
    format_table,
    quadrant_coords,
    stage_tables,
    time_tile_total,
)

_ = NO_UPDATE  # alias for readability in the golden matrices


def M(rows):
    return np.array(rows, dtype=np.int64)


# ---- Table 2 (2D, b = 3) — transcribed from the paper -------------------

TABLE2_TS = {
    0: M([[0, 0, 0, _], [0, 0, 0, _], [0, 0, 0, _], [_, _, _, _]]),
    1: M([[_, 2, 1, 0], [2, _, 1, 0], [1, 1, _, 0], [0, 0, 0, _]]),
    2: M([[_, _, _, _], [_, 2, 2, 2], [_, 2, 1, 1], [_, 2, 1, 0]]),
}
TABLE2_TE = {
    0: M([[3, 2, 1, _], [2, 2, 1, _], [1, 1, 1, _], [_, _, _, _]]),
    1: M([[_, 3, 3, 3], [3, _, 2, 2], [3, 2, _, 1], [3, 2, 1, _]]),
    2: M([[_, _, _, _], [_, 3, 3, 3], [_, 3, 3, 3], [_, 3, 3, 3]]),
}
TABLE2_T = {
    0: M([[3, 2, 1, _], [2, 2, 1, _], [1, 1, 1, _], [_, _, _, _]]),
    1: M([[_, 1, 2, 3], [1, _, 1, 2], [2, 1, _, 1], [3, 2, 1, _]]),
    2: M([[_, _, _, _], [_, 1, 1, 1], [_, 1, 2, 2], [_, 1, 2, 3]]),
}


class TestTable2:
    @pytest.mark.parametrize("stage", [0, 1, 2])
    def test_start_times(self, stage):
        got = stage_tables(2, 3, stage)["start"]
        assert np.array_equal(got, TABLE2_TS[stage])

    @pytest.mark.parametrize("stage", [0, 1, 2])
    def test_end_times(self, stage):
        got = stage_tables(2, 3, stage)["end"]
        assert np.array_equal(got, TABLE2_TE[stage])

    @pytest.mark.parametrize("stage", [0, 1, 2])
    def test_counts(self, stage):
        got = stage_tables(2, 3, stage)["count"]
        assert np.array_equal(got, TABLE2_T[stage])

    def test_time_tile_sums_to_b(self):
        assert np.array_equal(time_tile_total(2, 3),
                              np.full((4, 4), 3))


# ---- Table 3 (3D, b = 3) — 𝔹_0^+ / 𝔹_3^+ and the combined 𝔹_1^+ ----------
# The paper prints one 4x4 matrix per k slice; its k axis runs from the
# far corner, i.e. paper slice k corresponds to our z = 3 - k.

TABLE3_B0 = {  # paper k -> matrix
    0: M([[_, _, _, _]] * 4),
    1: M([[1, 1, 1, _], [1, 1, 1, _], [1, 1, 1, _], [_, _, _, _]]),
    2: M([[2, 2, 1, _], [2, 2, 1, _], [1, 1, 1, _], [_, _, _, _]]),
    3: M([[3, 2, 1, _], [2, 2, 1, _], [1, 1, 1, _], [_, _, _, _]]),
}
TABLE3_B3 = {
    0: M([[_, _, _, _], [_, 1, 1, 1], [_, 1, 2, 2], [_, 1, 2, 3]]),
    1: M([[_, _, _, _], [_, 1, 1, 1], [_, 1, 2, 2], [_, 1, 2, 2]]),
    2: M([[_, _, _, _], [_, 1, 1, 1], [_, 1, 1, 1], [_, 1, 1, 1]]),
    3: M([[_, _, _, _]] * 4),
}
TABLE3_B1 = {
    0: M([[3, 2, 1, _], [2, 2, 1, _], [1, 1, 1, _], [_, _, _, _]]),
    1: M([[2, 1, _, 1], [1, 1, _, 1], [_, _, _, 1], [1, 1, 1, _]]),
    2: M([[1, _, 1, 2], [_, _, 1, 2], [1, 1, _, 1], [2, 2, 1, _]]),
    3: M([[_, 1, 2, 3], [1, _, 1, 2], [2, 1, _, 1], [3, 2, 1, _]]),
}


def _stage_slices(stage):
    """Our stage-count cube with paper '-' marking and k flipped."""
    counts = stage_tables(3, 3, stage)["count"]
    return {k: counts[:, :, 3 - k] for k in range(4)}


class TestTable3:
    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_b0_plus(self, k):
        assert np.array_equal(_stage_slices(0)[k], TABLE3_B0[k])

    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_b3_plus(self, k):
        assert np.array_equal(_stage_slices(3)[k], TABLE3_B3[k])

    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_b1_plus_combined(self, k):
        assert np.array_equal(_stage_slices(1)[k], TABLE3_B1[k])

    def test_b2_by_elimination(self):
        """𝔹_2 = b − 𝔹_0 − 𝔹_1 − 𝔹_3 pointwise (Theorem 3.5)."""
        total = time_tile_total(3, 3)
        assert np.array_equal(total, np.full((4, 4, 4), 3))

    def test_block_resolved_b1_x_glued(self):
        """Per-block table 𝔹_1^+(b,0,0): only points whose largest
        distance is along x receive their stage-1 updates there."""
        full = stage_tables(3, 3, 1)["count"]
        blk = block_resolved_counts(3, 3, 1, center=(3, 0, 0))
        member = blk != NO_UPDATE
        assert np.array_equal(blk[member], full[member])
        # membership: x strictly dominates the other coordinates
        coords = quadrant_coords(3, 3).reshape(4, 4, 4, 3)
        dominated = (coords[..., 0] > coords[..., 1]) & (
            coords[..., 0] > coords[..., 2]
        )
        assert bool(np.all(member <= (dominated & (full > 0))))

    def test_block_resolved_rejects_bad_center(self):
        with pytest.raises(ValueError):
            block_resolved_counts(3, 3, 1, center=(3, 3, 0))
        with pytest.raises(ValueError):
            block_resolved_counts(3, 3, 1, center=(2, 0, 0))
        with pytest.raises(ValueError):
            block_resolved_counts(3, 3, 1, center=(3, 0))


class TestFormatting:
    def test_format_2d(self):
        out = format_table(M([[1, _], [_, 2]]))
        assert out.splitlines() == ["1 -", "- 2"]

    def test_format_1d(self):
        assert format_table(np.array([1, -1, 2])) == "1 - 2"

    def test_format_3d_has_slices(self):
        out = format_table(np.zeros((2, 2, 2), dtype=np.int64))
        assert "k = 0" in out and "k = 1" in out

    def test_format_rejects_4d(self):
        with pytest.raises(ValueError):
            format_table(np.zeros((2, 2, 2, 2), dtype=np.int64))
