"""Task graphs for the simulated machine.

Converts a :class:`~repro.runtime.schedule.RegionSchedule` into a list
of cost-annotated task nodes with barrier-group structure, and offers
the schedule-level analyses the paper's comparison rests on: total
work, span (critical path under barrier semantics), concurrency
profile and synchronisation counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.schedule import RegionSchedule, ScheduledTask
from repro.stencils.spec import StencilSpec


@dataclass(frozen=True, slots=True)
class TaskNode:
    """Cost-annotated unit of work for the machine model."""

    tid: int
    group: int
    label: str
    points: int            # point-updates performed (incl. redundancy)
    flops: int             # points * flops_per_point
    footprint_bytes: int   # resident working set (two copies of bbox)
    steps: int             # time steps the task spans
    actions: int           # number of vectorised region applications
    bbox: Optional[Tuple[Tuple[int, int], ...]] = None  # spatial bounds


@dataclass
class TaskGraph:
    """Barrier-structured task list with per-node costs."""

    scheme: str
    shape: Tuple[int, ...]
    steps: int
    nodes: List[TaskNode] = field(default_factory=list)

    @property
    def num_groups(self) -> int:
        return 1 + max((n.group for n in self.nodes), default=-1)

    @property
    def num_barriers(self) -> int:
        """Synchronisations: one barrier after each group."""
        return self.num_groups

    def groups(self) -> Dict[int, List[TaskNode]]:
        out: Dict[int, List[TaskNode]] = {}
        for n in self.nodes:
            out.setdefault(n.group, []).append(n)
        return out

    def work_flops(self) -> int:
        return sum(n.flops for n in self.nodes)

    def work_points(self) -> int:
        return sum(n.points for n in self.nodes)

    def span_flops(self) -> int:
        """Critical path under barrier semantics with infinite cores:
        the largest task of every group is on the critical path."""
        return sum(
            max((n.flops for n in g), default=0)
            for g in self.groups().values()
        )

    def concurrency_profile(self) -> List[int]:
        """Tasks available per barrier group, in group order."""
        gs = self.groups()
        return [len(gs[k]) for k in sorted(gs)]

    def average_parallelism(self) -> float:
        """Work/span ratio in task counts weighted by flops."""
        span = self.span_flops()
        return self.work_flops() / span if span else 0.0


def build_taskgraph(spec: StencilSpec,
                    schedule: RegionSchedule) -> TaskGraph:
    """Annotate every scheduled task with machine-model costs.

    Single pass over each task's actions (points, time range and
    bounding box in one sweep) — this function is on the hot path of
    the figure benchmarks (10^5 tasks per schedule).
    """
    itemsize = np.dtype(spec.dtype).itemsize
    fpp = spec.flops_per_point
    slopes = spec.slopes
    d = spec.ndim
    tg = TaskGraph(scheme=schedule.scheme, shape=schedule.shape,
                   steps=schedule.steps)
    for tid, task in enumerate(schedule.tasks):
        pts = 0
        t_lo = t_hi = None
        blo = [None] * d
        bhi = [None] * d
        for a in task.actions:
            sz = 1
            for j, (lo, hi) in enumerate(a.region):
                w = hi - lo
                if w <= 0:
                    sz = 0
                    break
                sz *= w
            if sz == 0:
                continue
            pts += sz
            if t_lo is None or a.t < t_lo:
                t_lo = a.t
            if t_hi is None or a.t >= t_hi:
                t_hi = a.t + 1
            for j, (lo, hi) in enumerate(a.region):
                if blo[j] is None or lo < blo[j]:
                    blo[j] = lo
                if bhi[j] is None or hi > bhi[j]:
                    bhi[j] = hi
        if t_lo is None:
            bbox = None
            fp = 0
            halo = 0
            t_lo = t_hi = 0
        else:
            bbox = tuple(zip(blo, bhi))
            fp = 1
            outer = 1
            for (lo, hi), sg in zip(bbox, slopes):
                fp *= hi - lo
                outer *= (hi - lo) + 2 * sg
            halo = outer - fp
        tg.nodes.append(TaskNode(
            tid=tid,
            group=task.group,
            label=task.label,
            points=pts,
            flops=pts * fpp,
            footprint_bytes=(2 * fp + halo) * itemsize,
            steps=max(0, t_hi - t_lo),
            actions=len(task.actions),
            bbox=bbox,
        ))
    return tg


def _halo_points(task: ScheduledTask, spec: StencilSpec) -> int:
    """Points of the one-slope halo shell around the task's bbox."""
    box = task.bounding_box()
    if box is None:
        return 0
    inner = 1
    outer = 1
    for (lo, hi), s in zip(box, spec.slopes):
        inner *= hi - lo
        outer *= (hi - lo) + 2 * s
    return outer - inner
