"""JSON round-trips: RunStats/RunResult/RunConfig and the array codec.

The serving front ships results over the wire as JSON; these tests pin
that the round trip is lossless — numpy scalars coerce, the typed
counter blocks come back as their real types, and arrays survive the
base64 + SHA-256 codec bit-exactly.
"""

import json

import numpy as np
import pytest

from repro import get_stencil
from repro.api import RunConfig, Session
from repro.api.stats import (
    RunStats,
    decode_array,
    encode_array,
    json_safe,
)
from repro.distributed.exec import CommStats
from repro.engine.cache import CacheStats
from repro.runtime.resilience import ResilienceReport
from repro.runtime.tracing import RuntimeEvent

pytestmark = pytest.mark.api


def _dumps(payload):
    # the real contract: the default encoder, no custom hooks
    return json.dumps(payload)


def test_json_safe_coerces_numpy_scalars():
    out = json_safe({
        "i": np.int64(3),
        "f": np.float32(0.5),
        "b": np.bool_(True),
        "a": np.arange(3),
        "t": (np.int32(1), 2),
        np.int64(7): "npkey",
    })
    _dumps(out)
    assert out["i"] == 3 and isinstance(out["i"], int)
    assert out["b"] is True
    assert out["a"] == [0, 1, 2]
    assert out["t"] == [1, 2]
    assert out["7"] == "npkey"


def test_array_codec_bit_exact_roundtrip():
    arr = np.random.default_rng(0).random((5, 7))
    clone = decode_array(json.loads(_dumps(encode_array(arr))))
    assert clone.dtype == arr.dtype and clone.shape == arr.shape
    assert clone.tobytes() == arr.tobytes()


def test_array_codec_detects_tampering():
    payload = encode_array(np.ones(4))
    payload["sha256"] = "0" * 64
    with pytest.raises(ValueError, match="SHA-256"):
        decode_array(payload)


def test_runstats_roundtrip_with_all_blocks():
    stats = RunStats(
        backend="distributed", scheme="tess", engine="naive",
        shape=(np.int64(32), 32), steps=np.int64(8),
        phases={"execute": np.float64(0.25)},
        schedule={"tasks": np.int64(12), "groups": 3},
        events=[RuntimeEvent(kind="group", group=1, label="g1",
                             seconds=0.01, detail="d")],
        comm=CommStats(messages=4, bytes_sent=1024,
                       stage_bytes={0: 512, 1: 512}, drops=1),
        resilience=ResilienceReport(scheme="tess", task_retries=2,
                                    checkpoints_taken=3),
        cache=CacheStats(hits=5, misses=1, compile_seconds=0.02),
        plan_compiles=1, cache_hits=2,
        degradations=[{"from": "elastic", "to": "serial",
                       "error": "RankLostError", "detail": "x"}],
        verified=np.bool_(True),
    )
    clone = RunStats.from_json(json.loads(_dumps(stats.to_json())))
    assert clone.backend == "distributed"
    assert clone.shape == (32, 32) and clone.steps == 8
    assert clone.phases == {"execute": 0.25}
    # events come back as real RuntimeEvent objects
    assert clone.events[0].kind == "group"
    assert clone.event_counts() == {"group": 1}
    # typed blocks come back as their real types, int keys restored
    assert isinstance(clone.comm, CommStats)
    assert clone.comm.stage_bytes == {0: 512, 1: 512}
    assert isinstance(clone.resilience, ResilienceReport)
    assert clone.resilience.describe()  # live accessor works
    assert clone.resilience.task_retries == 2
    assert isinstance(clone.cache, CacheStats)
    assert clone.cache.hits == 5
    assert clone.degradations[0]["to"] == "serial"
    assert clone.verified is True
    assert clone.describe()


def test_runstats_roundtrip_minimal():
    clone = RunStats.from_json(json.loads(_dumps(RunStats().to_json())))
    assert clone.comm is None and clone.resilience is None
    assert clone.cache is None and clone.verified is None


def test_live_run_result_roundtrips(tmp_path):
    spec = get_stencil("heat1d")
    cfg = RunConfig(shape=(40,), steps=12, backend="serial",
                    verify=True)
    result = Session(spec).run(cfg)
    payload = json.loads(_dumps(result.to_json()))
    interior = decode_array(payload["interior"])
    np.testing.assert_array_equal(interior, result.interior)
    stats = RunStats.from_json(payload["stats"])
    assert stats.steps == 12 and stats.verified is True
    cfg2 = RunConfig.from_json(payload["config"])
    assert cfg2.normalized().shape == (40,)


def test_runconfig_roundtrip_including_qos():
    from repro.runtime.qos import QoSPolicy

    cfg = RunConfig(shape=(16, 16), steps=5, scheme="diamond", b=4,
                    backend="threadpool", threads=2,
                    qos=QoSPolicy(deadline_s=1.5,
                                  fallback=("threaded", "serial")))
    clone = RunConfig.from_json(json.loads(_dumps(cfg.to_json())))
    # aliases resolve identically on both sides
    assert clone.normalized().backend == "threaded"
    assert clone.shape == (16, 16) and clone.b == 4
    assert clone.qos.deadline_s == 1.5
    assert clone.qos.fallback == ("threaded", "serial")
    # canonical JSON identity: serialize -> parse -> serialize is fixed
    once = cfg.normalized().to_json()
    twice = RunConfig.from_json(once).normalized().to_json()
    assert once == twice


def test_runconfig_from_json_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown RunConfig field"):
        RunConfig.from_json({"not_a_knob": 1})
