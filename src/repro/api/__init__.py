"""The unified execution API: one pipeline, many backends.

Everything in :mod:`repro` executes through the same spine::

    StencilSpec -> ScheduleBuilder -> CompiledPlan (optional) -> Backend

Entry points:

* :func:`run` / :class:`Session` — the facade (build, sanitize, lower,
  execute, verify) returning a :class:`RunResult` with the unified
  :class:`RunStats` schema;
* :class:`RunConfig` — every knob of a run in one dataclass;
* the backend registry (:func:`get_backend`, :func:`backend_names`,
  :func:`register_backend`) — ``serial``, ``compiled``, ``threaded``,
  ``resilient``, ``distributed``, ``elastic`` and the ``baseline:*``
  family behind one :class:`Backend` protocol.

See ``docs/architecture.md`` for the full pipeline diagram and schema
reference.  The historical entry points (``execute_schedule``,
``execute_threaded``, ``run_blocked``, ...) still work but are
deprecation shims over this module.
"""

from repro.api.backends import (
    Backend,
    BackendOutcome,
    BackendUnsupported,
    ExecutionContext,
    backend_names,
    get_backend,
    register_backend,
)
from repro.api.builder import SCHEMES, BuiltSchedule, ScheduleBuilder
from repro.api.config import (
    BACKEND_ALIASES,
    ENGINE_ALIASES,
    RunConfig,
    normalize_backend,
    normalize_engine,
)
from repro.api.deprecation import warn_legacy
from repro.api.driver import drive_groups, phase_windows, run_actions
from repro.api.fallback import run_with_fallback
from repro.api.session import Session, execute, run
from repro.api.stats import RunResult, RunStats, cache_delta
from repro.runtime.qos import (
    AdmissionRejected,
    CancelToken,
    QoSPolicy,
    RunBudget,
)

__all__ = [
    "AdmissionRejected",
    "BACKEND_ALIASES",
    "Backend",
    "BackendOutcome",
    "BackendUnsupported",
    "BuiltSchedule",
    "CancelToken",
    "ENGINE_ALIASES",
    "ExecutionContext",
    "QoSPolicy",
    "RunBudget",
    "RunConfig",
    "RunResult",
    "RunStats",
    "SCHEMES",
    "ScheduleBuilder",
    "Session",
    "backend_names",
    "cache_delta",
    "drive_groups",
    "execute",
    "get_backend",
    "normalize_backend",
    "normalize_engine",
    "phase_windows",
    "register_backend",
    "run",
    "run_actions",
    "run_with_fallback",
    "warn_legacy",
]
