"""The one shared drive loop behind every executor.

Before this module existed the phase/stage/group iteration was written
out four times — sequentially in ``runtime/schedule.py``, with a thread
pool in ``runtime/threadpool.py``, and twice over phase plans in
``core/executor.py`` (plus once more in the distributed simulator).
All of them reduce to two loops:

* :func:`phase_windows` — the time-tiling phase loop: phases of depth
  ``b`` starting at ``t0``, the last one truncated to the remaining
  steps (safe by construction: dropping the top of every time window
  never breaks a dependence);
* :func:`drive_groups` — the barrier-group loop over a
  :class:`~repro.runtime.schedule.RegionSchedule`: groups in ascending
  order with a barrier between them, tasks of one group either run in
  order (``num_threads == 1``) or submitted together to a thread pool
  and joined (the barrier) before the next group starts.

The pooled path is **fail-fast**: on the first task exception the
group's still-pending futures are cancelled, running futures are
joined (so no worker is still writing the buffers), and a structured
:class:`~repro.runtime.errors.ExecutionError` naming the failing task
and group is raised.  The sequential path propagates the raw exception
unchanged, matching the historical ``execute_schedule`` contract.

This module deliberately imports nothing from :mod:`repro.runtime`
except the error type, so the runtime modules can import it without a
cycle.
"""

from __future__ import annotations

from concurrent.futures import FIRST_EXCEPTION, ThreadPoolExecutor, wait
from typing import Callable, Iterable, Iterator, Tuple

from repro.runtime.errors import ExecutionError

__all__ = ["phase_windows", "run_actions", "drive_groups"]

#: ``run_one(group_index, group_id, task_index, task)`` — the per-task
#: body supplied by each executor (serial action walk, compiled units,
#: fault-injected attempt, ...).
TaskRunner = Callable[[int, int, int, object], object]


def phase_windows(t0: int, t_end: int, b: int) -> Iterator[Tuple[int, int]]:
    """Yield ``(phase_start, span)`` for phases of depth ``b``.

    ``span = min(b, t_end - phase_start)`` truncates the final phase
    when the step count is not a multiple of ``b``.
    """
    if b < 1:
        raise ValueError(f"phase depth must be >= 1, got {b}")
    tt = t0
    while tt < t_end:
        yield tt, min(b, t_end - tt)
        tt += b


def run_actions(spec, grid, actions: Iterable) -> int:
    """Apply a task's ``(t, region)`` actions in order; returns points."""
    pts = 0
    for a in actions:
        spec.apply_region(grid.at(a.t), grid.at(a.t + 1), a.region)
        pts += a.points
    return pts


def drive_groups(schedule, run_one: TaskRunner, num_threads: int = 1,
                 budget=None) -> None:
    """Run a schedule's barrier groups in order through ``run_one``.

    Sequential (``num_threads <= 1``): tasks of each group run in their
    listed order; exceptions propagate unchanged.

    Pooled: tasks of one group are submitted together and joined before
    the next group (the barrier); the first failure cancels the group's
    pending tasks and raises :class:`ExecutionError` carrying the
    scheme/group/task context.

    ``budget`` is the run-level :class:`~repro.runtime.qos.RunBudget`;
    when armed it is checked before each barrier group, so a deadline
    or cancellation stops the drive at the next group boundary with
    every already-started task joined (no worker still writing).
    """
    groups = schedule.groups()
    ordered = sorted(groups)
    if budget is not None:
        budget.check(f"{schedule.scheme} drive entry")
    if num_threads <= 1:
        for gi, gid in enumerate(ordered):
            if budget is not None:
                budget.check(f"group {gid}")
            for ti, task in enumerate(groups[gid]):
                run_one(gi, gid, ti, task)
        return
    with ThreadPoolExecutor(max_workers=num_threads) as pool:
        for gi, gid in enumerate(ordered):
            if budget is not None:
                budget.check(f"group {gid}")
            tasks = groups[gid]
            futures = {
                pool.submit(run_one, gi, gid, ti, task): task
                for ti, task in enumerate(tasks)
            }
            done, pending = wait(futures, return_when=FIRST_EXCEPTION)
            first_exc, failed_task = None, None
            for f in done:
                exc = f.exception()
                if exc is not None and first_exc is None:
                    first_exc, failed_task = exc, futures[f]
            if first_exc is not None:
                cancelled = sum(1 for f in pending if f.cancel())
                wait(futures)  # join tasks that were already running
                raise ExecutionError(
                    f"task failed ({first_exc}); "
                    f"{cancelled} pending task(s) cancelled",
                    scheme=schedule.scheme,
                    group=gid,
                    task_label=failed_task.label or None,
                ) from first_exc
