"""Batched-backend benchmark: N-instance loop vs one stacked run.

Standalone script (not a pytest bench) emitting machine-readable
``BENCH_batch.json``: for each (kernel, shape, steps, b) workload and
each batch width N it times the full per-request path both ways —

* **loop**: N independent ``Session.run`` calls (``backend="compiled"``,
  seeds ``seed .. seed+N-1``), each paying the schedule build, plan
  lookup and per-unit dispatch alone, exactly like N service jobs
  running back to back;
* **batched**: one ``Session.run_many`` call (``backend="batched"``,
  ``batch=N``) that builds the schedule once and runs every plan unit
  over the ``[N, ...]`` stack in a single kernel dispatch.

Results must be bit-identical per instance; the headline number is the
aggregate instances/sec ratio (``speedup``), plus ``speedup_vs_n1`` —
the batched throughput at this N against the same workload's N=1 loop
row, the acceptance metric (>= 5x at N=32 on the fig8-class workload).

Modes mirror ``bench_engine.py``: default (full) runs the fig8-class
(Heat-1D 4000 points) and fig10-class (Heat-2D 96x96) serving sizes at
N in {1, 8, 32} plus a Life variant — the committed ``BENCH_batch.json``
comes from this mode; ``--quick`` runs a subset of the same row keys
for CI smoke, so a quick run can be regression-checked against the
committed baseline with ``--check``.

The payload also carries an environment fingerprint (numpy version,
CPU count, thread env); ``--check`` warns (never fails) when the
fingerprint differs from the baseline's, so stale-baseline drift is
visible without breaking CI on heterogeneous runners.

Usage::

    PYTHONPATH=src python benchmarks/bench_batch.py
    PYTHONPATH=src python benchmarks/bench_batch.py --quick \
        --out /tmp/bench.json --check BENCH_batch.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np

from repro import get_stencil
from repro.api import RunConfig, Session

SCHEMA = "bench-batch/1"

#: (name, kernel, shape, steps, b, Ns, quick)
WORKLOADS = [
    ("fig8-heat1d", "heat1d", (4000,), 16, 4, (1, 8, 32), True),
    ("fig10-heat2d", "heat2d", (96, 96), 8, 4, (1, 8, 32), False),
    ("fig9-life", "life", (64, 64), 8, 4, (1, 32), False),
]

#: which Ns the quick mode runs (a subset of the full rows, so quick
#: runs are checkable against the committed full baseline)
QUICK_NS = (1, 8)


def env_fingerprint():
    """The measurement environment: enough to spot stale baselines."""
    return {
        "numpy": np.__version__,
        "cpus": os.cpu_count(),
        "threads_env": {
            k: os.environ[k]
            for k in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS",
                      "MKL_NUM_THREADS")
            if k in os.environ
        },
    }


def _min_of_k(run, repeat, warmup):
    for _ in range(warmup):
        run()
    best, out = float("inf"), None
    for _ in range(repeat):
        t0 = time.perf_counter()
        got = run()
        dt = time.perf_counter() - t0
        if dt < best:
            best, out = dt, got
    return best, out


def bench_workload(name, kernel, shape, steps, b, n, repeat, warmup):
    session = Session(get_stencil(kernel))
    base = RunConfig(shape=shape, steps=steps, b=b, seed=0,
                     backend="compiled", engine="compiled")
    batch_cfg = base.with_overrides({"backend": "batched", "batch": n})

    def loop_run():
        outs = []
        for i in range(n):
            cfg = base.with_overrides({"seed": base.seed + i})
            outs.append(np.array(session.run(cfg).interior, copy=True))
        return outs

    def batch_run():
        return [np.array(r.interior, copy=True)
                for r in session.run_many(batch_cfg)]

    loop_s, loop_out = _min_of_k(loop_run, repeat, warmup)
    batch_s, batch_out = _min_of_k(batch_run, repeat, warmup)
    identical = all(
        np.array_equal(a, c) and a.tobytes() == c.tobytes()
        for a, c in zip(loop_out, batch_out)
    )
    return {
        "name": name,
        "kernel": kernel,
        "shape": list(shape),
        "steps": steps,
        "b": b,
        "n": n,
        "loop_s": loop_s,
        "batched_s": batch_s,
        "loop_ips": n / loop_s if loop_s > 0 else 0.0,
        "batched_ips": n / batch_s if batch_s > 0 else 0.0,
        "speedup": loop_s / batch_s if batch_s > 0 else 0.0,
        "identical": identical,
    }


def _row_key(row):
    return (row["name"], row["n"])


def _annotate_vs_n1(rows):
    """Attach the acceptance metric: batched instances/sec at this N
    over the same workload's N=1 loop throughput."""
    n1_ips = {r["name"]: r["loop_ips"] for r in rows if r["n"] == 1}
    for row in rows:
        base = n1_ips.get(row["name"])
        row["speedup_vs_n1"] = (
            row["batched_ips"] / base if base else 0.0)


def check_regression(rows, env, baseline_path, tolerance):
    with open(baseline_path) as fh:
        base = json.load(fh)
    base_env = base.get("env")
    if base_env is not None and base_env != env:
        print(f"WARNING: environment fingerprint differs from "
              f"{baseline_path}: baseline {base_env}, current {env} "
              f"(speedup ratios are still compared; absolute numbers "
              f"are not comparable)", file=sys.stderr)
    base_rows = {_row_key(r): r for r in base.get("rows", [])}
    compared, failures = 0, []
    for row in rows:
        ref = base_rows.get(_row_key(row))
        if ref is None:
            continue
        compared += 1
        floor = (1.0 - tolerance) * ref["speedup"]
        if row["speedup"] < floor:
            failures.append(
                f"  {row['name']} (n={row['n']}): speedup "
                f"{row['speedup']:.2f}x < {floor:.2f}x "
                f"(baseline {ref['speedup']:.2f}x - {tolerance:.0%})")
    if compared == 0:
        print(f"regression check: no rows in common with {baseline_path}",
              file=sys.stderr)
        return False
    if failures:
        print(f"regression check FAILED vs {baseline_path}:",
              file=sys.stderr)
        for f in failures:
            print(f, file=sys.stderr)
        return False
    print(f"regression check OK: {compared} row(s) within "
          f"{tolerance:.0%} of {baseline_path}")
    return True


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke: fig8-class workload at small N only")
    ap.add_argument("--out", default="BENCH_batch.json",
                    help="output JSON path (default: %(default)s)")
    ap.add_argument("--repeat", type=int, default=None,
                    help="min-of-k repeats (default: 3, quick: 2)")
    ap.add_argument("--check", metavar="BASELINE",
                    help="compare speedups against a baseline JSON")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed speedup regression (default: 0.25)")
    args = ap.parse_args(argv)
    repeat = args.repeat or (2 if args.quick else 3)

    rows = []
    for name, kernel, shape, steps, b, ns, quick in WORKLOADS:
        if args.quick and not quick:
            continue
        for n in ns:
            if args.quick and n not in QUICK_NS:
                continue
            row = bench_workload(name, kernel, shape, steps, b, n,
                                 repeat, warmup=1)
            rows.append(row)
            flag = "" if row["identical"] else "  ** MISMATCH **"
            print(f"{name:16s} n={n:3d}  "
                  f"loop {row['loop_s'] * 1e3:9.1f} ms  "
                  f"batched {row['batched_s'] * 1e3:8.1f} ms  "
                  f"{row['speedup']:6.1f}x{flag}")
    _annotate_vs_n1(rows)

    env = env_fingerprint()
    payload = {
        "schema": SCHEMA,
        "quick": bool(args.quick),
        "repeat": repeat,
        "env": env,
        "rows": rows,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out} ({len(rows)} row(s))")

    ok = all(r["identical"] for r in rows)
    if not ok:
        print("FAILED: batched results are not bit-identical",
              file=sys.stderr)
    if args.check:
        ok = check_regression(rows, env, args.check, args.tolerance) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
