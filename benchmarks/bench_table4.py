"""Table 4 — problem sizes and blockings (paper vs scaled).

Prints the benchmark configurations used throughout the figure
experiments, with the scaling rules that map them to the paper's.
"""

from repro.bench.experiments import table4_problems
from repro.bench.problems import PROBLEMS


def test_table4(benchmark, capsys):
    out = benchmark.pedantic(table4_problems, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n[Table 4]")
        print(out)
    assert len(PROBLEMS) == 7
    for cfg in PROBLEMS.values():
        assert cfg.paper_size in out
        # every tessellation depth must respect the geometry: the
        # smallest axis must hold at least one full period
        spec_dims = len(cfg.shape)
        assert len(cfg.tess_core_widths) == spec_dims
