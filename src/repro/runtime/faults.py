"""Deterministic, seeded fault injection for schedule executors.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries, each
naming *where* a fault fires (barrier group — or exchange-stage
counter in the distributed simulator — plus an optional task/rank
index) and *how often* (``max_hits``; 1 = transient, larger values
model persistent failures).  Executors consult the plan at
well-defined probe points:

* :meth:`FaultPlan.crash_fault` — before running a task's actions;
  a hit raises :class:`~repro.runtime.errors.InjectedFault`;
* :meth:`FaultPlan.stall_fault` — before running a task; a hit makes
  the worker sleep ``stall_s`` seconds (tripping any policy deadline);
* :meth:`FaultPlan.corrupt_fault` — after a task's actions; a hit
  poisons the task's written regions with NaN (silent data
  corruption — only the group-level guard sweep can see it);
* :meth:`FaultPlan.exchange_fault` — per source rank at each
  distributed stage exchange; ``drop`` skips the boundary-band copy,
  ``garble`` delivers NaN instead of the authoritative values;
* :meth:`FaultPlan.kill_fault` / :meth:`FaultPlan.stall_rank_fault` —
  per rank at each stage of the *process* runtime
  (:mod:`repro.distributed.worker`); a ``kill_rank`` hit makes the
  rank process exit hard, a ``stall_rank`` hit makes it sleep long
  enough to trip the coordinator's straggler watchdog;
* :meth:`FaultPlan.send_fault` — per source rank at each process-
  runtime band send; ``drop_msg`` suppresses the message (the receiver
  times out and requests a retransmit), ``flip_bits`` flips payload
  bits *after* the CRC is computed (the receiver detects the mismatch
  and requests a retransmit).

Hit bookkeeping is thread-safe (tasks of one barrier group probe the
plan concurrently) and *deterministic*: given the same plan, the same
faults fire at the same probe points in every run, which is what makes
"recovered run is bit-identical to fault-free run" a testable
property.  :meth:`FaultPlan.reset` re-arms the plan so one instance
can drive both runs of such a comparison.

Process faults and respawns: each rank process owns its (inherited)
copy of the plan, so hit counters do not survive a rank being killed
and respawned.  :meth:`FaultPlan.preburn_rank_lifecycle` restores
determinism: a respawned rank burns one hit of its earliest armed
``kill_rank``/``stall_rank`` fault per prior incarnation, so a
transient kill fires exactly once across the whole elastic run instead
of re-killing every incarnation.  :meth:`FaultPlan.random_process`
samples chaos plans from *per-rank substreams*
(``default_rng([seed, rank])``), so one rank's fault draw is
independent of how many ranks exist and stable across respawns.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.errors import InjectedFault

#: Fault kinds understood by the shared-memory executors.
TASK_KINDS = ("crash", "corrupt", "stall")
#: Fault kinds understood by the distributed simulator's exchange.
EXCHANGE_KINDS = ("drop", "garble")
#: Fault kinds understood by the elastic process runtime
#: (:mod:`repro.distributed.elastic`): ``kill_rank`` exits the rank
#: process, ``stall_rank`` wedges it, ``drop_msg`` suppresses a band
#: send, ``flip_bits`` corrupts a band payload after its CRC.
PROCESS_KINDS = ("kill_rank", "stall_rank", "drop_msg", "flip_bits")
#: Process kinds that end (kill) or wedge (stall) a rank's incarnation.
LIFECYCLE_KINDS = ("kill_rank", "stall_rank")
ALL_KINDS = TASK_KINDS + EXCHANGE_KINDS + PROCESS_KINDS

_SPEC_RE = re.compile(
    r"^(crash|corrupt|stall|drop|garble"
    r"|kill_rank|stall_rank|drop_msg|flip_bits)"
    r"@(\d+)(?:/(\d+))?(?:x(\d+))?$"
)

#: ``stall_rank`` sleep when the spec does not say otherwise: long
#: enough that any sane straggler watchdog fires first (the coordinator
#: SIGKILLs the sleeping process, so the duration is a backstop, not a
#: wait the run actually serves).
DEFAULT_RANK_STALL_S = 30.0


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    ``group`` is the barrier-group index (shared-memory executors) or
    the global exchange-stage counter (distributed simulator).
    ``task`` is the task index within the group — or the *source rank*
    for exchange faults — with ``None`` matching any.  ``max_hits``
    bounds how many times the fault fires before burning out: 1 is a
    transient fault (a retry succeeds), a large value models a
    persistent failure.
    """

    kind: str
    group: int
    task: Optional[int] = None
    max_hits: int = 1
    stall_s: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {ALL_KINDS}"
            )
        if self.group < 0:
            raise ValueError(f"fault group must be >= 0, got {self.group}")
        if self.max_hits < 1:
            raise ValueError(f"max_hits must be >= 1, got {self.max_hits}")

    def describe(self) -> str:
        where = f"@{self.group}" + ("" if self.task is None else f"/{self.task}")
        hits = "" if self.max_hits == 1 else f"x{self.max_hits}"
        return f"{self.kind}{where}{hits}"


@dataclass
class FaultHit:
    """Log entry: one fault that actually fired."""

    kind: str
    group: int
    task: Optional[int]
    hit_number: int


class FaultPlan:
    """A deterministic set of planned faults plus hit bookkeeping."""

    def __init__(self, faults: Iterable[FaultSpec] = ()):
        self.faults: List[FaultSpec] = list(faults)
        self._hits = [0] * len(self.faults)
        self._lock = threading.Lock()
        self.log: List[FaultHit] = []

    # -- construction ------------------------------------------------

    @classmethod
    def parse(cls, specs: Sequence[str]) -> "FaultPlan":
        """Build a plan from CLI-style strings.

        Grammar: ``kind@group[/task][xN]`` with kind one of
        ``crash|corrupt|stall|drop|garble`` (shared-memory / simulated
        paths) or ``kill_rank|stall_rank|drop_msg|flip_bits`` (process
        runtime — ``group`` is the global stage counter, ``/task`` the
        rank); ``/task`` selects a task (or source rank) index, ``xN``
        sets ``max_hits`` (default 1).  Examples: ``crash@2``,
        ``corrupt@0/3``, ``drop@1x999``, ``kill_rank@3/1``.
        """
        out = []
        for s in specs:
            m = _SPEC_RE.match(s.strip())
            if not m:
                raise ValueError(
                    f"bad fault spec {s!r}; expected kind@group[/task][xN] "
                    f"with kind in {ALL_KINDS}"
                )
            kind, group, task, hits = m.groups()
            out.append(FaultSpec(
                kind=kind,
                group=int(group),
                task=None if task is None else int(task),
                max_hits=1 if hits is None else int(hits),
                stall_s=(DEFAULT_RANK_STALL_S if kind == "stall_rank"
                         else 0.05),
            ))
        return cls(out)

    @classmethod
    def random(
        cls,
        num_groups: int,
        rate: float = 0.1,
        seed: int = 0,
        kinds: Sequence[str] = ("crash", "corrupt"),
        max_task: int = 0,
        stall_s: float = 0.02,
    ) -> "FaultPlan":
        """Sample transient faults with ``rate`` per barrier group.

        Deterministic in ``seed``: the property-style tests sweep seeds
        and assert recovery to bit-identical results for each.
        ``max_task`` bounds the sampled task index (0 pins task 0 —
        always present in non-empty groups).
        """
        rng = np.random.default_rng(seed)
        faults = []
        for g in range(num_groups):
            if rng.random() < rate:
                kind = str(rng.choice(list(kinds)))
                task = int(rng.integers(0, max_task + 1))
                faults.append(FaultSpec(kind=kind, group=g, task=task,
                                        stall_s=stall_s))
        return cls(faults)

    @classmethod
    def random_process(
        cls,
        num_stages: int,
        ranks: int,
        rate: float = 0.1,
        seed: int = 0,
        kinds: Sequence[str] = PROCESS_KINDS,
        stall_s: float = DEFAULT_RANK_STALL_S,
    ) -> "FaultPlan":
        """Sample a chaos plan for the elastic process runtime.

        Each rank draws its faults from its own substream
        (``default_rng([seed, rank])``), so rank ``r``'s faults are
        identical whether the run has 2 ranks or 200, and identical in
        every incarnation of a respawned rank — the property that makes
        recovery deterministic across respawns.
        """
        bad = [k for k in kinds if k not in PROCESS_KINDS]
        if bad:
            raise ValueError(
                f"random_process kinds must be in {PROCESS_KINDS}, got {bad}"
            )
        faults = []
        for r in range(ranks):
            rng = np.random.default_rng([seed, r])
            for g in range(num_stages):
                if rng.random() < rate:
                    kind = str(rng.choice(list(kinds)))
                    faults.append(FaultSpec(kind=kind, group=g, task=r,
                                            stall_s=stall_s))
        return cls(faults)

    # -- bookkeeping -------------------------------------------------

    def reset(self) -> None:
        """Re-arm every fault (clears hit counters and the log)."""
        with self._lock:
            self._hits = [0] * len(self.faults)
            self.log = []

    @property
    def total_hits(self) -> int:
        with self._lock:
            return sum(self._hits)

    def hits_of_kind(self, kind: str) -> int:
        with self._lock:
            return sum(1 for h in self.log if h.kind == kind)

    def _fire(self, kinds: Tuple[str, ...], group: int,
              task: Optional[int]) -> Optional[FaultSpec]:
        """Consume and return the first armed matching fault, if any."""
        with self._lock:
            for i, f in enumerate(self.faults):
                if f.kind not in kinds or f.group != group:
                    continue
                if f.task is not None and task is not None and f.task != task:
                    continue
                if self._hits[i] >= f.max_hits:
                    continue
                self._hits[i] += 1
                self.log.append(FaultHit(f.kind, group, task, self._hits[i]))
                return f
        return None

    # -- probe points ------------------------------------------------

    def crash_fault(self, group: int, task: int) -> Optional[FaultSpec]:
        return self._fire(("crash",), group, task)

    def stall_fault(self, group: int, task: int) -> Optional[FaultSpec]:
        return self._fire(("stall",), group, task)

    def corrupt_fault(self, group: int, task: int) -> Optional[FaultSpec]:
        return self._fire(("corrupt",), group, task)

    def exchange_fault(self, stage: int, src: int) -> Optional[FaultSpec]:
        return self._fire(("drop", "garble"), stage, src)

    def kill_fault(self, stage: int, rank: int) -> Optional[FaultSpec]:
        return self._fire(("kill_rank",), stage, rank)

    def stall_rank_fault(self, stage: int, rank: int) -> Optional[FaultSpec]:
        return self._fire(("stall_rank",), stage, rank)

    def send_fault(self, stage: int, src: int) -> Optional[FaultSpec]:
        return self._fire(("drop_msg", "flip_bits"), stage, src)

    def preburn_rank_lifecycle(self, rank: int, incarnations: int) -> int:
        """Burn hits a rank's earlier incarnations already consumed.

        A respawned rank process starts with a fresh copy of the plan
        (hit counters do not survive the old process), yet each prior
        incarnation of this rank ended by consuming exactly one
        ``kill_rank``/``stall_rank`` hit.  Burning ``incarnations``
        hits — earliest armed lifecycle fault first, matching the order
        :meth:`_fire` consumes them — realigns the fresh plan with the
        run's history, so a transient kill does not re-kill every
        respawn while a persistent ``xN`` kill still fires ``N`` times.
        Returns the number of hits actually burned.
        """
        burned = 0
        with self._lock:
            remaining = incarnations
            for i, f in enumerate(self.faults):
                if remaining <= 0:
                    break
                if f.kind not in LIFECYCLE_KINDS:
                    continue
                if f.task is not None and f.task != rank:
                    continue
                take = min(remaining, f.max_hits - self._hits[i])
                if take > 0:
                    self._hits[i] += take
                    remaining -= take
                    burned += take
        return burned

    def raise_if_crash(self, group: int, task: int) -> None:
        """Convenience probe: raise :class:`InjectedFault` on a hit."""
        f = self.crash_fault(group, task)
        if f is not None:
            raise InjectedFault("crash", group, task)

    def describe(self) -> str:
        if not self.faults:
            return "no faults"
        return ", ".join(f.describe() for f in self.faults)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultPlan({self.describe()})"


def poison_task_output(grid, task) -> int:
    """Overwrite a task's written regions with NaN (silent corruption).

    Models a worker returning garbage: every point the task wrote — at
    every time level it advanced — is replaced with NaN in the
    corresponding ping-pong buffer.  Returns the number of poisoned
    points.  Integer grids cannot represent NaN; callers treat
    ``corrupt`` as ``crash`` for those (see ``execute_resilient``).
    """
    poisoned = 0
    for a in task.actions:
        dst = grid.at(a.t + 1)
        idx = tuple(slice(lo + h, hi + h)
                    for (lo, hi), h in zip(a.region, grid.spec.halo))
        dst[idx] = np.nan
        poisoned += a.points
    return poisoned
