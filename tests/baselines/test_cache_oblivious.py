"""Tests for the Pochoir-style cache-oblivious trapezoid decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.cache_oblivious import (
    Trap,
    _try_space_cut,
    trapezoid_schedule,
)
from repro.runtime import schedule_stats, verify_schedule
from repro.stencils import (
    d1p5,
    d2p9,
    d3p27,
    game_of_life,
    heat1d,
    heat2d,
    heat3d,
)


class TestTrap:
    def test_interval_motion(self):
        tr = Trap(2, 1, 10, -1)
        assert tr.at(0) == (2, 10)
        assert tr.at(3) == (5, 7)

    def test_validity(self):
        assert Trap(0, 0, 4, 0).valid(3)
        assert not Trap(0, 2, 4, -2).valid(3)  # crosses over


class TestSpaceCut:
    def test_declines_narrow(self):
        assert _try_space_cut(Trap(0, 0, 10, 0), h=8, sigma=1,
                              base_width=4) is None

    def test_cut_produces_valid_pair(self):
        tr = Trap(0, 0, 100, 0)
        pieces = _try_space_cut(tr, h=5, sigma=1, base_width=4)
        assert pieces is not None
        closing, opening = pieces
        assert closing.valid(5) and opening.valid(5)
        assert closing.x1 == opening.x0  # shared cut line
        assert closing.dx1 == -1 and opening.dx0 == -1

    def test_cut_respects_slope(self):
        pieces = _try_space_cut(Trap(0, 0, 200, 0), h=5, sigma=2,
                                base_width=4)
        assert pieces[0].dx1 == -2


class TestScheduleValidity:
    @pytest.mark.parametrize("factory,shape", [
        (heat1d, (60,)), (d1p5, (80,)),
        (heat2d, (28, 26)), (d2p9, (24, 25)), (game_of_life, (22, 22)),
        (heat3d, (14, 13, 12)), (d3p27, (12, 12, 12)),
    ])
    def test_all_kernels(self, factory, shape):
        spec = factory()
        sched = trapezoid_schedule(spec, shape, 7, base_dt=2,
                                   base_widths=(8,) * spec.ndim)
        assert verify_schedule(spec, sched)

    @given(st.integers(20, 90), st.integers(0, 15), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_random_1d(self, n, steps, base_dt):
        spec = heat1d()
        sched = trapezoid_schedule(spec, (n,), steps, base_dt=base_dt)
        assert verify_schedule(spec, sched, seed=n)

    def test_work_conservation(self):
        spec = heat2d()
        sched = trapezoid_schedule(spec, (30, 32), 9, base_dt=3)
        st = schedule_stats(sched)
        assert st["total_point_updates"] == 30 * 32 * 9
        assert st["redundancy"] == 0.0

    def test_recursion_produces_many_groups(self):
        """The structural barrier count grows with the recursion — the
        synchronisation overhead of §2.2."""
        spec = heat2d()
        sched = trapezoid_schedule(spec, (64, 64), 16, base_dt=2,
                                   base_widths=(8, 8))
        assert sched.num_groups > 16  # far more than one per step? no:
        # at least one group per time level is unavoidable; recursion
        # adds the space-cut group layers on top

    def test_zero_steps(self):
        spec = heat1d()
        sched = trapezoid_schedule(spec, (20,), 0)
        assert sched.tasks == []

    def test_bad_args(self):
        spec = heat1d()
        with pytest.raises(ValueError):
            trapezoid_schedule(spec, (20,), -1)
        with pytest.raises(ValueError):
            trapezoid_schedule(spec, (20,), 4, base_dt=0)
        with pytest.raises(ValueError):
            trapezoid_schedule(spec, (20, 20), 4)

    def test_time_cut_only_when_narrow(self):
        """A domain narrower than any cut threshold still decomposes
        (pure time cuts down to the base case)."""
        spec = heat1d()
        sched = trapezoid_schedule(spec, (6,), 9, base_dt=2,
                                   base_widths=(64,))
        assert verify_schedule(spec, sched)
        # no spatial parallelism possible: every group is one task
        assert all(len(ts) == 1 for ts in sched.groups().values())
