"""Session pipeline: staging, artifact reuse, verification, errors."""

import numpy as np
import pytest

from repro.api import RunConfig, Session, execute, run
from repro.api.backends import BackendUnsupported, get_backend
from repro.stencils import Grid, heat1d, heat2d, reference_sweep

pytestmark = pytest.mark.api


class TestPipelineStages:
    def test_build_returns_artifacts(self):
        session = Session(heat2d())
        built = session.build(RunConfig(shape=(32, 32), steps=8,
                                        scheme="tess", b=4))
        assert built.schedule.steps == 8
        assert built.lattice is not None
        assert built.params == RunConfig(b=4).tile_params()

    def test_execute_reuses_prebuilt_schedule(self):
        """Session.execute on a prebuilt schedule matches Session.run
        and records the schedule's own scheme/shape/steps in the
        stats, whatever the config said."""
        spec = heat2d()
        session = Session(spec)
        cfg = RunConfig(shape=(32, 32), steps=8, scheme="tess", b=4)
        built = session.build(cfg)
        result = session.execute(Grid(spec, (32, 32), seed=0),
                                 built.schedule,
                                 config=RunConfig(steps=999, scheme="naive"))
        ref = session.run(cfg).interior
        assert np.array_equal(ref, result.interior)
        assert result.stats.scheme == built.schedule.scheme
        assert result.stats.steps == 8

    def test_lower_goes_through_the_cache(self):
        from repro.engine.cache import PlanCache

        session = Session(heat2d(), cache=PlanCache())
        built = session.build(RunConfig(shape=(32, 32), steps=8, b=4))
        plan1 = session.lower(built.schedule, built.params)
        plan2 = session.lower(built.schedule, built.params)
        assert plan1 is plan2
        assert session.cache.stats.misses == 1
        assert session.cache.stats.hits == 1

    def test_default_shape_used_when_unset(self):
        result = Session(heat1d()).run(RunConfig(steps=4, b=4))
        assert result.stats.shape == Session(heat1d()).default_shape()


class TestVerification:
    def test_ok_requires_verify(self):
        result = Session(heat2d()).run(
            RunConfig(shape=(24, 24), steps=4, b=4))
        assert result.stats.verified is None
        with pytest.raises(ValueError, match="verify"):
            result.ok

    def test_verify_checks_against_reference(self):
        spec = heat2d()
        result = Session(spec).run(
            RunConfig(shape=(24, 24), steps=4, b=4, verify=True))
        assert result.ok
        ref = reference_sweep(spec, Grid(spec, (24, 24), seed=0), 4)
        assert np.array_equal(ref, result.interior)


class TestSanitize:
    def test_clean_schedule_reports(self):
        result = Session(heat2d()).run(
            RunConfig(shape=(32, 32), steps=8, b=4, sanitize=True))
        assert result.sanitizer is not None
        assert not result.sanitizer.violations
        assert "sanitize" in result.stats.phases

    def test_mutated_schedule_raises(self):
        from repro.runtime.errors import SanitizerViolation

        with pytest.raises(SanitizerViolation):
            Session(heat2d()).run(
                RunConfig(shape=(32, 32), steps=8, b=4, sanitize=True,
                          mutations=("drop-action@0",)))


class TestErrors:
    def test_unknown_backend_lists_registry(self):
        with pytest.raises(ValueError, match="registered backends"):
            get_backend("gpu")

    def test_unsupported_cell_is_typed(self):
        with pytest.raises(BackendUnsupported) as excinfo:
            Session(heat1d()).run(
                RunConfig(shape=(48,), steps=4, b=4, scheme="diamond",
                          backend="distributed"))
        assert excinfo.value.backend == "distributed"

    def test_engine_compiled_on_plan_blind_backend(self):
        """A backend that cannot consume a plan refuses engine=compiled
        instead of silently ignoring the lowering."""
        with pytest.raises(BackendUnsupported):
            Session(heat1d()).run(
                RunConfig(shape=(48,), steps=4, b=4, scheme="tess",
                          backend="baseline:blocked", engine="compiled"))


class TestEngineResolution:
    def test_auto_is_naive_for_serial(self):
        result = Session(heat2d()).run(
            RunConfig(shape=(24, 24), steps=4, b=4, backend="serial"))
        assert result.stats.engine == "naive"
        assert result.plan is None

    def test_auto_is_compiled_for_compiled(self):
        result = Session(heat2d()).run(
            RunConfig(shape=(24, 24), steps=4, b=4, backend="compiled"))
        assert result.stats.engine == "compiled"
        assert result.plan is not None

    def test_explicit_compiled_on_serial(self):
        """serial consumes a plan when asked — same bits, engine
        recorded as compiled."""
        session = Session(heat2d())
        naive = session.run(
            RunConfig(shape=(24, 24), steps=4, b=4, backend="serial"))
        lowered = session.run(
            RunConfig(shape=(24, 24), steps=4, b=4, backend="serial",
                      engine="compiled"))
        assert lowered.stats.engine == "compiled"
        assert np.array_equal(naive.interior, lowered.interior)


class TestModuleLevelHelpers:
    def test_run_overrides(self):
        result = run(heat2d(), shape=(24, 24), steps=4, b=4, verify=True)
        assert result.ok

    def test_execute_prebuilt(self):
        spec = heat2d()
        session = Session(spec)
        built = session.build(RunConfig(shape=(24, 24), steps=4, b=4))
        result = execute(spec, Grid(spec, (24, 24), seed=0), built.schedule)
        ref = session.run(RunConfig(shape=(24, 24), steps=4, b=4)).interior
        assert np.array_equal(ref, result.interior)
