"""Ablation A3 — §4.3 merging of B_d and B_0 on/off (Heat-2D)."""

from conftest import render_result

from repro.bench.experiments import ablation_merge


def test_merge_ablation(benchmark, capsys):
    fr = benchmark.pedantic(
        ablation_merge, kwargs={"cores": (1, 24)}, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(render_result(fr))
    m, u = fr.at("tess", 24), fr.at("tess-unmerged", 24)
    assert m.barriers < u.barriers
    assert m.time_s <= u.time_s * 1.02
