"""Multi-stage stencil systems: a StagedSpec DAG over named fields.

One :class:`~repro.stencils.spec.StencilSpec` describes one update
formula over one array.  Real time-stepped systems — FDTD
electromagnetics, shallow-water flow, reaction–diffusion — update
*several* arrays per time step, each by its own atomic formula, some
reading values the *same* step already produced (the Gauss–Seidel-style
half-step coupling of a Yee scheme).  This module decomposes such a
system into an ordered tuple of :class:`Stage` objects over named
fields and packages the whole macro-step as a :class:`StagedSpec` that
duck-types (in fact subclasses) ``StencilSpec``, so every layer of the
existing pipeline — builder, sanitizer, schedules, compiled engine,
batched serving — runs it unchanged.

Representation
--------------
Grid buffers gain a leading *field* axis: a staged grid is one
``[F, *padded]`` array per ping-pong parity, field ``f`` of global time
``t`` living at ``buffers[t % 2][f]``.  One schedule action
``(t, region)`` advances **all** stages of the macro-step on ``region``
— so the ping-pong/two-buffer argument (paper Theorem 3.6) and every
tiling scheme's geometry apply verbatim, with the composed dependence
slopes below.

Composed geometry
-----------------
Stage reads are ``(field, offset, new)`` taps: ``new=False`` reads the
macro-step-start value (the ``t`` parity buffer), ``new=True`` reads
the value an *earlier* stage wrote this macro-step.  To produce stage
outputs correct on ``region``, each stage computes on a grown region::

    grow[s][j] = max over later stages t reading s's output
                 ( grow[t][j] + max |new-tap offset along j| )

(zero when nothing downstream reads the stage).  By construction
``grow[s] >= grow[t] + reach(t reads s)``, so every new-read lands
inside an earlier stage's grown region (or, after clipping to the
interior, in the scratch halo — which is kept zero, exactly the
Dirichlet value of intermediate fields outside the interior).  The
grown intermediates live in a per-thread zero-exterior scratch array;
only ``region`` of each written field is copied into the destination
parity, so same-step write-disjointness of a schedule is untouched and
redundant grown computation is deterministic-identical (the overlapped
tiling argument).

Seen from the outside, the macro-step is a plain Jacobi stencil whose
per-dimension slope is ``max_s(grow[s][j] + old-read slope of s)`` —
the union of downstream stage reaches the per-field halos derive from.
The sanitizer, every scheme builder and the schedule legality proofs
therefore hold for staged specs with no new interval language.
"""

from __future__ import annotations

import abc
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.stencils.operators import (
    LinearStencilOperator,
    StencilOperator,
    _region_slices,
)
from repro.stencils.spec import Region, StencilSpec, clip_region

__all__ = [
    "LinearStage",
    "Stage",
    "StagedOperator",
    "StagedSpec",
    "canonical_spec",
    "make_staged",
    "split_linear_spec",
    "stage_scratch",
    "stage_timings",
]

Offset = Tuple[int, ...]
#: one read tap: (field name, offset, new) — ``new`` reads the value an
#: earlier stage of the same macro-step wrote
Read = Tuple[str, Offset, bool]


# ---------------------------------------------------------------------------
# per-thread zero-exterior scratch
# ---------------------------------------------------------------------------

_scratch_tls = threading.local()


def stage_scratch(shape: Sequence[int], dtype) -> np.ndarray:
    """The calling thread's staged scratch buffer for ``shape``/``dtype``.

    Created zero-filled; every writer clips its region to the interior,
    so the halo (and any leading batch margin) stays zero across reuse —
    the invariant that makes new-reads beyond the interior read the
    Dirichlet value of intermediate fields.
    """
    store = getattr(_scratch_tls, "store", None)
    if store is None:
        store = _scratch_tls.store = {}
    key = (tuple(int(n) for n in shape), np.dtype(dtype).str)
    buf = store.get(key)
    if buf is None:
        buf = np.zeros(key[0], dtype=dtype)
        store[key] = buf
    return buf


# ---------------------------------------------------------------------------
# per-stage timing collector (armed by Session, thread-safe)
# ---------------------------------------------------------------------------

class _StageTimings:
    """Armed-only accumulator of per-stage execute seconds."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._armed = 0
        self._acc: Dict[str, float] = {}

    @property
    def armed(self) -> bool:
        return self._armed > 0

    def arm(self) -> None:
        with self._lock:
            self._armed += 1
            self._acc = {}

    def disarm(self) -> Dict[str, float]:
        with self._lock:
            self._armed = max(0, self._armed - 1)
            out, self._acc = self._acc, {}
            return out

    def record(self, name: str, seconds: float) -> None:
        with self._lock:
            self._acc[name] = self._acc.get(name, 0.0) + seconds


#: module-level collector; zero overhead unless a Session armed it
stage_timings = _StageTimings()


# ---------------------------------------------------------------------------
# stages
# ---------------------------------------------------------------------------

class Stage(abc.ABC):
    """One atomic update of a staged system: writes one field.

    ``reads`` lists the tap set as ``(field, offset, new)``; ``new``
    taps must read a field a strictly earlier stage writes.  The
    elementwise kernel :meth:`apply_stage` receives the gathered read
    views in ``reads`` order and must be layout-independent (region
    views, flat gathered 1-D arrays and leading-batch-axis arrays all
    produce bit-identical per-point results), which every pure-ufunc
    implementation is.
    """

    name: str
    writes: str
    reads: Tuple[Read, ...]

    @property
    def ndim(self) -> int:
        return len(self.reads[0][1])

    def old_slopes(self) -> Tuple[int, ...]:
        """Per-dimension max |offset| over macro-step-start reads."""
        offs = [o for _, o, new in self.reads if not new]
        return tuple(
            max((abs(o[j]) for o in offs), default=0)
            for j in range(self.ndim)
        )

    def new_reach(self, field: str) -> Optional[Tuple[int, ...]]:
        """Per-dim max |offset| of new-reads of ``field`` (None if none)."""
        offs = [o for f, o, new in self.reads if new and f == field]
        if not offs:
            return None
        return tuple(
            max(abs(o[j]) for o in offs) for j in range(self.ndim)
        )

    @property
    @abc.abstractmethod
    def flops_per_point(self) -> int:
        """Operations per point update (for the machine model)."""

    @abc.abstractmethod
    def apply_stage(self, out: np.ndarray, views: Sequence[np.ndarray],
                    arena=None) -> None:
        """``out[...] = f(views...)`` elementwise, in ``reads`` order."""

    def signature(self) -> Tuple:
        """Hashable structural identity (plan cache / idempotency keys)."""
        return (type(self).__name__, self.name, self.writes, self.reads)

    def to_operator(self) -> Optional[StencilOperator]:
        """Monolithic equivalent when one exists (1-stage unwrap hook)."""
        return None


class LinearStage(Stage):
    """Weighted-sum stage: ``out = sum_k c_k * read_k``.

    The accumulation is the first tap multiplied into the output
    followed by in-place ``out += view * c`` — exactly
    :meth:`LinearStencilOperator.apply`'s per-point float sequence, so
    a prefix split of a monolithic linear kernel recomposes
    bit-identically (``x * 1.0`` is exact, and the tail taps add in the
    original order).
    """

    def __init__(self, name: str, writes: str,
                 taps: Sequence[Tuple[str, Offset, float, bool]]):
        if not taps:
            raise ValueError(f"stage {name!r} needs at least one tap")
        self.name = str(name)
        self.writes = str(writes)
        self.taps = tuple(
            (str(f), tuple(int(c) for c in off), float(coeff), bool(new))
            for f, off, coeff, new in taps
        )
        ndims = {len(t[1]) for t in self.taps}
        if len(ndims) != 1:
            raise ValueError(f"stage {name!r}: mixed offset ranks")
        self.reads = tuple((f, off, new) for f, off, _, new in self.taps)
        self.coeffs = tuple(t[2] for t in self.taps)

    @property
    def flops_per_point(self) -> int:
        return 2 * len(self.taps) - 1

    def apply_stage(self, out, views, arena=None) -> None:
        np.multiply(views[0], self.coeffs[0], out=out)
        if len(views) == 1:
            return
        if arena is not None:
            tmp = arena.get("stage_tmp", out.size, out.dtype)
            tmp = tmp.reshape(out.shape)
            for v, c in zip(views[1:], self.coeffs[1:]):
                np.multiply(v, c, out=tmp)
                np.add(out, tmp, out=out)
        else:
            for v, c in zip(views[1:], self.coeffs[1:]):
                out += v * c

    def signature(self) -> Tuple:
        return (type(self).__name__, self.name, self.writes, self.taps)

    def to_operator(self) -> Optional[StencilOperator]:
        fields = {f for f, _, _, _ in self.taps}
        if fields != {self.writes} or any(new for *_, new in self.taps):
            return None
        return LinearStencilOperator(
            offsets=[off for _, off, _, _ in self.taps],
            coeffs=list(self.coeffs),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LinearStage({self.name!r} -> {self.writes!r}, "
                f"{len(self.taps)} taps)")


# ---------------------------------------------------------------------------
# the composed macro-step operator
# ---------------------------------------------------------------------------

def _star_offsets_for(slopes: Sequence[int]) -> Tuple[Offset, ...]:
    """Centre plus ±1..±slope per axis — covers the composed reach."""
    nd = len(slopes)
    offs = [(0,) * nd]
    for j, s in enumerate(slopes):
        for k in range(1, int(s) + 1):
            for sgn in (-1, 1):
                o = [0] * nd
                o[j] = sgn * k
                offs.append(tuple(o))
    return tuple(offs)


class StagedOperator(StencilOperator):
    """Applies one whole macro-step (all stages, in order) to a region.

    ``src``/``dst`` are ``[F, *padded]`` parity buffers; the grown
    intermediates go through the calling thread's zero-exterior scratch
    (:func:`stage_scratch`) and only ``region`` of each written field is
    copied into ``dst``.
    """

    def __init__(self, stages: Sequence[Stage], fields: Tuple[str, ...],
                 grow: Tuple[Tuple[int, ...], ...],
                 slopes: Tuple[int, ...], dtype=np.float64):
        self.stages = tuple(stages)
        self.fields = fields
        self.field_index = {f: i for i, f in enumerate(fields)}
        self.grow = grow
        self._slopes = tuple(int(s) for s in slopes)
        self._dtype = np.dtype(dtype)
        super().__init__(_star_offsets_for(self._slopes))

    @property
    def slopes(self) -> Tuple[int, ...]:
        return self._slopes

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    @property
    def flops_per_point(self) -> int:
        return sum(st.flops_per_point for st in self.stages)

    def apply(self, src, dst, region, halo) -> None:
        nd = self.ndim
        interior = tuple(
            int(n) - 2 * int(h) for n, h in zip(src.shape[1:], halo)
        )
        scr = stage_scratch(src.shape, self._dtype)
        timed = stage_timings.armed
        for st, grow in zip(self.stages, self.grow):
            t0 = time.perf_counter() if timed else 0.0
            g = clip_region(
                tuple((lo - gr, hi + gr)
                      for (lo, hi), gr in zip(region, grow)),
                interior,
            )
            out = scr[(self.field_index[st.writes],)
                      + _region_slices(g, halo, (0,) * nd)]
            views = [
                (scr if new else src)[(self.field_index[f],)
                                      + _region_slices(g, halo, off)]
                for f, off, new in st.reads
            ]
            st.apply_stage(out, views)
            if timed:
                stage_timings.record(st.name, time.perf_counter() - t0)
        out_sl = _region_slices(region, halo, (0,) * nd)
        for f in range(len(self.fields)):
            np.copyto(dst[(f,) + out_sl], scr[(f,) + out_sl])

    def apply_wrapped(self, src: np.ndarray) -> np.ndarray:
        raise NotImplementedError(
            "staged systems support Dirichlet boundaries only"
        )


# ---------------------------------------------------------------------------
# the spec
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StagedSpec(StencilSpec):
    """A multi-stage system as a drop-in :class:`StencilSpec`.

    Build through :func:`make_staged`.  ``ndim`` stays the *spatial*
    rank; buffers gain a leading field axis, which
    :meth:`padded_shape` / :meth:`interior_slices` account for — every
    consumer that goes through those two methods (grids, checkpoints,
    the batch stacker, the QoS byte estimator) is staged-ready with no
    further changes.
    """

    fields: Tuple[str, ...] = ()

    @property
    def is_staged(self) -> bool:
        return True

    @property
    def stages(self) -> Tuple[Stage, ...]:
        return self.operator.stages

    @property
    def num_fields(self) -> int:
        return len(self.fields)

    def field_index(self, name: str) -> int:
        return self.operator.field_index[name]

    def padded_shape(self, shape: Sequence[int]) -> Tuple[int, ...]:
        return (len(self.fields),) + super().padded_shape(shape)

    def interior_slices(self, shape: Sequence[int]) -> Tuple[slice, ...]:
        return (slice(None),) + super().interior_slices(shape)

    def describe(self) -> str:
        chain = " -> ".join(st.name for st in self.stages)
        return (
            f"{self.name}: {self.ndim}D staged system, "
            f"{len(self.stages)} stages ({chain}), fields="
            f"{'/'.join(self.fields)}, composed slopes={self.slopes}, "
            f"{self.flops_per_point} flops/pt, {self.boundary} boundary"
        )


def _compute_grow(stages: Sequence[Stage], nd: int
                  ) -> Tuple[Tuple[int, ...], ...]:
    """Backward recursion of the grown-region vectors (module docstring)."""
    n = len(stages)
    grow: list = [None] * n
    for s in range(n - 1, -1, -1):
        g = [0] * nd
        for t in range(s + 1, n):
            reach = stages[t].new_reach(stages[s].writes)
            if reach is None:
                continue
            for j in range(nd):
                g[j] = max(g[j], grow[t][j] + reach[j])
        grow[s] = tuple(g)
    return tuple(grow)


def make_staged(name: str, stages: Sequence[Stage],
                dtype=np.float64) -> StagedSpec:
    """Validate a stage tuple and build its :class:`StagedSpec`.

    Every field must be written by exactly one stage (a macro-step
    carries the whole state forward), new-reads must name a field a
    strictly earlier stage writes, and all stages must share one
    spatial rank.
    """
    stages = tuple(stages)
    if not stages:
        raise ValueError("a staged spec needs at least one stage")
    nd = stages[0].ndim
    if any(st.ndim != nd for st in stages):
        raise ValueError("all stages must share one spatial rank")
    fields = tuple(st.writes for st in stages)
    if len(set(fields)) != len(fields):
        dup = sorted({f for f in fields if fields.count(f) > 1})
        raise ValueError(f"fields written by more than one stage: {dup}")
    written_before: set = set()
    known = set(fields)
    for st in stages:
        for f, off, new in st.reads:
            if f not in known:
                raise ValueError(
                    f"stage {st.name!r} reads unknown field {f!r} "
                    f"(fields: {sorted(known)})"
                )
            if new and f not in written_before:
                raise ValueError(
                    f"stage {st.name!r} new-reads {f!r}, which no "
                    f"earlier stage writes — stages must be in "
                    f"dependence order"
                )
        written_before.add(st.writes)
    grow = _compute_grow(stages, nd)
    olds = [st.old_slopes() for st in stages]
    slopes = tuple(
        max(grow[i][j] + olds[i][j] for i in range(len(stages)))
        for j in range(nd)
    )
    op = StagedOperator(stages, fields, grow, slopes, dtype=dtype)
    return StagedSpec(name=name, ndim=nd, operator=op, shape="custom",
                      boundary="dirichlet", fields=fields)


# ---------------------------------------------------------------------------
# canonicalization: the single-spec path is the degenerate 1-stage case
# ---------------------------------------------------------------------------

def canonical_spec(spec: StencilSpec) -> StencilSpec:
    """Unwrap a trivial 1-stage, 1-field staged spec to its plain spec.

    ``make_staged(n, (stage,))`` of a self-contained linear stage and
    the equivalent plain :class:`StencilSpec` must produce identical
    plans, cache keys and stats — so the pipeline canonicalizes the
    wrapper away at the spec boundary instead of forking the drive
    loop.  Non-trivial staged specs (several stages, several fields, or
    a stage with no monolithic operator) pass through unchanged.
    """
    if not getattr(spec, "is_staged", False):
        return spec
    if len(spec.stages) != 1 or len(spec.fields) != 1:
        return spec
    op = spec.stages[0].to_operator()
    if op is None:
        return spec
    return StencilSpec(name=spec.name, ndim=spec.ndim, operator=op,
                       shape="custom", boundary=spec.boundary)


def split_linear_spec(spec: StencilSpec, k: int,
                      name: Optional[str] = None) -> StagedSpec:
    """Two-stage prefix decomposition of a monolithic linear kernel.

    Stage ``partial`` accumulates the kernel's first ``k`` taps into a
    scratch field ``w`` from macro-step-start values; stage ``total``
    starts from ``1.0 * w`` (bit-exact) and adds the remaining taps in
    the original order — so the composition is bit-identical to the
    monolithic spec on the shared field (the Hypothesis property the
    tests pin).
    """
    op = spec.operator
    if type(op) is not LinearStencilOperator:
        raise TypeError("can only split a LinearStencilOperator spec")
    if not 1 <= k < len(op.offsets):
        raise ValueError(
            f"split point {k} outside [1, {len(op.offsets) - 1}]"
        )
    u, w = "u", "w"
    head = [(u, off, c, False)
            for off, c in zip(op.offsets[:k], op.coeffs[:k])]
    zero = (0,) * spec.ndim
    tail = [(w, zero, 1.0, True)] + [
        (u, off, c, False)
        for off, c in zip(op.offsets[k:], op.coeffs[k:])
    ]
    return make_staged(
        name or f"{spec.name}-split{k}",
        (LinearStage("partial", w, head), LinearStage("total", u, tail)),
        dtype=op.dtype,
    )
