"""End-to-end correctness of the tessellation executors.

Every executor must be bit-compatible (within fp tolerance; exact for
the integer Game of Life) with the naive reference on arbitrary grids,
depths and step counts — including truncated final phases, stretched
lattices, supernodes (order-2 stencils) and periodic boundaries.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make_lattice, run_pointwise
from repro.core.executor import _run_blocked, _run_merged
from repro.core.profiles import AxisProfile, TessLattice
from repro.stencils import (
    Grid,
    d1p5,
    d2p9,
    d3p27,
    game_of_life,
    heat1d,
    heat2d,
    heat3d,
    reference_sweep,
)

ALL_KERNELS = {
    "heat1d": (heat1d, (37,)),
    "1d5p": (d1p5, (44,)),
    "heat2d": (heat2d, (17, 21)),
    "2d9p": (d2p9, (19, 16)),
    "life": (game_of_life, (18, 15)),
    "heat3d": (heat3d, (9, 11, 10)),
    "3d27p": (d3p27, (10, 9, 8)),
}


def _compare(spec, ref, out):
    if np.issubdtype(spec.dtype, np.integer):
        return np.array_equal(ref, out)
    return np.allclose(ref, out, rtol=1e-11, atol=1e-12)


@pytest.mark.parametrize("name", sorted(ALL_KERNELS))
@pytest.mark.parametrize("runner", [run_pointwise, _run_blocked, _run_merged],
                         ids=["pointwise", "blocked", "merged"])
class TestAllKernelsAllExecutors:
    def test_matches_reference(self, name, runner):
        factory, shape = ALL_KERNELS[name]
        spec = factory()
        b = 3 if spec.order == 1 else 2
        steps = 2 * b + 1  # truncated final phase on purpose
        g_ref = Grid(spec, shape, init="random", seed=11)
        g_out = g_ref.copy()
        ref = reference_sweep(spec, g_ref, steps)
        lat = make_lattice(spec, shape, b)
        out = runner(spec, g_out, lat, steps)
        assert _compare(spec, ref, out)


class TestPointwiseSpecifics:
    @given(st.integers(6, 40), st.integers(1, 4), st.integers(0, 9),
           st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_random_1d(self, n, b, steps, periodic):
        spec = heat1d("periodic" if periodic else "dirichlet")
        g1 = Grid(spec, (n,), seed=n)
        g2 = g1.copy()
        ref = reference_sweep(spec, g1, steps)
        prof = AxisProfile.stretched(n, b, periodic=periodic)
        out = run_pointwise(spec, g2, TessLattice((prof,)), steps)
        assert _compare(spec, ref, out)

    @given(st.integers(6, 18), st.integers(6, 18), st.integers(1, 3),
           st.integers(0, 7), st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_random_2d(self, nx, ny, b, steps, periodic):
        spec = heat2d("periodic" if periodic else "dirichlet")
        g1 = Grid(spec, (nx, ny), seed=nx * ny)
        g2 = g1.copy()
        ref = reference_sweep(spec, g1, steps)
        lat = TessLattice((
            AxisProfile.stretched(nx, b, periodic=periodic),
            AxisProfile.stretched(ny, b, periodic=periodic),
        ))
        out = run_pointwise(spec, g2, lat, steps)
        assert _compare(spec, ref, out)

    def test_periodic_life(self):
        spec = game_of_life("periodic")
        g1 = Grid(spec, (16, 12), seed=5)
        g2 = g1.copy()
        ref = reference_sweep(spec, g1, 6)
        lat = TessLattice((
            AxisProfile.uniform(16, 2, periodic=True),
            AxisProfile.uniform(12, 2, periodic=True),
        ))
        out = run_pointwise(spec, g2, lat, 6)
        assert np.array_equal(ref, out)

    def test_update_hook_totals(self):
        spec = heat2d()
        g = Grid(spec, (12, 13), seed=0)
        lat = make_lattice(spec, (12, 13), 2)
        counts = []
        run_pointwise(spec, g, lat, 4,
                      on_update=lambda tt, st_, s, n: counts.append(n))
        assert sum(counts) == 12 * 13 * 4

    def test_zero_steps_is_identity(self):
        spec = heat1d()
        g = Grid(spec, (10,), seed=1)
        before = g.interior(0).copy()
        out = run_pointwise(spec, g, make_lattice(spec, (10,), 2), 0)
        assert np.array_equal(before, out)

    def test_mismatched_lattice_rejected(self):
        spec = heat1d()
        g = Grid(spec, (10,), seed=1)
        with pytest.raises(ValueError):
            run_pointwise(spec, g, make_lattice(spec, (11,), 2), 2)

    def test_slope_too_small_rejected(self):
        spec = d1p5()
        g = Grid(spec, (20,), seed=1)
        lat = TessLattice((AxisProfile.uniform(20, 2, sigma=1),))
        with pytest.raises(ValueError):
            run_pointwise(spec, g, lat, 2)

    def test_periodicity_mismatch_rejected(self):
        spec = heat1d("periodic")
        g = Grid(spec, (12,), seed=1)
        lat = TessLattice((AxisProfile.uniform(12, 2, periodic=False),))
        with pytest.raises(ValueError):
            run_pointwise(spec, g, lat, 2)

    def test_negative_steps_rejected(self):
        spec = heat1d()
        g = Grid(spec, (10,), seed=1)
        with pytest.raises(ValueError):
            run_pointwise(spec, g, make_lattice(spec, (10,), 2), -1)


class TestBlockExecutorSpecifics:
    @given(st.integers(8, 30), st.integers(8, 30), st.integers(1, 3),
           st.integers(1, 9), st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_random_coarse_2d(self, nx, ny, b, steps, wx, wy):
        spec = heat2d()
        g1 = Grid(spec, (nx, ny), seed=steps)
        g2 = g1.copy()
        ref = reference_sweep(spec, g1, steps)
        lat = make_lattice(spec, (nx, ny), b, core_widths=(wx, wy))
        out = _run_blocked(spec, g2, lat, steps)
        assert _compare(spec, ref, out)

    def test_rejects_periodic(self):
        spec = heat1d("periodic")
        g = Grid(spec, (12,), seed=1)
        lat = TessLattice((AxisProfile.uniform(12, 2, periodic=True),))
        with pytest.raises(ValueError):
            _run_blocked(spec, g, lat, 2)
        with pytest.raises(ValueError):
            _run_merged(spec, g, lat, 2)

    def test_block_hook_totals(self):
        spec = heat2d()
        g = Grid(spec, (14, 14), seed=0)
        lat = make_lattice(spec, (14, 14), 2)
        seen = []
        _run_blocked(spec, g, lat, 5,
                    on_block=lambda kind, tt, blk, n: seen.append((kind, n)))
        assert sum(n for _, n in seen) == 14 * 14 * 5

    def test_uncut_axis_executes(self):
        spec = heat3d()
        shape = (12, 10, 9)
        g1 = Grid(spec, shape, seed=3)
        g2 = g1.copy()
        ref = reference_sweep(spec, g1, 5)
        lat = make_lattice(spec, shape, 2, core_widths=(1, 1, 1),
                           uncut_dims=(2,))
        out = _run_blocked(spec, g2, lat, 5)
        assert _compare(spec, ref, out)


class TestMergedExecutorSpecifics:
    @given(st.integers(10, 30), st.integers(1, 3), st.integers(0, 11))
    @settings(max_examples=30, deadline=None)
    def test_random_1d(self, n, b, steps):
        spec = heat1d()
        g1 = Grid(spec, (n,), seed=steps)
        g2 = g1.copy()
        ref = reference_sweep(spec, g1, steps)
        out = _run_merged(spec, g2, make_lattice(spec, (n,), b), steps)
        assert _compare(spec, ref, out)

    def test_merged_equals_unmerged(self):
        spec = heat2d()
        shape = (19, 22)
        lat = make_lattice(spec, shape, 3)
        g1 = Grid(spec, shape, seed=7)
        g2 = g1.copy()
        a = _run_blocked(spec, g1, lat, 9).copy()
        bout = _run_merged(spec, g2, lat, 9).copy()
        assert np.allclose(a, bout, rtol=1e-12, atol=1e-13)

    def test_merging_condition_enforced(self):
        spec = d1p5()  # slope 2
        g = Grid(spec, (40,), seed=1)
        lat = make_lattice(spec, (40,), 2, core_widths=(1,))
        with pytest.raises(ValueError, match="core width"):
            _run_merged(spec, g, lat, 4)

    def test_merged_uncut_3d(self):
        spec = heat3d()
        shape = (12, 11, 10)
        g1 = Grid(spec, shape, seed=9)
        g2 = g1.copy()
        ref = reference_sweep(spec, g1, 7)
        lat = make_lattice(spec, shape, 2, uncut_dims=(2,))
        out = _run_merged(spec, g2, lat, 7)
        assert _compare(spec, ref, out)
