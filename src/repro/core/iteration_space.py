"""Iteration-space tessellation tables (paper §3.5, Tables 2 and 3).

The paper illustrates the maximal-updating scheme with per-quadrant
tables: for the ``B_0^+`` quadrant (coordinates ``0..b`` per dimension)
it tabulates, per stage, the start time ``T_i^s``, the end time
``T_i^e`` and the update count ``T_i`` of every point, with ``-``
marking points that receive no update in that stage (block boundaries).

This module regenerates those tables for any ``d`` and ``b`` so the
test-suite can compare them against the literal matrices printed in the
paper, and so users can inspect the scheme the same way the authors
present it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core import timefunc

#: Sentinel used where the paper prints '-' (no update in this stage).
NO_UPDATE = -1


def quadrant_coords(d: int, b: int) -> np.ndarray:
    """All points of ``B_0^+``: the ``(b+1)^d`` grid of coords ``0..b``."""
    axes = [np.arange(b + 1)] * d
    mesh = np.meshgrid(*axes, indexing="ij")
    return np.stack([m.ravel() for m in mesh], axis=-1)


def stage_tables(d: int, b: int, stage: int) -> Dict[str, np.ndarray]:
    """``T_i^s`` / ``T_i^e`` / ``T_i`` arrays over ``B_0^+``.

    Each array has shape ``(b+1,) * d``; entries where ``T_i == 0`` are
    :data:`NO_UPDATE` in all three tables, matching the paper's '-'.
    """
    coords = quadrant_coords(d, b)
    counts = timefunc.update_counts(coords, b)[..., stage]
    start, end = timefunc.stage_window(coords, b, stage)
    shape = (b + 1,) * d
    t = counts.reshape(shape).astype(np.int64)
    ts = start.reshape(shape).astype(np.int64)
    te = end.reshape(shape).astype(np.int64)
    dead = t == 0
    t = np.where(dead, NO_UPDATE, t)
    ts = np.where(dead, NO_UPDATE, ts)
    te = np.where(dead, NO_UPDATE, te)
    return {"start": ts, "end": te, "count": t}


def block_resolved_counts(d: int, b: int, stage: int,
                          center: Tuple[int, ...]) -> np.ndarray:
    """``T_i`` restricted to the ``B_i`` block with the given centre.

    ``center`` is a ``B_i`` centre on the surface of ``B_0^+`` — a 0/b
    vector with exactly ``stage`` coordinates equal to ``b`` (Lemma
    3.4 picks the block whose glued dimensions carry the largest
    distances).  Entries belonging to other blocks are
    :data:`NO_UPDATE`.  This reproduces the per-block sub-tables of
    the paper's Table 3 (e.g. ``𝔹_1^+(0,0,b)``).
    """
    if len(center) != d:
        raise ValueError(f"centre rank {len(center)} != d={d}")
    glued = tuple(j for j, c in enumerate(center) if c == b)
    if len(glued) != stage or any(c not in (0, b) for c in center):
        raise ValueError(
            f"{center} is not a valid stage-{stage} centre on B_0^+"
        )
    coords = quadrant_coords(d, b)
    counts = timefunc.update_counts(coords, b)[..., stage]
    # the point belongs to this block iff its `stage` largest distances
    # are exactly the glued dims: min over glued > max over ending
    if stage == 0:
        member = np.ones(len(coords), dtype=bool)
    elif stage == d:
        member = np.ones(len(coords), dtype=bool)
    else:
        g = coords[:, list(glued)]
        e = coords[:, [j for j in range(d) if j not in glued]]
        member = g.min(axis=1) > e.max(axis=1)
    out = np.where(member & (counts > 0), counts, NO_UPDATE)
    return out.reshape((b + 1,) * d).astype(np.int64)


def time_tile_total(d: int, b: int) -> np.ndarray:
    """Sum of all stage counts over ``B_0^+`` — constant ``b`` (Thm 3.5)."""
    coords = quadrant_coords(d, b)
    total = timefunc.update_counts(coords, b).sum(axis=-1)
    return total.reshape((b + 1,) * d)


def format_table(arr: np.ndarray) -> str:
    """Render a table with '-' for :data:`NO_UPDATE`, paper-style.

    2-D arrays render as a matrix; 3-D arrays as one matrix per
    ``k``-slice side by side header, matching Table 3's layout.
    """
    def cell(v: int) -> str:
        return "-" if v == NO_UPDATE else str(int(v))

    if arr.ndim == 1:
        return " ".join(cell(v) for v in arr)
    if arr.ndim == 2:
        return "\n".join(" ".join(cell(v) for v in row) for row in arr)
    if arr.ndim == 3:
        parts: List[str] = []
        for k in range(arr.shape[2]):
            parts.append(f"k = {k}")
            parts.append(format_table(arr[:, :, k]))
        return "\n".join(parts)
    raise ValueError(f"cannot format {arr.ndim}-D table")
