"""Graceful backend degradation — the QoS fallback chain.

A :class:`~repro.runtime.qos.QoSPolicy` may name a chain of cheaper
backends (``fallback=("threaded", "serial")``); when the primary
backend fails with a *retryable* verdict the run is re-executed on the
next backend in the chain instead of raising.  Retryable means the
failure is a property of the backend, not of the caller's request:

* :class:`~repro.api.backends.BackendUnsupported` — the backend
  refused the configuration before touching a buffer;
* :class:`~repro.runtime.qos.AdmissionRejected` — the backend family's
  estimated footprint exceeds the memory ceiling (a cheaper family may
  fit);
* :class:`~repro.runtime.errors.RankLostError` — the elastic runtime
  lost a rank for good (respawn budget exhausted);
* :class:`~repro.runtime.errors.RunDeadlineExceeded` — the deadline
  expired at a cooperative boundary; each hop re-arms a *fresh* budget
  (per-attempt semantics), so a cheaper backend gets a full budget.

:class:`~repro.runtime.errors.RunCancelled` is deliberately **not**
retryable — the shared cancel token stays tripped across hops, so a
cancelled run stays cancelled.  Every hop is recorded in
``RunStats.degradations`` (and as ``"fallback"`` trace events when the
config carries a trace), and the recovered result is bit-identical to
running the successful backend directly: hops re-run from the original
input state (buffers restored from a pre-run snapshot, or the grid
deterministically re-created from the config's seed).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Tuple

import numpy as np

from repro.api.backends import BackendUnsupported
from repro.runtime.errors import RankLostError, RunDeadlineExceeded
from repro.runtime.qos import AdmissionRejected

__all__ = ["FALLBACK_RETRYABLE", "run_with_fallback"]

#: errors a fallback hop may recover from (see module docstring);
#: everything else — including RunCancelled — propagates unchanged
FALLBACK_RETRYABLE = (
    BackendUnsupported,
    AdmissionRejected,
    RankLostError,
    RunDeadlineExceeded,
)


def run_with_fallback(session, config, *, grid=None, schedule=None,
                      lattice=None, plan=None,
                      params: Optional[Tuple] = None):
    """Run the pipeline through the config's QoS fallback chain.

    Tries ``config.backend`` first, then each backend of
    ``config.qos.fallback`` in order (duplicates skipped), restoring
    the caller's grid to its pre-run state between hops.  Returns the
    first successful :class:`~repro.api.stats.RunResult` with its
    ``stats.degradations`` listing one dict per failed hop
    (``from``/``to`` backend, ``error`` class name, ``detail``);
    re-raises the last error when every backend in the chain failed.
    """
    qos = config.qos
    chain = []
    for name in (config.backend,) + tuple(qos.fallback):
        if name not in chain:
            chain.append(name)
    # the caller's grid is mutated in place by most backends, so a hop
    # after a mid-run deadline must replay from the original state
    snapshot = ([buf.copy() for buf in grid.buffers]
                if grid is not None else None)
    hops = []
    last_exc = None
    for i, name in enumerate(chain):
        if i > 0 and snapshot is not None:
            for dst, src in zip(grid.buffers, snapshot):
                np.copyto(dst, src)
        hop_config = (config if name == config.backend
                      else replace(config, backend=name))
        try:
            result = session._pipeline_once(
                hop_config, grid=grid, schedule=schedule,
                lattice=lattice, plan=plan, params=params)
        except FALLBACK_RETRYABLE as exc:
            last_exc = exc
            nxt = chain[i + 1] if i + 1 < len(chain) else None
            hops.append({
                "from": name,
                "to": nxt,
                "error": type(exc).__name__,
                "detail": str(exc),
            })
            if config.trace is not None:
                config.trace.record_event(
                    "fallback", i, label=name,
                    detail=(f"{type(exc).__name__}: falling back to "
                            f"{nxt!r}" if nxt is not None
                            else f"{type(exc).__name__}: chain exhausted"),
                )
            continue
        result.stats.degradations = list(hops)
        return result
    raise last_exc
