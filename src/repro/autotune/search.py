"""Tile-size search against the simulated machine.

The objective is simulated execution time of the tessellation schedule
on a given machine/core count; the search never executes the stencil,
so it is cheap enough to sweep dozens of configurations (schedule
generation cost is proportional to the task count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.executor import make_lattice
from repro.core.schedules import tess_schedule
from repro.machine.model import SimResult, simulate
from repro.machine.spec import MachineSpec
from repro.stencils.spec import StencilSpec


@dataclass(frozen=True)
class TuneResult:
    """One evaluated configuration."""

    b: int
    core_widths: Tuple[int, ...]
    result: SimResult

    @property
    def time_s(self) -> float:
        return self.result.time_s

    def describe(self) -> str:
        return (
            f"b={self.b} core_widths={self.core_widths}: "
            f"{self.result.gstencils:.3f} GStencil/s "
            f"({self.result.time_s * 1e3:.2f} ms simulated)"
        )


def candidate_depths(shape: Sequence[int], steps: int,
                     slopes: Sequence[int]) -> List[int]:
    """Sensible time-tile depths: powers of two up to the geometry cap."""
    cap = min(
        max(1, (min(int(n) for n in shape)) // (4 * max(slopes))),
        max(1, steps),
    )
    out = []
    b = 2
    while b <= cap:
        out.append(b)
        b *= 2
    return out or [1]


def _evaluate(spec: StencilSpec, shape: Sequence[int], steps: int,
              machine: MachineSpec, cores: int, b: int,
              core_widths: Sequence[int], merged: bool) -> Optional[TuneResult]:
    try:
        lattice = make_lattice(spec, shape, b, core_widths=core_widths)
        sched = tess_schedule(spec, tuple(int(n) for n in shape), lattice,
                              steps, merged=merged)
    except ValueError:
        return None
    if not sched.tasks:
        return None
    res = simulate(spec, sched, machine, cores)
    return TuneResult(b=b, core_widths=tuple(core_widths), result=res)


def grid_search(
    spec: StencilSpec,
    shape: Sequence[int],
    steps: int,
    machine: MachineSpec,
    cores: int,
    depths: Optional[Iterable[int]] = None,
    width_factors: Iterable[int] = (1, 2, 4),
    merged: bool = True,
) -> List[TuneResult]:
    """Sweep ``b`` × isotropic core-width factors; sorted best-first.

    ``width_factors`` multiply the per-axis slope to form core widths
    (the paper sets "other parameters to the half or double of the
    blocking size" — the same neighbourhood this sweep covers).
    """
    if depths is None:
        depths = candidate_depths(shape, steps, spec.slopes)
    results: List[TuneResult] = []
    for b in depths:
        for f in width_factors:
            widths = [max(sg, f * sg * b // 2) for sg in spec.slopes]
            r = _evaluate(spec, shape, steps, machine, cores, b, widths,
                          merged)
            if r is not None:
                results.append(r)
    results.sort(key=lambda r: r.time_s)
    return results


def tune_tessellation(
    spec: StencilSpec,
    shape: Sequence[int],
    steps: int,
    machine: MachineSpec,
    cores: int,
    merged: bool = True,
    rounds: int = 2,
) -> TuneResult:
    """Coordinate descent: best ``b`` first, then per-axis widths.

    Starts from the best isotropic grid-search point and repeatedly
    tries halving/doubling each axis width independently (anisotropic
    coarsening is the point of §4.2 — e.g. the paper's 128×256×64
    Heat-2D blocking).
    """
    coarse = grid_search(spec, shape, steps, machine, cores, merged=merged)
    if not coarse:
        raise ValueError("no feasible tessellation configuration found")
    best = coarse[0]
    d = spec.ndim
    for _ in range(rounds):
        improved = False
        for axis in range(d):
            for factor in (0.5, 2.0):
                widths = list(best.core_widths)
                w = max(spec.slopes[axis], int(round(widths[axis] * factor)))
                if w == widths[axis]:
                    continue
                widths[axis] = w
                cand = _evaluate(spec, shape, steps, machine, cores,
                                 best.b, widths, merged)
                if cand is not None and cand.time_s < best.time_s:
                    best = cand
                    improved = True
        if not improved:
            break
    return best
