"""The batched backend's contract: N stacked instances, bit-identical.

``Session.run_many`` over N independent instances must produce exactly
the arrays N independent ``backend="compiled"`` runs produce — the
batch axis only changes array traversal (one kernel dispatch serves
the whole stack), never per-point float operation order.  Both
lowering paths (slice ops for large rectangles, flat-index gather
batches for small ones) are pinned, plus the refusal surface and the
``batched_hits`` cache counter's wire format.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Grid, get_stencil
from repro.api import RunConfig, Session
from repro.api.backends import BackendUnsupported
from repro.engine import BatchGrid, plan_supports_batch, stack_grids
from repro.engine.cache import CacheStats

pytestmark = pytest.mark.engine


def _solo_interiors(session, config, n):
    out = []
    for i in range(n):
        cfg = config.with_overrides(
            {"backend": "compiled", "engine": "compiled", "batch": 1,
             "seed": config.seed + i})
        out.append(session.run(cfg).interior.copy())
    return out


def _assert_batch_matches(kernel, shape, scheme, steps, n, *, b=4,
                          seed=3, batch_threshold=4096):
    session = Session(get_stencil(kernel))
    config = RunConfig(shape=shape, steps=steps, scheme=scheme, b=b,
                       seed=seed, backend="batched",
                       options={"batch_threshold": batch_threshold}
                       if batch_threshold != 4096 else {})
    results = session.run_many(config, batch=n)
    solo = _solo_interiors(session, config.normalized(), n)
    assert len(results) == n
    for i, (res, ref) in enumerate(zip(results, solo)):
        assert np.array_equal(res.interior, ref), (
            f"instance {i} of {kernel}/{scheme} batch diverged")
        assert res.interior.tobytes() == ref.tobytes()


# -- bit-identity across the matrix -----------------------------------

@pytest.mark.parametrize("kernel,shape", [
    ("heat1d", (128,)),
    ("heat2d", (24, 24)),
    ("heat2d", (19, 23)),  # stretched: per-axis widths differ
    ("life", (20, 20)),
])
@pytest.mark.parametrize("scheme", ["tess", "diamond", "mwd"])
def test_batch_bit_identical(kernel, shape, scheme):
    _assert_batch_matches(kernel, shape, scheme, steps=8, n=3)


def test_batch_zero_steps():
    _assert_batch_matches("heat1d", (64,), "tess", steps=0, n=4)


def test_batch_slice_path():
    # batch_threshold=1 forces every fused rectangle onto the slice
    # lowering; the flat-index default covers the gather path
    _assert_batch_matches("heat2d", (24, 24), "tess", steps=6, n=3,
                          batch_threshold=1)


@settings(max_examples=12, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=5),
    steps=st.integers(min_value=0, max_value=10),
    size=st.integers(min_value=33, max_value=90),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_batch_property_heat1d(n, steps, size, seed):
    """Any (N, steps, shape, seed): run_many == N compiled runs."""
    _assert_batch_matches("heat1d", (size,), "tess", steps=steps, n=n,
                          seed=seed)


# -- refusal surface --------------------------------------------------

def test_batched_refuses_overlapped():
    session = Session(get_stencil("heat1d"))
    with pytest.raises(BackendUnsupported):
        session.run(RunConfig(shape=(64,), steps=4, scheme="overlapped",
                              backend="batched"))


def test_batched_refuses_naive_engine():
    session = Session(get_stencil("heat1d"))
    with pytest.raises(BackendUnsupported):
        session.run(RunConfig(shape=(64,), steps=4, backend="batched",
                              engine="naive"))


def test_run_many_rejects_other_backends():
    session = Session(get_stencil("heat1d"))
    with pytest.raises(ValueError):
        session.run_many(RunConfig(shape=(64,), steps=4,
                                   backend="threaded"), batch=2)


def test_stack_grids_rejects_mixed_shapes():
    spec = get_stencil("heat1d")
    g1 = Grid(spec, (32,), init="random", seed=0)
    g2 = Grid(spec, (48,), init="random", seed=1)
    with pytest.raises(ValueError):
        stack_grids(spec, [g1, g2])


def test_plan_supports_batch_accepts_linear_plans():
    from repro.engine import compile_plan

    session = Session(get_stencil("heat1d"))
    built = session.build(RunConfig(shape=(128,), steps=8, b=4), (128,))
    assert plan_supports_batch(
        compile_plan(session.spec, built.schedule)) is None


# -- BatchGrid mechanics ----------------------------------------------

def test_batchgrid_scatter_roundtrip():
    spec = get_stencil("heat1d")
    grids = [Grid(spec, (40,), init="random", seed=i) for i in range(3)]
    before = [[b.copy() for b in g.buffers] for g in grids]
    bgrid = stack_grids(spec, grids)
    assert isinstance(bgrid, BatchGrid)
    assert bgrid.n == 3
    for i in range(3):
        assert np.array_equal(bgrid.instance_interior(i, 0),
                              grids[i].interior(0))
    bgrid.buffers[0] += 1.0
    bgrid.scatter(grids)
    for g, pair in zip(grids, before):
        assert np.array_equal(g.buffers[0], pair[0] + 1.0)
        assert np.array_equal(g.buffers[1], pair[1])


# -- cache amortisation counter ---------------------------------------

def test_batched_hits_counter_and_wire_format():
    session = Session(get_stencil("heat1d"))
    cfg = RunConfig(shape=(64,), steps=6, backend="batched", batch=2)
    session.run_many(cfg)
    first = session.run_many(cfg)[0]
    cache = first.stats.cache
    assert cache is not None
    data = cache.as_dict()
    assert "batched_hits" in data
    # round trip through the JSON wire format both ways
    assert CacheStats(**data).batched_hits == data["batched_hits"]
    legacy = dict(data)
    legacy.pop("batched_hits")  # pre-1.7 server payload
    assert CacheStats(**legacy).batched_hits == 0


def test_batched_hits_counts_amortised_lookups():
    from repro.engine.cache import PlanCache

    cache = PlanCache(capacity=4)
    session = Session(get_stencil("heat1d"))
    spec = session.spec
    sched = session.build(RunConfig(shape=(64,), steps=4, b=4),
                          (64,)).schedule
    cache.get(spec, sched)
    assert cache.stats.batched_hits == 0
    cache.get(spec, sched, batched=True)
    assert cache.stats.hits == 1
    assert cache.stats.batched_hits == 1
    cache.get(spec, sched)
    assert cache.stats.hits == 2
    assert cache.stats.batched_hits == 1
